/// \file
/// Reproduces Fig. 10 and Fig. 11: the hand-written ptwalk2 ELT is
/// synthesized verbatim (category 1); dirtybit3 is permitted as written and
/// reduces to a minimal synthesizable ELT (category 2); the Fig. 11 test is
/// a *new* ELT synthesized at bound 5 whose violation is the invlpg axiom.
#include <cstdio>

#include "bench_common.h"
#include "elt/derive.h"
#include "elt/fixtures.h"
#include "elt/printer.h"
#include "mtm/model.h"
#include "synth/canonical.h"
#include "synth/engine.h"
#include "synth/exec_enum.h"
#include "synth/minimality.h"

int
main()
{
    using namespace transform;
    bench::banner("fig10_fig11_examples", "Fig. 10a, Fig. 10b, Fig. 11",
                  "ptwalk2 forbidden+minimal and synthesized verbatim; "
                  "dirtybit3 permitted and reducible; Fig. 11 synthesized "
                  "as a new ELT violating invlpg");
    const mtm::Model model = mtm::x86t_elt();
    bool ok = true;

    // --- Fig. 10a: ptwalk2.
    {
        const auto e = elt::fixtures::fig10a_ptwalk2();
        std::printf("\n--- Fig. 10a (ptwalk2) ---\n%s",
                    elt::program_to_string(e.program).c_str());
        const auto verdict = synth::judge(model, e);
        std::printf("violated:");
        for (const auto& axiom : verdict.violated) {
            std::printf(" %s", axiom.c_str());
        }
        std::printf("\n");
        ok = bench::check("ptwalk2 interesting", verdict.interesting) && ok;
        ok = bench::check("ptwalk2 minimal", verdict.minimal) && ok;
        ok = bench::check("ptwalk2 violates sc_per_loc and invlpg",
                          verdict.violated.size() == 2) && ok;

        synth::SynthesisOptions opt;
        opt.min_bound = 4;
        opt.bound = 4;
        const auto suite = synth::synthesize_suite(model, "invlpg", opt);
        const std::string key = synth::canonical_key(e.program);
        bool found = false;
        for (const auto& test : suite.tests) {
            found = found || test.canonical_key == key;
        }
        ok = bench::check("ptwalk2 synthesized verbatim at bound 4", found) && ok;
    }

    // --- Fig. 10b: dirtybit3.
    {
        const auto e = elt::fixtures::fig10b_dirtybit3();
        std::printf("\n--- Fig. 10b (dirtybit3) ---\n%s",
                    elt::program_to_string(e.program).c_str());
        ok = bench::check("dirtybit3 permitted as written", model.permits(e)) &&
             ok;
        // Its program has forbidden executions, but none minimal: every one
        // survives the removal of the trailing store.
        bool any_minimal = false;
        synth::for_each_execution(e.program, true,
                                  [&](const elt::Execution& exec) {
                                      const auto v = synth::judge(model, exec);
                                      any_minimal = v.interesting && v.minimal;
                                      return !any_minimal;
                                  });
        ok = bench::check("dirtybit3 not minimal as written", !any_minimal) &&
             ok;
    }

    // --- Fig. 11: the new synthesized ELT.
    {
        const auto e = elt::fixtures::fig11_new_elt();
        std::printf("\n--- Fig. 11 (new ELT) ---\n%s",
                    elt::program_to_string(e.program).c_str());
        const auto verdict = synth::judge(model, e);
        bool invlpg = false;
        for (const auto& axiom : verdict.violated) {
            invlpg = invlpg || axiom == "invlpg";
        }
        ok = bench::check("fig11 forbidden via invlpg", invlpg) && ok;
        ok = bench::check("fig11 minimal", verdict.minimal) && ok;

        synth::SynthesisOptions opt;
        opt.min_bound = 4;
        opt.bound = 5;
        const auto suite = synth::synthesize_suite(model, "invlpg", opt);
        const std::string key = synth::canonical_key(e.program);
        bool found = false;
        for (const auto& test : suite.tests) {
            found = found || test.canonical_key == key;
        }
        ok = bench::check("fig11 synthesized at bound 5", found) && ok;
    }

    std::printf("\nfig10_fig11 overall: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
