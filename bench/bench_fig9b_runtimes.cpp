/// \file
/// Reproduces Fig. 9b: synthesis runtime per per-axiom suite by instruction
/// bound. Absolute times differ from the paper's testbed (and our substrate
/// is the explicit enumerator, with the SAT pipeline available for
/// cross-checks); the shape to reproduce is super-exponential growth of
/// runtime with instruction bound, with the cheaper axioms (rmw_atomicity,
/// tlb_causality, via their structural pruning) well below sc_per_loc.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mtm/model.h"
#include "synth/engine.h"

int
main()
{
    using namespace transform;
    const int max_bound = bench::env_int("TRANSFORM_FIG9_BOUND", 8);
    const int budget = bench::env_int("TRANSFORM_CELL_BUDGET", 120);
    bench::banner("fig9b_runtimes", "Fig. 9b",
                  "runtime grows super-exponentially with instruction bound");
    std::printf("sweep: bounds 4..%d, %ds per cell\n\n", max_bound, budget);

    const mtm::Model model = mtm::x86t_elt();
    const auto axioms = mtm::x86t_elt_axiom_names();

    std::printf("%-15s", "axiom \\ bound");
    for (int bound = 4; bound <= max_bound; ++bound) {
        std::printf("%11d", bound);
    }
    std::printf("   (seconds per sweep-to-bound)\n");

    std::map<std::string, std::vector<double>> seconds;
    for (const auto& axiom : axioms) {
        std::printf("%-15s", axiom.c_str());
        for (int bound = 4; bound <= max_bound; ++bound) {
            synth::SynthesisOptions opt;
            opt.min_bound = 4;
            opt.bound = bound;
            opt.max_threads = 2;
            opt.max_vas = 2;
            opt.max_fresh_pas = 1;
            opt.time_budget_seconds = budget;
            const auto suite = synth::synthesize_suite(model, axiom, opt);
            seconds[axiom].push_back(suite.seconds);
            std::printf("%10.3f%c", suite.seconds, suite.complete ? ' ' : '*');
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("(*: budget hit)\n\n");

    bool ok = true;
    // Growth factor between the top two completed bounds should exceed 3x
    // for the big suites (the paper's curves grow super-exponentially; ours
    // step roughly an order of magnitude per added instruction).
    for (const std::string axiom : {"sc_per_loc", "causality", "invlpg"}) {
        const auto& s = seconds[axiom];
        const double last = s[s.size() - 1];
        const double prev = s[s.size() - 2];
        const bool grows = prev <= 0.0 || last / std::max(prev, 1e-6) > 3.0;
        ok = bench::check((axiom + " runtime grows >3x per added instruction")
                              .c_str(),
                          grows) && ok;
    }
    std::printf("\nfig9b overall: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
