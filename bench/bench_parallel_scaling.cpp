/// \file
/// Parallel-scaling bench for the v2 synthesis runtime: wall time of the
/// full per-axiom suite sweep at 1/2/4/8 scheduler jobs on the fixture
/// MTMs, reporting speedup over the sequential (jobs=1) run. The sweep
/// goes through synthesize_all_parallel, so every axiom's shards share ONE
/// work-stealing pool (Chase-Lev deques + adaptive shard re-splitting) —
/// the paper's Alloy pipeline took a week single-threaded at bound 11; the
/// point of the runtime is that added cores translate into wall-clock
/// speedup while the synthesized suite stays bit-identical, at every job
/// count and at every shard granularity.
///
/// Knobs: TRANSFORM_SCALING_BOUND (default 6), TRANSFORM_SCALING_MODEL
/// (x86t_elt | x86tso, default x86t_elt).
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "mtm/model.h"
#include "synth/engine.h"
#include "util/stopwatch.h"

int
main()
{
    using namespace transform;
    const int bound = bench::env_int("TRANSFORM_SCALING_BOUND", 6);
    const char* model_env = std::getenv("TRANSFORM_SCALING_MODEL");
    const bool use_tso =
        model_env != nullptr && std::strcmp(model_env, "x86tso") == 0;
    const mtm::Model model = use_tso ? mtm::x86tso() : mtm::x86t_elt();
    const unsigned hw = std::thread::hardware_concurrency();

    bench::banner("parallel_scaling",
                  "synthesis-loop scaling (TransForm section IV at scale)",
                  "one shared pool sweeps all axioms; suites are identical "
                  "at every job count and shard depth");
    std::printf("model %s, bounds %d..%d, %u hardware thread(s)\n\n",
                model.name().c_str(), model.vm_aware() ? 4 : 2, bound, hw);

    const std::vector<int> job_counts = {1, 2, 4, 8};
    std::vector<double> seconds;
    std::vector<int> test_counts;
    std::printf("%8s %12s %10s %9s %9s %10s %10s\n", "jobs", "wall (s)",
                "speedup", "tests", "shards", "steals", "re-splits");
    for (const int jobs : job_counts) {
        synth::SynthesisOptions opt;
        opt.min_bound = model.vm_aware() ? 4 : 2;
        opt.bound = bound;
        opt.jobs = jobs;
        util::Stopwatch watch;
        const auto suites = synth::synthesize_all_parallel(model, opt);
        const double elapsed = watch.elapsed_seconds();
        seconds.push_back(elapsed);
        test_counts.push_back(synth::unique_test_count(suites));
        std::uint64_t steals = 0;
        std::uint64_t shard_jobs = 0;
        std::uint64_t resplits = 0;
        for (const auto& suite : suites) {
            steals += suite.scheduler.steals;
            shard_jobs += suite.scheduler.jobs_run;
            resplits += suite.scheduler.resplits;
        }
        std::printf("%8d %12.3f %9.2fx %9d %9llu %10llu %10llu\n", jobs,
                    elapsed, seconds.front() / elapsed, test_counts.back(),
                    static_cast<unsigned long long>(shard_jobs),
                    static_cast<unsigned long long>(steals),
                    static_cast<unsigned long long>(resplits));
    }
    std::printf("\n");

    bool ok = true;
    for (std::size_t i = 1; i < job_counts.size(); ++i) {
        ok = bench::check(
                 ("suite identical at jobs=" +
                  std::to_string(job_counts[i]))
                     .c_str(),
                 test_counts[i] == test_counts.front()) &&
             ok;
    }

    // Shard-granularity sweep: the adaptive default must agree with every
    // fixed prefix depth (same serial driver, same suite).
    for (const int depth : {1, 2, 3}) {
        synth::SynthesisOptions opt;
        opt.min_bound = model.vm_aware() ? 4 : 2;
        opt.bound = bound;
        opt.jobs = 4;
        opt.shard_depth = depth;
        const auto suites = synth::synthesize_all_parallel(model, opt);
        ok = bench::check(("suite identical at shard depth " +
                           std::to_string(depth))
                              .c_str(),
                          synth::unique_test_count(suites) ==
                              test_counts.front()) &&
             ok;
    }

    // Speedup needs cores to scale onto; the determinism checks above run
    // everywhere, the throughput check only where 4 workers can actually
    // run in parallel.
    const double speedup4 = seconds[0] / seconds[2];
    if (hw >= 4) {
        ok = bench::check(">= 2x speedup at 4 jobs", speedup4 >= 2.0) && ok;
    } else {
        std::printf("  [SKIP] >= 2x speedup at 4 jobs (needs >= 4 hardware "
                    "threads, have %u; measured %.2fx)\n",
                    hw, speedup4);
    }
    std::printf("\nparallel_scaling overall: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
