/// \file
/// Parallel-scaling bench for the v2 synthesis runtime: wall time of the
/// full per-axiom suite sweep at 1/2/4/8 scheduler jobs on the fixture
/// MTMs, reporting speedup over the sequential (jobs=1) run. The sweep
/// goes through synthesize_all_parallel, so every axiom's shards share ONE
/// work-stealing pool (Chase-Lev deques + lazy adaptive shard
/// re-splitting) — the paper's Alloy pipeline took a week single-threaded
/// at bound 11; the point of the runtime is that added cores translate
/// into wall-clock speedup while the synthesized suite stays
/// byte-identical, at every job count and at every shard granularity.
///
/// The bench also prices the lazy re-split design against the pre-PR
/// eager-probe baseline: the old engine ran a count_skeletons probe per
/// adaptive shard job (a full second enumeration of the shard's candidate
/// prefix) before searching; lazy splitting deleted that pass, so the
/// eager baseline costs exactly the lazy wall time plus a replay of the
/// probe enumerations — measured here and reported as candidate
/// throughput for both designs.
///
/// Knobs: TRANSFORM_SCALING_BOUND (default 6), TRANSFORM_SCALING_MODEL
/// (x86t_elt | x86tso, default x86t_elt), TRANSFORM_SCALING_JSON (output
/// path, default BENCH_scaling.json — the machine-readable run record),
/// TRANSFORM_SCALING_REQUIRE_SPEEDUP (default 1; 0 makes the >=2x
/// throughput check report-only — for smoke runs whose workloads are too
/// small to out-measure scheduler spin-up and CI noise).
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "mtm/model.h"
#include "synth/engine.h"
#include "synth/skeleton.h"
#include "util/stopwatch.h"

namespace {

using namespace transform;

/// The determinism contract's observable (bench_common.h): canonical keys,
/// order, sizes, violated-axiom lists across every suite of a sweep point.
std::string
sweep_fingerprint(const std::vector<synth::SuiteResult>& suites)
{
    return bench::suite_fingerprint(suites, /*include_violated=*/true);
}

/// Replays the enumeration work of the deleted eager probe pass,
/// faithfully: the pre-PR engine ran `count_skeletons(shard, T + 1)` on a
/// shard job only when a split was structurally possible — stride still
/// subdividing, children non-empty, and (since its split_shard refused
/// closed prefixes) never on a shard whose prefix had closed thread 0 —
/// and recursed into the children of over-threshold shards. Returns the
/// number of candidates those probes enumerated: pure overhead the lazy
/// design no longer pays, since every candidate a lazy job visits is a
/// real search step.
std::uint64_t
replay_probe_pass(const synth::SkeletonShard& shard, std::uint64_t threshold,
                  std::uint64_t stride)
{
    if (stride < synth::kMinLeafStride * 2) {
        return 0;  // searched as a leaf, no probe
    }
    if (!shard.prefix.empty() && shard.prefix.back() == synth::kCloseThread) {
        return 0;  // pre-PR: unsplittable closed prefix, searched directly
    }
    const auto children = synth::split_shard(shard);
    if (children.empty()) {
        return 0;
    }
    const std::uint64_t child_stride =
        synth::child_stride_for(stride, children.size());
    if (child_stride < synth::kMinLeafStride) {
        return 0;
    }
    const std::uint64_t count =
        synth::count_skeletons(shard, threshold + 1);
    if (count <= threshold) {
        return count;  // probed, then searched as a leaf
    }
    std::uint64_t enumerated = count;
    for (const synth::SkeletonShard& child : children) {
        enumerated += replay_probe_pass(child, threshold, child_stride);
    }
    return enumerated;
}

}  // namespace

int
main()
{
    const int bound = bench::env_int("TRANSFORM_SCALING_BOUND", 6);
    const char* model_env = std::getenv("TRANSFORM_SCALING_MODEL");
    const bool use_tso =
        model_env != nullptr && std::strcmp(model_env, "x86tso") == 0;
    const mtm::Model model = use_tso ? mtm::x86tso() : mtm::x86t_elt();
    const unsigned hw = std::thread::hardware_concurrency();

    bench::banner("parallel_scaling",
                  "synthesis-loop scaling (TransForm section IV at scale)",
                  "one shared pool sweeps all axioms; suites are identical "
                  "at every job count, shard depth, and re-split "
                  "threshold; lazy re-splitting beats the eager probe");
    std::printf("model %s, bounds %d..%d, %u hardware thread(s)\n\n",
                model.name().c_str(), model.vm_aware() ? 4 : 2, bound, hw);

    const std::vector<int> job_counts = {1, 2, 4, 8};
    std::vector<double> seconds;
    std::vector<bench::JsonPair> json;
    json.push_back(bench::jstr("bench", "parallel_scaling"));
    json.push_back(bench::jstr("model", model.name()));
    json.push_back(bench::jint("bound", static_cast<std::uint64_t>(bound)));
    json.push_back(bench::jint("hardware_threads", hw));
    std::string reference_fp;
    std::uint64_t reference_programs = 0;
    std::printf("%8s %12s %10s %9s %9s %10s %10s %8s\n", "jobs", "wall (s)",
                "speedup", "tests", "shards", "steals", "re-splits",
                "closed");
    bool ok = true;
    for (const int jobs : job_counts) {
        synth::SynthesisOptions opt;
        opt.min_bound = model.vm_aware() ? 4 : 2;
        opt.bound = bound;
        opt.jobs = jobs;
        util::Stopwatch watch;
        const auto suites = synth::synthesize_all_parallel(model, opt);
        const double elapsed = watch.elapsed_seconds();
        seconds.push_back(elapsed);
        std::uint64_t steals = 0;
        std::uint64_t shard_jobs = 0;
        std::uint64_t resplits = 0;
        std::uint64_t closed = 0;
        std::uint64_t programs = 0;
        int tests = 0;
        for (const auto& suite : suites) {
            steals += suite.scheduler.steals;
            shard_jobs += suite.scheduler.jobs_run;
            resplits += suite.scheduler.lazy_resplits;
            closed += suite.scheduler.closed_prefix_splits;
            programs += suite.programs_considered;
            tests += static_cast<int>(suite.tests.size());
        }
        std::printf("%8d %12.3f %9.2fx %9d %9llu %10llu %10llu %8llu\n",
                    jobs, elapsed, seconds.front() / elapsed, tests,
                    static_cast<unsigned long long>(shard_jobs),
                    static_cast<unsigned long long>(steals),
                    static_cast<unsigned long long>(resplits),
                    static_cast<unsigned long long>(closed));
        const std::string jobs_key = "jobs_" + std::to_string(jobs);
        json.push_back(bench::jnum(jobs_key + "_seconds", elapsed));
        json.push_back(bench::jnum(jobs_key + "_programs_per_sec",
                                   static_cast<double>(programs) / elapsed));
        json.push_back(
            bench::jnum(jobs_key + "_speedup", seconds.front() / elapsed));
        const std::string fp = sweep_fingerprint(suites);
        if (jobs == job_counts.front()) {
            reference_fp = fp;
            reference_programs = programs;
        } else {
            ok = bench::check(("suite byte-identical at jobs=" +
                               std::to_string(jobs))
                                  .c_str(),
                              fp == reference_fp) &&
                 ok;
        }
    }
    std::printf("\n");

    // Shard-granularity sweep: the lazy adaptive default must agree with
    // every fixed prefix depth and every re-split threshold (including one
    // small enough to recurse past closed first threads).
    std::uint64_t closed_prefix_seen = 0;
    struct SweepPoint {
        const char* label;
        int depth;
        std::uint64_t threshold;
    };
    const std::vector<SweepPoint> sweep = {
        {"depth=1", 1, 0},          {"depth=2", 2, 0},
        {"depth=3", 3, 0},          {"adaptive T=1024", 0, 1024},
        {"adaptive T=4", 0, 4},
    };
    for (const SweepPoint& point : sweep) {
        synth::SynthesisOptions opt;
        opt.min_bound = model.vm_aware() ? 4 : 2;
        opt.bound = bound;
        opt.jobs = 4;
        opt.shard_depth = point.depth;
        opt.resplit_threshold = point.threshold;
        const auto suites = synth::synthesize_all_parallel(model, opt);
        for (const auto& suite : suites) {
            closed_prefix_seen += suite.scheduler.closed_prefix_splits;
        }
        ok = bench::check(("suite byte-identical at " +
                           std::string(point.label))
                              .c_str(),
                          sweep_fingerprint(suites) == reference_fp) &&
             ok;
    }
    ok = bench::check("closed-prefix splits observed in sweep",
                      closed_prefix_seen > 0) &&
         ok;

    // Eager-probe baseline: lazy adaptive wall time at a threshold that
    // forces re-splits, plus a replay of the probe enumerations the old
    // engine ran on top of the same search. The throughput table shows
    // the wall-clock story; the gating checks compare the *repeated
    // enumeration work* of the two designs deterministically, since wall
    // time on a loaded CI box is noise: lazy's only repeated work is the
    // boundary-child skip replay — measured by the engine itself
    // (skip_enumerations), because skips compound down a re-split chain
    // and a resplits*T model would understate them — and it must stay
    // within the probe enumerations the eager design spent on the same
    // space; that inequality failing means the resume machinery
    // re-enumerates more than the probe it replaced ever did.
    {
        synth::SynthesisOptions opt;
        opt.min_bound = model.vm_aware() ? 4 : 2;
        opt.bound = bound;
        opt.jobs = 1;
        opt.resplit_threshold = 64;
        util::Stopwatch lazy_watch;
        const auto suites = synth::synthesize_all_parallel(model, opt);
        const double lazy_wall = lazy_watch.elapsed_seconds();
        util::Stopwatch probe_watch;
        std::uint64_t probe_enumerated = 0;
        for (const mtm::Axiom& axiom : model.axioms()) {
            for (int size = opt.min_bound; size <= opt.bound; ++size) {
                const synth::SkeletonOptions skeleton =
                    synth::engine_skeleton_options(model, axiom.name, opt,
                                                   size);
                for (const synth::SkeletonShard& shard :
                     synth::partition_skeletons_at_depth(skeleton, 1)) {
                    probe_enumerated += replay_probe_pass(
                        shard, opt.resplit_threshold, synth::kTicketStride);
                }
            }
        }
        const double probe_wall = probe_watch.elapsed_seconds();
        const double eager_wall = lazy_wall + probe_wall;
        std::uint64_t programs = 0;
        std::uint64_t resplits = 0;
        std::uint64_t lazy_repeated = 0;
        for (const auto& suite : suites) {
            programs += suite.programs_considered;
            resplits += suite.scheduler.lazy_resplits;
            lazy_repeated += suite.scheduler.skip_enumerations;
        }
        std::printf("\neager-probe baseline (adaptive, T=%llu):\n",
                    static_cast<unsigned long long>(opt.resplit_threshold));
        std::printf("  lazy   : %.3fs, %.0f candidates/s "
                    "(%llu re-splits, %llu skip re-enumerations)\n",
                    lazy_wall, static_cast<double>(programs) / lazy_wall,
                    static_cast<unsigned long long>(resplits),
                    static_cast<unsigned long long>(lazy_repeated));
        std::printf("  eager  : %.3fs, %.0f candidates/s "
                    "(+%.3fs probe replay, %llu probed candidates)\n",
                    eager_wall, static_cast<double>(programs) / eager_wall,
                    probe_wall,
                    static_cast<unsigned long long>(probe_enumerated));
        json.push_back(bench::jnum("lazy_candidates_per_sec",
                                   static_cast<double>(programs) / lazy_wall));
        json.push_back(bench::jnum("eager_candidates_per_sec",
                                   static_cast<double>(programs) /
                                       eager_wall));
        json.push_back(bench::jint("lazy_skip_enumerations", lazy_repeated));
        json.push_back(bench::jint("eager_probe_enumerations",
                                   probe_enumerated));
        ok = bench::check("suite byte-identical in baseline run",
                          sweep_fingerprint(suites) == reference_fp) &&
             ok;
        ok = bench::check("candidates counted once per sweep",
                          programs == reference_programs) &&
             ok;
        ok = bench::check("re-splits actually fired in baseline run",
                          resplits > 0) &&
             ok;
        ok = bench::check(
                 "lazy repeated work <= eager probe enumerations",
                 lazy_repeated <= probe_enumerated) &&
             ok;
    }

    // Speedup needs cores to scale onto; the determinism checks above run
    // everywhere, the throughput check only where 4 workers can actually
    // run in parallel AND the caller asked for it (smoke runs use tiny
    // bounds where spin-up and noisy neighbors dominate wall time).
    const bool require_speedup =
        bench::env_int("TRANSFORM_SCALING_REQUIRE_SPEEDUP", 1) != 0;
    const double speedup4 = seconds[0] / seconds[2];
    if (hw >= 4 && require_speedup) {
        ok = bench::check(">= 2x speedup at 4 jobs", speedup4 >= 2.0) && ok;
    } else {
        std::printf("  [SKIP] >= 2x speedup at 4 jobs (%s; measured %.2fx)\n",
                    hw < 4 ? "needs >= 4 hardware threads"
                           : "report-only: TRANSFORM_SCALING_REQUIRE_SPEEDUP=0",
                    speedup4);
    }
    json.push_back(bench::jbool("checks_ok", ok));
    const char* json_env = std::getenv("TRANSFORM_SCALING_JSON");
    bench::write_json(json_env != nullptr ? json_env : "BENCH_scaling.json",
                      json);
    std::printf("\nparallel_scaling overall: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
