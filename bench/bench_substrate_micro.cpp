/// \file
/// google-benchmark microbenchmarks for the substrates the synthesis
/// pipeline stands on: the CDCL solver, the relational/boolean layer, the
/// derivation engine, the canonicalizer and the per-program backends —
/// followed by the witness-search throughput section, which measures the
/// end-to-end per-candidate evaluation rate (programs/sec) of both
/// backends, checks suite byte-identity across worker counts, and records
/// everything (including a heap-allocation proxy) in BENCH_substrate.json.
///
/// Knobs: TRANSFORM_SUBSTRATE_MIN_BOUND (default 4),
/// TRANSFORM_SUBSTRATE_BOUND (default 6), TRANSFORM_SUBSTRATE_JSON
/// (default BENCH_substrate.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "elt/derive.h"
#include "elt/fixtures.h"
#include "mtm/encoding.h"
#include "mtm/model.h"
#include "obs/alloc.h"
#include "rel/bool_factory.h"
#include "rel/relation.h"
#include "sat/solver.h"
#include "spec/registry.h"
#include "synth/canonical.h"
#include "synth/engine.h"
#include "synth/exec_enum.h"
#include "synth/minimality.h"
#include "util/stopwatch.h"

// The allocation proxy this bench grades the zero-allocation hot path on
// is the library's always-on interposed operator-new counter
// (obs::alloc_count(), obs/alloc.h) — it lived here as a private proxy
// until the observability layer promoted it so tools and tests share one
// counter.

namespace {

using namespace transform;

/// Builds a pigeonhole instance (n+1 pigeons, n holes) in a fresh solver.
void
bm_sat_pigeonhole(benchmark::State& state)
{
    const int holes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sat::Solver s;
        std::vector<std::vector<sat::Var>> in(holes + 1,
                                              std::vector<sat::Var>(holes));
        for (auto& row : in) {
            for (auto& v : row) {
                v = s.new_var();
            }
        }
        for (int p = 0; p <= holes; ++p) {
            sat::Clause clause;
            for (int h = 0; h < holes; ++h) {
                clause.push_back(sat::Lit(in[p][h], false));
            }
            s.add_clause(clause);
        }
        for (int h = 0; h < holes; ++h) {
            for (int p1 = 0; p1 <= holes; ++p1) {
                for (int p2 = p1 + 1; p2 <= holes; ++p2) {
                    s.add_binary(sat::Lit(in[p1][h], true),
                                 sat::Lit(in[p2][h], true));
                }
            }
        }
        benchmark::DoNotOptimize(s.solve());
    }
}
BENCHMARK(bm_sat_pigeonhole)->Arg(5)->Arg(6)->Arg(7);

void
bm_rel_closure(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        rel::BoolFactory f;
        sat::Solver s;
        const rel::RelExpr r = rel::RelExpr::free(&f, &s, n);
        benchmark::DoNotOptimize(r.closure(&f));
    }
}
BENCHMARK(bm_rel_closure)->Arg(6)->Arg(10)->Arg(14);

void
bm_derive_fig2c(benchmark::State& state)
{
    const elt::Execution e = elt::fixtures::fig2c_sb_elt_aliased();
    for (auto _ : state) {
        benchmark::DoNotOptimize(elt::derive(e));
    }
}
BENCHMARK(bm_derive_fig2c);

/// The scratch-reusing derivation the engine's inner loop runs: same
/// relations as bm_derive_fig2c, no steady-state allocation.
void
bm_derive_into_fig2c(benchmark::State& state)
{
    const elt::Execution e = elt::fixtures::fig2c_sb_elt_aliased();
    elt::DerivedRelations derived;
    elt::DeriveScratch scratch;
    for (auto _ : state) {
        elt::derive_into(e, {}, &derived, &scratch);
        benchmark::DoNotOptimize(derived.well_formed);
    }
}
BENCHMARK(bm_derive_into_fig2c);

void
bm_canonical_key(benchmark::State& state)
{
    const elt::Program p = elt::fixtures::fig2c_sb_elt_aliased().program;
    synth::CanonicalScratch scratch;
    for (auto _ : state) {
        benchmark::DoNotOptimize(synth::canonical_key(p, &scratch));
    }
}
BENCHMARK(bm_canonical_key);

void
bm_exec_enum_dirtybit3(benchmark::State& state)
{
    const elt::Program p = elt::fixtures::fig10b_dirtybit3().program;
    for (auto _ : state) {
        int count = 0;
        synth::for_each_execution(p, true, [&](const elt::Execution&) {
            ++count;
            return true;
        });
        benchmark::DoNotOptimize(count);
    }
}
BENCHMARK(bm_exec_enum_dirtybit3);

void
bm_sat_backend_dirtybit3(benchmark::State& state)
{
    const elt::Program p = elt::fixtures::fig10b_dirtybit3().program;
    const mtm::Model model = mtm::x86t_elt();
    mtm::EncodingScratch scratch;
    for (auto _ : state) {
        mtm::ProgramEncoding encoding(p, &model, &scratch);
        int count = 0;
        encoding.enumerate("", [&](const elt::Execution&) {
            ++count;
            return true;
        });
        benchmark::DoNotOptimize(count);
    }
}
BENCHMARK(bm_sat_backend_dirtybit3);

void
bm_judge_ptwalk2(benchmark::State& state)
{
    const elt::Execution e = elt::fixtures::fig10a_ptwalk2();
    const mtm::Model model = mtm::x86t_elt();
    synth::JudgeScratch scratch;
    for (auto _ : state) {
        benchmark::DoNotOptimize(synth::judge(model, e, &scratch));
    }
}
BENCHMARK(bm_judge_ptwalk2);

// ---------------------------------------------------------------------------
// Witness-search throughput section.
// ---------------------------------------------------------------------------

struct BackendRun {
    double seconds = 0.0;
    std::uint64_t programs = 0;
    std::uint64_t executions = 0;
    std::uint64_t allocations = 0;
    std::uint64_t bases_built = 0;   ///< incremental SAT: structure bases
    std::uint64_t bases_reused = 0;  ///< incremental SAT: base-cache hits
    int tests = 0;
    std::string fingerprint;       ///< keys + sizes + violated
    std::string key_fingerprint;   ///< keys + sizes only
};

/// Runs the witness-search workload (the sc_per_loc + causality suites of
/// the given model — the two axioms with the largest candidate spaces) on
/// one backend at the given worker count.
BackendRun
run_workload(const mtm::Model& model, synth::Backend backend, int jobs,
             int min_bound, int bound, bool sat_incremental = false)
{
    synth::SynthesisOptions opt;
    opt.min_bound = min_bound;
    opt.bound = bound;
    opt.jobs = jobs;
    opt.backend = backend;
    opt.sat_incremental = sat_incremental;
    BackendRun run;
    std::vector<synth::SuiteResult> suites;
    const std::uint64_t allocations_before = obs::alloc_count();
    util::Stopwatch watch;
    for (const char* axiom : {"sc_per_loc", "causality"}) {
        suites.push_back(synth::synthesize_suite(model, axiom, opt));
    }
    run.seconds = watch.elapsed_seconds();
    run.allocations = obs::alloc_count() - allocations_before;
    for (const synth::SuiteResult& suite : suites) {
        run.programs += suite.programs_considered;
        run.executions += suite.executions_considered;
        run.tests += static_cast<int>(suite.tests.size());
        run.bases_built += suite.solver.bases_built;
        run.bases_reused += suite.solver.bases_reused;
    }
    run.fingerprint =
        bench::suite_fingerprint(suites, /*include_violated=*/true);
    run.key_fingerprint =
        bench::suite_fingerprint(suites, /*include_violated=*/false);
    return run;
}

/// Repeats the workload and keeps the fastest run (standard min-wall
/// noise rejection: the suites are deterministic, so every repeat does
/// identical work and the minimum is the least-perturbed measurement).
/// Any fingerprint divergence between repeats fails the bench — a
/// determinism bug would otherwise hide behind the noise this exists to
/// reject.
BackendRun
best_of(int repeats, const mtm::Model& model, synth::Backend backend,
        int jobs, int min_bound, int bound, bool sat_incremental, bool* ok)
{
    BackendRun best =
        run_workload(model, backend, jobs, min_bound, bound, sat_incremental);
    for (int rep = 1; rep < repeats; ++rep) {
        BackendRun run = run_workload(model, backend, jobs, min_bound,
                                      bound, sat_incremental);
        if (run.fingerprint != best.fingerprint) {
            *ok = bench::check("repeat runs byte-identical", false) && *ok;
        }
        if (run.seconds < best.seconds) {
            best = std::move(run);
        }
    }
    return best;
}

/// Steady-state allocations per judge() verdict with ONE reused
/// JudgeScratch — the pooled interesting/minimality/relaxation pipeline's
/// grade: after the warm-up pass seeds the scratch pools (relaxed-program
/// events, witness vectors, derivation buffers), repeat verdicts over the
/// same witness mix must run allocation-free. Mixing fixtures of
/// different shapes (VM ptwalk, dirty-bit, aliased MCM store buffering)
/// keeps the pools honest: each verdict re-derives every applicable
/// relaxation of its witness.
double
minimality_allocs_per_witness()
{
    const mtm::Model model = mtm::x86t_elt();
    const std::vector<elt::Execution> witnesses = {
        elt::fixtures::fig10a_ptwalk2(),
        elt::fixtures::fig10b_dirtybit3(),
        elt::fixtures::fig2c_sb_elt_aliased(),
    };
    synth::JudgeScratch scratch;
    for (const elt::Execution& e : witnesses) {  // warm-up: fill the pools
        benchmark::DoNotOptimize(synth::judge(model, e, &scratch));
    }
    constexpr int kRounds = 64;
    const std::uint64_t before = obs::alloc_count();
    for (int round = 0; round < kRounds; ++round) {
        for (const elt::Execution& e : witnesses) {
            benchmark::DoNotOptimize(synth::judge(model, e, &scratch));
        }
    }
    const std::uint64_t after = obs::alloc_count();
    return static_cast<double>(after - before) /
           static_cast<double>(kRounds * witnesses.size());
}

/// The phase-attributed allocation breakdown of the SAT workload: one
/// jobs=1 run with track_allocs + collect_metrics on, so every operator
/// new lands in a phase bucket. Returns the merged totals plus programs
/// and the fingerprint (which must match the untracked run's — tracking
/// is not allowed to perturb the suite).
struct TrackedAllocRun {
    obs::AllocTotals allocs;
    std::uint64_t programs = 0;
    std::string fingerprint;
};

TrackedAllocRun
tracked_alloc_run(const mtm::Model& model, int min_bound, int bound)
{
    synth::SynthesisOptions opt;
    opt.min_bound = min_bound;
    opt.bound = bound;
    opt.jobs = 1;
    opt.backend = synth::Backend::kSat;
    opt.collect_metrics = true;
    opt.track_allocs = true;
    TrackedAllocRun run;
    std::vector<synth::SuiteResult> suites;
    for (const char* axiom : {"sc_per_loc", "causality"}) {
        suites.push_back(synth::synthesize_suite(model, axiom, opt));
    }
    for (const synth::SuiteResult& suite : suites) {
        run.programs += suite.programs_considered;
        run.allocs.merge(suite.allocs);
    }
    run.fingerprint =
        bench::suite_fingerprint(suites, /*include_violated=*/true);
    return run;
}

int
witness_search_section()
{
    const int min_bound = bench::env_int("TRANSFORM_SUBSTRATE_MIN_BOUND", 4);
    const int bound = bench::env_int("TRANSFORM_SUBSTRATE_BOUND", 6);
    const int repeats =
        std::max(1, bench::env_int("TRANSFORM_SUBSTRATE_REPEATS", 3));
    const char* json_env = std::getenv("TRANSFORM_SUBSTRATE_JSON");
    const std::string json_path =
        json_env != nullptr ? json_env : "BENCH_substrate.json";

    bench::banner("substrate_micro / witness search",
                  "per-candidate evaluation cost of the synthesis loop "
                  "(TransForm section IV inner loop)",
                  "zero-allocation pipeline: streaming SAT enumeration, "
                  "scratch-reused derivation, bitmask verdicts; suites "
                  "byte-identical at every worker count");
    std::printf("x86t_elt, bounds %d..%d\n\n", min_bound, bound);

    const mtm::Model hardwired = mtm::x86t_elt();
    std::string spec_error;
    const std::optional<spec::ResolvedModel> twin =
        spec::resolve_model("x86t_elt.mtm", &spec_error);
    if (!twin.has_value()) {
        std::fprintf(stderr, "cannot resolve x86t_elt.mtm: %s\n",
                     spec_error.c_str());
        return 1;
    }

    bool ok = true;
    std::printf("%12s %10s %6s %10s %12s %14s %12s\n", "backend", "model",
                "jobs", "wall (s)", "programs/s", "executions/s",
                "allocs/prog");
    BackendRun sat_run;
    BackendRun sat_inc_run;
    BackendRun enum_run;
    BackendRun spec_sat_run;
    BackendRun spec_enum_run;
    for (const synth::Backend backend :
         {synth::Backend::kEnumerative, synth::Backend::kSat}) {
        const char* backend_name =
            backend == synth::Backend::kSat ? "sat" : "enumerative";
        BackendRun reference;
        for (const int jobs : {1, 2, 4}) {
            const BackendRun run =
                best_of(repeats, hardwired, backend, jobs, min_bound, bound,
                        /*sat_incremental=*/false, &ok);
            std::printf("%12s %10s %6d %10.3f %12.0f %14.0f %12.1f\n",
                        backend_name, "builtin", jobs, run.seconds,
                        run.programs / run.seconds,
                        run.executions / run.seconds,
                        static_cast<double>(run.allocations) / run.programs);
            if (jobs == 1) {
                reference = run;
                if (backend == synth::Backend::kSat) {
                    sat_run = run;
                } else {
                    enum_run = run;
                }
            } else {
                ok = bench::check(
                         (std::string(backend_name) +
                          " suite byte-identical at jobs=" +
                          std::to_string(jobs))
                             .c_str(),
                         run.fingerprint == reference.fingerprint) &&
                     ok;
            }
        }
        // The same workload through the `.mtm` twin prices the DSL
        // interpreter (enumerative) and the generic circuit lowering (SAT)
        // against the hand-written axioms — and re-proves suite identity.
        const BackendRun spec_run =
            best_of(repeats, twin->model, backend, 1, min_bound, bound,
                    /*sat_incremental=*/false, &ok);
        std::printf("%12s %10s %6d %10.3f %12.0f %14.0f %12.1f\n",
                    backend_name, "spec", 1, spec_run.seconds,
                    spec_run.programs / spec_run.seconds,
                    spec_run.executions / spec_run.seconds,
                    static_cast<double>(spec_run.allocations) /
                        spec_run.programs);
        ok = bench::check((std::string(backend_name) +
                           " .mtm twin test set identical to builtin")
                              .c_str(),
                          spec_run.key_fingerprint ==
                              reference.key_fingerprint) &&
             ok;
        if (backend == synth::Backend::kSat) {
            spec_sat_run = spec_run;
        } else {
            spec_enum_run = spec_run;
        }
        if (backend != synth::Backend::kSat) {
            continue;
        }
        // The assumption-based incremental SAT path (one live solver per
        // worker, per-candidate placement by assumptions): suites must be
        // byte-identical to the fresh-encoding rows above at every worker
        // count — the speedup is not allowed to change a single test.
        for (const int jobs : {1, 2, 4}) {
            const BackendRun run =
                best_of(repeats, hardwired, backend, jobs, min_bound, bound,
                        /*sat_incremental=*/true, &ok);
            std::printf("%12s %10s %6d %10.3f %12.0f %14.0f %12.1f\n",
                        "sat+inc", "builtin", jobs, run.seconds,
                        run.programs / run.seconds,
                        run.executions / run.seconds,
                        static_cast<double>(run.allocations) / run.programs);
            if (jobs == 1) {
                sat_inc_run = run;
            }
            ok = bench::check(("sat incremental suite byte-identical to "
                               "fresh at jobs=" +
                               std::to_string(jobs))
                                  .c_str(),
                              run.fingerprint == reference.fingerprint) &&
                 ok;
        }
    }
    // The synthesized test SET (keys + sizes) is backend-independent: a
    // program enters the suite iff some qualifying witness exists, which
    // both backends agree on even though they find different witnesses.
    ok = bench::check("test set identical across backends",
                      sat_run.key_fingerprint == enum_run.key_fingerprint) &&
         ok;

    // Structure-base economy of the jobs=1 incremental run: how many base
    // encodings the session actually built vs how many structure revisits
    // the cache absorbed. builds/program is the gated ratio — a broken
    // cache shows up as it jumping toward the structure-change count.
    const double base_builds_per_program =
        static_cast<double>(sat_inc_run.bases_built) /
        static_cast<double>(sat_inc_run.programs);
    std::printf("\nsat+inc structure bases: built %" PRIu64
                ", reused %" PRIu64 " (%.4f builds/prog)\n",
                sat_inc_run.bases_built, sat_inc_run.bases_reused,
                base_builds_per_program);
    ok = bench::check("incremental session reuses structure bases",
                      sat_inc_run.bases_reused > 0) &&
         ok;

    const double judge_allocs = minimality_allocs_per_witness();
    std::printf("judge pipeline steady state: %.3f allocs/witness\n",
                judge_allocs);

    // Phase-attributed allocation breakdown (obs::AllocTracker): where the
    // per-candidate allocations actually happen. Tracking must not perturb
    // the suite — the tracked fingerprint is held to the untracked one.
    const TrackedAllocRun tracked =
        tracked_alloc_run(hardwired, min_bound, bound);
    ok = bench::check("alloc tracking does not perturb the suite",
                      tracked.fingerprint == sat_run.fingerprint) &&
         ok;
    std::printf("\nsat allocs per phase (per program):\n");
    std::vector<bench::JsonPair> phase_pairs;
    for (int p = 0; p < obs::kPhaseCount; ++p) {
        const obs::AllocSlot& slot =
            tracked.allocs.phases[static_cast<std::size_t>(p)];
        const double per_program =
            static_cast<double>(slot.count) /
            static_cast<double>(std::max<std::uint64_t>(tracked.programs, 1));
        std::printf("  %-14s %10" PRIu64 " allocs  %8.3f /prog\n",
                    obs::phase_name(static_cast<obs::Phase>(p)), slot.count,
                    per_program);
        phase_pairs.push_back(bench::jnum(
            std::string("sat_allocs_per_phase_") +
                obs::phase_name(static_cast<obs::Phase>(p)),
            per_program));
    }

    std::vector<bench::JsonPair> pairs =
        {
            bench::jstr("bench", "substrate_micro"),
            bench::jstr("workload", "x86t_elt sc_per_loc+causality suites"),
            bench::jint("min_bound", static_cast<std::uint64_t>(min_bound)),
            bench::jint("bound", static_cast<std::uint64_t>(bound)),
            bench::jint("programs", sat_run.programs),
            bench::jint("tests", static_cast<std::uint64_t>(sat_run.tests)),
            bench::jnum("sat_programs_per_sec",
                        sat_run.programs / sat_run.seconds),
            bench::jnum("sat_executions_per_sec",
                        sat_run.executions / sat_run.seconds),
            bench::jnum("sat_allocs_per_program",
                        static_cast<double>(sat_run.allocations) /
                            sat_run.programs),
            bench::jnum("sat_incremental_programs_per_sec",
                        sat_inc_run.programs / sat_inc_run.seconds),
            bench::jnum("sat_incremental_executions_per_sec",
                        sat_inc_run.executions / sat_inc_run.seconds),
            bench::jnum("sat_incremental_allocs_per_program",
                        static_cast<double>(sat_inc_run.allocations) /
                            sat_inc_run.programs),
            bench::jint("sat_incremental_bases_built",
                        sat_inc_run.bases_built),
            bench::jint("sat_incremental_bases_reused",
                        sat_inc_run.bases_reused),
            bench::jnum("sat_incremental_base_builds_per_program",
                        base_builds_per_program),
            bench::jnum("minimality_allocs_per_witness", judge_allocs),
            bench::jnum("enum_programs_per_sec",
                        enum_run.programs / enum_run.seconds),
            bench::jnum("enum_executions_per_sec",
                        enum_run.executions / enum_run.seconds),
            bench::jnum("enum_allocs_per_program",
                        static_cast<double>(enum_run.allocations) /
                            enum_run.programs),
            bench::jnum("spec_sat_programs_per_sec",
                        spec_sat_run.programs / spec_sat_run.seconds),
            bench::jnum("spec_sat_allocs_per_program",
                        static_cast<double>(spec_sat_run.allocations) /
                            spec_sat_run.programs),
            bench::jnum("spec_enum_programs_per_sec",
                        spec_enum_run.programs / spec_enum_run.seconds),
            bench::jnum("spec_enum_allocs_per_program",
                        static_cast<double>(spec_enum_run.allocations) /
                            spec_enum_run.programs),
        };
    pairs.insert(pairs.end(), phase_pairs.begin(), phase_pairs.end());
    pairs.push_back(bench::jbool("fingerprints_jobs_identical", ok));
    bench::write_json(json_path, pairs);
    std::printf("\nwitness search overall: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return witness_search_section();
}
