/// \file
/// google-benchmark microbenchmarks for the substrates the synthesis
/// pipeline stands on: the CDCL solver, the relational/boolean layer, the
/// derivation engine, the canonicalizer and the per-program backends.
#include <benchmark/benchmark.h>

#include "elt/derive.h"
#include "elt/fixtures.h"
#include "mtm/encoding.h"
#include "mtm/model.h"
#include "rel/bool_factory.h"
#include "rel/relation.h"
#include "sat/solver.h"
#include "synth/canonical.h"
#include "synth/exec_enum.h"
#include "synth/minimality.h"

namespace {

using namespace transform;

/// Builds a pigeonhole instance (n+1 pigeons, n holes) in a fresh solver.
void
bm_sat_pigeonhole(benchmark::State& state)
{
    const int holes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sat::Solver s;
        std::vector<std::vector<sat::Var>> in(holes + 1,
                                              std::vector<sat::Var>(holes));
        for (auto& row : in) {
            for (auto& v : row) {
                v = s.new_var();
            }
        }
        for (int p = 0; p <= holes; ++p) {
            sat::Clause clause;
            for (int h = 0; h < holes; ++h) {
                clause.push_back(sat::Lit(in[p][h], false));
            }
            s.add_clause(clause);
        }
        for (int h = 0; h < holes; ++h) {
            for (int p1 = 0; p1 <= holes; ++p1) {
                for (int p2 = p1 + 1; p2 <= holes; ++p2) {
                    s.add_binary(sat::Lit(in[p1][h], true),
                                 sat::Lit(in[p2][h], true));
                }
            }
        }
        benchmark::DoNotOptimize(s.solve());
    }
}
BENCHMARK(bm_sat_pigeonhole)->Arg(5)->Arg(6)->Arg(7);

void
bm_rel_closure(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        rel::BoolFactory f;
        sat::Solver s;
        const rel::RelExpr r = rel::RelExpr::free(&f, &s, n);
        benchmark::DoNotOptimize(r.closure(&f));
    }
}
BENCHMARK(bm_rel_closure)->Arg(6)->Arg(10)->Arg(14);

void
bm_derive_fig2c(benchmark::State& state)
{
    const elt::Execution e = elt::fixtures::fig2c_sb_elt_aliased();
    for (auto _ : state) {
        benchmark::DoNotOptimize(elt::derive(e));
    }
}
BENCHMARK(bm_derive_fig2c);

void
bm_canonical_key(benchmark::State& state)
{
    const elt::Program p = elt::fixtures::fig2c_sb_elt_aliased().program;
    for (auto _ : state) {
        benchmark::DoNotOptimize(synth::canonical_key(p));
    }
}
BENCHMARK(bm_canonical_key);

void
bm_exec_enum_dirtybit3(benchmark::State& state)
{
    const elt::Program p = elt::fixtures::fig10b_dirtybit3().program;
    for (auto _ : state) {
        int count = 0;
        synth::for_each_execution(p, true, [&](const elt::Execution&) {
            ++count;
            return true;
        });
        benchmark::DoNotOptimize(count);
    }
}
BENCHMARK(bm_exec_enum_dirtybit3);

void
bm_sat_backend_dirtybit3(benchmark::State& state)
{
    const elt::Program p = elt::fixtures::fig10b_dirtybit3().program;
    const mtm::Model model = mtm::x86t_elt();
    for (auto _ : state) {
        mtm::ProgramEncoding encoding(p, &model);
        benchmark::DoNotOptimize(encoding.enumerate().size());
    }
}
BENCHMARK(bm_sat_backend_dirtybit3);

void
bm_judge_ptwalk2(benchmark::State& state)
{
    const elt::Execution e = elt::fixtures::fig10a_ptwalk2();
    const mtm::Model model = mtm::x86t_elt();
    for (auto _ : state) {
        benchmark::DoNotOptimize(synth::judge(model, e));
    }
}
BENCHMARK(bm_judge_ptwalk2);

}  // namespace
