/// \file
/// Shared helpers for the paper-reproduction bench binaries: environment
/// knobs, uniform headers so bench output is self-describing, and a tiny
/// JSON emitter so the perf trajectory lands in machine-readable
/// BENCH_*.json files (see docs/performance.md).
#pragma once

#include <cinttypes>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "synth/engine.h"
#include "tool_args.h"

namespace transform::bench {

/// Version of the flat BENCH_*.json layout written by write_json, stamped
/// into every record as "bench_schema_version" so the CI regression gate
/// (tools/bench_compare.py) can refuse to diff records whose layout
/// drifted instead of silently comparing renamed keys. Bump on any key
/// addition/removal/rename in a bench's record.
///
/// v2: the substrate record gained the judge-loop allocation ratio
/// (minimality_allocs_per_witness) and the incremental-SAT structure-base
/// economy (sat_incremental_bases_built / _bases_reused /
/// _base_builds_per_program).
/// v3: the substrate record gained the phase-attributed allocation
/// breakdown (sat_allocs_per_phase_<phase>, one key per obs::Phase).
inline constexpr int kBenchSchemaVersion = 3;

/// The determinism contract's observable, shared by the scaling and
/// substrate benches: canonical keys, order, sizes and (optionally) the
/// violated-axiom lists across every suite of a sweep point. Witness
/// *selection* is backend-dependent (first qualifying witness in that
/// backend's enumeration order), so cross-backend comparisons drop the
/// violated lists while cross-jobs comparisons keep them.
inline std::string
suite_fingerprint(const std::vector<synth::SuiteResult>& suites,
                  bool include_violated = true)
{
    std::string fp;
    for (const synth::SuiteResult& suite : suites) {
        fp += suite.axiom;
        fp += ':';
        for (const synth::SynthesizedTest& test : suite.tests) {
            fp += test.canonical_key;
            fp += '#';
            fp += std::to_string(test.size);
            if (include_violated) {
                for (const std::string& axiom : test.violated) {
                    fp += ',';
                    fp += axiom;
                }
            }
            fp += '|';
        }
        fp += '\n';
    }
    return fp;
}

/// Reads an integer knob from the environment (bounds, budgets). Malformed
/// values are a hard error, not a silent fallback: the strict
/// std::from_chars parsing is shared with the tools' flag validation
/// (tools/tool_args.h), so `TRANSFORM_SCALING_BOUND=8x` aborts the bench
/// instead of quietly running the default workload.
inline int
env_int(const char* name, int fallback)
{
    const char* value = std::getenv(name);
    if (value == nullptr) {
        return fallback;
    }
    long long parsed = 0;
    if (!tools::parse_int(value, INT_MIN, INT_MAX, &parsed)) {
        std::fprintf(stderr,
                     "%s takes a decimal integer, got '%s'\n", name, value);
        std::exit(2);
    }
    return static_cast<int>(parsed);
}

/// Prints the standard bench banner.
inline void
banner(const char* experiment, const char* paper_artifact,
       const char* expectation)
{
    std::printf("==============================================================\n");
    std::printf("experiment : %s\n", experiment);
    std::printf("reproduces : %s\n", paper_artifact);
    std::printf("expected   : %s\n", expectation);
    std::printf("==============================================================\n");
}

/// PASS/FAIL line for shape checks.
inline bool
check(const char* what, bool ok)
{
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    return ok;
}

/// One key/value pair of a flat JSON object; the value is stored
/// pre-rendered (numbers verbatim, strings/booleans quoted/encoded by the
/// j* constructors below).
using JsonPair = std::pair<std::string, std::string>;

inline JsonPair
jnum(const std::string& key, double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    return {key, buffer};
}

inline JsonPair
jint(const std::string& key, std::uint64_t value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
    return {key, buffer};
}

inline JsonPair
jbool(const std::string& key, bool value)
{
    return {key, value ? "true" : "false"};
}

inline JsonPair
jstr(const std::string& key, const std::string& value)
{
    std::string out = "\"";
    for (const char c : value) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out.push_back(c);
        }
    }
    out.push_back('"');
    return {key, out};
}

/// Writes the pairs as one flat JSON object to \p path (plus a note on
/// stdout so bench logs say where the machine-readable copy went).
/// Returns false (after a stderr note) when the file cannot be written.
inline bool
write_json(const std::string& path, const std::vector<JsonPair>& pairs)
{
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fputs("{\n", file);
    std::fprintf(file, "  \"bench_schema_version\": %d%s\n",
                 kBenchSchemaVersion, pairs.empty() ? "" : ",");
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        std::fprintf(file, "  \"%s\": %s%s\n", pairs[i].first.c_str(),
                     pairs[i].second.c_str(),
                     i + 1 < pairs.size() ? "," : "");
    }
    std::fputs("}\n", file);
    std::fclose(file);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

}  // namespace transform::bench
