/// \file
/// Shared helpers for the paper-reproduction bench binaries: environment
/// knobs and uniform headers so bench_output is self-describing.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace transform::bench {

/// Reads an integer knob from the environment (bounds, budgets).
inline int
env_int(const char* name, int fallback)
{
    const char* value = std::getenv(name);
    if (value == nullptr) {
        return fallback;
    }
    try {
        return std::stoi(value);
    } catch (...) {
        return fallback;
    }
}

/// Prints the standard bench banner.
inline void
banner(const char* experiment, const char* paper_artifact,
       const char* expectation)
{
    std::printf("==============================================================\n");
    std::printf("experiment : %s\n", experiment);
    std::printf("reproduces : %s\n", paper_artifact);
    std::printf("expected   : %s\n", expectation);
    std::printf("==============================================================\n");
}

/// PASS/FAIL line for shape checks.
inline bool
check(const char* what, bool ok)
{
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    return ok;
}

}  // namespace transform::bench
