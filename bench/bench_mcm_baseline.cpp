/// \file
/// Reproduces the section VI-A baseline comparison: prior-work MCM litmus
/// synthesis for x86-TSO saturates (its sc_per_loc suite stops growing at
/// about 10 programs), while the MTM's richer event vocabulary keeps
/// producing new ELTs at every bound. We run our engine in MCM mode (no VM
/// events) over x86-TSO and in MTM mode over x86t_elt and print both
/// sc_per_loc series.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "mtm/model.h"
#include "synth/engine.h"

int
main()
{
    using namespace transform;
    const int max_bound = bench::env_int("TRANSFORM_MCM_BOUND", 6);
    const int budget = bench::env_int("TRANSFORM_CELL_BUDGET", 120);
    bench::banner("mcm_baseline", "section VI-A baseline claim",
                  "x86-TSO sc_per_loc synthesis saturates around 10 tests; "
                  "x86t_elt keeps growing");

    const mtm::Model tso = mtm::x86tso();
    const mtm::Model mtm_model = mtm::x86t_elt();

    std::printf("%-22s", "suite \\ bound");
    for (int bound = 2; bound <= max_bound; ++bound) {
        std::printf("%8d", bound);
    }
    std::printf("\n");

    std::vector<std::size_t> mcm_counts;
    std::printf("%-22s", "x86-TSO sc_per_loc");
    for (int bound = 2; bound <= max_bound; ++bound) {
        synth::SynthesisOptions opt;
        opt.min_bound = 2;
        opt.bound = bound;
        opt.max_threads = 2;
        opt.max_vas = 2;
        opt.time_budget_seconds = budget;
        const auto suite = synth::synthesize_suite(tso, "sc_per_loc", opt);
        mcm_counts.push_back(suite.tests.size());
        std::printf("%8zu", suite.tests.size());
        std::fflush(stdout);
    }
    std::printf("\n");

    std::vector<std::size_t> mtm_counts;
    std::printf("%-22s", "x86t_elt sc_per_loc");
    for (int bound = 2; bound <= max_bound; ++bound) {
        synth::SynthesisOptions opt;
        opt.min_bound = 2;
        opt.bound = bound;
        opt.max_threads = 2;
        opt.max_vas = 2;
        opt.time_budget_seconds = budget;
        const auto suite = synth::synthesize_suite(mtm_model, "sc_per_loc", opt);
        mtm_counts.push_back(suite.tests.size());
        std::printf("%8zu", suite.tests.size());
        std::fflush(stdout);
    }
    std::printf("\n\n");

    bool ok = true;
    ok = bench::check("x86-TSO sc_per_loc saturates (last two bounds equal, "
                      "near 10 tests)",
                      mcm_counts.size() >= 2 &&
                          mcm_counts[mcm_counts.size() - 1] ==
                              mcm_counts[mcm_counts.size() - 2] &&
                          mcm_counts.back() <= 16) && ok;
    ok = bench::check("x86t_elt sc_per_loc still growing at the top bound",
                      mtm_counts.back() > mtm_counts[mtm_counts.size() - 2]) &&
         ok;
    ok = bench::check("MTM suite larger than MCM suite at the top bound",
                      mtm_counts.back() > mcm_counts.back()) && ok;

    std::printf("\nmcm_baseline overall: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
