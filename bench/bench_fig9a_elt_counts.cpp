/// \file
/// Reproduces Fig. 9a: the number of ELT programs synthesized in each
/// per-axiom suite of x86t_elt, by instruction bound. The paper synthesizes
/// under a one-week timeout; this run sweeps bounds
/// 4..TRANSFORM_FIG9_BOUND (default 8) with TRANSFORM_CELL_BUDGET seconds
/// (default 120) per (axiom, bound) cell. Expected shapes: counts grow with
/// the bound; sc_per_loc is the largest suite at every bound; the
/// tlb_causality suite stays tiny (the paper attributes exactly 5 of its
/// 140 ELTs to tlb_causality); the union comfortably exceeds 100 unique
/// ELTs at the largest bound.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mtm/model.h"
#include "synth/engine.h"

int
main()
{
    using namespace transform;
    const int max_bound = bench::env_int("TRANSFORM_FIG9_BOUND", 8);
    const int budget = bench::env_int("TRANSFORM_CELL_BUDGET", 120);
    bench::banner("fig9a_elt_counts", "Fig. 9a",
                  "per-axiom suite sizes grow with bound; sc_per_loc largest; "
                  "tlb_causality ~5; >100 unique ELTs at the top bound");
    std::printf("sweep: bounds 4..%d, %ds per cell "
                "(TRANSFORM_FIG9_BOUND / TRANSFORM_CELL_BUDGET)\n\n",
                max_bound, budget);

    const mtm::Model model = mtm::x86t_elt();
    const auto axioms = mtm::x86t_elt_axiom_names();

    std::printf("%-15s", "axiom \\ bound");
    for (int bound = 4; bound <= max_bound; ++bound) {
        std::printf("%8d", bound);
    }
    std::printf("\n");

    std::map<std::string, std::vector<synth::SuiteResult>> results;
    for (const auto& axiom : axioms) {
        std::printf("%-15s", axiom.c_str());
        for (int bound = 4; bound <= max_bound; ++bound) {
            synth::SynthesisOptions opt;
            opt.min_bound = 4;
            opt.bound = bound;
            opt.max_threads = 2;
            opt.max_vas = 2;
            opt.max_fresh_pas = 1;
            opt.time_budget_seconds = budget;
            const auto suite = synth::synthesize_suite(model, axiom, opt);
            std::printf("%7zu%c", suite.tests.size(),
                        suite.complete ? ' ' : '*');
            std::fflush(stdout);
            results[axiom].push_back(suite);
        }
        std::printf("\n");
    }
    std::printf("(*: cell hit its time budget — counts are a lower bound)\n\n");

    // Union of unique ELT programs per bound (the paper's "140 unique ELTs"
    // headline corresponds to the largest completed bound).
    std::printf("%-15s", "unique union");
    std::vector<int> unions;
    for (int i = 0; i <= max_bound - 4; ++i) {
        std::set<std::string> keys;
        for (const auto& axiom : axioms) {
            for (const auto& test : results[axiom][i].tests) {
                keys.insert(test.canonical_key);
            }
        }
        unions.push_back(static_cast<int>(keys.size()));
        std::printf("%8d", unions.back());
    }
    std::printf("\n\n");

    bool ok = true;
    for (const auto& axiom : axioms) {
        const auto& per_bound = results[axiom];
        bool monotone = true;
        for (std::size_t i = 1; i < per_bound.size(); ++i) {
            monotone = monotone &&
                       per_bound[i].tests.size() >= per_bound[i - 1].tests.size();
        }
        ok = bench::check((axiom + " counts monotone in bound").c_str(),
                          monotone) && ok;
    }
    for (std::size_t i = 0; i < results["sc_per_loc"].size(); ++i) {
        bool largest = true;
        for (const auto& axiom : axioms) {
            largest = largest && results["sc_per_loc"][i].tests.size() >=
                                     results[axiom][i].tests.size();
        }
        if (!largest) {
            ok = bench::check("sc_per_loc largest at every bound", false);
            break;
        }
        if (i + 1 == results["sc_per_loc"].size()) {
            ok = bench::check("sc_per_loc largest at every bound", true) && ok;
        }
    }
    ok = bench::check("tlb_causality suite stays small (<= 8)",
                      results["tlb_causality"].back().tests.size() <= 8) && ok;
    if (max_bound >= 8) {
        ok = bench::check("over 100 unique ELTs at the top bound",
                          unions.back() > 100) && ok;
    }
    ok = bench::check("rmw_atomicity minimum bound is 7 (paper: 4..7 range)",
                      max_bound < 7 ||
                          (results["rmw_atomicity"][2].tests.empty() &&
                           !results["rmw_atomicity"][3].tests.empty())) && ok;

    std::printf("\nfig9a overall: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
