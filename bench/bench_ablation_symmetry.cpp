/// \file
/// Ablation for the symmetry reduction / deduplication stage (section IV-C;
/// the Fig. 9b caption credits symmetry reduction for making 10-instruction
/// synthesis practical). The skeleton generator is already near-canonical
/// (sorted thread signatures, first-use address numbering), so the residual
/// symmetry shows up as isomorphic programs that canonical-form dedup skips
/// before the expensive execution-space judgement. With dedup disabled the
/// engine re-enumerates and re-judges those programs' executions; the
/// resulting unique suite must be identical.
#include <cstdio>
#include <set>

#include "bench_common.h"
#include "mtm/model.h"
#include "synth/canonical.h"
#include "synth/engine.h"

int
main()
{
    using namespace transform;
    const int bound = bench::env_int("TRANSFORM_ABLATION_BOUND", 7);
    const int budget = bench::env_int("TRANSFORM_CELL_BUDGET", 300);
    bench::banner("ablation_symmetry", "section IV-C / Fig. 9b caption",
                  "canonical-form dedup skips isomorphic programs before "
                  "judging; disabling it wastes execution-space work but "
                  "must not change the unique suite");

    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions with_dedup;
    with_dedup.min_bound = 4;
    with_dedup.bound = bound;
    with_dedup.max_threads = 2;
    with_dedup.max_vas = 2;
    with_dedup.time_budget_seconds = budget;
    synth::SynthesisOptions without_dedup = with_dedup;
    without_dedup.dedup = false;

    const auto on = synth::synthesize_suite(model, "sc_per_loc", with_dedup);
    const auto off = synth::synthesize_suite(model, "sc_per_loc", without_dedup);

    std::set<std::string> unique_on;
    for (const auto& test : on.tests) {
        unique_on.insert(test.canonical_key);
    }
    std::set<std::string> unique_off;
    for (const auto& test : off.tests) {
        unique_off.insert(test.canonical_key);
    }

    std::printf("\nsc_per_loc at bound %d:\n", bound);
    std::printf("%-22s %8s %10s %14s %14s %10s\n", "dedup", "tests",
                "unique", "progs judged", "executions", "secs");
    std::printf("%-22s %8zu %10zu %14llu %14llu %10.3f\n",
                "on (paper pipeline)", on.tests.size(), unique_on.size(),
                static_cast<unsigned long long>(on.programs_considered -
                                                on.duplicates_rejected),
                static_cast<unsigned long long>(on.executions_considered),
                on.seconds);
    std::printf("%-22s %8zu %10zu %14llu %14llu %10.3f\n", "off (ablation)",
                off.tests.size(), unique_off.size(),
                static_cast<unsigned long long>(off.programs_considered),
                static_cast<unsigned long long>(off.executions_considered),
                off.seconds);
    std::printf("isomorphic programs skipped by dedup: %llu\n",
                static_cast<unsigned long long>(on.duplicates_rejected));

    bool ok = true;
    ok = bench::check("dedup skips isomorphic programs",
                      on.duplicates_rejected > 0) && ok;
    ok = bench::check("dedup-off explores at least as many executions",
                      off.executions_considered >= on.executions_considered) &&
         ok;
    ok = bench::check("identical unique suites", unique_on == unique_off) && ok;

    std::printf("\nablation_symmetry overall: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
