/// \file
/// Ablation for the design choice of section III-A2: TransForm models dirty
/// bit updates as a single Write rather than as the RMW they are on real
/// hardware, "reducing the number of instructions required to synthesize
/// programs with Writes from three to two" (per write, beyond the write
/// itself). We synthesize the sc_per_loc suite at a fixed bound both ways
/// and report the cost of the RMW model: the same-budget suite shrinks
/// (every store burns one more instruction) and/or the program space
/// explored per bound grows.
#include <cstdio>

#include "bench_common.h"
#include "mtm/model.h"
#include "synth/engine.h"

int
main()
{
    using namespace transform;
    const int bound = bench::env_int("TRANSFORM_ABLATION_BOUND", 7);
    const int budget = bench::env_int("TRANSFORM_CELL_BUDGET", 120);
    bench::banner("ablation_dirtybit", "section III-A2 design choice",
                  "modelling the dirty-bit update as an RMW makes stores "
                  "cost one more event: fewer tests fit a fixed bound");

    const mtm::Model model = mtm::x86t_elt();
    struct Row {
        const char* label;
        bool as_rmw;
        std::size_t tests = 0;
        std::uint64_t programs = 0;
        double seconds = 0;
    } rows[2] = {{"dirty bit = Write (paper)", false},
                 {"dirty bit = RMW (ablation)", true}};

    for (Row& row : rows) {
        synth::SynthesisOptions opt;
        opt.min_bound = 4;
        opt.bound = bound;
        opt.max_threads = 2;
        opt.max_vas = 2;
        opt.dirty_bit_as_rmw = row.as_rmw;
        opt.time_budget_seconds = budget;
        const auto suite = synth::synthesize_suite(model, "sc_per_loc", opt);
        row.tests = suite.tests.size();
        row.programs = suite.programs_considered;
        row.seconds = suite.seconds;
    }

    std::printf("\nsc_per_loc suite at bound %d:\n", bound);
    std::printf("%-28s %8s %12s %10s\n", "model", "tests", "programs", "secs");
    for (const Row& row : rows) {
        std::printf("%-28s %8zu %12llu %10.3f\n", row.label, row.tests,
                    static_cast<unsigned long long>(row.programs), row.seconds);
    }

    bool ok = true;
    ok = bench::check("Write model yields at least as many tests in budget",
                      rows[0].tests >= rows[1].tests) && ok;
    ok = bench::check("RMW model still finds store tests eventually",
                      rows[1].tests > 0) && ok;

    std::printf("\nablation_dirtybit overall: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
