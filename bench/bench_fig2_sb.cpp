/// \file
/// Reproduces Fig. 2 of the paper: the store-buffering (sb) test in three
/// guises — the MCM litmus test (permitted under x86-TSO), the ELT
/// expansion with distinct physical frames (still permitted under
/// x86t_elt), and the ELT where a PTE write aliases both VAs to one frame
/// (now forbidden: a coherence violation).
#include <cstdio>

#include "bench_common.h"
#include "elt/derive.h"
#include "elt/fixtures.h"
#include "elt/printer.h"
#include "mtm/model.h"

int
main()
{
    using namespace transform;
    bench::banner("fig2_sb", "Fig. 2 (a/b/c)",
                  "(a) permitted under x86-TSO; (b) permitted under x86t_elt; "
                  "(c) forbidden under x86t_elt via sc_per_loc");

    const mtm::Model tso = mtm::x86tso();
    const mtm::Model mtm_model = mtm::x86t_elt();
    bool all = true;

    {
        const auto e = elt::fixtures::fig2a_sb_mcm();
        std::printf("\n--- Fig. 2a: sb, MCM view ---\n%s",
                    elt::program_to_string(e.program).c_str());
        const bool permitted = tso.permits(e);
        std::printf("verdict under x86-TSO: %s\n",
                    permitted ? "PERMITTED" : "FORBIDDEN");
        all = bench::check("fig2a permitted", permitted) && all;
    }
    {
        const auto e = elt::fixtures::fig2b_sb_elt();
        std::printf("\n--- Fig. 2b: sb as ELT, distinct frames ---\n%s",
                    elt::program_to_string(e.program).c_str());
        const bool permitted = mtm_model.permits(e);
        std::printf("verdict under x86t_elt: %s\n",
                    permitted ? "PERMITTED" : "FORBIDDEN");
        all = bench::check("fig2b permitted", permitted) && all;
    }
    {
        const auto e = elt::fixtures::fig2c_sb_elt_aliased();
        std::printf("\n--- Fig. 2c: sb as ELT, x and y aliased to PA a ---\n%s",
                    elt::program_to_string(e.program).c_str());
        const auto violated = mtm_model.violated_axioms(e);
        std::printf("verdict under x86t_elt: %s (",
                    violated.empty() ? "PERMITTED" : "FORBIDDEN");
        for (const auto& axiom : violated) {
            std::printf(" %s", axiom.c_str());
        }
        std::printf(" )\n");
        bool sc_per_loc = false;
        for (const auto& axiom : violated) {
            sc_per_loc = sc_per_loc || axiom == "sc_per_loc";
        }
        all = bench::check("fig2c forbidden via sc_per_loc", sc_per_loc) && all;
    }

    std::printf("\nfig2_sb overall: %s\n", all ? "PASS" : "FAIL");
    return all ? 0 : 1;
}
