/// \file
/// Reproduces the section VI-B comparison against the hand-written
/// COATCheck ELT suite (reconstructed — see DESIGN.md): of 40 tests, 9 use
/// unsupported IPI kinds, 9 fail the spanning criteria, and the 22 relevant
/// tests split into 7 category-1 ELTs (synthesized verbatim; several are
/// executions of the same program, so they match fewer synthesized
/// programs) and 15 category-2 ELTs (supersets reducible to minimal,
/// synthesizable ELTs).
#include <cstdio>

#include "bench_common.h"
#include "compare/compare.h"
#include "mtm/model.h"

int
main()
{
    using namespace transform;
    bench::banner("vi_b_comparison", "section VI-B",
                  "40 tests -> 9 unsupported-IPI + 9 not-spanning + "
                  "7 verbatim + 15 reducible; verbatim tests match fewer "
                  "distinct synthesized programs");

    const mtm::Model model = mtm::x86t_elt();
    const auto report = compare::compare_suite(model, compare::coatcheck_suite());

    std::printf("\n%-18s %s\n", "test", "category");
    for (const auto& t : report.tests) {
        std::printf("%-18s %s", t.name.c_str(),
                    compare::category_name(t.category));
        if (!t.removed.empty()) {
            std::printf("  (reduced by removing %zu instruction%s)",
                        t.removed.size(), t.removed.size() == 1 ? "" : "s");
        }
        std::printf("\n");
    }

    std::printf("\nsummary (paper in parentheses):\n");
    std::printf("  total              %zu (40)\n", report.tests.size());
    std::printf("  unsupported IPI    %d (9)\n", report.unsupported_ipi);
    std::printf("  not spanning       %d (9)\n", report.not_spanning);
    std::printf("  relevant           %d (22)\n", report.relevant);
    std::printf("  category 1         %d (7)\n", report.verbatim);
    std::printf("  category 2         %d (15)\n", report.reducible);
    std::printf("  matched programs   %d (4)\n", report.matched_programs);

    bool ok = true;
    ok = bench::check("40 tests", report.tests.size() == 40) && ok;
    ok = bench::check("9 unsupported IPI", report.unsupported_ipi == 9) && ok;
    ok = bench::check("9 not spanning", report.not_spanning == 9) && ok;
    ok = bench::check("22 relevant", report.relevant == 22) && ok;
    ok = bench::check("7 category-1 (verbatim)", report.verbatim == 7) && ok;
    ok = bench::check("15 category-2 (reducible)", report.reducible == 15) && ok;
    ok = bench::check("verbatim ELTs collapse onto fewer programs",
                      report.matched_programs < report.verbatim) && ok;

    std::printf("\nvi_b_comparison overall: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
