/// \file
/// The paper's running example (Fig. 2): how address translation turns the
/// permitted store-buffering (sb) litmus test into a forbidden one.
///
/// Walks through three views of the same user-level program:
///  (a) the MCM view — plain x86-TSO, permitted;
///  (b) the ELT view with distinct physical frames — still permitted;
///  (c) the ELT view where a PTE write aliases both VAs to one frame —
///      a coherence violation, forbidden.
#include <cstdio>

#include "elt/derive.h"
#include "elt/fixtures.h"
#include "elt/printer.h"
#include "mtm/model.h"

namespace {

void
show(const char* title, const transform::elt::Execution& execution,
     const transform::mtm::Model& model)
{
    using namespace transform;
    std::printf("=== %s ===\n", title);
    const elt::DerivedRelations derived =
        elt::derive(execution, model.derive_options());
    std::printf("%s", elt::execution_to_string(execution, derived).c_str());
    const auto violated = model.violated_axioms(execution);
    if (violated.empty()) {
        std::printf("verdict under %s: PERMITTED\n\n", model.name().c_str());
    } else {
        std::printf("verdict under %s: FORBIDDEN (", model.name().c_str());
        for (const auto& axiom : violated) {
            std::printf(" %s", axiom.c_str());
        }
        std::printf(" )\n\n");
    }
}

}  // namespace

int
main()
{
    using namespace transform;
    show("Fig. 2a — sb, consistency view",
         elt::fixtures::fig2a_sb_mcm(), mtm::x86tso());
    show("Fig. 2b — sb as an ELT, x and y in distinct frames",
         elt::fixtures::fig2b_sb_elt(), mtm::x86t_elt());
    show("Fig. 2c — sb as an ELT, WPTE aliases y onto x's frame",
         elt::fixtures::fig2c_sb_elt_aliased(), mtm::x86t_elt());
    std::printf(
        "Takeaway: the legality of an execution cannot be judged from the\n"
        "user-level instructions alone — the transistency events (page\n"
        "walks, dirty-bit updates, PTE writes, INVLPGs) carry the aliasing\n"
        "information that flips (a)'s verdict in (c).\n");
    return 0;
}
