/// \file
/// Explores the execution space of one ELT program: enumerates every
/// well-formed candidate execution (with both backends — the explicit
/// enumerator and the SAT/relational pipeline), classifies each as
/// permitted or forbidden under x86t_elt, and prints the tally per violated
/// axiom. This is the per-program building block the synthesis engine
/// iterates.
#include <cstdio>
#include <map>
#include <string>

#include "elt/derive.h"
#include "elt/fixtures.h"
#include "elt/printer.h"
#include "mtm/encoding.h"
#include "mtm/model.h"
#include "synth/exec_enum.h"

int
main()
{
    using namespace transform;
    const mtm::Model model = mtm::x86t_elt();

    // The dirtybit3 program (Fig. 10b): rich enough to have permitted and
    // forbidden outcomes.
    const elt::Program program = elt::fixtures::fig10b_dirtybit3().program;
    std::printf("program under exploration (dirtybit3, Fig. 10b):\n%s\n",
                elt::program_to_string(program).c_str());

    int permitted = 0;
    int forbidden = 0;
    std::map<std::string, int> by_axiom;
    synth::for_each_execution(program, true, [&](const elt::Execution& e) {
        const auto violated = model.violated_axioms(e);
        if (violated.empty()) {
            ++permitted;
        } else {
            ++forbidden;
            for (const auto& axiom : violated) {
                ++by_axiom[axiom];
            }
        }
        return true;
    });

    std::printf("executions (explicit enumerator): %d permitted, %d forbidden\n",
                permitted, forbidden);
    for (const auto& [axiom, count] : by_axiom) {
        std::printf("  %-16s violated in %d executions\n", axiom.c_str(),
                    count);
    }

    // Cross-check with the SAT/relational backend (the Alloy/Kodkod-style
    // pipeline of the paper).
    mtm::ProgramEncoding encoding(program, &model);
    const auto all = encoding.enumerate();
    std::printf("\nexecutions (SAT backend): %zu total\n", all.size());
    std::printf("  encoding: %d variables, %d circuit nodes\n",
                encoding.stats().variables, encoding.stats().circuit_nodes);
    if (static_cast<int>(all.size()) == permitted + forbidden) {
        std::printf("  backends agree on the execution-space size.\n");
    } else {
        std::printf("  MISMATCH between backends!\n");
        return 1;
    }
    return 0;
}
