/// \file
/// Quickstart: build an enhanced litmus test (ELT) by hand, derive its
/// Table-I relations, and judge it against the x86t_elt memory transistency
/// model.
///
/// The test is ptwalk2 (Fig. 10a of the TransForm paper): a PTE write
/// remaps VA x, invokes an INVLPG, and a later read of x nevertheless
/// translates through the stale mapping. The outcome is forbidden.
#include <cstdio>

#include "elt/derive.h"
#include "elt/printer.h"
#include "elt/program.h"
#include "elt/serialize.h"
#include "mtm/model.h"

int
main()
{
    using namespace transform;

    // 1. Write the program with the builder. VA x is index 0; its PTE lives
    //    at the dedicated location pte(x) ("z" in the paper's figures); PA
    //    indices 0,1,... print as a,b,...
    elt::ProgramBuilder builder;
    builder.thread();
    const elt::EventId wpte = builder.wpte(/*va=*/0, /*new_pa=*/1);  // x -> b
    builder.invlpg_for(wpte);           // the remap-invoked INVLPG
    const elt::EventId read = builder.R(0);
    const elt::EventId walk = builder.rptw(read);  // the read's page walk
    elt::Program program = builder.build();

    // 2. Pick an execution: the walk reads the *initial* mapping (ignoring
    //    the PTE write), which is exactly the stale-translation outcome.
    elt::Execution execution = elt::Execution::empty_for(std::move(program));
    execution.ptw_src[read] = walk;     // rf_ptw: the read uses the walk
    execution.rf_src[walk] = elt::kNone;  // the walk reads the initial state
    execution.co_pos[wpte] = 0;
    execution.co_pa_pos[wpte] = 0;

    // 3. Derive the full relation set and print it.
    const elt::DerivedRelations derived = elt::derive(execution);
    std::printf("%s\n",
                elt::execution_to_string(execution, derived).c_str());

    // 4. Judge it under the x86t_elt transistency predicate.
    const mtm::Model model = mtm::x86t_elt();
    const auto violated = model.violated_axioms(execution);
    if (violated.empty()) {
        std::printf("verdict: PERMITTED under %s\n", model.name().c_str());
    } else {
        std::printf("verdict: FORBIDDEN under %s — violated axioms:",
                    model.name().c_str());
        for (const auto& axiom : violated) {
            std::printf(" %s", axiom.c_str());
        }
        std::printf("\n");
    }

    // 5. Serialize to XML (the format the synthesis pipeline emits).
    std::printf("\nXML form:\n%s",
                elt::execution_to_xml(execution, "ptwalk2").c_str());
    return 0;
}
