/// \file
/// Defining your own MTM with the TransForm vocabulary: the library ships
/// x86t_elt, but the axiom set is open. This example uses sc_t_elt — a
/// sequentially-consistent base MCM with the same transistency axioms — and
/// shows (1) an outcome on which the two models disagree and (2) that
/// synthesis against the custom model yields a different (larger) suite,
/// because SC forbids more.
#include <cstdio>

#include "elt/fixtures.h"
#include "elt/printer.h"
#include "mtm/model.h"
#include "synth/engine.h"

int
main()
{
    using namespace transform;
    const mtm::Model x86 = mtm::x86t_elt();
    const mtm::Model sc = mtm::sc_t_elt();

    // Store-buffering ELT outcome (both reads stale): TSO's store buffer
    // permits it; SC does not.
    elt::ProgramBuilder b;
    b.thread();
    const auto w0 = b.W(0);
    const auto wdb0 = b.wdb(w0);
    const auto rptw0 = b.rptw(w0);
    const auto r1 = b.R(1);
    const auto rptw1 = b.rptw(r1);
    b.thread();
    const auto w2 = b.W(1);
    const auto wdb2 = b.wdb(w2);
    const auto rptw2 = b.rptw(w2);
    const auto r3 = b.R(0);
    const auto rptw3 = b.rptw(r3);
    elt::Execution e = elt::Execution::empty_for(b.build());
    e.ptw_src[w0] = rptw0;
    e.ptw_src[r1] = rptw1;
    e.ptw_src[w2] = rptw2;
    e.ptw_src[r3] = rptw3;
    e.rf_src[rptw0] = wdb0;
    e.rf_src[rptw2] = wdb2;
    e.rf_src[rptw1] = elt::kNone;
    e.rf_src[rptw3] = elt::kNone;
    e.rf_src[r1] = elt::kNone;  // stale read of y
    e.rf_src[r3] = elt::kNone;  // stale read of x
    e.co_pos[w0] = 0;
    e.co_pos[w2] = 0;
    e.co_pos[wdb0] = 0;
    e.co_pos[wdb2] = 0;

    std::printf("sb ELT, both reads stale:\n%s\n",
                elt::program_to_string(e.program).c_str());
    std::printf("under %-9s : %s\n", x86.name().c_str(),
                x86.permits(e) ? "PERMITTED" : "FORBIDDEN");
    std::printf("under %-9s : %s\n\n", sc.name().c_str(),
                sc.permits(e) ? "PERMITTED" : "FORBIDDEN");

    // Synthesis against each model: SC's causality axiom admits more
    // violations, so its per-axiom suite is at least as large.
    synth::SynthesisOptions opt;
    opt.min_bound = 4;
    opt.bound = 6;
    opt.max_threads = 2;
    opt.max_vas = 2;
    const auto tso_suite = synth::synthesize_suite(x86, "causality", opt);
    const auto sc_suite = synth::synthesize_suite(sc, "causality", opt);
    std::printf("causality suite up to 6 instructions:\n");
    std::printf("  %-9s : %zu unique minimal ELTs\n", x86.name().c_str(),
                tso_suite.tests.size());
    std::printf("  %-9s : %zu unique minimal ELTs\n", sc.name().c_str(),
                sc_suite.tests.size());
    std::printf("\nSC forbids strictly more, so it needs at least as many "
                "tests: %s\n",
                sc_suite.tests.size() >= tso_suite.tests.size() ? "yes"
                                                                : "NO (bug?)");
    return 0;
}
