/// \file
/// Runs the synthesis engine end to end, as in section V-B: pick a target
/// axiom of x86t_elt, synthesize every minimal, interesting, unique ELT up
/// to an instruction bound, and print the suite.
///
/// Usage: example_synthesize_suite [axiom] [bound]
///   axiom: sc_per_loc | rmw_atomicity | causality | invlpg | tlb_causality
///          (default invlpg)
///   bound: instruction bound, counting ghosts (default 5)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "elt/derive.h"
#include "elt/printer.h"
#include "mtm/model.h"
#include "synth/engine.h"

int
main(int argc, char** argv)
{
    using namespace transform;
    const std::string axiom = argc > 1 ? argv[1] : "invlpg";
    const int bound = argc > 2 ? std::atoi(argv[2]) : 5;

    const mtm::Model model = mtm::x86t_elt();
    if (model.axiom(axiom) == nullptr) {
        std::fprintf(stderr, "unknown axiom '%s'\n", axiom.c_str());
        return 1;
    }

    synth::SynthesisOptions options;
    options.min_bound = 4;
    options.bound = bound;
    options.max_threads = 2;
    options.max_vas = 2;
    options.max_fresh_pas = 1;

    std::printf("synthesizing the %s suite up to %d instructions...\n\n",
                axiom.c_str(), bound);
    const synth::SuiteResult suite =
        synth::synthesize_suite(model, axiom, options);

    for (std::size_t i = 0; i < suite.tests.size(); ++i) {
        const auto& test = suite.tests[i];
        std::printf("--- ELT %zu (%d instructions; violates:", i + 1,
                    test.size);
        for (const auto& name : test.violated) {
            std::printf(" %s", name.c_str());
        }
        std::printf(") ---\n");
        const auto derived =
            elt::derive(test.witness, model.derive_options());
        std::printf("%s\n",
                    elt::execution_to_string(test.witness, derived).c_str());
    }

    std::printf("suite: %zu unique minimal ELTs  |  %llu programs examined, "
                "%llu executions, %.2fs%s\n",
                suite.tests.size(),
                static_cast<unsigned long long>(suite.programs_considered),
                static_cast<unsigned long long>(suite.executions_considered),
                suite.seconds, suite.complete ? "" : "  (time budget hit)");
    return 0;
}
