/// \file
/// Canonical `.mtm` source emission from a parsed ModelSpec — the inverse
/// of spec/parser.h. Printing is canonical (one space between tokens,
/// parentheses only where precedence demands them, one declaration per
/// line), so parse-print-parse reaches a fixed point after one round trip:
/// print(parse(print(parse(s)))) == print(parse(s)) for every valid s.
/// The golden round-trip tests hold every zoo model to that contract.
#pragma once

#include <string>

#include "spec/ast.h"

namespace transform::spec {

/// Renders one expression in canonical concrete syntax.
std::string expr_to_source(const Expr& expr);

/// Renders the whole model file in canonical form.
std::string model_to_source(const ModelSpec& spec);

}  // namespace transform::spec
