/// \file
/// The model registry: one place that resolves `--model <name|path>` for
/// every tool and test.
///
/// Three tiers, searched in order:
///  1. the hardwired C++ builtins (x86tso, x86t_elt, sc_t_elt) — kept as
///     the defaults and as the cross-check oracles for their DSL twins;
///  2. the embedded `.mtm` zoo (the same sources checked in under
///     examples/models/; a golden test keeps file and embedding identical),
///     addressable with or without the `.mtm` suffix — e.g. `sc` or
///     `sc.mtm`;
///  3. the filesystem: anything else is read as a path to a `.mtm` file.
///
/// Parse failures come back as positioned diagnostics
/// (`origin:line:col: error: ...`), which the tools print to stderr before
/// exiting 2 — the tool_args.h strictness convention.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mtm/model.h"

namespace transform::spec {

/// One embedded zoo model: its registry name (the `.mtm` filename), the
/// full source text, and a one-line summary for --list-models.
struct RegistryEntry {
    const char* name;     ///< e.g. "x86t_elt.mtm"
    const char* summary;
    const char* source;
};

/// Every embedded `.mtm` source, in listing order.
const std::vector<RegistryEntry>& registry_entries();

/// A resolved model plus where it came from.
struct ResolvedModel {
    mtm::Model model;
    bool from_spec = false;  ///< true when compiled from a `.mtm` source
    std::string origin;      ///< "builtin", "registry:<name>", or the path
};

/// Resolves \p name_or_path through the three tiers. On failure returns
/// nullopt and sets \p error to a printable message (positioned for parse
/// errors, "unknown model" + the available names otherwise).
std::optional<ResolvedModel> resolve_model(const std::string& name_or_path,
                                           std::string* error);

/// Human-readable listing of every resolvable name (for --list-models).
std::string list_models_text();

}  // namespace transform::spec
