/// \file
/// Abstract syntax for the `.mtm` transistency-model specification language
/// — the cat-style relational-algebra frontend that turns the model zoo
/// into data instead of C++ (in the tradition of herd's `.cat` files).
///
/// A model file names a model, declares its VM-awareness, binds reusable
/// relation definitions with `let`, and states axioms as `acyclic`,
/// `irreflexive` or `empty` conditions over relational expressions built
/// from the Table-I base relations with union `|`, intersection `&`,
/// difference `\`, join `;`, transpose `^-1`, transitive closure `^+`,
/// reflexive-transitive closure `^*`, and identity-on-set brackets `[S]`
/// (domain/range restriction via `[W] ; r ; [R]`). See docs/models.md for
/// the grammar and the catalogue.
///
/// This header is dependency-free (std only): the same AST feeds two
/// compilers — the concrete interpreter over elt::DerivedRelations
/// (spec/eval.h) and the symbolic lowering to rel::RelExpr circuits inside
/// mtm::ProgramEncoding (mtm/encoding.cpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace transform::spec {

/// The base relations an expression can reference — every field of
/// elt::DerivedRelations (Table I plus the auxiliaries the x86t_elt axioms
/// need) and `po_mem`, the extended program order restricted to memory
/// events (ghosts included), which sequential-consistency variants need and
/// which no DerivedRelations field stores directly.
enum class BaseRel {
    kPo,         ///< same-thread sequencing of non-ghost events (transitive)
    kPoLoc,      ///< extended-order pairs at the same coherence class
    kPoMem,      ///< extended-order pairs over memory events (ghosts too)
    kRf,         ///< write -> read (data and PTE locations)
    kRfe,        ///< rf restricted to cross-thread pairs
    kCo,         ///< coherence order per class
    kFr,         ///< read -> co-successors of its source
    kPpo,        ///< TSO preserved program order (po_mem minus W->R)
    kFence,      ///< pairs ordered by an intervening MFENCE
    kRmw,        ///< declared rmw dependencies
    kGhost,      ///< user event -> invoked ghost
    kRfPtw,      ///< page-table walk -> users of its TLB entry
    kRfPa,       ///< Wpte -> accesses using its mapping
    kCoPa,       ///< alias-creation order per PA
    kFrPa,       ///< access -> co_pa-successors of its mapping source
    kFrVa,       ///< access -> later Wptes remapping its VA
    kRemap,      ///< Wpte -> the Invlpgs it invokes
    kPtwSource,  ///< walk's parent -> other users of the walk
};

/// The event classes usable inside identity brackets `[S]`.
enum class EventSet {
    kRead,    ///< R: read-like (Read, Rptw, Rdb)
    kWrite,   ///< W: write-like (Write, Wpte, Wdb)
    kMemory,  ///< M: shared-memory events
    kData,    ///< D: user-facing data accesses (Read, Write)
    kPte,     ///< PTE: accesses of PTE locations (Wpte, Rptw, Wdb, Rdb)
    kFence,   ///< F: MFENCE events
    kWpte,    ///< Wpte: PTE writes (remaps)
    kInvlpg,  ///< Invlpg: TLB invalidations (targeted or full-flush)
    kRptw,    ///< Rptw: page-table walks
    kWdb,     ///< Wdb: dirty-bit updates
    kRdb,     ///< Rdb: dirty-bit reads (RMW-dirty-bit ablation)
    kGhost,   ///< Ghost: hardware-invoked ghost instructions
    kUser,    ///< User: user-facing ISA instructions
};

/// Expression node kinds.
enum class ExprOp {
    kBase,       ///< a Table-I base relation
    kEmpty,      ///< the literal `0` (the empty relation)
    kIdSet,      ///< `[S]`: identity restricted to an event class
    kUnion,      ///< lhs | rhs
    kIntersect,  ///< lhs & rhs
    kMinus,      ///< lhs \ rhs
    kJoin,       ///< lhs ; rhs
    kTranspose,  ///< lhs ^-1
    kClosure,    ///< lhs ^+
    kReflexiveClosure,  ///< lhs ^* (closure unioned with full identity)
    kLetRef,     ///< reference to a `let` binding (lhs = the bound body)
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// One node of a relational expression. Nodes form a DAG: a `let` body is
/// parsed once and every reference shares it through `lhs`.
struct Expr {
    ExprOp op;
    BaseRel base = BaseRel::kPo;      ///< kBase only
    EventSet set = EventSet::kRead;   ///< kIdSet only
    ExprPtr lhs;                      ///< operand (kLetRef: the bound body)
    ExprPtr rhs;                      ///< second operand of binary ops
    std::string let_name;             ///< kLetRef only (for printing)
};

/// The three axiom condition forms of the language.
enum class AxiomForm {
    kAcyclic,      ///< the expression, viewed as a graph, has no cycle
    kIrreflexive,  ///< no (e, e) pair
    kEmpty,        ///< no pair at all
};

/// One axiom: `axiom name "description": form(expr)`.
struct AxiomDef {
    std::string name;
    std::string description;  ///< optional in the source (may be empty)
    AxiomForm form = AxiomForm::kAcyclic;
    ExprPtr expr;
};

/// One `let name = expr` binding, in declaration order.
struct LetDef {
    std::string name;
    ExprPtr expr;
};

/// A parsed `.mtm` model file.
struct ModelSpec {
    std::string name;
    bool vm = true;  ///< `vm on` (default) models transistency; `vm off` MCMs
    std::vector<LetDef> lets;
    std::vector<AxiomDef> axioms;
};

/// Spellings shared by the parser, the printer and the docs.
const char* base_rel_name(BaseRel rel);
const char* event_set_name(EventSet set);
const char* axiom_form_name(AxiomForm form);

}  // namespace transform::spec
