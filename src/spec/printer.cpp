#include "spec/printer.h"

#include <sstream>

namespace transform::spec {

namespace {

/// Binding strength, loosest first. Atoms (base relations, `[S]`, `0`,
/// let references) never need parentheses.
int
level_of(const Expr& e)
{
    switch (e.op) {
    case ExprOp::kUnion:
        return 1;
    case ExprOp::kIntersect:
    case ExprOp::kMinus:
        return 2;
    case ExprOp::kJoin:
        return 3;
    case ExprOp::kTranspose:
    case ExprOp::kClosure:
    case ExprOp::kReflexiveClosure:
        return 4;
    case ExprOp::kBase:
    case ExprOp::kEmpty:
    case ExprOp::kIdSet:
    case ExprOp::kLetRef:
        return 5;
    }
    return 5;
}

void
print(const Expr& e, int min_level, std::ostream& out)
{
    const int level = level_of(e);
    const bool parens = level < min_level;
    if (parens) {
        out << "(";
    }
    switch (e.op) {
    case ExprOp::kUnion:
    case ExprOp::kIntersect:
    case ExprOp::kMinus: {
        // Left-associative: the left child may sit at the same level, the
        // right child must bind strictly tighter to re-parse identically.
        const char* op = e.op == ExprOp::kUnion
                             ? "|"
                             : e.op == ExprOp::kIntersect ? "&" : "\\";
        print(*e.lhs, level, out);
        out << " " << op << " ";
        print(*e.rhs, level + 1, out);
        break;
    }
    case ExprOp::kJoin:
        print(*e.lhs, level, out);
        out << " ; ";
        print(*e.rhs, level + 1, out);
        break;
    case ExprOp::kTranspose:
        print(*e.lhs, level, out);
        out << "^-1";
        break;
    case ExprOp::kClosure:
        print(*e.lhs, level, out);
        out << "^+";
        break;
    case ExprOp::kReflexiveClosure:
        print(*e.lhs, level, out);
        out << "^*";
        break;
    case ExprOp::kBase:
        out << base_rel_name(e.base);
        break;
    case ExprOp::kEmpty:
        out << "0";
        break;
    case ExprOp::kIdSet:
        out << "[" << event_set_name(e.set) << "]";
        break;
    case ExprOp::kLetRef:
        out << e.let_name;
        break;
    }
    if (parens) {
        out << ")";
    }
}

}  // namespace

std::string
expr_to_source(const Expr& expr)
{
    std::ostringstream out;
    print(expr, 0, out);
    return out.str();
}

std::string
model_to_source(const ModelSpec& spec)
{
    std::ostringstream out;
    out << "model " << spec.name << "\n";
    out << "vm " << (spec.vm ? "on" : "off") << "\n";
    if (!spec.lets.empty()) {
        out << "\n";
        for (const LetDef& let : spec.lets) {
            out << "let " << let.name << " = " << expr_to_source(*let.expr)
                << "\n";
        }
    }
    out << "\n";
    for (const AxiomDef& axiom : spec.axioms) {
        out << "axiom " << axiom.name;
        if (!axiom.description.empty()) {
            out << " \"" << axiom.description << "\"";
        }
        out << ": " << axiom_form_name(axiom.form) << "("
            << expr_to_source(*axiom.expr) << ")\n";
    }
    return out.str();
}

}  // namespace transform::spec
