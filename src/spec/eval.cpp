#include "spec/eval.h"

#include <algorithm>

#include "util/logging.h"

namespace transform::spec {

using elt::CycleScratch;
using elt::DerivedRelations;
using elt::Edge;
using elt::EdgeSet;
using elt::EventId;
using elt::EventKind;
using elt::Program;

bool
event_in_set(EventSet set, EventKind kind)
{
    switch (set) {
    case EventSet::kRead:
        return elt::is_read_like(kind);
    case EventSet::kWrite:
        return elt::is_write_like(kind);
    case EventSet::kMemory:
        return elt::is_memory(kind);
    case EventSet::kData:
        return elt::is_data_access(kind);
    case EventSet::kPte:
        return elt::is_pte_access(kind);
    case EventSet::kFence:
        return kind == EventKind::kMfence;
    case EventSet::kWpte:
        return kind == EventKind::kWpte;
    case EventSet::kInvlpg:
        return elt::is_tlb_invalidation(kind);
    case EventSet::kRptw:
        return kind == EventKind::kRptw;
    case EventSet::kWdb:
        return kind == EventKind::kWdb;
    case EventSet::kRdb:
        return kind == EventKind::kRdb;
    case EventSet::kGhost:
        return elt::is_ghost(kind);
    case EventSet::kUser:
        return elt::is_user(kind);
    }
    TF_PANIC("unknown event set");
}

namespace {

/// Pool-slot handles are indices: CycleScratch::spec_pool may reallocate
/// while children evaluate, so references must be re-fetched through the
/// evaluator after any acquire.
using Slot = std::size_t;

struct Evaluator {
    const Program& p;
    const DerivedRelations& d;
    CycleScratch& scratch;
    const int n;

    static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

    /// Pinned results for `let` bodies, keyed by body node. The AST is a
    /// DAG only through lets (the parser shares each body across its
    /// references), so evaluating every distinct body once — pinned below
    /// the expression stack, copied on reference — makes evaluation linear
    /// in the DAG instead of exponential in the let-chain depth.
    std::size_t
    pinned_slot(const Expr* body) const
    {
        for (const auto& [key, slot] : scratch.spec_memo) {
            if (key == body) {
                return slot;
            }
        }
        return kNoSlot;
    }

    /// Evaluates and pins every distinct let body reachable from \p e,
    /// dependencies first (a body may reference earlier lets). Each pinned
    /// slot stays live until the caller unwinds the arena.
    void
    pin_let_bodies(const Expr& e)
    {
        if (e.op == ExprOp::kLetRef) {
            const Expr* body = e.lhs.get();
            if (pinned_slot(body) == kNoSlot) {
                pin_let_bodies(*body);
                const Slot slot = eval(*body);
                scratch.spec_memo.emplace_back(body, slot);
            }
            return;
        }
        if (e.lhs != nullptr) {
            pin_let_bodies(*e.lhs);
        }
        if (e.rhs != nullptr) {
            pin_let_bodies(*e.rhs);
        }
    }

    Slot
    acquire()
    {
        if (scratch.spec_pool_live == scratch.spec_pool.size()) {
            scratch.spec_pool.emplace_back();
        }
        const Slot slot = scratch.spec_pool_live++;
        scratch.spec_pool[slot].clear();
        return slot;
    }

    EdgeSet&
    at(Slot slot)
    {
        return scratch.spec_pool[slot];
    }

    void
    release_to(Slot mark)
    {
        scratch.spec_pool_live = mark;
    }

    static void
    normalize(EdgeSet* edges)
    {
        std::sort(edges->begin(), edges->end());
        edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
    }

    /// The base relation's edges, sorted. po_mem is synthesized from the
    /// program (no DerivedRelations field stores it); everything else is a
    /// copy of the corresponding derived field.
    void
    base_into(BaseRel base, EdgeSet* out)
    {
        const EdgeSet* source = nullptr;
        switch (base) {
        case BaseRel::kPo: source = &d.po; break;
        case BaseRel::kPoLoc: source = &d.po_loc; break;
        case BaseRel::kRf: source = &d.rf; break;
        case BaseRel::kRfe: source = &d.rfe; break;
        case BaseRel::kCo: source = &d.co; break;
        case BaseRel::kFr: source = &d.fr; break;
        case BaseRel::kPpo: source = &d.ppo; break;
        case BaseRel::kFence: source = &d.fence; break;
        case BaseRel::kRmw: source = &d.rmw; break;
        case BaseRel::kGhost: source = &d.ghost; break;
        case BaseRel::kRfPtw: source = &d.rf_ptw; break;
        case BaseRel::kRfPa: source = &d.rf_pa; break;
        case BaseRel::kCoPa: source = &d.co_pa; break;
        case BaseRel::kFrPa: source = &d.fr_pa; break;
        case BaseRel::kFrVa: source = &d.fr_va; break;
        case BaseRel::kRemap: source = &d.remap; break;
        case BaseRel::kPtwSource: source = &d.ptw_source; break;
        case BaseRel::kPoMem:
            for (EventId a = 0; a < n; ++a) {
                if (!elt::is_memory(p.event(a).kind)) {
                    continue;
                }
                for (EventId b = 0; b < n; ++b) {
                    if (a != b && elt::is_memory(p.event(b).kind) &&
                        p.precedes(a, b)) {
                        out->emplace_back(a, b);
                    }
                }
            }
            normalize(out);
            return;
        }
        TF_ASSERT(source != nullptr);
        out->assign(source->begin(), source->end());
        normalize(out);
    }

    /// Evaluates \p e into a freshly acquired slot and returns it. Child
    /// slots are released before returning, so the live-slot high-water
    /// mark tracks expression depth, not node count.
    Slot
    eval(const Expr& e)
    {
        switch (e.op) {
        case ExprOp::kBase: {
            const Slot out = acquire();
            base_into(e.base, &at(out));
            return out;
        }
        case ExprOp::kEmpty:
            return acquire();
        case ExprOp::kIdSet: {
            const Slot out = acquire();
            for (EventId a = 0; a < n; ++a) {
                if (event_in_set(e.set, p.event(a).kind)) {
                    at(out).emplace_back(a, a);
                }
            }
            return out;
        }
        case ExprOp::kUnion: {
            const Slot lhs = eval(*e.lhs);
            const Slot rhs = eval(*e.rhs);
            const Slot out = acquire();
            std::set_union(at(lhs).begin(), at(lhs).end(), at(rhs).begin(),
                           at(rhs).end(), std::back_inserter(at(out)));
            collapse(lhs, out);
            return lhs;
        }
        case ExprOp::kIntersect: {
            const Slot lhs = eval(*e.lhs);
            const Slot rhs = eval(*e.rhs);
            const Slot out = acquire();
            std::set_intersection(at(lhs).begin(), at(lhs).end(),
                                  at(rhs).begin(), at(rhs).end(),
                                  std::back_inserter(at(out)));
            collapse(lhs, out);
            return lhs;
        }
        case ExprOp::kMinus: {
            const Slot lhs = eval(*e.lhs);
            const Slot rhs = eval(*e.rhs);
            const Slot out = acquire();
            std::set_difference(at(lhs).begin(), at(lhs).end(),
                                at(rhs).begin(), at(rhs).end(),
                                std::back_inserter(at(out)));
            collapse(lhs, out);
            return lhs;
        }
        case ExprOp::kJoin: {
            const Slot lhs = eval(*e.lhs);
            const Slot rhs = eval(*e.rhs);
            const Slot out = acquire();
            join_into(at(lhs), at(rhs), &at(out));
            collapse(lhs, out);
            return lhs;
        }
        case ExprOp::kTranspose: {
            const Slot inner = eval(*e.lhs);
            const Slot out = acquire();
            for (const Edge& edge : at(inner)) {
                at(out).emplace_back(edge.second, edge.first);
            }
            normalize(&at(out));
            collapse(inner, out);
            return inner;
        }
        case ExprOp::kClosure: {
            const Slot inner = eval(*e.lhs);
            closure_in_place(inner);
            return inner;
        }
        case ExprOp::kReflexiveClosure: {
            const Slot inner = eval(*e.lhs);
            closure_in_place(inner);
            const Slot ident = acquire();
            for (EventId a = 0; a < n; ++a) {
                at(ident).emplace_back(a, a);
            }
            const Slot out = acquire();
            std::set_union(at(inner).begin(), at(inner).end(),
                           at(ident).begin(), at(ident).end(),
                           std::back_inserter(at(out)));
            collapse(inner, out);
            return inner;
        }
        case ExprOp::kLetRef: {
            const std::size_t pinned = pinned_slot(e.lhs.get());
            if (pinned != kNoSlot) {
                const Slot out = acquire();
                at(out) = at(pinned);
                return out;
            }
            // Unpinned bodies only occur when eval is entered without the
            // pin pass (never through the public entry points).
            return eval(*e.lhs);
        }
        }
        TF_PANIC("unknown expression op");
    }

    /// Moves \p out's contents down into \p dst and releases every slot
    /// above dst — the stack discipline that bounds live slots by depth.
    void
    collapse(Slot dst, Slot out)
    {
        std::swap(at(dst), at(out));
        release_to(dst + 1);
    }

    /// (lhs ; rhs)(a, c) = exists b: lhs(a, b) and rhs(b, c). Both inputs
    /// sorted; rhs rows are located by binary search, the result is
    /// re-normalized once.
    static void
    join_into(const EdgeSet& lhs, const EdgeSet& rhs, EdgeSet* out)
    {
        for (const Edge& l : lhs) {
            auto it = std::lower_bound(
                rhs.begin(), rhs.end(), Edge(l.second, 0),
                [](const Edge& a, const Edge& b) { return a.first < b.first; });
            for (; it != rhs.end() && it->first == l.second; ++it) {
                out->emplace_back(l.first, it->second);
            }
        }
        normalize(out);
    }

    /// Transitive closure by fixpoint: union in (cur ; base) until the edge
    /// count stops growing. Bounded by n iterations (longest simple path).
    void
    closure_in_place(Slot slot)
    {
        const Slot base = acquire();
        at(base) = at(slot);
        const Slot step = acquire();
        for (;;) {
            at(step).clear();
            join_into(at(slot), at(base), &at(step));
            const std::size_t before = at(slot).size();
            const Slot merged = acquire();
            std::set_union(at(slot).begin(), at(slot).end(), at(step).begin(),
                           at(step).end(), std::back_inserter(at(merged)));
            std::swap(at(slot), at(merged));
            release_to(step + 1);
            if (at(slot).size() == before) {
                break;
            }
        }
        release_to(base);
    }
};

}  // namespace

bool
axiom_holds(const AxiomDef& axiom, const Program& program,
            const DerivedRelations& d, CycleScratch* scratch)
{
    CycleScratch local;
    if (scratch == nullptr) {
        scratch = &local;
    }
    const std::size_t mark = scratch->spec_pool_live;
    const std::size_t memo_mark = scratch->spec_memo.size();
    Evaluator eval{program, d, *scratch, program.num_events()};
    eval.pin_let_bodies(*axiom.expr);
    const Slot result = eval.eval(*axiom.expr);
    bool holds = true;
    switch (axiom.form) {
    case AxiomForm::kAcyclic: {
        const EdgeSet* parts[] = {&eval.at(result)};
        holds = !elt::has_cycle(program.num_events(), parts, 1, scratch);
        break;
    }
    case AxiomForm::kIrreflexive:
        for (const Edge& edge : eval.at(result)) {
            if (edge.first == edge.second) {
                holds = false;
                break;
            }
        }
        break;
    case AxiomForm::kEmpty:
        holds = eval.at(result).empty();
        break;
    }
    scratch->spec_memo.resize(memo_mark);
    scratch->spec_pool_live = mark;
    return holds;
}

void
eval_expr(const Expr& expr, const Program& program,
          const DerivedRelations& d, CycleScratch* scratch, EdgeSet* out)
{
    CycleScratch local;
    if (scratch == nullptr) {
        scratch = &local;
    }
    const std::size_t mark = scratch->spec_pool_live;
    const std::size_t memo_mark = scratch->spec_memo.size();
    Evaluator eval{program, d, *scratch, program.num_events()};
    eval.pin_let_bodies(expr);
    const Slot result = eval.eval(expr);
    *out = eval.at(result);
    scratch->spec_memo.resize(memo_mark);
    scratch->spec_pool_live = mark;
}

}  // namespace transform::spec
