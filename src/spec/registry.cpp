#include "spec/registry.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "spec/compile.h"
#include "spec/parser.h"

namespace transform::spec {

namespace {

/// The embedded zoo. Each source is byte-identical to the checked-in file
/// examples/models/<name> (a golden test enforces it); the `+ 1` skips the
/// newline that opens each raw literal for readability.
const std::vector<RegistryEntry> kRegistry = {
    {"x86tso.mtm",
     "x86-TSO MCM (DSL twin of the builtin x86tso)",
     R"MTM(
// x86-TSO, the baseline memory consistency model (paper section II-A):
// per-location coherence, RMW atomicity, and causality over the TSO
// preserved program order. DSL twin of the hardwired mtm::x86tso() —
// the differential tests hold the two to identical synthesized suites.
model x86tso
vm off

let com = rf | co | fr

axiom sc_per_loc "coherence: rf + co + fr + po_loc is acyclic per location":
  acyclic(com | po_loc)
axiom rmw_atomicity "no same-address write intervenes inside an RMW (fr.co & rmw = 0)":
  empty((fr ; co) & rmw)
axiom causality "acyclic(rfe + co + fr + ppo + fence) (TSO ppo)":
  acyclic(rfe | co | fr | ppo | fence)
)MTM" + 1},
    {"x86t_elt.mtm",
     "the paper's estimated x86 MTM (DSL twin of the builtin x86t_elt)",
     R"MTM(
// x86t_elt — the paper's estimated x86 memory transistency model
// (section V): x86-TSO plus the transistency axioms invlpg and
// tlb_causality over the Table-I VM relations. DSL twin of the hardwired
// mtm::x86t_elt() — the differential tests hold the two to identical
// synthesized suites on both backends.
model x86t_elt
vm on

let com = rf | co | fr

axiom sc_per_loc "coherence: rf + co + fr + po_loc is acyclic per location":
  acyclic(com | po_loc)
axiom rmw_atomicity "no same-address write intervenes inside an RMW (fr.co & rmw = 0)":
  empty((fr ; co) & rmw)
axiom causality "acyclic(rfe + co + fr + ppo + fence) (TSO ppo)":
  acyclic(rfe | co | fr | ppo | fence)
axiom invlpg "accesses after an INVLPG use the latest mapping: acyclic(fr_va + ^po + remap)":
  acyclic(fr_va | po | remap)
axiom tlb_causality "diagnostic: acyclic(ptw_source + rf + co + fr)":
  acyclic(ptw_source | com)
)MTM" + 1},
    {"sc_t_elt.mtm",
     "sequentially-consistent MTM (DSL twin of the builtin sc_t_elt)",
     R"MTM(
// sc_t_elt — a sequentially-consistent MTM: the paper's transistency
// vocabulary applied to an SC base model (the "define your own MTM"
// example). The causality axiom preserves the full extended program order
// over memory events (po_mem), ghosts included. DSL twin of the hardwired
// mtm::sc_t_elt().
model sc_t_elt
vm on

let com = rf | co | fr

axiom sc_per_loc "coherence: rf + co + fr + po_loc is acyclic per location":
  acyclic(com | po_loc)
axiom rmw_atomicity "no same-address write intervenes inside an RMW (fr.co & rmw = 0)":
  empty((fr ; co) & rmw)
axiom causality "acyclic(rfe + co + fr + po + fence) (sequential consistency)":
  acyclic(rfe | co | fr | po_mem | fence)
axiom invlpg "accesses after an INVLPG use the latest mapping: acyclic(fr_va + ^po + remap)":
  acyclic(fr_va | po | remap)
axiom tlb_causality "diagnostic: acyclic(ptw_source + rf + co + fr)":
  acyclic(ptw_source | com)
)MTM" + 1},
    {"sc.mtm",
     "sequential consistency as a plain MCM",
     R"MTM(
// Sequential consistency as a plain MCM (no VM modelling): every memory
// event takes effect in the extended program order, so even the classic
// store-buffering (SB) reordering is forbidden. The strongest baseline in
// the zoo and the smallest useful example of a from-scratch model file.
model sc
vm off

axiom sc_per_loc "coherence: rf + co + fr + po_loc is acyclic per location":
  acyclic(rf | co | fr | po_loc)
axiom rmw_atomicity "no same-address write intervenes inside an RMW (fr.co & rmw = 0)":
  empty((fr ; co) & rmw)
axiom causality "acyclic(rfe + co + fr + po_mem + fence) (sequential consistency)":
  acyclic(rfe | co | fr | po_mem | fence)
)MTM" + 1},
    {"pso.mtm",
     "PSO-style MCM: TSO with W->W ordering relaxed",
     R"MTM(
// A PSO-style weakening of x86-TSO: the store buffer may also reorder
// write->write pairs, so the preserved program order drops W->W edges on
// top of TSO's W->R. The ppo_pso definition shows the relaxed-ppo pattern:
// carve pairs out of a stronger order with set brackets and difference.
model pso
vm off

let ppo_pso = ppo \ ([W] ; po_mem ; [W])

axiom sc_per_loc "coherence: rf + co + fr + po_loc is acyclic per location":
  acyclic(rf | co | fr | po_loc)
axiom rmw_atomicity "no same-address write intervenes inside an RMW (fr.co & rmw = 0)":
  empty((fr ; co) & rmw)
axiom causality "acyclic(rfe + co + fr + ppo_pso + fence) (W->R and W->W relaxed)":
  acyclic(rfe | co | fr | ppo_pso | fence)
)MTM" + 1},
    {"pso_t_elt.mtm",
     "transistency axioms over the PSO base",
     R"MTM(
// pso_t_elt — transistency over a PSO-style base: the x86t_elt VM axioms
// (invlpg, tlb_causality) kept intact while the consistency causality
// relaxes both W->R and W->W ordering. A new synthesis workload no
// hardwired model covers: ELTs that survive the weaker store ordering.
model pso_t_elt
vm on

let com = rf | co | fr
let ppo_pso = ppo \ ([W] ; po_mem ; [W])

axiom sc_per_loc "coherence: rf + co + fr + po_loc is acyclic per location":
  acyclic(com | po_loc)
axiom rmw_atomicity "no same-address write intervenes inside an RMW (fr.co & rmw = 0)":
  empty((fr ; co) & rmw)
axiom causality "acyclic(rfe + co + fr + ppo_pso + fence) (W->R and W->W relaxed)":
  acyclic(rfe | co | fr | ppo_pso | fence)
axiom invlpg "accesses after an INVLPG use the latest mapping: acyclic(fr_va + ^po + remap)":
  acyclic(fr_va | po | remap)
axiom tlb_causality "diagnostic: acyclic(ptw_source + rf + co + fr)":
  acyclic(ptw_source | com)
)MTM" + 1},
    {"x86t_elt_weak_tlb.mtm",
     "x86t_elt with tlb_causality weakened to cross-thread rf",
     R"MTM(
// x86t_elt with a weakened tlb_causality: only cross-thread communication
// (rfe instead of full rf) constrains reuse of a shared TLB entry, so
// same-thread stale-translation chains that x86t_elt forbids become
// permitted. Synthesizing this variant shows which ELTs in the x86t_elt
// tlb_causality suite depend on same-thread reads-from edges.
model x86t_elt_weak_tlb
vm on

let com = rf | co | fr

axiom sc_per_loc "coherence: rf + co + fr + po_loc is acyclic per location":
  acyclic(com | po_loc)
axiom rmw_atomicity "no same-address write intervenes inside an RMW (fr.co & rmw = 0)":
  empty((fr ; co) & rmw)
axiom causality "acyclic(rfe + co + fr + ppo + fence) (TSO ppo)":
  acyclic(rfe | co | fr | ppo | fence)
axiom invlpg "accesses after an INVLPG use the latest mapping: acyclic(fr_va + ^po + remap)":
  acyclic(fr_va | po | remap)
axiom tlb_causality "weakened: acyclic(ptw_source + rfe + co + fr) - same-thread rf unconstrained":
  acyclic(ptw_source | rfe | co | fr)
)MTM" + 1},
    {"x86tso_star.mtm",
     "x86-TSO with causality stated via reflexive closure (^* exercise)",
     R"MTM(
// x86tso_star - x86-TSO with the causality axiom restated through the
// reflexive-transitive closure: acyclic(x) is equivalent to
// irreflexive(x ; x^*) because x ; x^* = x^+. Semantically identical to
// x86tso.mtm; it exists to exercise the `^*` operator end-to-end (parse,
// concrete evaluation, symbolic lowering) in every zoo sweep.
model x86tso_star
vm off

let com = rf | co | fr
let tso = rfe | co | fr | ppo | fence

axiom sc_per_loc "coherence: rf + co + fr + po_loc is acyclic per location":
  acyclic(com | po_loc)
axiom rmw_atomicity "no same-address write intervenes inside an RMW (fr.co & rmw = 0)":
  empty((fr ; co) & rmw)
axiom causality "irreflexive(tso ; tso^*), i.e. acyclic(tso), via reflexive closure":
  irreflexive(tso ; tso^*)
)MTM" + 1},
    {"x86t_elt_fence_invlpg.mtm",
     "x86t_elt with invlpg ordering only through fences",
     R"MTM(
// x86t_elt with a weakened invlpg axiom: program order alone no longer
// orders accesses around remaps - only MFENCE-separated pairs do. A
// hypothetical aggressive TLB that keeps serving stale entries until a
// fence; its suites expose exactly the ELTs whose forbidden outcome
// hinges on unfenced program order after an INVLPG.
model x86t_elt_fence_invlpg
vm on

let com = rf | co | fr

axiom sc_per_loc "coherence: rf + co + fr + po_loc is acyclic per location":
  acyclic(com | po_loc)
axiom rmw_atomicity "no same-address write intervenes inside an RMW (fr.co & rmw = 0)":
  empty((fr ; co) & rmw)
axiom causality "acyclic(rfe + co + fr + ppo + fence) (TSO ppo)":
  acyclic(rfe | co | fr | ppo | fence)
axiom invlpg "weakened: acyclic(fr_va + fence + remap) - only fences order around remaps":
  acyclic(fr_va | fence | remap)
axiom tlb_causality "diagnostic: acyclic(ptw_source + rf + co + fr)":
  acyclic(ptw_source | com)
)MTM" + 1},
};

/// The hardwired C++ builtins stay the first resolution tier: `--model
/// x86t_elt` must keep meaning the original closures (they are the oracle
/// the DSL twins are differentially tested against).
std::optional<mtm::Model>
builtin_model(const std::string& name)
{
    if (name == "x86tso") {
        return mtm::x86tso();
    }
    if (name == "x86t_elt") {
        return mtm::x86t_elt();
    }
    if (name == "sc_t_elt") {
        return mtm::sc_t_elt();
    }
    return std::nullopt;
}

std::optional<ResolvedModel>
compile_source(const std::string& source, const std::string& origin,
               std::string* error)
{
    Diagnostic diag;
    const std::optional<ModelSpec> spec = parse_model(source, &diag);
    if (!spec.has_value()) {
        if (error != nullptr) {
            *error = diag.to_string(origin);
        }
        return std::nullopt;
    }
    ResolvedModel resolved{compile_model(*spec), /*from_spec=*/true, origin};
    return resolved;
}

}  // namespace

const std::vector<RegistryEntry>&
registry_entries()
{
    return kRegistry;
}

std::optional<ResolvedModel>
resolve_model(const std::string& name_or_path, std::string* error)
{
    if (std::optional<mtm::Model> builtin = builtin_model(name_or_path)) {
        return ResolvedModel{std::move(*builtin), /*from_spec=*/false,
                             "builtin"};
    }
    for (const RegistryEntry& entry : kRegistry) {
        if (name_or_path == entry.name ||
            name_or_path + ".mtm" == entry.name) {
            return compile_source(entry.source,
                                  std::string("registry:") + entry.name,
                                  error);
        }
    }
    std::error_code ec;
    if (std::filesystem::exists(name_or_path, ec)) {
        std::ifstream in(name_or_path);
        if (!in) {
            if (error != nullptr) {
                *error = "cannot read " + name_or_path;
            }
            return std::nullopt;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        return compile_source(buffer.str(), name_or_path, error);
    }
    if (error != nullptr) {
        std::ostringstream out;
        out << "unknown model '" << name_or_path
            << "' (not a builtin, a registry entry, or a readable .mtm "
               "file)\n";
        out << list_models_text();
        *error = out.str();
    }
    return std::nullopt;
}

std::string
list_models_text()
{
    std::ostringstream out;
    out << "builtin models (hardwired C++):\n";
    out << "  x86tso     x86-TSO MCM (sc_per_loc, rmw_atomicity, "
           "causality)\n";
    out << "  x86t_elt   the paper's estimated x86 MTM (default)\n";
    out << "  sc_t_elt   sequentially-consistent MTM\n";
    out << "registry models (.mtm specifications; addressable with or "
           "without the suffix):\n";
    for (const RegistryEntry& entry : kRegistry) {
        out << "  " << entry.name << "\n      " << entry.summary << "\n";
    }
    out << "or any path to a .mtm file (see docs/models.md for the "
           "language)\n";
    return out.str();
}

}  // namespace transform::spec
