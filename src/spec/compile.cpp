#include "spec/compile.h"

#include <memory>
#include <utility>

#include "spec/eval.h"
#include "spec/printer.h"
#include "util/logging.h"

namespace transform::spec {

mtm::Model
compile_model(const ModelSpec& spec)
{
    TF_ASSERT(static_cast<int>(spec.axioms.size()) <= mtm::kMaxAxioms);
    const auto shared = std::make_shared<const ModelSpec>(spec);
    std::vector<mtm::Axiom> axioms;
    axioms.reserve(shared->axioms.size());
    for (const AxiomDef& def : shared->axioms) {
        // Alias the shared spec so one control block owns every axiom's AST.
        auto held =
            std::shared_ptr<const AxiomDef>(shared, &def);
        mtm::Axiom axiom;
        axiom.name = def.name;
        axiom.description = def.description.empty()
                                ? std::string(axiom_form_name(def.form)) +
                                      "(" + expr_to_source(*def.expr) + ")"
                                : def.description;
        axiom.tag = mtm::AxiomTag::kExpr;
        axiom.def = held;
        axiom.holds = [held](const elt::Program& program,
                             const elt::DerivedRelations& d,
                             elt::CycleScratch* scratch) {
            return axiom_holds(*held, program, d, scratch);
        };
        axioms.push_back(std::move(axiom));
    }
    mtm::Model model(spec.name, spec.vm, std::move(axioms));
    model.set_source_spec(shared);
    return model;
}

}  // namespace transform::spec
