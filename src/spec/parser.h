/// \file
/// Lexer + recursive-descent parser for `.mtm` model files (spec/ast.h).
///
/// Grammar (EBNF; `//` and `#` start line comments):
///
///   model    := "model" ident { "vm" ("on"|"off") | let | axiom }
///   let      := "let" ident "=" expr
///   axiom    := "axiom" ident [ string ] ":" form "(" expr ")"
///   form     := "acyclic" | "irreflexive" | "empty"
///   expr     := term { "|" term }
///   term     := factor { ("&" | "\") factor }
///   factor   := postfix { ";" postfix }
///   postfix  := atom { "^+" | "^*" | "^-1" }
///   atom     := "(" expr ")" | "[" set "]" | base-rel | let-name | "0"
///
/// Errors carry a 1-based line/column so the tools can report
/// `path:line:col: error: message` and exit 2, matching the tool_args.h
/// strictness convention.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "spec/ast.h"

namespace transform::spec {

/// A parse (or validation) failure, positioned in the source text.
struct Diagnostic {
    int line = 0;  ///< 1-based
    int col = 0;   ///< 1-based
    std::string message;

    /// Formats as "origin:line:col: error: message".
    std::string to_string(const std::string& origin) const;
};

/// Parses one model file. On failure returns nullopt and fills \p diag.
/// Validation beyond the grammar happens here too: unknown relation/set
/// names, duplicate let/axiom names, models with no axioms, and axiom
/// counts beyond mtm::kMaxAxioms are all positioned diagnostics.
std::optional<ModelSpec> parse_model(std::string_view source,
                                     Diagnostic* diag);

}  // namespace transform::spec
