/// \file
/// The concrete interpreter for `.mtm` axioms: evaluates a relational
/// expression over one candidate execution's elt::DerivedRelations and
/// decides the axiom's condition (acyclic / irreflexive / empty).
///
/// This is the DSL counterpart of the hand-written axiom closures in
/// mtm/model.cpp and runs in the same place — the synthesis engine's
/// per-candidate hot path — so it is scratch-threaded and
/// allocation-conscious: every intermediate edge set comes from the
/// CycleScratch::spec_pool arena (capacity kept across evaluations), and a
/// null scratch falls back to a local one, exactly like the hardwired
/// evaluators. Edge sets are kept sorted and duplicate-free throughout, so
/// the set algebra is linear merges and the join is a binary-search sweep.
#pragma once

#include "elt/derive.h"
#include "elt/execution.h"
#include "spec/ast.h"

namespace transform::spec {

/// True when \p event's kind belongs to \p set — the single definition both
/// compilers (concrete and symbolic) share.
bool event_in_set(EventSet set, elt::EventKind kind);

/// True when the axiom's condition HOLDS on the derived relations of one
/// well-formed execution. \p scratch may be null (a local scratch is used);
/// passing the worker's scratch makes repeated evaluations allocation-free.
bool axiom_holds(const AxiomDef& axiom, const elt::Program& program,
                 const elt::DerivedRelations& d,
                 elt::CycleScratch* scratch);

/// Materializes the expression's edge set (sorted, duplicate-free) into
/// \p out — the debugging / testing entry point.
void eval_expr(const Expr& expr, const elt::Program& program,
               const elt::DerivedRelations& d, elt::CycleScratch* scratch,
               elt::EdgeSet* out);

}  // namespace transform::spec
