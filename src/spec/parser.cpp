#include "spec/parser.h"

#include <cctype>
#include <map>
#include <sstream>
#include <utility>

namespace transform::spec {

namespace {

/// Keep in sync with mtm::kMaxAxioms (not included here: spec/ stays below
/// mtm/ in the layering; the compiler re-checks with the real constant).
constexpr int kMaxAxiomsInSpec = 32;

struct BaseRelEntry {
    const char* name;
    BaseRel rel;
};

constexpr BaseRelEntry kBaseRels[] = {
    {"po", BaseRel::kPo},
    {"po_loc", BaseRel::kPoLoc},
    {"po_mem", BaseRel::kPoMem},
    {"rf", BaseRel::kRf},
    {"rfe", BaseRel::kRfe},
    {"co", BaseRel::kCo},
    {"fr", BaseRel::kFr},
    {"ppo", BaseRel::kPpo},
    {"fence", BaseRel::kFence},
    {"rmw", BaseRel::kRmw},
    {"ghost", BaseRel::kGhost},
    {"rf_ptw", BaseRel::kRfPtw},
    {"rf_pa", BaseRel::kRfPa},
    {"co_pa", BaseRel::kCoPa},
    {"fr_pa", BaseRel::kFrPa},
    {"fr_va", BaseRel::kFrVa},
    {"remap", BaseRel::kRemap},
    {"ptw_source", BaseRel::kPtwSource},
};

struct EventSetEntry {
    const char* name;
    EventSet set;
};

constexpr EventSetEntry kEventSets[] = {
    {"R", EventSet::kRead},       {"W", EventSet::kWrite},
    {"M", EventSet::kMemory},     {"D", EventSet::kData},
    {"PTE", EventSet::kPte},      {"F", EventSet::kFence},
    {"Wpte", EventSet::kWpte},    {"Invlpg", EventSet::kInvlpg},
    {"Rptw", EventSet::kRptw},    {"Wdb", EventSet::kWdb},
    {"Rdb", EventSet::kRdb},      {"Ghost", EventSet::kGhost},
    {"User", EventSet::kUser},
};

enum class Tok {
    kEof,
    kIdent,    ///< keywords resolved by spelling at the parser level
    kString,   ///< "..." (no escapes)
    kColon,
    kEquals,
    kPipe,
    kAmp,
    kBackslash,
    kSemi,
    kLParen,
    kRParen,
    kLBracket,
    kRBracket,
    kCaretPlus,   ///< ^+
    kCaretStar,   ///< ^*
    kCaretInv,    ///< ^-1
    kZero,        ///< the empty-relation literal
};

struct Token {
    Tok kind = Tok::kEof;
    std::string text;  ///< kIdent: spelling; kString: contents
    int line = 1;
    int col = 1;
};

class Lexer {
  public:
    explicit Lexer(std::string_view source) : src_(source) {}

    /// Scans the next token; lexical errors surface as a failed result.
    bool next(Token* out, Diagnostic* diag)
    {
        skip_trivia();
        out->line = line_;
        out->col = col_;
        if (pos_ >= src_.size()) {
            out->kind = Tok::kEof;
            return true;
        }
        const char c = src_[pos_];
        switch (c) {
        case ':': return single(out, Tok::kColon);
        case '=': return single(out, Tok::kEquals);
        case '|': return single(out, Tok::kPipe);
        case '&': return single(out, Tok::kAmp);
        case '\\': return single(out, Tok::kBackslash);
        case ';': return single(out, Tok::kSemi);
        case '(': return single(out, Tok::kLParen);
        case ')': return single(out, Tok::kRParen);
        case '[': return single(out, Tok::kLBracket);
        case ']': return single(out, Tok::kRBracket);
        case '0': return single(out, Tok::kZero);
        case '^':
            if (src_.substr(pos_, 2) == "^+") {
                advance(2);
                out->kind = Tok::kCaretPlus;
                return true;
            }
            if (src_.substr(pos_, 2) == "^*") {
                advance(2);
                out->kind = Tok::kCaretStar;
                return true;
            }
            if (src_.substr(pos_, 3) == "^-1") {
                advance(3);
                out->kind = Tok::kCaretInv;
                return true;
            }
            return fail(diag, "expected '^+', '^*' or '^-1' after '^'");
        case '"': {
            advance(1);
            std::string text;
            while (pos_ < src_.size() && src_[pos_] != '"' &&
                   src_[pos_] != '\n') {
                text.push_back(src_[pos_]);
                advance(1);
            }
            if (pos_ >= src_.size() || src_[pos_] != '"') {
                // Report at the opening quote — the useful position.
                diag->line = out->line;
                diag->col = out->col;
                diag->message = "unterminated string";
                return false;
            }
            advance(1);
            out->kind = Tok::kString;
            out->text = std::move(text);
            return true;
        }
        default:
            break;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string text;
            while (pos_ < src_.size() &&
                   (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '_')) {
                text.push_back(src_[pos_]);
                advance(1);
            }
            out->kind = Tok::kIdent;
            out->text = std::move(text);
            return true;
        }
        return fail(diag, std::string("unexpected character '") + c + "'");
    }

  private:
    bool
    single(Token* out, Tok kind)
    {
        advance(1);
        out->kind = kind;
        return true;
    }

    bool
    fail(Diagnostic* diag, std::string message)
    {
        diag->line = line_;
        diag->col = col_;
        diag->message = std::move(message);
        return false;
    }

    void
    advance(std::size_t count)
    {
        for (std::size_t i = 0; i < count && pos_ < src_.size(); ++i) {
            if (src_[pos_] == '\n') {
                ++line_;
                col_ = 1;
            } else {
                ++col_;
            }
            ++pos_;
        }
    }

    void
    skip_trivia()
    {
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
                advance(1);
            } else if (c == '#' || src_.substr(pos_, 2) == "//") {
                while (pos_ < src_.size() && src_[pos_] != '\n') {
                    advance(1);
                }
            } else {
                break;
            }
        }
    }

    std::string_view src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

class Parser {
  public:
    Parser(std::string_view source, Diagnostic* diag)
        : lexer_(source), diag_(diag)
    {
    }

    std::optional<ModelSpec>
    parse()
    {
        if (!advance()) {
            return std::nullopt;
        }
        if (!expect_keyword("model", "every .mtm file starts with "
                            "'model <name>'")) {
            return std::nullopt;
        }
        if (cur_.kind != Tok::kIdent) {
            return error_at(cur_, "expected a model name after 'model'");
        }
        spec_.name = cur_.text;
        if (!advance()) {
            return std::nullopt;
        }
        while (cur_.kind != Tok::kEof) {
            if (cur_.kind != Tok::kIdent) {
                return error_at(cur_, "expected 'vm', 'let' or 'axiom'");
            }
            if (cur_.text == "vm") {
                if (!parse_vm()) {
                    return std::nullopt;
                }
            } else if (cur_.text == "let") {
                if (!parse_let()) {
                    return std::nullopt;
                }
            } else if (cur_.text == "axiom") {
                if (!parse_axiom()) {
                    return std::nullopt;
                }
            } else {
                return error_at(cur_, "expected 'vm', 'let' or 'axiom', got '" +
                                          cur_.text + "'");
            }
        }
        if (spec_.axioms.empty()) {
            return error_at(cur_, "model '" + spec_.name +
                                      "' declares no axioms");
        }
        return std::move(spec_);
    }

  private:
    std::nullopt_t
    error_at(const Token& token, std::string message)
    {
        diag_->line = token.line;
        diag_->col = token.col;
        diag_->message = std::move(message);
        return std::nullopt;
    }

    bool
    fail_at(const Token& token, std::string message)
    {
        error_at(token, std::move(message));
        return false;
    }

    bool
    advance()
    {
        return lexer_.next(&cur_, diag_);
    }

    bool
    expect_keyword(const char* keyword, const char* message)
    {
        if (cur_.kind != Tok::kIdent || cur_.text != keyword) {
            return fail_at(cur_, message);
        }
        return advance();
    }

    bool
    expect(Tok kind, const char* what)
    {
        if (cur_.kind != kind) {
            return fail_at(cur_, std::string("expected ") + what);
        }
        return advance();
    }

    bool
    parse_vm()
    {
        if (!advance()) {  // consume 'vm'
            return false;
        }
        if (cur_.kind != Tok::kIdent ||
            (cur_.text != "on" && cur_.text != "off")) {
            return fail_at(cur_, "expected 'on' or 'off' after 'vm'");
        }
        spec_.vm = cur_.text == "on";
        return advance();
    }

    bool
    parse_let()
    {
        if (!advance()) {  // consume 'let'
            return false;
        }
        if (cur_.kind != Tok::kIdent) {
            return fail_at(cur_, "expected a name after 'let'");
        }
        const Token name = cur_;
        if (lets_.count(name.text) > 0) {
            return fail_at(name, "duplicate let '" + name.text + "'");
        }
        if (lookup_base(name.text) != nullptr) {
            return fail_at(name, "'" + name.text +
                                     "' is a base relation and cannot be "
                                     "redefined");
        }
        if (!advance() || !expect(Tok::kEquals, "'=' after the let name")) {
            return false;
        }
        ExprPtr body = parse_expr();
        if (body == nullptr) {
            return false;
        }
        spec_.lets.push_back({name.text, body});
        lets_.emplace(name.text, std::move(body));
        return true;
    }

    bool
    parse_axiom()
    {
        if (!advance()) {  // consume 'axiom'
            return false;
        }
        if (cur_.kind != Tok::kIdent) {
            return fail_at(cur_, "expected an axiom name after 'axiom'");
        }
        AxiomDef axiom;
        const Token name = cur_;
        axiom.name = name.text;
        for (const AxiomDef& existing : spec_.axioms) {
            if (existing.name == axiom.name) {
                return fail_at(name, "duplicate axiom '" + axiom.name + "'");
            }
        }
        if (!advance()) {
            return false;
        }
        if (cur_.kind == Tok::kString) {
            axiom.description = cur_.text;
            if (!advance()) {
                return false;
            }
        }
        if (!expect(Tok::kColon, "':' after the axiom name")) {
            return false;
        }
        if (cur_.kind != Tok::kIdent) {
            return fail_at(cur_,
                           "expected 'acyclic', 'irreflexive' or 'empty'");
        }
        if (cur_.text == "acyclic") {
            axiom.form = AxiomForm::kAcyclic;
        } else if (cur_.text == "irreflexive") {
            axiom.form = AxiomForm::kIrreflexive;
        } else if (cur_.text == "empty") {
            axiom.form = AxiomForm::kEmpty;
        } else {
            return fail_at(cur_, "unknown axiom form '" + cur_.text +
                                     "' (expected acyclic, irreflexive or "
                                     "empty)");
        }
        if (!advance() || !expect(Tok::kLParen, "'(' after the axiom form")) {
            return false;
        }
        axiom.expr = parse_expr();
        if (axiom.expr == nullptr) {
            return false;
        }
        if (!expect(Tok::kRParen, "')' closing the axiom condition")) {
            return false;
        }
        if (static_cast<int>(spec_.axioms.size()) >= kMaxAxiomsInSpec) {
            return fail_at(name, "too many axioms (the mask width caps a "
                                 "model at 32)");
        }
        spec_.axioms.push_back(std::move(axiom));
        return true;
    }

    // ------------------------------------------------------------------
    // Expressions (precedence: postfix > ';' > '&'/'\' > '|').
    // ------------------------------------------------------------------

    ExprPtr
    parse_expr()
    {
        ExprPtr lhs = parse_term();
        while (lhs != nullptr && cur_.kind == Tok::kPipe) {
            if (!advance()) {
                return nullptr;
            }
            ExprPtr rhs = parse_term();
            if (rhs == nullptr) {
                return nullptr;
            }
            lhs = binary(ExprOp::kUnion, std::move(lhs), std::move(rhs));
        }
        return lhs;
    }

    ExprPtr
    parse_term()
    {
        ExprPtr lhs = parse_factor();
        while (lhs != nullptr &&
               (cur_.kind == Tok::kAmp || cur_.kind == Tok::kBackslash)) {
            const ExprOp op = cur_.kind == Tok::kAmp ? ExprOp::kIntersect
                                                     : ExprOp::kMinus;
            if (!advance()) {
                return nullptr;
            }
            ExprPtr rhs = parse_factor();
            if (rhs == nullptr) {
                return nullptr;
            }
            lhs = binary(op, std::move(lhs), std::move(rhs));
        }
        return lhs;
    }

    ExprPtr
    parse_factor()
    {
        ExprPtr lhs = parse_postfix();
        while (lhs != nullptr && cur_.kind == Tok::kSemi) {
            if (!advance()) {
                return nullptr;
            }
            ExprPtr rhs = parse_postfix();
            if (rhs == nullptr) {
                return nullptr;
            }
            lhs = binary(ExprOp::kJoin, std::move(lhs), std::move(rhs));
        }
        return lhs;
    }

    ExprPtr
    parse_postfix()
    {
        ExprPtr inner = parse_atom();
        while (inner != nullptr && (cur_.kind == Tok::kCaretPlus ||
                                    cur_.kind == Tok::kCaretStar ||
                                    cur_.kind == Tok::kCaretInv)) {
            auto node = std::make_shared<Expr>();
            node->op = cur_.kind == Tok::kCaretPlus ? ExprOp::kClosure
                       : cur_.kind == Tok::kCaretStar
                           ? ExprOp::kReflexiveClosure
                           : ExprOp::kTranspose;
            node->lhs = std::move(inner);
            inner = std::move(node);
            if (!advance()) {
                return nullptr;
            }
        }
        return inner;
    }

    ExprPtr
    parse_atom()
    {
        switch (cur_.kind) {
        case Tok::kLParen: {
            if (!advance()) {
                return nullptr;
            }
            ExprPtr inner = parse_expr();
            if (inner == nullptr ||
                !expect(Tok::kRParen, "')' closing the group")) {
                return nullptr;
            }
            return inner;
        }
        case Tok::kLBracket: {
            const Token bracket = cur_;
            if (!advance()) {
                return nullptr;
            }
            if (cur_.kind != Tok::kIdent) {
                fail_at(bracket, "expected an event class inside '[ ]'");
                return nullptr;
            }
            const EventSet* set = lookup_set(cur_.text);
            if (set == nullptr) {
                fail_at(cur_, "unknown event class '" + cur_.text +
                                  "' (see docs/models.md for the "
                                  "catalogue)");
                return nullptr;
            }
            auto node = std::make_shared<Expr>();
            node->op = ExprOp::kIdSet;
            node->set = *set;
            if (!advance() ||
                !expect(Tok::kRBracket, "']' closing the event class")) {
                return nullptr;
            }
            return node;
        }
        case Tok::kZero: {
            auto node = std::make_shared<Expr>();
            node->op = ExprOp::kEmpty;
            if (!advance()) {
                return nullptr;
            }
            return node;
        }
        case Tok::kIdent: {
            if (const BaseRel* base = lookup_base(cur_.text)) {
                auto node = std::make_shared<Expr>();
                node->op = ExprOp::kBase;
                node->base = *base;
                if (!advance()) {
                    return nullptr;
                }
                return node;
            }
            const auto let = lets_.find(cur_.text);
            if (let != lets_.end()) {
                auto node = std::make_shared<Expr>();
                node->op = ExprOp::kLetRef;
                node->lhs = let->second;
                node->let_name = cur_.text;
                if (!advance()) {
                    return nullptr;
                }
                return node;
            }
            fail_at(cur_, "unknown relation '" + cur_.text +
                              "' (not a base relation or a let; event "
                              "classes need '[ ]')");
            return nullptr;
        }
        default:
            fail_at(cur_, "expected a relation expression");
            return nullptr;
        }
    }

    static ExprPtr
    binary(ExprOp op, ExprPtr lhs, ExprPtr rhs)
    {
        auto node = std::make_shared<Expr>();
        node->op = op;
        node->lhs = std::move(lhs);
        node->rhs = std::move(rhs);
        return node;
    }

    static const BaseRel*
    lookup_base(const std::string& name)
    {
        for (const BaseRelEntry& entry : kBaseRels) {
            if (name == entry.name) {
                return &entry.rel;
            }
        }
        return nullptr;
    }

    static const EventSet*
    lookup_set(const std::string& name)
    {
        for (const EventSetEntry& entry : kEventSets) {
            if (name == entry.name) {
                return &entry.set;
            }
        }
        return nullptr;
    }

    Lexer lexer_;
    Diagnostic* diag_;
    Token cur_;
    ModelSpec spec_;
    std::map<std::string, ExprPtr> lets_;
};

}  // namespace

std::string
Diagnostic::to_string(const std::string& origin) const
{
    std::ostringstream out;
    out << origin << ":" << line << ":" << col << ": error: " << message;
    return out.str();
}

std::optional<ModelSpec>
parse_model(std::string_view source, Diagnostic* diag)
{
    Diagnostic local;
    Parser parser(source, diag != nullptr ? diag : &local);
    return parser.parse();
}

const char*
base_rel_name(BaseRel rel)
{
    for (const BaseRelEntry& entry : kBaseRels) {
        if (entry.rel == rel) {
            return entry.name;
        }
    }
    return "?";
}

const char*
event_set_name(EventSet set)
{
    for (const EventSetEntry& entry : kEventSets) {
        if (entry.set == set) {
            return entry.name;
        }
    }
    return "?";
}

const char*
axiom_form_name(AxiomForm form)
{
    switch (form) {
    case AxiomForm::kAcyclic: return "acyclic";
    case AxiomForm::kIrreflexive: return "irreflexive";
    case AxiomForm::kEmpty: return "empty";
    }
    return "?";
}

}  // namespace transform::spec
