/// \file
/// Compiles a parsed `.mtm` specification into an mtm::Model whose axioms
/// run on BOTH execution-space backends:
///  - concretely, through spec/eval.h closures tagged AxiomTag::kExpr (the
///    enumerative backend and the minimality judge call these millions of
///    times — they are scratch-threaded like the hardwired closures);
///  - symbolically, because each Axiom carries its AxiomDef and
///    mtm::ProgramEncoding lowers that AST to rel::RelExpr circuits
///    generically (mtm/encoding.cpp), so user-defined models need no
///    hand-written circuit.
#pragma once

#include "mtm/model.h"
#include "spec/ast.h"

namespace transform::spec {

/// Builds the Model for \p spec. The ModelSpec is copied into shared
/// ownership: the returned Model (and every copy of its axioms) keeps the
/// AST alive. Axiom order follows the file.
mtm::Model compile_model(const ModelSpec& spec);

}  // namespace transform::spec
