#include "elt/serialize.h"

#include <map>
#include <sstream>

#include "util/strings.h"

namespace transform::elt {

namespace {

const char*
kind_tag(EventKind k)
{
    switch (k) {
    case EventKind::kRead: return "read";
    case EventKind::kWrite: return "write";
    case EventKind::kMfence: return "mfence";
    case EventKind::kWpte: return "wpte";
    case EventKind::kInvlpg: return "invlpg";
    case EventKind::kInvlpgAll: return "invlpgall";
    case EventKind::kRptw: return "rptw";
    case EventKind::kWdb: return "wdb";
    case EventKind::kRdb: return "rdb";
    }
    return "?";
}

std::optional<EventKind>
kind_from_tag(const std::string& tag)
{
    static const std::map<std::string, EventKind> kMap = {
        {"read", EventKind::kRead},     {"write", EventKind::kWrite},
        {"mfence", EventKind::kMfence}, {"wpte", EventKind::kWpte},
        {"invlpg", EventKind::kInvlpg}, {"rptw", EventKind::kRptw},
        {"invlpgall", EventKind::kInvlpgAll},
        {"wdb", EventKind::kWdb},       {"rdb", EventKind::kRdb},
    };
    const auto it = kMap.find(tag);
    if (it == kMap.end()) {
        return std::nullopt;
    }
    return it->second;
}

/// One parsed XML element: tag name plus attribute map. The subset we emit
/// is flat (self-closing elements inside a root), so a token scanner is all
/// the parser needs.
struct XmlElement {
    std::string tag;
    bool closing = false;
    std::map<std::string, std::string> attributes;
};

/// Scans the next element starting at text[pos] (expects '<'); advances pos
/// past the element. Returns std::nullopt at end of input or on error.
std::optional<XmlElement>
next_element(const std::string& text, std::size_t* pos)
{
    std::size_t i = text.find('<', *pos);
    if (i == std::string::npos) {
        return std::nullopt;
    }
    const std::size_t end = text.find('>', i);
    if (end == std::string::npos) {
        return std::nullopt;
    }
    std::string body = text.substr(i + 1, end - i - 1);
    *pos = end + 1;
    XmlElement element;
    if (!body.empty() && body.front() == '/') {
        element.closing = true;
        body = body.substr(1);
    }
    if (!body.empty() && body.back() == '/') {
        body.pop_back();
    }
    std::istringstream in(body);
    in >> element.tag;
    std::string token;
    // Attributes have the shape key="value" with no spaces inside values
    // (all our values are integers or identifiers).
    while (in >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) {
            continue;
        }
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);
        if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
            value = value.substr(1, value.size() - 2);
        }
        element.attributes[key] = value;
    }
    return element;
}

int
attr_int(const XmlElement& element, const std::string& key, int fallback)
{
    const auto it = element.attributes.find(key);
    if (it == element.attributes.end()) {
        return fallback;
    }
    try {
        return std::stoi(it->second);
    } catch (...) {
        return fallback;
    }
}

}  // namespace

std::string
program_to_xml(const Program& p, const std::string& name)
{
    std::ostringstream out;
    out << "<elt name=\"" << util::xml_escape(name) << "\" threads=\""
        << p.num_threads() << "\">\n";
    for (EventId id = 0; id < p.num_events(); ++id) {
        const Event& e = p.event(id);
        out << "  <" << kind_tag(e.kind) << " id=\"" << id << "\" thread=\""
            << e.thread << "\"";
        if (e.va != kNone) {
            out << " va=\"" << e.va << "\"";
        }
        if (e.map_pa != kNone) {
            out << " pa=\"" << e.map_pa << "\"";
        }
        if (e.parent != kNone) {
            out << " parent=\"" << e.parent << "\"";
        }
        if (e.remap_src != kNone) {
            out << " remap=\"" << e.remap_src << "\"";
        }
        out << "/>\n";
    }
    for (const auto& [r, w] : p.rmw_pairs()) {
        out << "  <rmw read=\"" << r << "\" write=\"" << w << "\"/>\n";
    }
    return out.str() + "</elt>\n";
}

std::string
execution_to_xml(const Execution& exec, const std::string& name)
{
    std::string xml = program_to_xml(exec.program, name);
    // Splice the witness section before the closing tag.
    const std::size_t closing = xml.rfind("</elt>");
    std::ostringstream witness;
    witness << "  <witness>\n";
    for (EventId id = 0; id < exec.program.num_events(); ++id) {
        if (exec.rf_src[id] != kNone) {
            witness << "    <rf read=\"" << id << "\" write=\""
                    << exec.rf_src[id] << "\"/>\n";
        }
        if (exec.co_pos[id] != kNone) {
            witness << "    <co event=\"" << id << "\" pos=\""
                    << exec.co_pos[id] << "\"/>\n";
        }
        if (exec.ptw_src[id] != kNone) {
            witness << "    <ptw event=\"" << id << "\" walk=\""
                    << exec.ptw_src[id] << "\"/>\n";
        }
        if (exec.co_pa_pos[id] != kNone) {
            witness << "    <copa event=\"" << id << "\" pos=\""
                    << exec.co_pa_pos[id] << "\"/>\n";
        }
    }
    witness << "  </witness>\n";
    return xml.substr(0, closing) + witness.str() + xml.substr(closing);
}

std::optional<Execution>
execution_from_xml(const std::string& xml)
{
    std::size_t pos = 0;
    auto root = next_element(xml, &pos);
    if (!root || root->tag != "elt") {
        return std::nullopt;
    }
    const int threads = attr_int(*root, "threads", 0);

    Program program;
    for (int t = 0; t < threads; ++t) {
        program.add_thread();
    }
    struct Witness {
        int read = kNone, write = kNone, event = kNone, pos = kNone,
            walk = kNone;
        std::string tag;
    };
    std::vector<Witness> witnesses;
    std::vector<std::pair<int, int>> rmws;

    while (true) {
        auto element = next_element(xml, &pos);
        if (!element) {
            return std::nullopt;  // missing </elt>
        }
        if (element->closing && element->tag == "elt") {
            break;
        }
        if (element->closing) {
            continue;  // </witness>
        }
        if (element->tag == "witness") {
            continue;
        }
        if (element->tag == "rmw") {
            rmws.emplace_back(attr_int(*element, "read", kNone),
                              attr_int(*element, "write", kNone));
            continue;
        }
        if (element->tag == "rf" || element->tag == "co" ||
            element->tag == "ptw" || element->tag == "copa") {
            Witness w;
            w.tag = element->tag;
            w.read = attr_int(*element, "read", kNone);
            w.write = attr_int(*element, "write", kNone);
            w.event = attr_int(*element, "event", kNone);
            w.pos = attr_int(*element, "pos", kNone);
            w.walk = attr_int(*element, "walk", kNone);
            witnesses.push_back(w);
            continue;
        }
        const auto kind = kind_from_tag(element->tag);
        if (!kind) {
            return std::nullopt;
        }
        Event e;
        e.kind = *kind;
        e.thread = attr_int(*element, "thread", 0);
        e.va = attr_int(*element, "va", kNone);
        e.map_pa = attr_int(*element, "pa", kNone);
        e.parent = attr_int(*element, "parent", kNone);
        e.remap_src = attr_int(*element, "remap", kNone);
        if (e.thread < 0 || e.thread >= threads) {
            return std::nullopt;
        }
        // Events must appear in id order for indices to line up.
        const EventId id = is_ghost(e.kind) ? program.add_ghost(e)
                                            : program.add_event(e);
        if (id != attr_int(*element, "id", id)) {
            return std::nullopt;
        }
    }
    for (const auto& [r, w] : rmws) {
        program.add_rmw(r, w);
    }

    Execution exec = Execution::empty_for(std::move(program));
    const int n = exec.program.num_events();
    for (const Witness& w : witnesses) {
        if (w.tag == "rf" && w.read >= 0 && w.read < n) {
            exec.rf_src[w.read] = w.write;
        } else if (w.tag == "co" && w.event >= 0 && w.event < n) {
            exec.co_pos[w.event] = w.pos;
        } else if (w.tag == "ptw" && w.event >= 0 && w.event < n) {
            exec.ptw_src[w.event] = w.walk;
        } else if (w.tag == "copa" && w.event >= 0 && w.event < n) {
            exec.co_pa_pos[w.event] = w.pos;
        }
    }
    return exec;
}

}  // namespace transform::elt
