/// \file
/// A human-readable litmus-style text format for ELT programs, alongside
/// the XML of serialize.h (which also carries execution witnesses). The
/// text format is what the command-line synthesis tool emits and what users
/// write by hand:
///
///     elt ptwalk2
///     thread P0
///       WPTE x -> b as p0
///       INVLPG x for p0
///       R x miss
///
/// Grammar (one instruction per line; '#' starts a comment):
///   R <va> [miss|hit] [rmw]      user-facing load; `miss` (default) walks
///                                the page table, `hit` reuses a TLB entry;
///                                `rmw` pairs it with the next instruction
///                                (a same-VA W) as a read-modify-write
///   W <va> [miss|hit] [rdb]      user-facing store (always carries a Wdb
///                                ghost; `rdb` adds the dirty-bit read of
///                                the RMW-dirty-bit ablation)
///   MFENCE                       fence
///   WPTE <va> -> <pa> [as <id>]  PTE write installing va -> pa
///   INVLPG <va> [for <id>]       TLB invalidation; `for` names the WPTE
///                                that remap-invoked it, else spurious
///
/// VAs use the paper's names (x y u w, then x1 y1 ...); PAs likewise
/// (a b c ...). Ghost instructions are implied by miss/hit and are not
/// written out.
#pragma once

#include <optional>
#include <string>

#include "elt/program.h"

namespace transform::elt {

/// Renders a program in the litmus text format (round-trips with
/// parse_litmus).
std::string program_to_litmus(const Program& program,
                              const std::string& name = "elt");

/// Result of parsing: the program plus the test's name.
struct ParsedLitmus {
    std::string name;
    Program program;
};

/// Parses the litmus text format. On failure returns std::nullopt and, when
/// \p error is non-null, stores a line-numbered diagnostic.
std::optional<ParsedLitmus> parse_litmus(const std::string& text,
                                         std::string* error = nullptr);

}  // namespace transform::elt
