#include "elt/program.h"

#include <sstream>

#include "util/logging.h"

namespace transform::elt {

const char*
kind_name(EventKind k)
{
    switch (k) {
    case EventKind::kRead: return "R";
    case EventKind::kWrite: return "W";
    case EventKind::kMfence: return "MFENCE";
    case EventKind::kWpte: return "WPTE";
    case EventKind::kInvlpg: return "INVLPG";
    case EventKind::kInvlpgAll: return "INVLPGALL";
    case EventKind::kRptw: return "Rptw";
    case EventKind::kWdb: return "Wdb";
    case EventKind::kRdb: return "Rdb";
    }
    return "?";
}

namespace {
std::string
indexed_name(const char* alphabet, int count, int index)
{
    if (index < 0) {
        return "?";
    }
    if (index < count) {
        return std::string(1, alphabet[index]);
    }
    std::ostringstream out;
    out << alphabet[index % count] << (index / count);
    return out.str();
}
}  // namespace

std::string
va_name(VaId va)
{
    static const char* kNames = "xyuw";
    return indexed_name(kNames, 4, va);
}

std::string
pte_name(VaId va)
{
    static const char* kNames = "zvqt";
    return indexed_name(kNames, 4, va);
}

std::string
pa_name(PaId pa)
{
    static const char* kNames = "abcdefgh";
    return indexed_name(kNames, 8, pa);
}

std::string
event_to_string(EventId id, const Event& event)
{
    std::ostringstream out;
    out << kind_name(event.kind) << id;
    switch (event.kind) {
    case EventKind::kRead:
    case EventKind::kWrite:
        out << " " << va_name(event.va);
        break;
    case EventKind::kMfence:
        break;
    case EventKind::kWpte:
        out << " " << pte_name(event.va) << " = VA " << va_name(event.va)
            << " -> PA " << pa_name(event.map_pa);
        break;
    case EventKind::kInvlpg:
        out << " " << va_name(event.va);
        if (event.remap_src == kNone) {
            out << " (spurious)";
        }
        break;
    case EventKind::kInvlpgAll:
        break;  // flushes the whole TLB; no operand
    case EventKind::kRptw:
    case EventKind::kWdb:
    case EventKind::kRdb:
        out << " " << pte_name(event.va);
        break;
    }
    return out.str();
}

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

int
Program::add_thread()
{
    threads_.emplace_back();
    return num_threads() - 1;
}

void
Program::reset(int num_threads)
{
    TF_ASSERT(num_threads >= 0);
    events_.clear();
    positions_.clear();
    rmws_.clear();
    // Shrink or grow the thread table without discarding the inner
    // vectors' capacity (clear, don't reassign).
    if (static_cast<int>(threads_.size()) > num_threads) {
        threads_.resize(static_cast<std::size_t>(num_threads));
    }
    for (std::vector<EventId>& thread : threads_) {
        thread.clear();
    }
    while (static_cast<int>(threads_.size()) < num_threads) {
        threads_.emplace_back();
    }
}

EventId
Program::add_event(Event event)
{
    TF_ASSERT(!is_ghost(event.kind));
    TF_ASSERT(event.thread >= 0 && event.thread < num_threads());
    const EventId id = num_events();
    positions_.push_back(static_cast<int>(threads_[event.thread].size()));
    threads_[event.thread].push_back(id);
    events_.push_back(event);
    return id;
}

EventId
Program::add_ghost(Event event)
{
    TF_ASSERT(is_ghost(event.kind));
    TF_ASSERT(event.parent != kNone && event.parent < num_events());
    const Event& parent = events_[event.parent];
    event.thread = parent.thread;
    if (event.va == kNone) {
        event.va = parent.va;
    }
    const EventId id = num_events();
    positions_.push_back(positions_[event.parent]);
    events_.push_back(event);
    return id;
}

void
Program::add_rmw(EventId read, EventId write)
{
    rmws_.emplace_back(read, write);
}

void
Program::replace_event(EventId id, const Event& event)
{
    TF_ASSERT(id >= 0 && id < num_events());
    TF_ASSERT(events_[id].kind == event.kind);
    TF_ASSERT(events_[id].thread == event.thread);
    events_[id] = event;
}

int
Program::num_vas() const
{
    int max_va = -1;
    for (const Event& e : events_) {
        if (e.va > max_va) {
            max_va = e.va;
        }
    }
    return max_va + 1;
}

int
Program::num_pas() const
{
    int max_pa = num_vas() - 1;  // initial frames: VA i -> PA i
    for (const Event& e : events_) {
        if (e.kind == EventKind::kWpte && e.map_pa > max_pa) {
            max_pa = e.map_pa;
        }
    }
    return max_pa + 1;
}

int
Program::position_of(EventId id) const
{
    return positions_[id];
}

int
Program::subposition_of(EventId id) const
{
    switch (events_[id].kind) {
    case EventKind::kRdb: return 0;
    case EventKind::kWdb: return 1;
    case EventKind::kRptw: return 2;
    default: return 3;
    }
}

bool
Program::precedes(EventId before, EventId after) const
{
    if (events_[before].thread != events_[after].thread) {
        return false;
    }
    // Events sharing a program position (an instruction and its ghosts)
    // are mutually unordered: a store's page-table walk and dirty-bit
    // update run concurrently with it. Only the instruction-level program
    // order induces extended ordering.
    return positions_[before] < positions_[after];
}

namespace {
EventId
find_ghost(const Program& p, EventId user, EventKind kind)
{
    for (EventId id = 0; id < p.num_events(); ++id) {
        const Event& e = p.event(id);
        if (e.kind == kind && e.parent == user) {
            return id;
        }
    }
    return kNone;
}
}  // namespace

EventId
Program::rptw_of(EventId user) const
{
    return find_ghost(*this, user, EventKind::kRptw);
}

EventId
Program::wdb_of(EventId user) const
{
    return find_ghost(*this, user, EventKind::kWdb);
}

EventId
Program::rdb_of(EventId user) const
{
    return find_ghost(*this, user, EventKind::kRdb);
}

std::vector<EventId>
Program::remap_targets(EventId wpte) const
{
    std::vector<EventId> out;
    for (EventId id = 0; id < num_events(); ++id) {
        if (events_[id].kind == EventKind::kInvlpg &&
            events_[id].remap_src == wpte) {
            out.push_back(id);
        }
    }
    return out;
}

std::vector<std::string>
Program::validate(bool vm_enabled) const
{
    std::vector<std::string> problems;
    auto complain = [&problems](const std::string& text) {
        problems.push_back(text);
    };

    if (!vm_enabled) {
        // MCM baseline: plain user instructions only.
        for (EventId id = 0; id < num_events(); ++id) {
            const Event& e = events_[id];
            if (is_ghost(e.kind) || is_support(e.kind)) {
                complain("event " + std::to_string(id) +
                         ": VM event in MCM (non-VM) mode");
            }
            if (e.thread < 0 || e.thread >= num_threads()) {
                complain("event " + std::to_string(id) + ": bad thread");
            }
        }
        for (const auto& [r, w] : rmws_) {
            if (r >= num_events() || w >= num_events() ||
                events_[r].kind != EventKind::kRead ||
                events_[w].kind != EventKind::kWrite ||
                events_[r].thread != events_[w].thread ||
                events_[r].va != events_[w].va ||
                positions_[w] != positions_[r] + 1) {
                complain("rmw: malformed pair");
            }
        }
        return problems;
    }

    for (EventId id = 0; id < num_events(); ++id) {
        const Event& e = events_[id];
        if (e.thread < 0 || e.thread >= num_threads()) {
            complain("event " + std::to_string(id) + ": bad thread");
            continue;
        }
        if (is_ghost(e.kind)) {
            if (e.parent == kNone || e.parent >= num_events()) {
                complain("ghost " + std::to_string(id) + ": missing parent");
                continue;
            }
            const Event& parent = events_[e.parent];
            if (is_ghost(parent.kind)) {
                complain("ghost " + std::to_string(id) + ": ghost parent");
            }
            if (parent.thread != e.thread) {
                complain("ghost " + std::to_string(id) + ": cross-thread parent");
            }
            if (e.kind == EventKind::kRptw && !is_data_access(parent.kind)) {
                complain("Rptw " + std::to_string(id) +
                         ": parent must be a data access");
            }
            if ((e.kind == EventKind::kWdb || e.kind == EventKind::kRdb) &&
                parent.kind != EventKind::kWrite) {
                complain("dirty-bit ghost " + std::to_string(id) +
                         ": parent must be a user Write");
            }
            if (e.va != parent.va) {
                complain("ghost " + std::to_string(id) + ": va differs from parent");
            }
        }
        if (e.kind == EventKind::kWpte && e.map_pa == kNone) {
            complain("Wpte " + std::to_string(id) + ": missing target PA");
        }
        if (e.kind == EventKind::kInvlpg && e.remap_src != kNone) {
            if (e.remap_src >= num_events() ||
                events_[e.remap_src].kind != EventKind::kWpte) {
                complain("Invlpg " + std::to_string(id) + ": bad remap source");
            } else {
                if (events_[e.remap_src].va != e.va) {
                    complain("Invlpg " + std::to_string(id) +
                             ": va differs from its Wpte");
                }
                // A same-core remap Invlpg must follow its Wpte in po.
                if (events_[e.remap_src].thread == e.thread &&
                    !precedes(e.remap_src, id)) {
                    complain("Invlpg " + std::to_string(id) +
                             ": precedes its own Wpte");
                }
            }
        }
        if (is_memory(e.kind) && e.va == kNone) {
            complain("event " + std::to_string(id) + ": memory event without VA");
        }
        if (e.kind == EventKind::kInvlpgAll &&
            (e.remap_src != kNone || e.va != kNone)) {
            complain("INVLPGALL " + std::to_string(id) +
                     ": full flushes take no operand and no remap source");
        }
    }

    // One ghost of each kind per parent; every user Write has a Wdb.
    for (EventId user = 0; user < num_events(); ++user) {
        const Event& e = events_[user];
        if (is_ghost(e.kind)) {
            continue;
        }
        int rptw_count = 0;
        int wdb_count = 0;
        int rdb_count = 0;
        for (EventId g = 0; g < num_events(); ++g) {
            if (!is_ghost(events_[g].kind) || events_[g].parent != user) {
                continue;
            }
            switch (events_[g].kind) {
            case EventKind::kRptw: ++rptw_count; break;
            case EventKind::kWdb: ++wdb_count; break;
            case EventKind::kRdb: ++rdb_count; break;
            default: break;
            }
        }
        if (rptw_count > 1 || wdb_count > 1 || rdb_count > 1) {
            complain("event " + std::to_string(user) + ": duplicate ghosts");
        }
        if (e.kind == EventKind::kWrite && wdb_count != 1) {
            complain("Write " + std::to_string(user) + ": needs exactly one Wdb");
        }
        if (e.kind != EventKind::kWrite && (wdb_count > 0 || rdb_count > 0)) {
            complain("event " + std::to_string(user) +
                     ": dirty-bit ghost on a non-Write");
        }
    }

    // Each Wpte must invoke exactly one Invlpg on every core.
    for (EventId id = 0; id < num_events(); ++id) {
        if (events_[id].kind != EventKind::kWpte) {
            continue;
        }
        std::vector<int> per_core(num_threads(), 0);
        for (const EventId inv : remap_targets(id)) {
            ++per_core[events_[inv].thread];
        }
        for (int t = 0; t < num_threads(); ++t) {
            if (per_core[t] != 1) {
                complain("Wpte " + std::to_string(id) + ": needs exactly one "
                         "Invlpg on core " + std::to_string(t));
            }
        }
    }

    // rmw pairs: same-thread, same-VA, Read immediately before Write.
    for (const auto& [r, w] : rmws_) {
        if (r >= num_events() || w >= num_events() ||
            events_[r].kind != EventKind::kRead ||
            events_[w].kind != EventKind::kWrite) {
            complain("rmw: endpoints must be a Read and a Write");
            continue;
        }
        if (events_[r].thread != events_[w].thread ||
            events_[r].va != events_[w].va) {
            complain("rmw: endpoints must share a thread and a VA");
        }
        if (positions_[w] != positions_[r] + 1) {
            complain("rmw: Write must immediately follow the Read in po");
        }
    }

    return problems;
}

// ---------------------------------------------------------------------------
// ProgramBuilder
// ---------------------------------------------------------------------------

ProgramBuilder&
ProgramBuilder::thread()
{
    current_thread_ = program_.add_thread();
    return *this;
}

EventId
ProgramBuilder::add_on_thread(Event event, int t)
{
    TF_ASSERT(t >= 0);
    event.thread = t;
    return program_.add_event(event);
}

EventId
ProgramBuilder::R(VaId va)
{
    return add_on_thread({EventKind::kRead, 0, va, kNone, kNone, kNone},
                         current_thread_);
}

EventId
ProgramBuilder::W(VaId va)
{
    return add_on_thread({EventKind::kWrite, 0, va, kNone, kNone, kNone},
                         current_thread_);
}

EventId
ProgramBuilder::mfence()
{
    return add_on_thread({EventKind::kMfence, 0, kNone, kNone, kNone, kNone},
                         current_thread_);
}

EventId
ProgramBuilder::wpte(VaId va, PaId new_pa)
{
    return add_on_thread({EventKind::kWpte, 0, va, new_pa, kNone, kNone},
                         current_thread_);
}

EventId
ProgramBuilder::invlpg(VaId va)
{
    return add_on_thread({EventKind::kInvlpg, 0, va, kNone, kNone, kNone},
                         current_thread_);
}

EventId
ProgramBuilder::invlpg_all()
{
    return add_on_thread({EventKind::kInvlpgAll, 0, kNone, kNone, kNone, kNone},
                         current_thread_);
}

EventId
ProgramBuilder::invlpg_for(EventId wpte_id)
{
    return invlpg_for(wpte_id, current_thread_);
}

EventId
ProgramBuilder::invlpg_for(EventId wpte_id, int core)
{
    const Event& src = program_.event(wpte_id);
    TF_ASSERT(src.kind == EventKind::kWpte);
    return add_on_thread(
        {EventKind::kInvlpg, 0, src.va, kNone, kNone, wpte_id}, core);
}

EventId
ProgramBuilder::rptw(EventId user)
{
    return program_.add_ghost(
        {EventKind::kRptw, 0, kNone, kNone, user, kNone});
}

EventId
ProgramBuilder::wdb(EventId user)
{
    return program_.add_ghost({EventKind::kWdb, 0, kNone, kNone, user, kNone});
}

EventId
ProgramBuilder::rdb(EventId user)
{
    return program_.add_ghost({EventKind::kRdb, 0, kNone, kNone, user, kNone});
}

void
ProgramBuilder::rmw(EventId read, EventId write)
{
    program_.add_rmw(read, write);
}

}  // namespace transform::elt
