/// \file
/// Derivation of the full Table-I relation set from a candidate execution,
/// plus well-formedness checking (the paper's "placement rules", section IV-A).
///
/// Derivation performs address-translation value resolution: each data
/// access's physical address is resolved through the TLB entry it reads
/// (rf_ptw), whose mapping value comes from what the page-table walk read
/// (a Wpte's new mapping, a Wdb's preserved mapping, or the initial
/// mapping). Dirty-bit writes preserve their parent's resolved mapping, so
/// resolution is a fixpoint over a dependency graph; cyclic value
/// dependencies render the execution ill-formed.
#pragma once

#include <string>
#include <vector>

#include "elt/execution.h"

namespace transform::elt {

/// Every relation of Table I (plus the auxiliary ones the x86t_elt axioms
/// need), derived from one candidate execution.
struct DerivedRelations {
    bool well_formed = false;
    std::vector<std::string> problems;  ///< non-empty iff !well_formed

    /// Per data access: resolved physical address (kNone if unresolvable).
    std::vector<PaId> resolved_pa;

    /// Per data access: the Wpte that provided its mapping, or kNone when
    /// the initial mapping was used.
    std::vector<EventId> provenance;

    // Baseline MCM relations.
    EdgeSet po;       ///< same-thread sequencing of non-ghost events
    EdgeSet po_loc;   ///< extended-order pairs at the same coherence class
    EdgeSet rf;       ///< write -> read, data (same PA) and PTE locations
    EdgeSet co;       ///< coherence order per class
    EdgeSet fr;       ///< read -> co-successors of its source
    EdgeSet rfe;      ///< rf restricted to cross-thread pairs
    EdgeSet ppo;      ///< TSO preserved program order (po minus W->R)
    EdgeSet fence;    ///< pairs ordered by an intervening MFENCE
    EdgeSet rmw;      ///< declared rmw dependencies

    // Transistency relations (Table I).
    EdgeSet ghost;       ///< user event -> invoked ghost
    EdgeSet rf_ptw;      ///< page-table walk -> users of its TLB entry
    EdgeSet rf_pa;       ///< Wpte -> accesses using its mapping
    EdgeSet co_pa;       ///< alias-creation order per PA
    EdgeSet fr_pa;       ///< access -> co_pa-successors of its mapping source
    EdgeSet fr_va;       ///< access -> later Wptes remapping its VA
    EdgeSet remap;       ///< Wpte -> the Invlpgs it invokes
    EdgeSet ptw_source;  ///< walk's parent -> other users of the walk
};

/// Options controlling derivation (the MCM-only baseline of prior work runs
/// with VM modelling disabled; see synth::Options::enable_vm).
struct DeriveOptions {
    /// When false, data accesses need no translation (ptw_src is ignored and
    /// VAs are treated as distinct physical locations) — the classic MCM
    /// setting used for the x86-TSO baseline comparison.
    bool vm_enabled = true;
};

/// Derives all relations and runs the well-formedness checks.
DerivedRelations derive(const Execution& execution,
                        const DeriveOptions& options = {});

/// Address resolution alone (no witness validation): per-event resolved PA
/// and mapping provenance. Needed by the relaxation engine, which must
/// recompute coherence classes after removing events and before coherence
/// witnesses are rebuilt.
struct ResolutionResult {
    bool ok = false;
    std::vector<PaId> resolved_pa;      ///< kNone where not applicable/failed
    std::vector<EventId> provenance;    ///< kNone = initial mapping
};
ResolutionResult resolve_addresses(const Execution& execution,
                                   const DeriveOptions& options = {});

/// True when the directed graph over \p num_nodes nodes with the union of
/// the given edge sets contains a cycle.
bool has_cycle(int num_nodes, const std::vector<const EdgeSet*>& edge_sets);

}  // namespace transform::elt
