/// \file
/// Derivation of the full Table-I relation set from a candidate execution,
/// plus well-formedness checking (the paper's "placement rules", section IV-A).
///
/// Derivation performs address-translation value resolution: each data
/// access's physical address is resolved through the TLB entry it reads
/// (rf_ptw), whose mapping value comes from what the page-table walk read
/// (a Wpte's new mapping, a Wdb's preserved mapping, or the initial
/// mapping). Dirty-bit writes preserve their parent's resolved mapping, so
/// resolution is a fixpoint over a dependency graph; cyclic value
/// dependencies render the execution ill-formed.
///
/// The synthesis hot path derives millions of candidate executions; to keep
/// that loop allocation-free in steady state, derivation comes in two
/// forms: the convenience `derive()` returning a fresh DerivedRelations,
/// and `derive_into()` which clears and reuses a caller-owned
/// DerivedRelations plus a DeriveScratch holding every internal buffer
/// (resolver state, coherence-class buckets, cycle-check adjacency). See
/// docs/performance.md for the reuse contract.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "elt/execution.h"

namespace transform::elt {

/// Every relation of Table I (plus the auxiliary ones the x86t_elt axioms
/// need), derived from one candidate execution.
struct DerivedRelations {
    bool well_formed = false;
    std::vector<std::string> problems;  ///< non-empty iff !well_formed

    /// Per data access: resolved physical address (kNone if unresolvable).
    std::vector<PaId> resolved_pa;

    /// Per data access: the Wpte that provided its mapping, or kNone when
    /// the initial mapping was used.
    std::vector<EventId> provenance;

    // Baseline MCM relations.
    EdgeSet po;       ///< same-thread sequencing of non-ghost events
    EdgeSet po_loc;   ///< extended-order pairs at the same coherence class
    EdgeSet rf;       ///< write -> read, data (same PA) and PTE locations
    EdgeSet co;       ///< coherence order per class
    EdgeSet fr;       ///< read -> co-successors of its source
    EdgeSet rfe;      ///< rf restricted to cross-thread pairs
    EdgeSet ppo;      ///< TSO preserved program order (po minus W->R)
    EdgeSet fence;    ///< pairs ordered by an intervening MFENCE
    EdgeSet rmw;      ///< declared rmw dependencies

    // Transistency relations (Table I).
    EdgeSet ghost;       ///< user event -> invoked ghost
    EdgeSet rf_ptw;      ///< page-table walk -> users of its TLB entry
    EdgeSet rf_pa;       ///< Wpte -> accesses using its mapping
    EdgeSet co_pa;       ///< alias-creation order per PA
    EdgeSet fr_pa;       ///< access -> co_pa-successors of its mapping source
    EdgeSet fr_va;       ///< access -> later Wptes remapping its VA
    EdgeSet remap;       ///< Wpte -> the Invlpgs it invokes
    EdgeSet ptw_source;  ///< walk's parent -> other users of the walk

    /// Clears every field while keeping vector capacity — the reset step of
    /// the derive_into reuse contract.
    void clear();
};

/// Options controlling derivation (the MCM-only baseline of prior work runs
/// with VM modelling disabled; see synth::Options::enable_vm).
struct DeriveOptions {
    /// When false, data accesses need no translation (ptw_src is ignored and
    /// VAs are treated as distinct physical locations) — the classic MCM
    /// setting used for the x86-TSO baseline comparison.
    bool vm_enabled = true;
};

/// Reusable state for has_cycle: the adjacency structure (CSR form) and DFS
/// bookkeeping, cleared and rebuilt per call without reallocating once
/// capacity has grown to the working-set size.
struct CycleScratch {
    std::vector<int> offset;  ///< CSR row offsets (num_nodes + 1)
    std::vector<int> cursor;  ///< per-node fill cursor while building
    std::vector<int> edges;   ///< flat successor lists
    std::vector<int> color;   ///< DFS colors (0 white / 1 grey / 2 black)
    std::vector<std::pair<int, std::size_t>> stack;  ///< DFS stack
    /// Caller-side temporary for axioms that need to assemble an edge-set
    /// union before the cycle check (e.g. the SC causality variant).
    EdgeSet tmp_edges;
    /// Edge-set arena for the `.mtm` DSL axiom evaluator (spec/eval.h):
    /// slots are acquired stack-wise per expression node and released
    /// wholesale at the end of each axiom evaluation, so in steady state a
    /// DSL axiom evaluates without allocating — each slot's capacity
    /// persists across evaluations. Indexed (not referenced) because the
    /// vector may grow mid-evaluation.
    std::vector<EdgeSet> spec_pool;
    std::size_t spec_pool_live = 0;  ///< slots currently acquired
    /// Evaluator bookkeeping (opaque AST-node keys -> pinned slots /
    /// visit marks), pooled here for the same reuse reasons.
    std::vector<std::pair<const void*, std::size_t>> spec_memo;
};

/// Reusable buffers for derive_into: everything derive allocates per call
/// when no scratch is supplied. One scratch per worker thread; a scratch
/// must not be shared between concurrent derivations.
struct DeriveScratch {
    // Address-resolution state (per event).
    std::vector<int> resolver_state;
    std::vector<PaId> resolver_pa;
    std::vector<EventId> resolver_prov;
    // Coherence-class buckets, replacing the per-call std::map groupings:
    // (encoded class key, sort position) and (key, position, event) rows
    // sorted in place, plus the contiguous group index built from them.
    std::vector<std::pair<std::int64_t, int>> keyed_positions;
    struct KeyedWrite {
        std::int64_t key;
        int pos;
        EventId id;
    };
    std::vector<KeyedWrite> keyed_writes;
    struct ClassGroup {
        std::int64_t key;
        int begin;
        int end;
    };
    std::vector<ClassGroup> class_groups;
    /// Cycle-check scratch, threaded through the axiom evaluators.
    CycleScratch cycle;
};

/// Derives all relations and runs the well-formedness checks.
DerivedRelations derive(const Execution& execution,
                        const DeriveOptions& options = {});

/// As derive(), but writes into \p out (cleared first, capacity kept) and
/// takes every internal buffer from \p scratch. Field-identical to a fresh
/// derive() on the same inputs — asserted by the differential tests. Either
/// pointer argument must be non-null.
void derive_into(const Execution& execution, const DeriveOptions& options,
                 DerivedRelations* out, DeriveScratch* scratch);

/// Address resolution alone (no witness validation): per-event resolved PA
/// and mapping provenance. Needed by the relaxation engine, which must
/// recompute coherence classes after removing events and before coherence
/// witnesses are rebuilt.
struct ResolutionResult {
    bool ok = false;
    std::vector<PaId> resolved_pa;      ///< kNone where not applicable/failed
    std::vector<EventId> provenance;    ///< kNone = initial mapping
};
ResolutionResult resolve_addresses(const Execution& execution,
                                   const DeriveOptions& options = {});

/// As resolve_addresses(), but writes into \p out (vectors re-assigned,
/// capacity kept) and resolves through \p scratch's buffers —
/// allocation-free in steady state when the execution is well-formed.
/// Field-identical to the materializing overload on the same inputs.
void resolve_addresses_into(const Execution& execution,
                            const DeriveOptions& options,
                            ResolutionResult* out, DeriveScratch* scratch);

/// True when the directed graph over \p num_nodes nodes with the union of
/// the given edge sets contains a cycle. \p scratch may be null (a local
/// one is used); passing one makes repeated checks allocation-free.
bool has_cycle(int num_nodes, const EdgeSet* const* edge_sets,
               std::size_t num_edge_sets, CycleScratch* scratch = nullptr);

inline bool
has_cycle(int num_nodes, std::initializer_list<const EdgeSet*> edge_sets,
          CycleScratch* scratch = nullptr)
{
    return has_cycle(num_nodes, edge_sets.begin(), edge_sets.size(), scratch);
}

inline bool
has_cycle(int num_nodes, const std::vector<const EdgeSet*>& edge_sets,
          CycleScratch* scratch = nullptr)
{
    return has_cycle(num_nodes, edge_sets.data(), edge_sets.size(), scratch);
}

}  // namespace transform::elt
