/// \file
/// Candidate executions: a Program plus communication witnesses. Adding the
/// com relations (rf, co and the transistency variants) to a program pins
/// down one dynamic execution whose outcome the memory model judges.
#pragma once

#include <vector>

#include "elt/event.h"
#include "elt/program.h"

namespace transform::elt {

/// Witness relations completing a Program into a candidate execution.
///
/// All fields are indexed by EventId and use kNone where the field does not
/// apply to the event kind:
///  - rf_src[r]: for read-like events (Read, Rptw, Rdb), the write-like
///    event sourcing the value, or kNone when the event reads the initial
///    state (data value 0 / the initial VA->PA mapping).
///  - co_pos[w]: for write-like events, the position of the write in the
///    coherence order of its coherence class (data writes are classed by
///    the *physical address* they resolve to; PTE writes by the PTE
///    location they write). Positions are 0-based and contiguous per class.
///  - ptw_src[e]: for data accesses (Read, Write), the Rptw whose TLB entry
///    supplies e's address translation (rf_ptw in Table I).
///  - co_pa_pos[p]: for Wpte events, the position of the alias creation in
///    co_pa's total order over Wptes targeting the same PA.
struct Execution {
    Program program;
    std::vector<EventId> rf_src;
    std::vector<int> co_pos;
    std::vector<EventId> ptw_src;
    std::vector<int> co_pa_pos;

    /// Builds an execution with all witness fields cleared to kNone.
    static Execution empty_for(Program program);
};

/// A directed edge between events.
using Edge = std::pair<EventId, EventId>;

/// An edge list; small enough at litmus-test scale that vectors beat sets.
using EdgeSet = std::vector<Edge>;

}  // namespace transform::elt
