/// \file
/// ELT programs: events, per-thread program order, ghost/remap structure and
/// rmw dependencies. A Program plus communication witnesses (rf, co, rf_ptw,
/// co_pa — see execution.h) forms a candidate execution.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "elt/event.h"

namespace transform::elt {

/// A static ELT program.
///
/// Non-ghost events (user + support instructions) are sequenced per thread
/// by `po`; ghost events are attached to a parent and inherit its program
/// position. The paper's convention that each VA initially maps to the
/// same-indexed PA is baked in: `num_pas() >= num_vas()` and PA i is VA i's
/// initial frame.
class Program {
  public:
    /// Appends a new empty thread; returns its index.
    int add_thread();

    /// Clears the program back to \p num_threads empty threads while
    /// keeping every vector's capacity — the reuse step of the pooled
    /// construction paths (relaxation rebuild, skeleton materialization).
    /// After reset the program is indistinguishable from a fresh one with
    /// the same add_thread() calls.
    void reset(int num_threads);

    /// Appends a non-ghost event to its thread's program order.
    /// The event's `thread` field selects the thread (must exist).
    EventId add_event(Event event);

    /// Adds a ghost event attached to `event.parent` (same thread).
    EventId add_ghost(Event event);

    /// Declares an rmw dependency between a Read and the Write it pairs with.
    void add_rmw(EventId read, EventId write);

    /// Replaces the stored event at \p id. Structure-preserving: kind and
    /// thread must not change (only operands such as remap_src / map_pa may
    /// be retargeted). Used by the relaxation engine after renumbering.
    void replace_event(EventId id, const Event& event);

    // Accessors -------------------------------------------------------------

    int num_events() const { return static_cast<int>(events_.size()); }
    int num_threads() const { return static_cast<int>(threads_.size()); }
    const Event& event(EventId id) const { return events_[id]; }
    const std::vector<Event>& events() const { return events_; }
    const std::vector<EventId>& thread(int t) const { return threads_[t]; }
    const std::vector<std::vector<EventId>>& threads() const { return threads_; }
    const std::vector<std::pair<EventId, EventId>>& rmw_pairs() const
    {
        return rmws_;
    }

    /// Number of distinct data VAs referenced (max va index + 1).
    int num_vas() const;

    /// Number of PAs in play: at least num_vas() (initial frames) plus any
    /// additional Wpte targets.
    int num_pas() const;

    /// Program-order position of an event within its thread (ghosts inherit
    /// their parent's position).
    int position_of(EventId id) const;

    /// Sub-position used only to lay out ghosts under their parent when
    /// printing: Rdb=0 < Wdb=1 < Rptw=2 < parent=3. Carries no ordering
    /// semantics (same-position events are mutually unordered).
    int subposition_of(EventId id) const;

    /// True when \p before precedes \p after in the extended per-thread
    /// order. Ghosts occupy their parent's position; events at the same
    /// position (an instruction and its ghosts) are unordered.
    bool precedes(EventId before, EventId after) const;

    /// Ghost children of a user event, if any (Rptw / Wdb / Rdb).
    EventId rptw_of(EventId user) const;
    EventId wdb_of(EventId user) const;
    EventId rdb_of(EventId user) const;

    /// All Invlpg events remap-invoked by \p wpte.
    std::vector<EventId> remap_targets(EventId wpte) const;

    /// Structural validation; returns a list of problems (empty when valid).
    /// Checked: thread/parent/remap indices, ghost parent kinds, one ghost
    /// of each kind per parent, Wpte has exactly one Invlpg per core with a
    /// same-core Invlpg po-after it, Invlpg va matches its Wpte's va, rmw
    /// pairs adjacent same-thread same-VA Read->Write, every user Write has
    /// a Wdb ghost. With \p vm_enabled false (the MCM baseline), VM events
    /// must be absent and the ghost requirements are waived.
    std::vector<std::string> validate(bool vm_enabled = true) const;

    /// Total event count (the paper's instruction bound counts every event,
    /// ghosts included — ptwalk2 is a 4-instruction test).
    int instruction_count() const { return num_events(); }

  private:
    std::vector<Event> events_;
    std::vector<std::vector<EventId>> threads_;
    std::vector<int> positions_;  // per event; ghosts: parent's position
    std::vector<std::pair<EventId, EventId>> rmws_;
};

/// Fluent builder for writing ELTs by hand (tests, fixtures, examples).
///
/// Usage:
///   ProgramBuilder b;
///   b.thread();
///   EventId w = b.W(0);           // W x
///   b.wdb(w); b.rptw(w);          // its ghost instructions
///   b.thread();
///   EventId p = b.wpte(0, 1);     // WPTE z = VA x -> PA b
///   b.invlpg_for(p, 0);           // remap-invoked INVLPG on core 0
///   Program prog = b.build();
class ProgramBuilder {
  public:
    /// Starts a new thread; subsequent instructions land on it.
    ProgramBuilder& thread();

    /// User-facing instructions.
    EventId R(VaId va);
    EventId W(VaId va);
    EventId mfence();

    /// Support instructions.
    EventId wpte(VaId va, PaId new_pa);
    EventId invlpg(VaId va);                     ///< spurious
    EventId invlpg_all();                        ///< full TLB flush (extension)
    EventId invlpg_for(EventId wpte_id);         ///< remap-invoked, this thread
    EventId invlpg_for(EventId wpte_id, int core);  ///< remap-invoked, given core

    /// Ghost instructions attached to a previously added user event.
    EventId rptw(EventId user);
    EventId wdb(EventId user);
    EventId rdb(EventId user);

    /// Declares an rmw dependency.
    void rmw(EventId read, EventId write);

    /// Finalizes and returns the program.
    Program build() { return program_; }

  private:
    EventId add_on_thread(Event event, int t);

    Program program_;
    int current_thread_ = -1;
};

}  // namespace transform::elt
