/// \file
/// The paper's worked examples as reusable fixtures. Each function returns a
/// complete candidate execution (program + witnesses) reproducing the
/// corresponding figure of the TransForm paper; the expected verdict under
/// x86-TSO / x86t_elt is noted per fixture and asserted by the test suite
/// and the figure benches.
#pragma once

#include "elt/execution.h"

namespace transform::elt::fixtures {

/// Fig. 2a — the store-buffering (sb) litmus test, MCM view (no VM events).
/// Both reads observe the other core's write: sequentially consistent,
/// PERMITTED under x86-TSO. Evaluate with DeriveOptions{.vm_enabled=false}.
Execution fig2a_sb_mcm();

/// Fig. 2a variant — the classic forbidden sb outcome (both reads return
/// the initial value). PERMITTED under x86-TSO (the store buffer reorders
/// W->R); FORBIDDEN under sequential consistency. MCM view.
Execution sb_both_reads_zero_mcm();

/// Fig. 2b — sb expanded to an ELT (walks + dirty-bit updates), distinct
/// PAs. PERMITTED under x86t_elt.
Execution fig2b_sb_elt();

/// Fig. 2c — sb expanded to an ELT where a PTE write aliases VAs x and y to
/// the same PA: coherence violation, FORBIDDEN (sc_per_loc).
Execution fig2c_sb_elt_aliased();

/// Fig. 4 — single-core test exercising every pa/va edge: two remaps ending
/// with x and y aliased to PA c. PERMITTED.
Execution fig4_remap_chain();

/// Fig. 5a — two reads sharing one TLB entry loaded by a single walk.
/// PERMITTED.
Execution fig5a_shared_walk();

/// Fig. 5b — a spurious INVLPG between the reads forces a second walk.
/// PERMITTED.
Execution fig5b_invlpg_forces_walk();

/// Fig. 6c/6d — the remap test whose MCM view leaves R's source ambiguous;
/// the ELT view resolves it. PERMITTED.
Execution fig6_remap_disambiguation();

/// Fig. 8 — three-core MCM execution with an sb cycle plus an unrelated
/// write; FORBIDDEN but NOT minimal (removing the extra write keeps it
/// forbidden). MCM view.
Execution fig8_non_minimal_mcm();

/// Fig. 10a — the ptwalk2 ELT from the COATCheck suite: a read uses a stale
/// translation after a remap + INVLPG. FORBIDDEN (violates sc_per_loc and
/// invlpg). Four events — the smallest ELT TransForm synthesizes.
Execution fig10a_ptwalk2();

/// Fig. 10b — the dirtybit3 ELT: same prefix as ptwalk2 but the read uses
/// the fresh translation, followed by a write. PERMITTED (and reducible —
/// dropping the trailing write yields a minimal synthesizable ELT).
Execution fig10b_dirtybit3();

/// Fig. 11 — a newly synthesized ELT: the remap's INVLPG lands on another
/// core whose read still uses the stale translation. FORBIDDEN (invlpg).
Execution fig11_new_elt();

}  // namespace transform::elt::fixtures
