/// \file
/// XML serialization of ELT programs and executions, standing in for the
/// Alloy XML instances the paper's pipeline post-processes (section IV-C).
/// The emitter and parser round-trip exactly.
#pragma once

#include <optional>
#include <string>

#include "elt/execution.h"

namespace transform::elt {

/// Emits a program (no witnesses) as XML.
std::string program_to_xml(const Program& program,
                           const std::string& name = "elt");

/// Emits a full candidate execution (program + witnesses) as XML.
std::string execution_to_xml(const Execution& execution,
                             const std::string& name = "elt");

/// Parses XML produced by the emitters above. Returns std::nullopt on
/// malformed input. Missing witness sections yield empty witnesses.
std::optional<Execution> execution_from_xml(const std::string& xml);

}  // namespace transform::elt
