#include "elt/litmus.h"

#include <map>
#include <sstream>
#include <vector>

#include "util/strings.h"

namespace transform::elt {

namespace {

/// Inverse of va_name / pa_name: resolves "x"/"y1"/... to an index, or -1.
int
parse_indexed_name(const std::string& token, const char* alphabet, int count)
{
    if (token.empty()) {
        return -1;
    }
    int base = -1;
    for (int i = 0; i < count; ++i) {
        if (token[0] == alphabet[i]) {
            base = i;
            break;
        }
    }
    if (base < 0) {
        return -1;
    }
    if (token.size() == 1) {
        return base;
    }
    try {
        const int round = std::stoi(token.substr(1));
        if (round <= 0) {
            return -1;
        }
        return round * count + base;
    } catch (...) {
        return -1;
    }
}

int
parse_va(const std::string& token)
{
    return parse_indexed_name(token, "xyuw", 4);
}

int
parse_pa(const std::string& token)
{
    return parse_indexed_name(token, "abcdefgh", 8);
}

std::vector<std::string>
tokenize(const std::string& line)
{
    std::istringstream in(line);
    std::vector<std::string> out;
    std::string token;
    while (in >> token) {
        if (token[0] == '#') {
            break;
        }
        out.push_back(token);
    }
    return out;
}

}  // namespace

std::string
program_to_litmus(const Program& p, const std::string& name)
{
    std::ostringstream out;
    out << "elt " << name << "\n";
    // Names for WPTEs that are remap-referenced.
    std::map<EventId, std::string> wpte_names;
    for (EventId id = 0; id < p.num_events(); ++id) {
        const Event& e = p.event(id);
        if (e.kind == EventKind::kInvlpg && e.remap_src != kNone &&
            wpte_names.find(e.remap_src) == wpte_names.end()) {
            wpte_names.emplace(e.remap_src,
                               "p" + std::to_string(wpte_names.size()));
        }
    }
    // rmw-marked reads.
    std::map<EventId, bool> rmw_read;
    for (const auto& [r, w] : p.rmw_pairs()) {
        rmw_read[r] = true;
        (void)w;
    }
    for (int t = 0; t < p.num_threads(); ++t) {
        out << "thread P" << t << "\n";
        for (const EventId id : p.thread(t)) {
            const Event& e = p.event(id);
            out << "  ";
            switch (e.kind) {
            case EventKind::kRead:
                out << "R " << va_name(e.va)
                    << (p.rptw_of(id) != kNone ? " miss" : " hit");
                if (rmw_read.count(id) > 0) {
                    out << " rmw";
                }
                break;
            case EventKind::kWrite:
                out << "W " << va_name(e.va)
                    << (p.rptw_of(id) != kNone ? " miss" : " hit");
                if (p.rdb_of(id) != kNone) {
                    out << " rdb";
                }
                break;
            case EventKind::kMfence:
                out << "MFENCE";
                break;
            case EventKind::kWpte:
                out << "WPTE " << va_name(e.va) << " -> " << pa_name(e.map_pa);
                if (wpte_names.count(id) > 0) {
                    out << " as " << wpte_names[id];
                }
                break;
            case EventKind::kInvlpg:
                out << "INVLPG " << va_name(e.va);
                if (e.remap_src != kNone) {
                    out << " for " << wpte_names[e.remap_src];
                }
                break;
            case EventKind::kInvlpgAll:
                out << "INVLPGALL";
                break;
            default:
                break;  // ghosts are implied
            }
            out << "\n";
        }
    }
    return out.str();
}

std::optional<ParsedLitmus>
parse_litmus(const std::string& text, std::string* error)
{
    auto fail = [error](int line, const std::string& message)
        -> std::optional<ParsedLitmus> {
        if (error != nullptr) {
            *error = "line " + std::to_string(line) + ": " + message;
        }
        return std::nullopt;
    };

    ParsedLitmus out;
    Program& p = out.program;
    int current_thread = -1;
    bool saw_header = false;

    // Deferred work: ghosts per instruction, remap references, rmw marks.
    struct PendingInvlpg {
        EventId id;
        std::string wpte_name;
        int line;
    };
    std::vector<PendingInvlpg> pending_invlpgs;
    std::map<std::string, EventId> wpte_by_name;
    EventId pending_rmw_read = kNone;
    int pending_rmw_line = 0;

    struct Ghosts {
        EventId parent;
        bool walk;
        bool wdb;
        bool rdb;
    };
    std::vector<Ghosts> ghosts;

    const std::vector<std::string> lines = util::split(text, '\n');
    for (int number = 1; number <= static_cast<int>(lines.size()); ++number) {
        const auto tokens = tokenize(lines[number - 1]);
        if (tokens.empty()) {
            continue;
        }
        const std::string& keyword = tokens[0];
        if (!saw_header) {
            if (keyword != "elt" || tokens.size() != 2) {
                return fail(number, "expected 'elt <name>'");
            }
            out.name = tokens[1];
            saw_header = true;
            continue;
        }
        if (keyword == "thread") {
            current_thread = p.add_thread();
            continue;
        }
        if (current_thread < 0) {
            return fail(number, "instruction before any 'thread'");
        }

        Event e;
        e.thread = current_thread;
        bool walk = false;
        bool wdb = false;
        bool rdb = false;
        bool rmw_mark = false;

        if (keyword == "R" || keyword == "W") {
            if (tokens.size() < 2) {
                return fail(number, "missing address");
            }
            const int va = parse_va(tokens[1]);
            if (va < 0) {
                return fail(number, "bad VA '" + tokens[1] + "'");
            }
            e.kind = keyword == "R" ? EventKind::kRead : EventKind::kWrite;
            e.va = va;
            walk = true;  // default: miss
            wdb = keyword == "W";
            for (std::size_t i = 2; i < tokens.size(); ++i) {
                if (tokens[i] == "miss") {
                    walk = true;
                } else if (tokens[i] == "hit") {
                    walk = false;
                } else if (tokens[i] == "rmw" && keyword == "R") {
                    rmw_mark = true;
                } else if (tokens[i] == "rdb" && keyword == "W") {
                    rdb = true;
                } else {
                    return fail(number, "bad modifier '" + tokens[i] + "'");
                }
            }
        } else if (keyword == "MFENCE") {
            e.kind = EventKind::kMfence;
        } else if (keyword == "INVLPGALL") {
            e.kind = EventKind::kInvlpgAll;
        } else if (keyword == "WPTE") {
            if (tokens.size() < 4 || tokens[2] != "->") {
                return fail(number, "expected 'WPTE <va> -> <pa> [as <id>]'");
            }
            const int va = parse_va(tokens[1]);
            const int pa = parse_pa(tokens[3]);
            if (va < 0 || pa < 0) {
                return fail(number, "bad address in WPTE");
            }
            e.kind = EventKind::kWpte;
            e.va = va;
            e.map_pa = pa;
        } else if (keyword == "INVLPG") {
            if (tokens.size() < 2) {
                return fail(number, "missing address");
            }
            const int va = parse_va(tokens[1]);
            if (va < 0) {
                return fail(number, "bad VA '" + tokens[1] + "'");
            }
            e.kind = EventKind::kInvlpg;
            e.va = va;
        } else {
            return fail(number, "unknown instruction '" + keyword + "'");
        }

        const EventId id = p.add_event(e);

        // Post-instruction bookkeeping.
        if (e.kind == EventKind::kWpte && tokens.size() >= 6 &&
            tokens[4] == "as") {
            if (!wpte_by_name.emplace(tokens[5], id).second) {
                return fail(number, "duplicate WPTE name '" + tokens[5] + "'");
            }
        }
        if (e.kind == EventKind::kInvlpg) {
            if (tokens.size() >= 4 && tokens[2] == "for") {
                pending_invlpgs.push_back({id, tokens[3], number});
            } else if (tokens.size() > 2) {
                return fail(number, "expected 'INVLPG <va> [for <id>]'");
            }
        }
        if (pending_rmw_read != kNone) {
            if (e.kind != EventKind::kWrite ||
                e.va != p.event(pending_rmw_read).va ||
                e.thread != p.event(pending_rmw_read).thread) {
                return fail(pending_rmw_line,
                            "rmw read must be followed by a same-VA W");
            }
            p.add_rmw(pending_rmw_read, id);
            pending_rmw_read = kNone;
        }
        if (rmw_mark) {
            pending_rmw_read = id;
            pending_rmw_line = number;
        }
        if (walk || wdb || rdb) {
            ghosts.push_back({id, walk, wdb, rdb});
        }
    }
    if (!saw_header) {
        return fail(1, "empty input (expected 'elt <name>')");
    }
    if (pending_rmw_read != kNone) {
        return fail(pending_rmw_line, "dangling rmw mark");
    }

    // Resolve remap references.
    for (const PendingInvlpg& pending : pending_invlpgs) {
        const auto it = wpte_by_name.find(pending.wpte_name);
        if (it == wpte_by_name.end()) {
            return fail(pending.line,
                        "unknown WPTE name '" + pending.wpte_name + "'");
        }
        Event patched = p.event(pending.id);
        patched.remap_src = it->second;
        if (p.event(it->second).va != patched.va) {
            return fail(pending.line, "INVLPG va differs from its WPTE");
        }
        p.replace_event(pending.id, patched);
    }

    // Materialize ghosts (parents all exist now).
    for (const Ghosts& g : ghosts) {
        if (g.rdb) {
            p.add_ghost({EventKind::kRdb, 0, kNone, kNone, g.parent, kNone});
        }
        if (g.wdb) {
            p.add_ghost({EventKind::kWdb, 0, kNone, kNone, g.parent, kNone});
        }
        if (g.walk) {
            p.add_ghost({EventKind::kRptw, 0, kNone, kNone, g.parent, kNone});
        }
    }
    return out;
}

}  // namespace transform::elt
