/// \file
/// Human-readable rendering of programs and executions: the paper's tabular
/// litmus-test layout (one column per core, ghosts indented under their
/// invoking instruction), relation dumps, and Graphviz DOT output.
#pragma once

#include <string>

#include "elt/derive.h"
#include "elt/execution.h"

namespace transform::elt {

/// Renders a program as a table, one column per core, in program order;
/// ghost instructions appear indented below their parent.
std::string program_to_string(const Program& program);

/// Renders an execution: the program table followed by each non-empty
/// derived relation as an edge list. \p derived must come from derive() on
/// the same execution.
std::string execution_to_string(const Execution& execution,
                                const DerivedRelations& derived);

/// Graphviz DOT rendering of an execution's derived relations.
std::string execution_to_dot(const Execution& execution,
                             const DerivedRelations& derived,
                             const std::string& graph_name = "elt");

}  // namespace transform::elt
