#include "elt/printer.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace transform::elt {

namespace {

/// Orders the events of one thread for display: by position, ghosts after
/// their parent (the paper lists the user instruction first, then its
/// ghosts).
std::vector<EventId>
display_order(const Program& p, int thread)
{
    std::vector<EventId> out;
    for (const EventId id : p.thread(thread)) {
        out.push_back(id);
        std::vector<EventId> ghosts;
        for (EventId g = 0; g < p.num_events(); ++g) {
            if (is_ghost(p.event(g).kind) && p.event(g).parent == id) {
                ghosts.push_back(g);
            }
        }
        std::sort(ghosts.begin(), ghosts.end(), [&](EventId a, EventId b) {
            return p.subposition_of(a) < p.subposition_of(b);
        });
        out.insert(out.end(), ghosts.begin(), ghosts.end());
    }
    return out;
}

void
append_edges(std::ostringstream& out, const std::string& name,
             const EdgeSet& edges)
{
    if (edges.empty()) {
        return;
    }
    EdgeSet unique = edges;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    out << "  " << name << ":";
    for (const auto& [from, to] : unique) {
        out << " (" << from << "," << to << ")";
    }
    out << "\n";
}

}  // namespace

std::string
program_to_string(const Program& p)
{
    const int threads = p.num_threads();
    std::vector<std::vector<std::string>> columns(threads);
    std::size_t width = 8;
    for (int t = 0; t < threads; ++t) {
        for (const EventId id : display_order(p, t)) {
            std::string line = event_to_string(id, p.event(id));
            if (is_ghost(p.event(id).kind)) {
                line = "  " + line;
            }
            width = std::max(width, line.size());
            columns[t].push_back(line);
        }
    }
    std::size_t rows = 0;
    for (const auto& column : columns) {
        rows = std::max(rows, column.size());
    }
    std::ostringstream out;
    for (int t = 0; t < threads; ++t) {
        out << util::pad_right("C" + std::to_string(t), width + 3);
    }
    out << "\n";
    for (std::size_t r = 0; r < rows; ++r) {
        for (int t = 0; t < threads; ++t) {
            const std::string cell =
                r < columns[t].size() ? columns[t][r] : std::string();
            out << util::pad_right(cell, width + 3);
        }
        out << "\n";
    }
    if (!p.rmw_pairs().empty()) {
        out << "rmw:";
        for (const auto& [r, w] : p.rmw_pairs()) {
            out << " (" << r << "," << w << ")";
        }
        out << "\n";
    }
    return out.str();
}

std::string
execution_to_string(const Execution& execution, const DerivedRelations& d)
{
    std::ostringstream out;
    out << program_to_string(execution.program);
    if (!d.well_formed) {
        out << "ILL-FORMED:\n";
        for (const std::string& problem : d.problems) {
            out << "  " << problem << "\n";
        }
        return out.str();
    }
    out << "relations:\n";
    append_edges(out, "rf", d.rf);
    append_edges(out, "co", d.co);
    append_edges(out, "fr", d.fr);
    append_edges(out, "rmw", d.rmw);
    append_edges(out, "fence", d.fence);
    append_edges(out, "ghost", d.ghost);
    append_edges(out, "rf_ptw", d.rf_ptw);
    append_edges(out, "rf_pa", d.rf_pa);
    append_edges(out, "co_pa", d.co_pa);
    append_edges(out, "fr_pa", d.fr_pa);
    append_edges(out, "fr_va", d.fr_va);
    append_edges(out, "remap", d.remap);
    append_edges(out, "ptw_source", d.ptw_source);
    return out.str();
}

std::string
execution_to_dot(const Execution& execution, const DerivedRelations& d,
                 const std::string& graph_name)
{
    const Program& p = execution.program;
    std::ostringstream out;
    out << "digraph " << graph_name << " {\n  rankdir=TB;\n";
    for (int t = 0; t < p.num_threads(); ++t) {
        out << "  subgraph cluster_" << t << " {\n    label=\"C" << t
            << "\";\n";
        for (const EventId id : p.thread(t)) {
            out << "    e" << id << " [label=\""
                << util::xml_escape(event_to_string(id, p.event(id)))
                << "\"];\n";
        }
        for (EventId g = 0; g < p.num_events(); ++g) {
            if (is_ghost(p.event(g).kind) && p.event(g).thread == t) {
                out << "    e" << g << " [style=dashed, label=\""
                    << util::xml_escape(event_to_string(g, p.event(g)))
                    << "\"];\n";
            }
        }
        out << "  }\n";
    }
    const std::vector<std::pair<const EdgeSet*, const char*>> relations = {
        {&d.rf, "rf"},         {&d.co, "co"},         {&d.fr, "fr"},
        {&d.ghost, "ghost"},   {&d.rf_ptw, "rf_ptw"}, {&d.rf_pa, "rf_pa"},
        {&d.co_pa, "co_pa"},   {&d.fr_pa, "fr_pa"},   {&d.fr_va, "fr_va"},
        {&d.remap, "remap"},   {&d.rmw, "rmw"},
    };
    for (const auto& [edges, name] : relations) {
        EdgeSet unique = *edges;
        std::sort(unique.begin(), unique.end());
        unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
        for (const auto& [from, to] : unique) {
            out << "  e" << from << " -> e" << to << " [label=\"" << name
                << "\"];\n";
        }
    }
    out << "}\n";
    return out.str();
}

}  // namespace transform::elt
