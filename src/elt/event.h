/// \file
/// Event vocabulary for enhanced litmus tests (ELTs), following Table I of
/// the TransForm paper (Hossain, Trippel, Martonosi, ISCA 2020).
///
/// Three tiers of events:
///  - user-facing ISA instructions: Read, Write, Mfence (plus RMW pairs,
///    expressed as a Read and a Write joined by an rmw dependency);
///  - system-level *support* instructions, invoked by system calls:
///    Wpte (a Write to a page-table entry installing a VA->PA mapping) and
///    Invlpg (TLB-entry eviction, remap-induced or spurious);
///  - hardware-level *ghost* instructions, invoked on behalf of user
///    instructions: Rptw (page-table walk: a Read of a PTE location),
///    Wdb (dirty-bit update: a Write of a PTE location) and, optionally,
///    Rdb (the Read half of a dirty-bit RMW; only present under the
///    dirty-bit-as-RMW ablation of section III-A2).
#pragma once

#include <cstdint>
#include <string>

namespace transform::elt {

/// Index of an event within a Program.
using EventId = int;

/// Index of a data virtual address (x = 0, y = 1, u = 2, ...).
using VaId = int;

/// Index of a physical address (a = 0, b = 1, c = 2, ...). Initially each
/// VA i maps to PA i (ELT simplifying assumption 2 in the paper).
using PaId = int;

/// Sentinel for "none".
inline constexpr int kNone = -1;

/// The kinds of events TransForm models.
///
/// kInvlpgAll is this library's implementation of the paper's named
/// extension point (section III-B2: "support for additional IPIs is
/// possible in future TransForm extensions"): a full-TLB-flush IPI that
/// evicts *every* entry of its core's TLB, the way a CR3 write or a
/// global shootdown does. It is always OS-initiated (spurious — never
/// remap-invoked, since a PTE write targets one VA) and is excluded from
/// synthesis unless SkeletonOptions::allow_full_flush is set.
enum class EventKind : std::uint8_t {
    kRead,       ///< user-facing load from a data VA
    kWrite,      ///< user-facing store to a data VA
    kMfence,     ///< user-facing fence
    kWpte,       ///< support: PTE write remapping a VA (system call)
    kInvlpg,     ///< support: TLB entry invalidation for a VA
    kInvlpgAll,  ///< support: full TLB flush on its core (extension)
    kRptw,       ///< ghost: hardware page-table walk (Read of a PTE)
    kWdb,        ///< ghost: dirty-bit update (Write of a PTE)
    kRdb,        ///< ghost: dirty-bit read (only in the RMW-dirty-bit ablation)
};

/// True for instructions fetched in the user-level instruction stream.
constexpr bool
is_user(EventKind k)
{
    return k == EventKind::kRead || k == EventKind::kWrite ||
           k == EventKind::kMfence;
}

/// True for OS-invoked support instructions.
constexpr bool
is_support(EventKind k)
{
    return k == EventKind::kWpte || k == EventKind::kInvlpg ||
           k == EventKind::kInvlpgAll;
}

/// True for TLB-invalidating instructions (targeted or full-flush).
constexpr bool
is_tlb_invalidation(EventKind k)
{
    return k == EventKind::kInvlpg || k == EventKind::kInvlpgAll;
}

/// True for hardware-invoked ghost instructions (not in po).
constexpr bool
is_ghost(EventKind k)
{
    return k == EventKind::kRptw || k == EventKind::kWdb ||
           k == EventKind::kRdb;
}

/// True for events that access shared memory (MemoryEvent in the paper).
constexpr bool
is_memory(EventKind k)
{
    return k == EventKind::kRead || k == EventKind::kWrite ||
           k == EventKind::kWpte || k == EventKind::kRptw ||
           k == EventKind::kWdb || k == EventKind::kRdb;
}

/// True for events that write some location.
constexpr bool
is_write_like(EventKind k)
{
    return k == EventKind::kWrite || k == EventKind::kWpte ||
           k == EventKind::kWdb;
}

/// True for events that read some location.
constexpr bool
is_read_like(EventKind k)
{
    return k == EventKind::kRead || k == EventKind::kRptw ||
           k == EventKind::kRdb;
}

/// True for user-facing accesses of *data* locations.
constexpr bool
is_data_access(EventKind k)
{
    return k == EventKind::kRead || k == EventKind::kWrite;
}

/// True for accesses of *PTE* locations.
constexpr bool
is_pte_access(EventKind k)
{
    return k == EventKind::kWpte || k == EventKind::kRptw ||
           k == EventKind::kWdb || k == EventKind::kRdb;
}

/// Short printable name ("R", "W", "WPTE", ...).
const char* kind_name(EventKind k);

/// One event (micro-op) of an ELT.
///
/// The `va` operand is overloaded by kind, mirroring the paper's notation:
///  - Read/Write: the data VA accessed;
///  - Rptw/Wdb/Rdb/Wpte: the VA whose PTE is accessed (the PTE itself lives
///    at a dedicated PTE location per VA — `z` holds x's mapping, etc.);
///  - Invlpg: the VA whose TLB entry is evicted;
///  - Mfence: kNone.
struct Event {
    EventKind kind = EventKind::kRead;
    int thread = 0;          ///< core id (ghosts: core of their parent)
    VaId va = kNone;         ///< VA operand (see above)
    PaId map_pa = kNone;     ///< Wpte only: PA the VA is being mapped to
    EventId parent = kNone;  ///< ghosts only: user event that invoked it
    EventId remap_src = kNone;  ///< Invlpg only: invoking Wpte (kNone = spurious)
};

/// Human-readable one-line rendering ("W0 x", "WPTE2 z = VA y -> PA c", ...).
std::string event_to_string(EventId id, const Event& event);

/// Names for VAs (x, y, u, w, ...), PTE VAs (z, v, q, t, ...) and PAs
/// (a, b, c, ...), matching the paper's figures for the first few indices.
std::string va_name(VaId va);
std::string pte_name(VaId va);
std::string pa_name(PaId pa);

}  // namespace transform::elt
