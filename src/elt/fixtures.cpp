#include "elt/fixtures.h"

#include "util/logging.h"

namespace transform::elt::fixtures {

namespace {
constexpr VaId kX = 0;
constexpr VaId kY = 1;
constexpr VaId kU = 2;
constexpr PaId kPaA = 0;  // initial frame of x
constexpr PaId kPaB = 1;  // initial frame of y
constexpr PaId kPaC = 2;
}  // namespace

Execution
fig2a_sb_mcm()
{
    ProgramBuilder b;
    b.thread();
    const EventId w0 = b.W(kX);
    const EventId r1 = b.R(kY);
    b.thread();
    const EventId w2 = b.W(kY);
    const EventId r3 = b.R(kX);
    Execution e = Execution::empty_for(b.build());
    e.rf_src[r1] = w2;  // R1 y reads W2
    e.rf_src[r3] = w0;  // R3 x reads W0
    e.co_pos[w0] = 0;
    e.co_pos[w2] = 0;
    return e;
}

Execution
sb_both_reads_zero_mcm()
{
    ProgramBuilder b;
    b.thread();
    const EventId w0 = b.W(kX);
    b.R(kY);  // reads 0 (initial state)
    b.thread();
    const EventId w2 = b.W(kY);
    b.R(kX);  // reads 0 (initial state)
    Execution e = Execution::empty_for(b.build());
    e.co_pos[w0] = 0;
    e.co_pos[w2] = 0;
    return e;
}

Execution
fig2b_sb_elt()
{
    ProgramBuilder b;
    b.thread();
    const EventId w0 = b.W(kX);
    const EventId wdb0 = b.wdb(w0);
    const EventId rptw0 = b.rptw(w0);
    const EventId r1 = b.R(kY);
    const EventId rptw1 = b.rptw(r1);
    b.thread();
    const EventId w2 = b.W(kY);
    const EventId wdb2 = b.wdb(w2);
    const EventId rptw2 = b.rptw(w2);
    const EventId r3 = b.R(kX);
    const EventId rptw3 = b.rptw(r3);
    Execution e = Execution::empty_for(b.build());
    // Translations: each access walks for itself.
    e.ptw_src[w0] = rptw0;
    e.ptw_src[r1] = rptw1;
    e.ptw_src[w2] = rptw2;
    e.ptw_src[r3] = rptw3;
    // Walks read the dirty-bit write of their own store where one exists
    // (matching the rf edges between Wdb and Rptw in the figure), otherwise
    // the initial mapping.
    e.rf_src[rptw0] = wdb0;
    e.rf_src[rptw2] = wdb2;
    e.rf_src[rptw1] = kNone;
    e.rf_src[rptw3] = wdb0;  // C1's walk of z observes C0's dirty-bit update
    // Data: both reads observe the other core's write (as in Fig. 2a).
    e.rf_src[r1] = w2;
    e.rf_src[r3] = w0;
    // Coherence: one data write per PA; PTE locations z and v each hold one
    // dirty-bit write.
    e.co_pos[w0] = 0;
    e.co_pos[w2] = 0;
    e.co_pos[wdb0] = 0;
    e.co_pos[wdb2] = 0;
    return e;
}

Execution
fig2c_sb_elt_aliased()
{
    ProgramBuilder b;
    b.thread();  // C0
    const EventId w0 = b.W(kX);
    const EventId wdb0 = b.wdb(w0);
    const EventId rptw0 = b.rptw(w0);
    b.thread();  // C1 (built next so remap targets can reference the Wpte)
    const EventId wpte3 = b.wpte(kY, kPaA);  // alias y -> PA a
    const EventId inv1 = b.invlpg_for(wpte3, /*core=*/0);
    const EventId inv4 = b.invlpg_for(wpte3, /*core=*/1);
    (void)inv1;
    (void)inv4;
    const EventId w5 = b.W(kY);
    const EventId wdb5 = b.wdb(w5);
    const EventId rptw5 = b.rptw(w5);
    const EventId r6 = b.R(kX);
    const EventId rptw6 = b.rptw(r6);
    // Back on C0, after the INVLPG: the read of y.
    Program prog = b.build();
    // The builder appends in po order per thread; C0's R2 must follow the
    // INVLPG, so add it directly.
    Event r2{EventKind::kRead, 0, kY, kNone, kNone, kNone};
    const EventId r2_id = prog.add_event(r2);
    Event rptw2{EventKind::kRptw, 0, kY, kNone, r2_id, kNone};
    const EventId rptw2_id = prog.add_ghost(rptw2);

    Execution e = Execution::empty_for(std::move(prog));
    e.ptw_src[w0] = rptw0;
    e.ptw_src[w5] = rptw5;
    e.ptw_src[r6] = rptw6;
    e.ptw_src[r2_id] = rptw2_id;
    // x's walks read the initial mapping (x -> a stays put); y's walks read
    // the remap (y -> a).
    e.rf_src[rptw0] = wdb0;
    e.rf_src[rptw6] = wdb0;
    e.rf_src[rptw5] = wpte3;
    e.rf_src[rptw2_id] = wpte3;
    // Data (all on PA a now): R2 y observes W5; R6 x observes W0.
    e.rf_src[r2_id] = w5;
    e.rf_src[r6] = w0;
    // Coherence at PA a: W0 then W5. PTE z: Wdb0. PTE v: WPTE3 then Wdb5.
    e.co_pos[w0] = 0;
    e.co_pos[w5] = 1;
    e.co_pos[wdb0] = 0;
    e.co_pos[wpte3] = 0;
    e.co_pos[wdb5] = 1;
    e.co_pa_pos[wpte3] = 0;
    return e;
}

Execution
fig4_remap_chain()
{
    ProgramBuilder b;
    b.thread();
    const EventId r0 = b.R(kX);
    const EventId rptw0 = b.rptw(r0);
    const EventId r1 = b.R(kY);
    const EventId rptw1 = b.rptw(r1);
    const EventId wpte2 = b.wpte(kY, kPaC);
    b.invlpg_for(wpte2);
    const EventId r4 = b.R(kY);
    const EventId rptw4 = b.rptw(r4);
    const EventId wpte5 = b.wpte(kX, kPaC);
    b.invlpg_for(wpte5);
    const EventId r7 = b.R(kX);
    const EventId rptw7 = b.rptw(r7);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r0] = rptw0;
    e.ptw_src[r1] = rptw1;
    e.ptw_src[r4] = rptw4;
    e.ptw_src[r7] = rptw7;
    e.rf_src[rptw0] = kNone;   // initial x -> a
    e.rf_src[rptw1] = kNone;   // initial y -> b
    e.rf_src[rptw4] = wpte2;   // y -> c
    e.rf_src[rptw7] = wpte5;   // x -> c
    e.co_pos[wpte2] = 0;       // PTE v
    e.co_pos[wpte5] = 0;       // PTE z
    e.co_pa_pos[wpte2] = 0;    // aliases of PA c, creation order
    e.co_pa_pos[wpte5] = 1;
    return e;
}

Execution
fig5a_shared_walk()
{
    ProgramBuilder b;
    b.thread();
    const EventId r0 = b.R(kX);
    const EventId rptw0 = b.rptw(r0);
    const EventId r1 = b.R(kX);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r0] = rptw0;
    e.ptw_src[r1] = rptw0;  // TLB hit: shares the entry
    return e;
}

Execution
fig5b_invlpg_forces_walk()
{
    ProgramBuilder b;
    b.thread();
    const EventId r0 = b.R(kX);
    const EventId rptw0 = b.rptw(r0);
    b.invlpg(kX);  // spurious eviction
    const EventId r2 = b.R(kX);
    const EventId rptw2 = b.rptw(r2);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r0] = rptw0;
    e.ptw_src[r2] = rptw2;  // must re-walk after the eviction
    return e;
}

Execution
fig6_remap_disambiguation()
{
    ProgramBuilder b;
    b.thread();  // C0
    const EventId r0 = b.R(kX);
    const EventId rptw0 = b.rptw(r0);
    const EventId wpte1 = b.wpte(kX, kPaB);
    const EventId inv2 = b.invlpg_for(wpte1, /*core=*/0);
    (void)inv2;
    const EventId w3 = b.W(kX);
    const EventId wdb3 = b.wdb(w3);
    const EventId rptw3 = b.rptw(w3);
    b.thread();  // C1
    const EventId w4 = b.W(kX);
    const EventId wdb4 = b.wdb(w4);
    const EventId rptw4 = b.rptw(w4);
    const EventId inv5 = b.invlpg_for(wpte1, /*core=*/1);
    (void)inv5;
    const EventId r6 = b.R(kX);
    const EventId rptw6 = b.rptw(r6);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r0] = rptw0;
    e.ptw_src[w3] = rptw3;
    e.ptw_src[w4] = rptw4;
    e.ptw_src[r6] = rptw6;
    // R0 and W4 use the initial mapping (x -> a); W3 and R6 use the remap
    // (x -> b).
    e.rf_src[rptw0] = kNone;
    e.rf_src[rptw4] = wdb4;  // initial mapping via W4's own dirty-bit write
    e.rf_src[rptw3] = wdb3;  // the fresh mapping, via W3's own dirty-bit
                             // write (which preserves WPTE1's value)
    e.rf_src[rptw6] = wpte1;
    // Data: R0 reads initial 0 at PA a; R6 reads W3 (both on PA b).
    e.rf_src[r0] = kNone;
    e.rf_src[r6] = w3;
    // Coherence. PA a: W4. PA b: W3. PTE z: WPTE1 vs Wdb4 (old mapping) vs
    // Wdb3 (new mapping): Wdb4 first, then WPTE1, then Wdb3.
    e.co_pos[w4] = 0;
    e.co_pos[w3] = 0;
    e.co_pos[wdb4] = 0;
    e.co_pos[wpte1] = 1;
    e.co_pos[wdb3] = 2;
    e.co_pa_pos[wpte1] = 0;
    return e;
}

Execution
fig8_non_minimal_mcm()
{
    ProgramBuilder b;
    b.thread();
    const EventId w0 = b.W(kX);
    const EventId w1 = b.W(kY);
    b.thread();
    const EventId r2 = b.R(kY);
    b.R(kX);  // reads 0: the sb-style stale read
    b.thread();
    const EventId w4 = b.W(kU);
    Execution e = Execution::empty_for(b.build());
    e.rf_src[r2] = w1;
    e.co_pos[w0] = 0;
    e.co_pos[w1] = 0;
    e.co_pos[w4] = 0;
    return e;
}

Execution
fig10a_ptwalk2()
{
    ProgramBuilder b;
    b.thread();
    const EventId wpte0 = b.wpte(kX, kPaB);
    b.invlpg_for(wpte0);
    const EventId r2 = b.R(kX);
    const EventId rptw2 = b.rptw(r2);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r2] = rptw2;
    e.rf_src[rptw2] = kNone;  // stale: reads the initial mapping x -> a
    e.co_pos[wpte0] = 0;
    e.co_pa_pos[wpte0] = 0;
    return e;
}

Execution
fig10b_dirtybit3()
{
    ProgramBuilder b;
    b.thread();
    const EventId wpte0 = b.wpte(kX, kPaB);
    b.invlpg_for(wpte0);
    const EventId r2 = b.R(kX);
    const EventId rptw2 = b.rptw(r2);
    const EventId w3 = b.W(kX);
    const EventId wdb3 = b.wdb(w3);
    const EventId rptw3 = b.rptw(w3);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r2] = rptw2;
    e.ptw_src[w3] = rptw3;
    e.rf_src[rptw2] = wpte0;  // fresh mapping x -> b
    e.rf_src[rptw3] = wdb3;
    e.rf_src[r2] = kNone;     // reads 0 at PA b
    e.co_pos[wpte0] = 0;
    e.co_pos[wdb3] = 1;
    e.co_pos[w3] = 0;
    e.co_pa_pos[wpte0] = 0;
    return e;
}

Execution
fig11_new_elt()
{
    ProgramBuilder b;
    b.thread();  // C0
    const EventId wpte0 = b.wpte(kX, kPaB);
    b.invlpg_for(wpte0, /*core=*/0);
    b.thread();  // C1
    b.invlpg_for(wpte0, /*core=*/1);
    const EventId r3 = b.R(kX);
    const EventId rptw3 = b.rptw(r3);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r3] = rptw3;
    e.rf_src[rptw3] = kNone;  // stale: initial mapping x -> a
    e.co_pos[wpte0] = 0;
    e.co_pa_pos[wpte0] = 0;
    return e;
}

}  // namespace transform::elt::fixtures
