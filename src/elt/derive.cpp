#include "elt/derive.h"

#include <algorithm>
#include <tuple>

#include "util/logging.h"

namespace transform::elt {

Execution
Execution::empty_for(Program program)
{
    Execution e;
    const int n = program.num_events();
    e.program = std::move(program);
    e.rf_src.assign(n, kNone);
    e.co_pos.assign(n, kNone);
    e.ptw_src.assign(n, kNone);
    e.co_pa_pos.assign(n, kNone);
    return e;
}

void
DerivedRelations::clear()
{
    well_formed = false;
    problems.clear();
    resolved_pa.clear();
    provenance.clear();
    po.clear();
    po_loc.clear();
    rf.clear();
    co.clear();
    fr.clear();
    rfe.clear();
    ppo.clear();
    fence.clear();
    rmw.clear();
    ghost.clear();
    rf_ptw.clear();
    rf_pa.clear();
    co_pa.clear();
    fr_pa.clear();
    fr_va.clear();
    remap.clear();
    ptw_source.clear();
}

namespace {

/// Resolves physical addresses and mapping provenance through the
/// rf_ptw / PTE-read chains. Cyclic value dependencies (a walk reading a
/// dirty-bit write whose parent's translation depends on that walk) are
/// rejected. All state lives in the caller's DeriveScratch.
class Resolver {
  public:
    Resolver(const Execution& exec, std::vector<std::string>* problems,
             DeriveScratch* scratch)
        : exec_(exec), problems_(problems),
          state_(scratch->resolver_state), pa_(scratch->resolver_pa),
          prov_(scratch->resolver_prov)
    {
        const int n = exec.program.num_events();
        state_.assign(n, kUnvisited);
        pa_.assign(n, kNone);
        prov_.assign(n, kNone);
    }

    /// Resolved PA for a data access, Rptw (mapping value), or Wdb (value
    /// written); kNone on failure.
    PaId pa_of(EventId id)
    {
        resolve(id);
        return pa_[id];
    }

    /// The Wpte that originated the mapping used/propagated by \p id, or
    /// kNone for the initial mapping.
    EventId provenance_of(EventId id)
    {
        resolve(id);
        return prov_[id];
    }

  private:
    enum State { kUnvisited, kInProgress, kDone };

    void fail(EventId id, const char* reason)
    {
        problems_->push_back("event " + std::to_string(id) +
                             ": unresolvable translation (" +
                             std::string(reason) + ")");
        pa_[id] = kNone;
        prov_[id] = kNone;
    }

    void resolve(EventId id)
    {
        if (state_[id] == kDone) {
            return;
        }
        if (state_[id] == kInProgress) {
            // Caller detects the cycle via kNone; flag it once.
            fail(id, "cyclic value dependency");
            state_[id] = kDone;
            return;
        }
        state_[id] = kInProgress;
        const Event& e = exec_.program.event(id);
        switch (e.kind) {
        case EventKind::kRead:
        case EventKind::kWrite: {
            const EventId walk = exec_.ptw_src[id];
            if (walk == kNone) {
                fail(id, "data access without a translation source");
                break;
            }
            resolve(walk);
            pa_[id] = pa_[walk];
            prov_[id] = prov_[walk];
            break;
        }
        case EventKind::kRptw:
        case EventKind::kRdb: {
            const EventId src = exec_.rf_src[id];
            if (src == kNone) {
                pa_[id] = e.va;  // initial mapping: VA i -> PA i
                prov_[id] = kNone;
                break;
            }
            const Event& w = exec_.program.event(src);
            if (w.kind == EventKind::kWpte) {
                pa_[id] = w.map_pa;
                prov_[id] = src;
            } else if (w.kind == EventKind::kWdb) {
                resolve(src);
                pa_[id] = pa_[src];
                prov_[id] = prov_[src];
            } else {
                fail(id, "PTE read sourced by a non-PTE write");
            }
            break;
        }
        case EventKind::kWdb: {
            // A dirty-bit update sets a status bit only: it preserves the
            // mapping already in the PTE, i.e. the value left by its
            // immediate coherence predecessor at this PTE location (the
            // initial mapping when it is coherence-first). Matches the
            // values shown in Figs. 2b, 6d and 10b of the paper.
            if (exec_.co_pos[id] == kNone) {
                fail(id, "dirty-bit write without a coherence position");
                break;
            }
            EventId pred = kNone;
            int best = -1;
            for (EventId w = 0; w < exec_.program.num_events(); ++w) {
                const Event& we = exec_.program.event(w);
                if (w != id && is_pte_access(we.kind) &&
                    is_write_like(we.kind) && we.va == e.va &&
                    exec_.co_pos[w] != kNone &&
                    exec_.co_pos[w] < exec_.co_pos[id] &&
                    exec_.co_pos[w] > best) {
                    best = exec_.co_pos[w];
                    pred = w;
                }
            }
            if (pred == kNone) {
                pa_[id] = e.va;  // initial mapping
                prov_[id] = kNone;
            } else if (exec_.program.event(pred).kind == EventKind::kWpte) {
                pa_[id] = exec_.program.event(pred).map_pa;
                prov_[id] = pred;
            } else {
                resolve(pred);
                pa_[id] = pa_[pred];
                prov_[id] = prov_[pred];
            }
            break;
        }
        case EventKind::kWpte:
            pa_[id] = e.map_pa;
            prov_[id] = id;
            break;
        default:
            fail(id, "event kind has no resolvable address");
            break;
        }
        if (state_[id] != kDone) {
            state_[id] = kDone;
        }
    }

    const Execution& exec_;
    std::vector<std::string>* problems_;
    std::vector<int>& state_;
    std::vector<PaId>& pa_;
    std::vector<EventId>& prov_;
};

/// Coherence-class key: data writes/reads resolve to ("data", PA); PTE
/// accessors to ("pte", VA). first == kNone marks "no class".
struct ClassKey {
    int tag;  // 0 = data (by PA), 1 = pte (by VA), -1 = none
    int index;
    bool operator==(const ClassKey&) const = default;
    auto operator<=>(const ClassKey&) const = default;
};

/// Order-preserving integer encoding of ClassKey (tag major, index minor),
/// valid for index >= kNone: sorting encoded keys visits classes exactly as
/// iterating the std::map<ClassKey, ...> this replaced did.
std::int64_t
encode_class(const ClassKey& key)
{
    return (static_cast<std::int64_t>(key.tag) << 32) +
           (static_cast<std::int64_t>(key.index) + 1);
}

/// Rebuilds scratch->class_groups as the contiguous [begin, end) runs of
/// equal keys in the (already sorted) keyed_writes.
void
build_class_groups(DeriveScratch* scratch)
{
    scratch->class_groups.clear();
    const auto& rows = scratch->keyed_writes;
    std::size_t i = 0;
    while (i < rows.size()) {
        std::size_t j = i + 1;
        while (j < rows.size() && rows[j].key == rows[i].key) {
            ++j;
        }
        scratch->class_groups.push_back({rows[i].key, static_cast<int>(i),
                                         static_cast<int>(j)});
        i = j;
    }
}

/// Finds the group with the given key (nullptr when absent).
const DeriveScratch::ClassGroup*
find_class_group(const DeriveScratch& scratch, std::int64_t key)
{
    const auto it = std::lower_bound(
        scratch.class_groups.begin(), scratch.class_groups.end(), key,
        [](const DeriveScratch::ClassGroup& g, std::int64_t k) {
            return g.key < k;
        });
    if (it == scratch.class_groups.end() || it->key != key) {
        return nullptr;
    }
    return &*it;
}

}  // namespace

bool
has_cycle(int num_nodes, const EdgeSet* const* edge_sets,
          std::size_t num_edge_sets, CycleScratch* scratch)
{
    CycleScratch local;
    if (scratch == nullptr) {
        scratch = &local;
    }
    // Adjacency in CSR form, built into reused buffers: count out-degrees,
    // prefix-sum into offsets, then scatter the successors.
    auto& offset = scratch->offset;
    auto& cursor = scratch->cursor;
    auto& flat = scratch->edges;
    offset.assign(num_nodes + 1, 0);
    std::size_t total = 0;
    for (std::size_t s = 0; s < num_edge_sets; ++s) {
        for (const auto& [from, to] : *edge_sets[s]) {
            ++offset[from + 1];
            ++total;
        }
    }
    for (int i = 0; i < num_nodes; ++i) {
        offset[i + 1] += offset[i];
    }
    cursor.assign(offset.begin(), offset.end() - 1);
    flat.resize(total);
    for (std::size_t s = 0; s < num_edge_sets; ++s) {
        for (const auto& [from, to] : *edge_sets[s]) {
            flat[cursor[from]++] = to;
        }
    }
    // Iterative DFS with colors: 0 = white, 1 = grey, 2 = black.
    auto& color = scratch->color;
    auto& stack = scratch->stack;
    color.assign(num_nodes, 0);
    for (int start = 0; start < num_nodes; ++start) {
        if (color[start] != 0) {
            continue;
        }
        stack.clear();
        stack.emplace_back(start, 0);
        color[start] = 1;
        while (!stack.empty()) {
            auto& [node, next] = stack.back();
            if (static_cast<int>(next) < offset[node + 1] - offset[node]) {
                const int successor = flat[offset[node] + next++];
                if (color[successor] == 1) {
                    return true;
                }
                if (color[successor] == 0) {
                    color[successor] = 1;
                    stack.emplace_back(successor, 0);
                }
            } else {
                color[node] = 2;
                stack.pop_back();
            }
        }
    }
    return false;
}

ResolutionResult
resolve_addresses(const Execution& exec, const DeriveOptions& options)
{
    ResolutionResult out;
    DeriveScratch scratch;
    resolve_addresses_into(exec, options, &out, &scratch);
    return out;
}

void
resolve_addresses_into(const Execution& exec, const DeriveOptions& options,
                       ResolutionResult* out, DeriveScratch* scratch)
{
    TF_ASSERT(out != nullptr && scratch != nullptr);
    const Program& p = exec.program;
    const int n = p.num_events();
    out->resolved_pa.assign(n, kNone);
    out->provenance.assign(n, kNone);
    // An empty problems vector never allocates; the failure path (which
    // fills it) only runs on ill-formed executions.
    std::vector<std::string> problems;
    if (options.vm_enabled) {
        Resolver resolver(exec, &problems, scratch);
        for (EventId id = 0; id < n; ++id) {
            if (is_memory(p.event(id).kind)) {
                out->resolved_pa[id] = resolver.pa_of(id);
                out->provenance[id] = resolver.provenance_of(id);
            }
        }
    } else {
        for (EventId id = 0; id < n; ++id) {
            if (is_data_access(p.event(id).kind)) {
                out->resolved_pa[id] = p.event(id).va;
            }
        }
    }
    out->ok = problems.empty();
}

DerivedRelations
derive(const Execution& exec, const DeriveOptions& options)
{
    DerivedRelations out;
    DeriveScratch scratch;
    derive_into(exec, options, &out, &scratch);
    return out;
}

void
derive_into(const Execution& exec, const DeriveOptions& options,
            DerivedRelations* out_ptr, DeriveScratch* scratch)
{
    TF_ASSERT(out_ptr != nullptr && scratch != nullptr);
    DerivedRelations& out = *out_ptr;
    out.clear();
    const Program& p = exec.program;
    const int n = p.num_events();

    out.problems = p.validate(options.vm_enabled);

    auto witness_sizes_ok = static_cast<int>(exec.rf_src.size()) == n &&
                            static_cast<int>(exec.co_pos.size()) == n &&
                            static_cast<int>(exec.ptw_src.size()) == n &&
                            static_cast<int>(exec.co_pa_pos.size()) == n;
    if (!witness_sizes_ok) {
        out.problems.push_back("witness vectors sized differently from program");
        out.well_formed = false;
        return;
    }

    // ------------------------------------------------------------------
    // Resolve addresses.
    // ------------------------------------------------------------------
    out.resolved_pa.assign(n, kNone);
    out.provenance.assign(n, kNone);
    if (options.vm_enabled) {
        Resolver resolver(exec, &out.problems, scratch);
        for (EventId id = 0; id < n; ++id) {
            if (is_memory(p.event(id).kind)) {
                out.resolved_pa[id] = resolver.pa_of(id);
                out.provenance[id] = resolver.provenance_of(id);
            }
        }
    } else {
        for (EventId id = 0; id < n; ++id) {
            const Event& e = p.event(id);
            if (is_data_access(e.kind)) {
                out.resolved_pa[id] = e.va;  // VAs are the locations
            } else if (is_memory(e.kind) || is_ghost(e.kind) ||
                       is_support(e.kind)) {
                if (!is_data_access(e.kind) && e.kind != EventKind::kMfence) {
                    out.problems.push_back(
                        "event " + std::to_string(id) +
                        ": VM events present with VM modelling disabled");
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Well-formedness of the witnesses (placement rules).
    // ------------------------------------------------------------------
    auto class_of = [&](EventId id) -> ClassKey {
        const Event& e = p.event(id);
        if (is_data_access(e.kind)) {
            return {0, out.resolved_pa[id]};
        }
        if (is_pte_access(e.kind)) {
            return {1, e.va};
        }
        return {-1, kNone};
    };

    for (EventId id = 0; id < n; ++id) {
        const Event& e = p.event(id);
        // Problem strings are built only when a rule fires: the happy path
        // (every synthesis candidate) must stay allocation-free.
        auto problem = [&](const char* message) {
            out.problems.push_back("event " + std::to_string(id) + ": " +
                                   message);
        };

        // Field applicability.
        if (!is_read_like(e.kind) && exec.rf_src[id] != kNone) {
            problem("rf source on a non-read");
        }
        if (!is_write_like(e.kind) && exec.co_pos[id] != kNone) {
            problem("co position on a non-write");
        }
        if (!is_data_access(e.kind) && exec.ptw_src[id] != kNone) {
            problem("translation source on a non-data event");
        }
        if (e.kind != EventKind::kWpte && exec.co_pa_pos[id] != kNone) {
            problem("co_pa position on a non-Wpte");
        }
        if (is_write_like(e.kind) && exec.co_pos[id] == kNone) {
            problem("write without a co position");
        }
        if (e.kind == EventKind::kWpte && exec.co_pa_pos[id] == kNone) {
            problem("Wpte without a co_pa position");
        }

        // Translation sourcing (vm mode only).
        if (options.vm_enabled && is_data_access(e.kind)) {
            const EventId walk = exec.ptw_src[id];
            if (walk == kNone) {
                problem("data access without a PT walk");
            } else {
                const Event& w = p.event(walk);
                if (w.kind != EventKind::kRptw) {
                    problem("translation source is not a walk");
                } else {
                    if (w.thread != e.thread) {
                        problem("walk on another core");
                    }
                    if (w.va != e.va) {
                        problem("walk for another VA");
                    }
                    const EventId walker = w.parent;
                    if (walker != id && !p.precedes(walker, id)) {
                        problem(
                            "uses a TLB entry loaded later in program order");
                    }
                    // No Invlpg for this VA may separate the walk from the use.
                    for (EventId other = 0; other < n; ++other) {
                        const Event& i = p.event(other);
                        const bool evicts =
                            (i.kind == EventKind::kInvlpg && i.va == e.va) ||
                            i.kind == EventKind::kInvlpgAll;
                        if (evicts && i.thread == e.thread &&
                            p.precedes(walker, other) &&
                            p.precedes(other, id)) {
                            problem("TLB entry used across an INVLPG");
                        }
                    }
                }
            }
        }

        // The walk's parent must itself use the walk (it missed).
        if (options.vm_enabled && e.kind == EventKind::kRptw) {
            if (exec.ptw_src[e.parent] != id) {
                problem("walk's invoking access does not read its TLB entry");
            }
        }

        // rf source typing.
        if (exec.rf_src[id] != kNone) {
            const EventId src = exec.rf_src[id];
            const Event& w = p.event(src);
            if (src == id || !is_write_like(w.kind)) {
                problem("bad rf source");
            } else if (is_data_access(e.kind)) {
                if (!is_data_access(w.kind)) {
                    problem("data read sourced by PTE write");
                } else if (options.vm_enabled &&
                           (out.resolved_pa[id] == kNone ||
                            out.resolved_pa[id] != out.resolved_pa[src])) {
                    problem("rf across different PAs");
                } else if (!options.vm_enabled && e.va != w.va) {
                    problem("rf across different VAs");
                }
            } else if (is_pte_access(e.kind)) {
                if (!is_pte_access(w.kind) || w.va != e.va) {
                    problem("PTE read sourced off-location");
                }
            }
        }

        // Spurious invalidation usefulness rule (full flushes affect
        // any VA, so any later same-core access justifies them).
        if ((e.kind == EventKind::kInvlpg && e.remap_src == kNone) ||
            e.kind == EventKind::kInvlpgAll) {
            bool useful = false;
            for (EventId other = 0; other < n; ++other) {
                const Event& o = p.event(other);
                if (is_data_access(o.kind) && o.thread == e.thread &&
                    (e.kind == EventKind::kInvlpgAll || o.va == e.va) &&
                    p.precedes(id, other)) {
                    useful = true;
                    break;
                }
            }
            if (!useful) {
                problem("spurious INVLPG with no later "
                        "same-VA access on its core");
            }
        }
    }

    // Coherence positions form a permutation within each class. Gather
    // (class, position) rows into scratch and sort — groups come out in the
    // same class order the std::map grouping produced.
    {
        auto& rows = scratch->keyed_positions;
        rows.clear();
        for (EventId id = 0; id < n; ++id) {
            if (is_write_like(p.event(id).kind) && exec.co_pos[id] != kNone) {
                rows.emplace_back(encode_class(class_of(id)),
                                  exec.co_pos[id]);
            }
        }
        std::sort(rows.begin(), rows.end());
        std::size_t i = 0;
        while (i < rows.size()) {
            std::size_t j = i;
            bool ok = true;
            while (j < rows.size() && rows[j].first == rows[i].first) {
                if (rows[j].second != static_cast<int>(j - i)) {
                    ok = false;
                }
                ++j;
            }
            if (!ok) {
                out.problems.push_back("co positions are not a permutation "
                                       "within a coherence class");
            }
            i = j;
        }
    }
    {
        auto& rows = scratch->keyed_positions;  // keyed by target PA
        rows.clear();
        for (EventId id = 0; id < n; ++id) {
            if (p.event(id).kind == EventKind::kWpte &&
                exec.co_pa_pos[id] != kNone) {
                rows.emplace_back(p.event(id).map_pa, exec.co_pa_pos[id]);
            }
        }
        std::sort(rows.begin(), rows.end());
        std::size_t i = 0;
        while (i < rows.size()) {
            std::size_t j = i;
            bool ok = true;
            while (j < rows.size() && rows[j].first == rows[i].first) {
                if (rows[j].second != static_cast<int>(j - i)) {
                    ok = false;
                }
                ++j;
            }
            if (!ok) {
                out.problems.push_back("co_pa positions are not a "
                                       "permutation within a PA class");
            }
            i = j;
        }
    }
    // co and co_pa must agree where both order the same pair of Wptes.
    for (EventId a = 0; a < n; ++a) {
        for (EventId b = 0; b < n; ++b) {
            const Event& ea = p.event(a);
            const Event& eb = p.event(b);
            if (a != b && ea.kind == EventKind::kWpte &&
                eb.kind == EventKind::kWpte && ea.va == eb.va &&
                ea.map_pa == eb.map_pa && exec.co_pos[a] != kNone &&
                exec.co_pos[b] != kNone) {
                if ((exec.co_pos[a] < exec.co_pos[b]) !=
                    (exec.co_pa_pos[a] < exec.co_pa_pos[b])) {
                    out.problems.push_back("co and co_pa disagree on Wpte order");
                }
            }
        }
    }

    // rmw pairs must act on one physical location.
    if (options.vm_enabled) {
        for (const auto& [r, w] : p.rmw_pairs()) {
            if (out.resolved_pa[r] != out.resolved_pa[w]) {
                out.problems.push_back("rmw endpoints resolve to different PAs");
            }
        }
    }

    out.well_formed = out.problems.empty();
    if (!out.well_formed) {
        return;
    }

    // ------------------------------------------------------------------
    // Derived relations.
    // ------------------------------------------------------------------

    // po: all ordered same-thread pairs of non-ghost events (transitive).
    for (int t = 0; t < p.num_threads(); ++t) {
        const auto& seq = p.thread(t);
        for (std::size_t i = 0; i < seq.size(); ++i) {
            for (std::size_t j = i + 1; j < seq.size(); ++j) {
                out.po.emplace_back(seq[i], seq[j]);
            }
        }
    }

    // Extended-order pairs over memory events, used by po_loc / ppo / fence.
    auto ext_precedes = [&](EventId a, EventId b) { return p.precedes(a, b); };

    for (EventId a = 0; a < n; ++a) {
        for (EventId b = 0; b < n; ++b) {
            if (a == b || !is_memory(p.event(a).kind) ||
                !is_memory(p.event(b).kind)) {
                continue;
            }
            if (!ext_precedes(a, b)) {
                continue;
            }
            // po_loc: same coherence class.
            if (class_of(a) == class_of(b) && class_of(a).tag != -1) {
                out.po_loc.emplace_back(a, b);
            }
            // ppo (TSO): everything but write -> read.
            if (!(is_write_like(p.event(a).kind) &&
                  is_read_like(p.event(b).kind))) {
                out.ppo.emplace_back(a, b);
            }
            // fence: an MFENCE strictly between the two events.
            for (EventId f = 0; f < n; ++f) {
                if (p.event(f).kind == EventKind::kMfence &&
                    ext_precedes(a, f) && ext_precedes(f, b)) {
                    out.fence.emplace_back(a, b);
                    break;
                }
            }
        }
    }

    // rf / rfe.
    for (EventId r = 0; r < n; ++r) {
        const EventId src = exec.rf_src[r];
        if (src == kNone) {
            continue;
        }
        out.rf.emplace_back(src, r);
        if (p.event(src).thread != p.event(r).thread) {
            out.rfe.emplace_back(src, r);
        }
    }

    // co (transitive within each class) and fr. Writes are gathered into
    // scratch rows sorted by (class, coherence position); each class is a
    // contiguous run, visited in the order the map grouping used.
    {
        auto& rows = scratch->keyed_writes;
        rows.clear();
        for (EventId id = 0; id < n; ++id) {
            if (is_write_like(p.event(id).kind)) {
                rows.push_back({encode_class(class_of(id)), exec.co_pos[id],
                                id});
            }
        }
        std::sort(rows.begin(), rows.end(),
                  [](const DeriveScratch::KeyedWrite& a,
                     const DeriveScratch::KeyedWrite& b) {
                      return std::tie(a.key, a.pos) < std::tie(b.key, b.pos);
                  });
        build_class_groups(scratch);
        for (const auto& group : scratch->class_groups) {
            for (int i = group.begin; i < group.end; ++i) {
                for (int j = i + 1; j < group.end; ++j) {
                    out.co.emplace_back(rows[i].id, rows[j].id);
                }
            }
        }
        for (EventId r = 0; r < n; ++r) {
            if (!is_read_like(p.event(r).kind)) {
                continue;
            }
            const auto* group =
                find_class_group(*scratch, encode_class(class_of(r)));
            if (group == nullptr) {
                continue;
            }
            const EventId src = exec.rf_src[r];
            const int src_pos = src == kNone ? -1 : exec.co_pos[src];
            for (int i = group->begin; i < group->end; ++i) {
                const EventId w = rows[i].id;
                if (w != src && exec.co_pos[w] > src_pos) {
                    out.fr.emplace_back(r, w);
                }
            }
        }
    }

    // rmw.
    for (const auto& pair : p.rmw_pairs()) {
        out.rmw.push_back(pair);
    }

    // ghost / remap.
    for (EventId id = 0; id < n; ++id) {
        const Event& e = p.event(id);
        if (is_ghost(e.kind)) {
            out.ghost.emplace_back(e.parent, id);
        }
        if (e.kind == EventKind::kInvlpg && e.remap_src != kNone) {
            out.remap.emplace_back(e.remap_src, id);
        }
    }

    if (!options.vm_enabled) {
        return;
    }

    // rf_ptw and ptw_source.
    for (EventId e = 0; e < n; ++e) {
        const EventId walk = exec.ptw_src[e];
        if (walk == kNone) {
            continue;
        }
        out.rf_ptw.emplace_back(walk, e);
        const EventId walker = p.event(walk).parent;
        if (walker != e) {
            out.ptw_source.emplace_back(walker, e);
        }
    }

    // rf_pa.
    for (EventId e = 0; e < n; ++e) {
        if (is_data_access(p.event(e).kind) && out.provenance[e] != kNone) {
            out.rf_pa.emplace_back(out.provenance[e], e);
        }
    }

    // co_pa (transitive per target-PA class), reusing the write rows.
    {
        auto& rows = scratch->keyed_writes;
        rows.clear();
        for (EventId id = 0; id < n; ++id) {
            if (p.event(id).kind == EventKind::kWpte) {
                rows.push_back({p.event(id).map_pa, exec.co_pa_pos[id], id});
            }
        }
        std::sort(rows.begin(), rows.end(),
                  [](const DeriveScratch::KeyedWrite& a,
                     const DeriveScratch::KeyedWrite& b) {
                      return std::tie(a.key, a.pos) < std::tie(b.key, b.pos);
                  });
        build_class_groups(scratch);
        for (const auto& group : scratch->class_groups) {
            for (int i = group.begin; i < group.end; ++i) {
                for (int j = i + 1; j < group.end; ++j) {
                    out.co_pa.emplace_back(rows[i].id, rows[j].id);
                }
            }
        }
        // fr_pa: provenance's co_pa successors (initial mapping precedes all
        // alias creations for its PA).
        for (EventId e = 0; e < n; ++e) {
            if (!is_data_access(p.event(e).kind)) {
                continue;
            }
            const EventId prov = out.provenance[e];
            const auto* group =
                find_class_group(*scratch, out.resolved_pa[e]);
            if (group == nullptr) {
                continue;
            }
            const int prov_pos = prov == kNone ? -1 : exec.co_pa_pos[prov];
            for (int i = group->begin; i < group->end; ++i) {
                const EventId w = rows[i].id;
                if (w != prov && exec.co_pa_pos[w] > prov_pos) {
                    out.fr_pa.emplace_back(e, w);
                }
            }
        }
    }

    // fr_va: later Wptes remapping the accessed VA (in PTE-location
    // coherence order relative to the provenance write).
    for (EventId e = 0; e < n; ++e) {
        if (!is_data_access(p.event(e).kind)) {
            continue;
        }
        const EventId prov = out.provenance[e];
        const int prov_pos = prov == kNone ? -1 : exec.co_pos[prov];
        for (EventId w = 0; w < n; ++w) {
            if (p.event(w).kind == EventKind::kWpte &&
                p.event(w).va == p.event(e).va && w != prov &&
                exec.co_pos[w] > prov_pos) {
                out.fr_va.emplace_back(e, w);
            }
        }
    }
}

}  // namespace transform::elt
