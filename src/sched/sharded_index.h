/// \file
/// Sharded concurrent canonical-key index — the deduplication point of the
/// parallel synthesis runtime (see DESIGN.md, "Parallel synthesis
/// runtime"). A single mutex around the sequential engine's `std::set`
/// would serialize every worker on every candidate program; this index
/// stripes the key space over N independently-locked hash maps so
/// concurrent record() calls only contend when their keys hash to the same
/// stripe.
///
/// Each key stores the minimum *ticket* (global enumeration position) seen
/// so far. Workers use the returned claim to decide whether to evaluate a
/// candidate (only the current-minimum holder does), and the engine's merge
/// step keeps, per key, exactly the test whose ticket equals the final
/// minimum — which makes the merged suite independent of scheduling order
/// (the determinism contract in DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace transform::sched {

/// A mutex-striped hash map from canonical key to minimum ticket.
///
/// Thread-safety contract: record() may be called from any number of
/// scheduler workers concurrently (each call locks only its key's stripe).
/// The read-side accessors (min_ticket, hits, size) are themselves
/// thread-safe but return settled values only after every writer has
/// finished — the engine reads them in its merge step, after
/// WorkStealingPool::wait() on the suite's job group.
class ShardedKeyIndex {
  public:
    /// Outcome of one record() call.
    struct Claim {
        bool inserted = false;   ///< the key was not in the index before
        bool is_min = false;     ///< this ticket is the minimum recorded yet
        std::uint64_t min_ticket = 0;  ///< minimum ticket after the call
    };

    /// Creates an index with \p stripes independently-locked shards
    /// (clamped to at least 1).
    explicit ShardedKeyIndex(int stripes = 64);
    ~ShardedKeyIndex();

    ShardedKeyIndex(const ShardedKeyIndex&) = delete;
    ShardedKeyIndex& operator=(const ShardedKeyIndex&) = delete;

    /// Records \p ticket for \p key, keeping the per-key minimum. Thread
    /// safe; locks only the key's stripe.
    Claim record(const std::string& key, std::uint64_t ticket);

    /// The minimum ticket recorded for \p key. Must only be called for
    /// recorded keys (the engine's merge step runs after all workers have
    /// finished recording).
    std::uint64_t min_ticket(const std::string& key) const;

    /// record() calls that found their key already present — the number of
    /// candidate programs rejected as duplicates of an earlier candidate.
    std::uint64_t hits() const;

    /// Distinct keys recorded.
    std::size_t size() const;

    /// Stripe count (exposed for tests).
    int stripes() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace transform::sched
