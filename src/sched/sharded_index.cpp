#include "sched/sharded_index.h"

#include <atomic>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace transform::sched {

struct ShardedKeyIndex::Impl {
    struct Stripe {
        mutable std::mutex mu;
        std::unordered_map<std::string, std::uint64_t> min_by_key;
    };

    explicit Impl(int stripes)
        : stripes(static_cast<std::size_t>(stripes < 1 ? 1 : stripes))
    {
    }

    Stripe&
    stripe_for(const std::string& key)
    {
        return stripes[std::hash<std::string>{}(key) % stripes.size()];
    }

    const Stripe&
    stripe_for(const std::string& key) const
    {
        return stripes[std::hash<std::string>{}(key) % stripes.size()];
    }

    std::vector<Stripe> stripes;
    std::atomic<std::uint64_t> hits{0};
};

ShardedKeyIndex::ShardedKeyIndex(int stripes)
    : impl_(std::make_unique<Impl>(stripes))
{
}

ShardedKeyIndex::~ShardedKeyIndex() = default;

ShardedKeyIndex::Claim
ShardedKeyIndex::record(const std::string& key, std::uint64_t ticket)
{
    Impl::Stripe& stripe = impl_->stripe_for(key);
    Claim claim;
    {
        std::lock_guard<std::mutex> lock(stripe.mu);
        auto [it, inserted] = stripe.min_by_key.emplace(key, ticket);
        claim.inserted = inserted;
        if (!inserted && ticket < it->second) {
            it->second = ticket;
        }
        claim.is_min = it->second == ticket;
        claim.min_ticket = it->second;
    }
    if (!claim.inserted) {
        impl_->hits.fetch_add(1, std::memory_order_relaxed);
    }
    return claim;
}

std::uint64_t
ShardedKeyIndex::min_ticket(const std::string& key) const
{
    const Impl::Stripe& stripe = impl_->stripe_for(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    const auto it = stripe.min_by_key.find(key);
    TF_ASSERT(it != stripe.min_by_key.end());
    return it->second;
}

std::uint64_t
ShardedKeyIndex::hits() const
{
    return impl_->hits.load();
}

std::size_t
ShardedKeyIndex::size() const
{
    std::size_t total = 0;
    for (const Impl::Stripe& stripe : impl_->stripes) {
        std::lock_guard<std::mutex> lock(stripe.mu);
        total += stripe.min_by_key.size();
    }
    return total;
}

int
ShardedKeyIndex::stripes() const
{
    return static_cast<int>(impl_->stripes.size());
}

}  // namespace transform::sched
