/// \file
/// Work-stealing thread-pool scheduler for the parallel synthesis runtime
/// (see DESIGN.md, "Parallel synthesis runtime").
///
/// The synthesis engine shards its search space into coarse, independent
/// jobs (one per (event-bound, skeleton-prefix) slice) and hands the batch
/// to a WorkStealingPool. Each worker owns a deque seeded round-robin;
/// workers drain their own deque front-to-back and, when empty, steal the
/// back half of a victim's deque. Jobs never spawn jobs, so the pool runs a
/// batch to completion and the workers (std::jthread) exit on their own.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace transform::sched {

/// Aggregate counters for one scheduled batch (the scheduler analogue of
/// sat::SolverStats). The pool fills the scheduling fields; the synthesis
/// engine adds the dedup-index field before surfacing the struct through
/// SuiteResult and `elt_synth --stats`.
struct SchedulerStats {
    int workers = 0;                 ///< worker threads used for the batch
    std::uint64_t jobs_run = 0;      ///< jobs executed across all workers
    std::uint64_t steals = 0;        ///< successful steal operations
    std::uint64_t jobs_stolen = 0;   ///< jobs migrated by those steals
    std::uint64_t dedup_hits = 0;    ///< duplicate keys seen by the index

    /// Accumulates another batch's counters (per-suite totals in
    /// synthesize_all; workers takes the maximum).
    void merge(const SchedulerStats& other);
};

/// Resolves a user-facing jobs knob: any non-positive value means "one
/// worker per hardware thread".
int resolve_jobs(int jobs);

/// A single-shot batch scheduler with per-worker deques and steal-half
/// balancing. Construct with a worker count, submit one batch with
/// run_batch(), read stats(). The pool is not reusable across batches —
/// the synthesis engine builds one per suite, which keeps the lifetime
/// rules trivial (no idle thread parking, no task-spawn races).
class WorkStealingPool {
  public:
    /// A job receives the index of the worker executing it.
    using Job = std::function<void(int worker)>;

    /// Creates a pool that will run batches on \p workers threads
    /// (resolved via resolve_jobs).
    explicit WorkStealingPool(int workers);
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool&) = delete;
    WorkStealingPool& operator=(const WorkStealingPool&) = delete;

    /// Runs \p jobs to completion. Jobs are seeded round-robin across the
    /// worker deques in batch order; idle workers steal half a victim's
    /// remaining jobs at a time. Blocks until every job has finished.
    void run_batch(std::vector<Job> jobs);

    /// Worker count the pool was built with.
    int workers() const;

    /// Counters for the batches run so far (dedup_hits stays 0 here; the
    /// caller owns that field).
    SchedulerStats stats() const;

  private:
    struct Impl;
    Impl* impl_;
};

}  // namespace transform::sched
