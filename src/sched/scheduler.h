/// \file
/// The v2 work-stealing scheduler of the parallel synthesis runtime (see
/// docs/scheduler.md and DESIGN.md, "Parallel synthesis runtime").
///
/// v1 was a single-shot batch object: one mutex-guarded deque per worker,
/// threads spawned per batch, destroyed at the end, and no way to submit
/// work while a batch ran. v2 is a *persistent shared pool*: worker threads
/// start once, park when idle, and serve any number of concurrent *job
/// groups*. Each worker owns a lock-free Chase-Lev deque (owner pops LIFO,
/// thieves steal FIFO); external submitters go through a small injection
/// queue, and a running job may spawn follow-up jobs into the same group —
/// the mechanism behind adaptive shard re-splitting in the synthesis
/// engine, and the reason `synthesize_all_parallel` can feed every axiom's
/// shards to one pool instead of spinning up per-axiom thread groups.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace transform::obs {
class TraceCollector;
}

namespace transform::sched {

/// Aggregate counters for a job group or a pool lifetime (the scheduler
/// analogue of sat::SolverStats). The pool fills the scheduling fields; the
/// synthesis engine adds the re-split / dedup / queue-wait fields before
/// surfacing the struct through SuiteResult and `elt_synth --stats`.
struct SchedulerStats {
    int workers = 0;                 ///< worker threads in the pool
    std::uint64_t jobs_run = 0;      ///< jobs executed
    std::uint64_t steals = 0;        ///< jobs migrated by stealing
                                     ///< (Chase-Lev steals take one job)
    /// Lazy in-search shard re-splits: a shard job abandoned its search at
    /// the re-split threshold and resubmitted the remainder as children
    /// (engine).
    std::uint64_t lazy_resplits = 0;
    /// The subset of lazy_resplits whose shard prefix had already closed
    /// thread 0 — splits that constrain thread 1+ decisions (engine).
    std::uint64_t closed_prefix_splits = 0;
    /// Candidates enumerated but not searched while boundary children
    /// replayed their ancestors' visited prefixes — the lazy design's only
    /// repeated enumeration work. Skips compound down a re-split chain (a
    /// child inherits its parent's unconsumed skip), so this is measured,
    /// not modelled (engine).
    std::uint64_t skip_enumerations = 0;
    std::uint64_t dedup_hits = 0;    ///< duplicate keys seen by the index
    /// Wall time a suite's jobs spent queued on a shared pool before the
    /// first one ran (its deadline armed); excluded from
    /// SuiteResult::seconds (engine).
    double queue_wait_seconds = 0.0;
    /// Jobs whose closure escaped with an exception and were contained by
    /// the pool's job-boundary backstop. The synthesis engine catches and
    /// retries its own shard faults before they reach the pool, so a
    /// nonzero count here means a fault outside the engine's guarded
    /// region (pool).
    std::uint64_t job_faults = 0;
    /// Fault containment (engine, docs/robustness.md): shard jobs
    /// re-enqueued after a contained fault, and shard jobs quarantined
    /// once the retry budget ran out (their structured errors are in
    /// SuiteResult::failures).
    std::uint64_t shard_retries = 0;
    std::uint64_t shards_quarantined = 0;
    /// Checkpointing (engine): completed shard records appended to the
    /// `--checkpoint` journal, and shards replayed from it on `--resume`
    /// instead of re-searched.
    std::uint64_t checkpoint_shards_saved = 0;
    std::uint64_t checkpoint_shards_replayed = 0;
    /// Observed-cost re-split feedback (engine,
    /// SynthesisOptions::observed_cost_feedback): shard jobs whose armed
    /// re-split threshold came from the run-time EWMA of observed
    /// per-candidate cost rather than the static model, and the range of
    /// thresholds armed across the group's jobs (0/0 when no job armed
    /// one — fixed depth, explicit threshold, or shards too small to
    /// split).
    std::uint64_t observed_cost_resplits = 0;
    std::uint64_t resplit_threshold_min = 0;
    std::uint64_t resplit_threshold_max = 0;

    /// Accumulates another group's counters (per-suite totals in
    /// synthesize_all; `workers` and `queue_wait_seconds` — which overlap
    /// across groups rather than add — take the maximum; the threshold
    /// range widens).
    void merge(const SchedulerStats& other);
};

/// Resolves a user-facing jobs knob: any non-positive value means "one
/// worker per hardware thread".
int resolve_jobs(int jobs);

/// A persistent work-stealing thread pool shared by every search in the
/// process that holds a reference to it.
///
/// Work is organized in *job groups*: a group is a wait-able set of jobs
/// (one synthesis suite submits one group; `synthesize_all_parallel`
/// submits one group per axiom to a single pool). Groups are independent —
/// jobs of different groups interleave freely on the same workers — and
/// each group carries its own counters so a suite's stats stay attributable
/// even on a shared pool.
///
/// Thread-safety contract: make_group/submit/wait/stats are safe from any
/// thread, including from inside a running job (self-submission is how
/// adaptive re-splitting spawns child shards). The destructor joins the
/// workers; every group must be wait()ed before the pool is destroyed.
class WorkStealingPool {
  public:
    /// A job receives the index of the worker executing it (in
    /// [0, workers())); useful for worker-local accumulation.
    using Job = std::function<void(int worker)>;

    /// A wait-able set of jobs. Opaque: created by make_group(), passed
    /// back to submit()/wait()/group_stats().
    class JobGroup;

    /// Shared ownership so the engine can capture the handle in job
    /// closures that outlive the submitting scope.
    using GroupHandle = std::shared_ptr<JobGroup>;

    /// Starts \p workers persistent worker threads (resolved via
    /// resolve_jobs; 0 = one per hardware thread).
    explicit WorkStealingPool(int workers);

    /// Joins the workers. Undefined if a group still has pending jobs —
    /// wait() for every submitted group first.
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool&) = delete;
    WorkStealingPool& operator=(const WorkStealingPool&) = delete;

    /// Creates an empty job group. Thread-safe.
    GroupHandle make_group();

    /// Submits one job to \p group. Thread-safe. When called from inside a
    /// job running on this pool, the new job is pushed onto the calling
    /// worker's own deque (lock-free; idle workers steal it); otherwise it
    /// goes through the injection queue. May be called concurrently with
    /// wait() on the same group only from inside one of the group's jobs
    /// (a job's spawns are counted before the job completes, so the group
    /// cannot be observed complete early).
    void submit(const GroupHandle& group, Job job);

    /// Submits a batch of jobs to \p group in one injection-queue
    /// operation. Thread-safe; same semantics as the single-job overload.
    void submit(const GroupHandle& group, std::vector<Job> jobs);

    /// Blocks until every job submitted to \p group — including jobs
    /// spawned by the group's own jobs — has finished. Thread-safe; must
    /// not be called from inside a job (a worker waiting on its own pool
    /// can deadlock). Returns immediately for a group with no jobs.
    void wait(const GroupHandle& group);

    /// Convenience for one-shot callers (elt_check, tests):
    /// make_group() + submit() + wait().
    void run_batch(std::vector<Job> jobs);

    /// Worker count the pool was built with.
    int workers() const;

    /// Attaches (or detaches, nullptr) a span collector: every job
    /// executed afterwards is recorded as a complete "job" span on the
    /// executing worker's trace lane, so gaps between job spans expose
    /// steal/park/injection overhead in the timeline. The collector must
    /// outlive the pool or be detached first; when none is attached the
    /// cost is one relaxed load per job.
    void set_trace(obs::TraceCollector* trace);

    /// Pool-lifetime counters across all groups. Thread-safe; counters are
    /// monotonic but only settled for groups that have been wait()ed.
    SchedulerStats stats() const;

    /// Counters attributed to one group. The pool fills only `workers`,
    /// `jobs_run`, `steals`, and `job_faults`; the engine-owned fields —
    /// `lazy_resplits`, `closed_prefix_splits`, `skip_enumerations`,
    /// `dedup_hits`, `queue_wait_seconds`, `shard_retries`,
    /// `shards_quarantined`, and the checkpoint counters — stay 0 here and
    /// are filled by the synthesis engine into SuiteResult::scheduler.
    /// Thread-safe; settled once wait(group) has returned.
    SchedulerStats group_stats(const GroupHandle& group) const;

  private:
    struct Impl;
    Impl* impl_;
};

}  // namespace transform::sched
