#include "sched/scheduler.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>

#include "util/logging.h"

namespace transform::sched {

void
SchedulerStats::merge(const SchedulerStats& other)
{
    workers = std::max(workers, other.workers);
    jobs_run += other.jobs_run;
    steals += other.steals;
    jobs_stolen += other.jobs_stolen;
    dedup_hits += other.dedup_hits;
}

int
resolve_jobs(int jobs)
{
    if (jobs > 0) {
        return jobs;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

struct WorkStealingPool::Impl {
    /// One worker's deque. The owner pops from the front (batch order);
    /// thieves take from the back, so the two ends only contend when the
    /// deque is nearly empty — and a plain mutex per deque is then cheap,
    /// because jobs are coarse (each one is a whole skeleton-shard search).
    struct WorkerQueue {
        std::mutex mu;
        std::deque<Job> jobs;
    };

    explicit Impl(int workers)
        : queues(static_cast<std::size_t>(workers))
    {
    }

    /// Jobs seeded or stolen but not yet finished. Workers exit when this
    /// reaches zero; transfers between deques leave it unchanged, so a
    /// momentarily-empty deque during a steal cannot trigger early exit.
    std::atomic<std::uint64_t> remaining{0};
    std::atomic<std::uint64_t> jobs_run{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> jobs_stolen{0};
    std::vector<WorkerQueue> queues;

    bool
    pop_own(int self, Job* out)
    {
        WorkerQueue& q = queues[static_cast<std::size_t>(self)];
        std::lock_guard<std::mutex> lock(q.mu);
        if (q.jobs.empty()) {
            return false;
        }
        *out = std::move(q.jobs.front());
        q.jobs.pop_front();
        return true;
    }

    /// Steals the back half of the fullest victim's deque into our own,
    /// then pops one job from it. Returns false when every deque is empty.
    bool
    steal(int self, Job* out)
    {
        const std::size_t n = queues.size();
        for (std::size_t hop = 1; hop < n; ++hop) {
            const std::size_t victim =
                (static_cast<std::size_t>(self) + hop) % n;
            std::deque<Job> loot;
            {
                WorkerQueue& q = queues[victim];
                std::lock_guard<std::mutex> lock(q.mu);
                const std::size_t take = (q.jobs.size() + 1) / 2;
                for (std::size_t i = 0; i < take; ++i) {
                    loot.push_front(std::move(q.jobs.back()));
                    q.jobs.pop_back();
                }
            }
            if (loot.empty()) {
                continue;
            }
            steals.fetch_add(1, std::memory_order_relaxed);
            jobs_stolen.fetch_add(loot.size(), std::memory_order_relaxed);
            *out = std::move(loot.front());
            loot.pop_front();
            if (!loot.empty()) {
                WorkerQueue& mine = queues[static_cast<std::size_t>(self)];
                std::lock_guard<std::mutex> lock(mine.mu);
                for (Job& job : loot) {
                    mine.jobs.push_back(std::move(job));
                }
            }
            return true;
        }
        return false;
    }

    void
    work(int self)
    {
        Job job;
        // Backoff while out of work: jobs exist but are all in flight (or
        // mid-transfer) and nothing spawns new ones. A shard's tail can run
        // for minutes, so idle workers must not burn a core — back off
        // exponentially to a bounded sleep instead of spinning on yield.
        std::chrono::microseconds backoff{0};
        constexpr std::chrono::microseconds kMaxBackoff{2000};
        while (remaining.load(std::memory_order_acquire) > 0) {
            if (pop_own(self, &job) || steal(self, &job)) {
                backoff = std::chrono::microseconds{0};
                job(self);
                job = nullptr;
                jobs_run.fetch_add(1, std::memory_order_relaxed);
                remaining.fetch_sub(1, std::memory_order_acq_rel);
            } else if (backoff.count() == 0) {
                std::this_thread::yield();
                backoff = std::chrono::microseconds{50};
            } else {
                std::this_thread::sleep_for(backoff);
                backoff = std::min(backoff * 2, kMaxBackoff);
            }
        }
    }
};

WorkStealingPool::WorkStealingPool(int workers)
    : impl_(new Impl(resolve_jobs(workers)))
{
}

WorkStealingPool::~WorkStealingPool() { delete impl_; }

int
WorkStealingPool::workers() const
{
    return static_cast<int>(impl_->queues.size());
}

SchedulerStats
WorkStealingPool::stats() const
{
    SchedulerStats stats;
    stats.workers = workers();
    stats.jobs_run = impl_->jobs_run.load();
    stats.steals = impl_->steals.load();
    stats.jobs_stolen = impl_->jobs_stolen.load();
    return stats;
}

void
WorkStealingPool::run_batch(std::vector<Job> jobs)
{
    TF_ASSERT(impl_->remaining.load() == 0);
    if (jobs.empty()) {
        return;
    }
    const std::size_t n = impl_->queues.size();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        impl_->queues[i % n].jobs.push_back(std::move(jobs[i]));
    }
    impl_->remaining.store(jobs.size(), std::memory_order_release);
    std::vector<std::jthread> threads;
    threads.reserve(n);
    for (std::size_t w = 0; w < n; ++w) {
        threads.emplace_back(
            [this, w] { impl_->work(static_cast<int>(w)); });
    }
    // std::jthread joins on destruction; run_batch returns once every
    // worker has observed remaining == 0, i.e. the batch is complete.
}

}  // namespace transform::sched
