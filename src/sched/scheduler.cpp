#include "sched/scheduler.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/chase_lev.h"
#include "util/logging.h"

namespace transform::sched {

void
SchedulerStats::merge(const SchedulerStats& other)
{
    workers = std::max(workers, other.workers);
    jobs_run += other.jobs_run;
    steals += other.steals;
    lazy_resplits += other.lazy_resplits;
    closed_prefix_splits += other.closed_prefix_splits;
    skip_enumerations += other.skip_enumerations;
    dedup_hits += other.dedup_hits;
    queue_wait_seconds = std::max(queue_wait_seconds,
                                  other.queue_wait_seconds);
    job_faults += other.job_faults;
    shard_retries += other.shard_retries;
    shards_quarantined += other.shards_quarantined;
    checkpoint_shards_saved += other.checkpoint_shards_saved;
    checkpoint_shards_replayed += other.checkpoint_shards_replayed;
    observed_cost_resplits += other.observed_cost_resplits;
    if (other.resplit_threshold_min > 0) {
        resplit_threshold_min =
            resplit_threshold_min == 0
                ? other.resplit_threshold_min
                : std::min(resplit_threshold_min,
                           other.resplit_threshold_min);
    }
    resplit_threshold_max =
        std::max(resplit_threshold_max, other.resplit_threshold_max);
}

int
resolve_jobs(int jobs)
{
    if (jobs > 0) {
        return jobs;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

/// A wait-able set of jobs with per-group counters. `pending` counts
/// submitted-but-unfinished jobs; a job's spawns increment it before the
/// job's own decrement, so `pending == 0` is only observable once the whole
/// spawn tree has finished.
class WorkStealingPool::JobGroup {
  public:
    std::atomic<std::uint64_t> pending{0};
    std::atomic<std::uint64_t> jobs_run{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> job_faults{0};

    /// Marks one job finished; wakes waiters on the last one. The notify
    /// runs under the mutex so a waiter cannot check the predicate between
    /// the decrement and the notify and then sleep forever.
    void
    finish_one()
    {
        if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(mu_);
            cv_.notify_all();
        }
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] {
            return pending.load(std::memory_order_acquire) == 0;
        });
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
};

namespace {

/// One unit of work in flight: the closure plus the group it belongs to
/// (shared ownership so the group outlives the caller's handle if needed).
struct JobRecord {
    WorkStealingPool::Job fn;
    std::shared_ptr<WorkStealingPool::JobGroup> group;
};

/// How many injected jobs a worker moves onto its own deque per injection
/// lock acquisition (the rest stay injectable for other workers).
constexpr int kInjectChunk = 8;

/// How long a worker parks between re-polls while jobs are still in flight
/// somewhere (they may spawn children through the lock-free owner-push
/// path, whose wakeup can race the park decision). Shard jobs run for
/// milliseconds to minutes, so a 2 ms re-poll is noise — and once the pool
/// has no pending work at all, workers park indefinitely instead (zero
/// steady-state wakeups on an idle pool).
constexpr std::chrono::milliseconds kParkInterval{2};

}  // namespace

struct WorkStealingPool::Impl {
    explicit Impl(int workers)
    {
        deques.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w) {
            deques.push_back(std::make_unique<ChaseLevDeque<JobRecord*>>());
        }
        threads.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w) {
            threads.emplace_back([this, w] { work(w); });
        }
    }

    void
    shutdown()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            stop = true;
        }
        cv.notify_all();
        threads.clear();  // std::jthread joins on destruction
        // Reclaim records the contract says should not exist (groups must
        // be waited before destruction) — belt and braces, not a leak.
        JobRecord* rec = nullptr;
        for (auto& deque : deques) {
            while (deque->pop(&rec)) {
                delete rec;
            }
        }
        for (JobRecord* injected : inject) {
            delete injected;
        }
        inject.clear();
    }

    /// Enqueues one record: lock-free onto the calling worker's own deque
    /// when submitting from inside a job on this pool, else through the
    /// injection queue.
    void submit_record(JobRecord* rec);

    /// The worker loop: own deque, then injection queue, then stealing;
    /// parks on the condition variable when all three come up empty.
    void work(int self);

    /// Pulls from the injection queue, moving a chunk onto \p self's deque.
    bool
    take_injected(int self, JobRecord** out)
    {
        int moved = 0;
        {
            std::lock_guard<std::mutex> lock(mu);
            if (inject.empty()) {
                return false;
            }
            *out = inject.front();
            inject.pop_front();
            while (!inject.empty() && moved < kInjectChunk) {
                deques[static_cast<std::size_t>(self)]->push(inject.front());
                inject.pop_front();
                ++moved;
            }
        }
        if (moved > 0 && sleepers.load(std::memory_order_relaxed) > 0) {
            cv.notify_all();
        }
        return true;
    }

    /// One round over the other workers' deques, stealing a single job
    /// (Chase-Lev steals are one-at-a-time; shard jobs are coarse enough
    /// that steal-half batching no longer pays for its complexity).
    bool
    try_steal(int self, JobRecord** out)
    {
        const int n = static_cast<int>(deques.size());
        for (int hop = 1; hop < n; ++hop) {
            const int victim = (self + hop) % n;
            if (deques[static_cast<std::size_t>(victim)]->steal(out)) {
                steals_total.fetch_add(1, std::memory_order_relaxed);
                (*out)->group->steals.fetch_add(1,
                                                std::memory_order_relaxed);
                return true;
            }
        }
        return false;
    }

    void
    execute(JobRecord* rec, int self)
    {
        // Job-boundary fault containment: a job closure that throws must
        // never unwind into the worker thread (the std::jthread body would
        // std::terminate the whole process). The synthesis engine catches
        // and retries its own shard faults before they reach this point;
        // the backstop contains everything else, counts it, and keeps the
        // group's completion accounting intact so wait() still returns.
        const auto run_contained = [&] {
            try {
                rec->fn(self);
            } catch (const std::exception& e) {
                faults_total.fetch_add(1, std::memory_order_relaxed);
                rec->group->job_faults.fetch_add(1,
                                                 std::memory_order_relaxed);
                TF_LOG_WARN("scheduler: job raised uncontained exception: "
                            << e.what());
            } catch (...) {
                faults_total.fetch_add(1, std::memory_order_relaxed);
                rec->group->job_faults.fetch_add(1,
                                                 std::memory_order_relaxed);
                TF_LOG_WARN(
                    "scheduler: job raised uncontained non-std exception");
            }
        };
        obs::TraceCollector* tc = trace.load(std::memory_order_relaxed);
        if (tc != nullptr) {
            const std::uint64_t start = obs::now_nanos();
            run_contained();
            tc->record_complete(self, "job", start, obs::now_nanos());
        } else {
            run_contained();
        }
        const std::shared_ptr<JobGroup> group = std::move(rec->group);
        delete rec;
        jobs_total.fetch_add(1, std::memory_order_relaxed);
        group->jobs_run.fetch_add(1, std::memory_order_relaxed);
        group->finish_one();
        pending_total.fetch_sub(1, std::memory_order_seq_cst);
    }

    std::vector<std::unique_ptr<ChaseLevDeque<JobRecord*>>> deques;
    std::mutex mu;                  ///< guards inject + stop
    std::condition_variable cv;
    std::deque<JobRecord*> inject;
    bool stop = false;
    std::atomic<int> sleepers{0};
    /// Submitted-but-unfinished jobs across all groups. seq_cst against
    /// `sleepers` (a Dekker pair): a parking worker either observes
    /// pending work (and takes the bounded timed wait) or the submitter
    /// observes the sleeper (and delivers a mutex-ordered notify) — so the
    /// indefinite park can never miss a submission.
    std::atomic<std::uint64_t> pending_total{0};
    std::atomic<std::uint64_t> jobs_total{0};
    std::atomic<std::uint64_t> steals_total{0};
    std::atomic<std::uint64_t> faults_total{0};
    /// Optional span collector (set_trace); jobs are recorded as complete
    /// spans on the executing worker's lane.
    std::atomic<obs::TraceCollector*> trace{nullptr};
    std::vector<std::jthread> threads;  ///< last: joined before the rest dies

    /// Identify the pool and worker index of the current thread, so
    /// submit() can route a job spawned from inside a running job straight
    /// onto the spawning worker's own deque (an owner push — the lock-free
    /// path).
    static thread_local Impl* tls_impl;
    static thread_local int tls_worker;
};

thread_local WorkStealingPool::Impl* WorkStealingPool::Impl::tls_impl =
    nullptr;
thread_local int WorkStealingPool::Impl::tls_worker = -1;

void
WorkStealingPool::Impl::submit_record(JobRecord* rec)
{
    rec->group->pending.fetch_add(1, std::memory_order_relaxed);
    pending_total.fetch_add(1, std::memory_order_seq_cst);
    if (tls_impl == this && tls_worker >= 0) {
        deques[static_cast<std::size_t>(tls_worker)]->push(rec);
        if (sleepers.load(std::memory_order_seq_cst) > 0) {
            // Empty critical section before the notify: a worker that
            // already chose the indefinite park holds `mu` until it is
            // actually waiting, so passing through the mutex guarantees
            // the notify cannot fall into its decide-then-wait window.
            { std::lock_guard<std::mutex> lock(mu); }
            cv.notify_all();
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu);
        inject.push_back(rec);
    }
    cv.notify_all();
}

void
WorkStealingPool::Impl::work(int self)
{
    tls_impl = this;
    tls_worker = self;
    JobRecord* rec = nullptr;
    for (;;) {
        if (deques[static_cast<std::size_t>(self)]->pop(&rec) ||
            take_injected(self, &rec) || try_steal(self, &rec)) {
            execute(rec, self);
            continue;
        }
        std::unique_lock<std::mutex> lock(mu);
        if (stop) {
            break;
        }
        if (!inject.empty()) {
            continue;  // raced a submit; take it through the normal path
        }
        sleepers.fetch_add(1, std::memory_order_seq_cst);
        if (pending_total.load(std::memory_order_seq_cst) > 0) {
            // Jobs are in flight and may spawn onto a deque at any moment
            // through the lock-free path: bounded park, then re-poll.
            cv.wait_for(lock, kParkInterval);
        } else {
            // Nothing pending anywhere: park until a submission (or
            // shutdown) notifies. The Dekker pairing on sleepers /
            // pending_total makes this race-free — see their declarations.
            cv.wait(lock);
        }
        sleepers.fetch_sub(1, std::memory_order_relaxed);
        if (stop) {
            break;
        }
    }
}

WorkStealingPool::WorkStealingPool(int workers)
    : impl_(new Impl(resolve_jobs(workers)))
{
}

WorkStealingPool::~WorkStealingPool()
{
    impl_->shutdown();
    delete impl_;
}

WorkStealingPool::GroupHandle
WorkStealingPool::make_group()
{
    return std::make_shared<JobGroup>();
}

void
WorkStealingPool::submit(const GroupHandle& group, Job job)
{
    TF_ASSERT(group != nullptr);
    impl_->submit_record(new JobRecord{std::move(job), group});
}

void
WorkStealingPool::submit(const GroupHandle& group, std::vector<Job> jobs)
{
    TF_ASSERT(group != nullptr);
    if (jobs.empty()) {
        return;
    }
    // Count first, then publish the whole batch under one lock acquisition.
    group->pending.fetch_add(jobs.size(), std::memory_order_relaxed);
    impl_->pending_total.fetch_add(jobs.size(), std::memory_order_seq_cst);
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        for (Job& job : jobs) {
            impl_->inject.push_back(new JobRecord{std::move(job), group});
        }
    }
    impl_->cv.notify_all();
}

void
WorkStealingPool::wait(const GroupHandle& group)
{
    TF_ASSERT(group != nullptr);
    group->wait();
}

void
WorkStealingPool::run_batch(std::vector<Job> jobs)
{
    const GroupHandle group = make_group();
    submit(group, std::move(jobs));
    wait(group);
}

int
WorkStealingPool::workers() const
{
    return static_cast<int>(impl_->deques.size());
}

void
WorkStealingPool::set_trace(obs::TraceCollector* trace)
{
    impl_->trace.store(trace, std::memory_order_relaxed);
}

SchedulerStats
WorkStealingPool::stats() const
{
    SchedulerStats stats;
    stats.workers = workers();
    stats.jobs_run = impl_->jobs_total.load(std::memory_order_relaxed);
    stats.steals = impl_->steals_total.load(std::memory_order_relaxed);
    stats.job_faults = impl_->faults_total.load(std::memory_order_relaxed);
    return stats;
}

SchedulerStats
WorkStealingPool::group_stats(const GroupHandle& group) const
{
    TF_ASSERT(group != nullptr);
    SchedulerStats stats;
    stats.workers = workers();
    stats.jobs_run = group->jobs_run.load(std::memory_order_relaxed);
    stats.steals = group->steals.load(std::memory_order_relaxed);
    stats.job_faults = group->job_faults.load(std::memory_order_relaxed);
    return stats;
}

}  // namespace transform::sched
