/// \file
/// Chase-Lev lock-free work-stealing deque (Chase & Lev, SPAA 2005, with
/// the C11 memory orders of Lê et al., PPoPP 2013) — the per-worker queue
/// of the v2 synthesis scheduler (see docs/scheduler.md).
///
/// One thread — the *owner* — pushes and pops at the bottom (LIFO); any
/// number of *thieves* steal from the top (FIFO). The two ends only meet on
/// the last element, where a compare-exchange on `top` arbitrates. Under
/// the v1 mutex deques every owner pop paid a lock; here the owner's fast
/// path is three atomic operations with no contention, which is what lets
/// shard granularity drop (adaptive re-splitting) without the dispatch
/// overhead dominating the search.
///
/// Deviation from the literature formulation: the published algorithm uses
/// standalone `atomic_thread_fence`s, which ThreadSanitizer does not model
/// (it would report false positives). This implementation folds the fences
/// into `seq_cst` operations on `top_`/`bottom_` at the racy points, so the
/// deque is verifiable under TSan (`sched_test` runs under TSan in CI).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/logging.h"

namespace transform::sched {

/// A lock-free single-owner, multi-thief deque.
///
/// \tparam T element type; must be trivially copyable and lock-free-atomic
///           sized (the scheduler instantiates it with a job pointer).
///
/// Thread-safety contract:
///  - push() and pop() may be called by ONE thread at a time (the owner;
///    ownership may migrate between batches, but never concurrently).
///  - steal() may be called by any thread concurrently with everything.
///  - The destructor must not run concurrently with any operation (the
///    pool joins its workers first).
template <typename T>
class ChaseLevDeque {
    static_assert(std::is_trivially_copyable_v<T>,
                  "elements are copied through std::atomic slots");

  public:
    /// Creates a deque whose ring initially holds \p initial_capacity
    /// elements (rounded up to a power of two); the ring grows on demand.
    explicit ChaseLevDeque(std::size_t initial_capacity = 256)
    {
        std::size_t cap = 1;
        while (cap < initial_capacity) {
            cap <<= 1;
        }
        ring_.store(new Ring(cap), std::memory_order_relaxed);
    }

    ~ChaseLevDeque()
    {
        delete ring_.load(std::memory_order_relaxed);
        // retired_ rings delete themselves via unique_ptr.
    }

    ChaseLevDeque(const ChaseLevDeque&) = delete;
    ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

    /// Owner only. Pushes \p item at the bottom; grows the ring when full
    /// (old rings are retired, not freed, so in-flight thieves can still
    /// read them — they are reclaimed by the destructor).
    void
    push(T item)
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_acquire);
        Ring* a = ring_.load(std::memory_order_relaxed);
        if (b - t >= static_cast<std::int64_t>(a->capacity())) {
            a = grow(a, t, b);
        }
        a->put(b, item);
        // The release pairs with the acquire-or-stronger load of bottom_ in
        // steal(): a thief that observes index b occupied also observes the
        // slot write above.
        bottom_.store(b + 1, std::memory_order_release);
    }

    /// Owner only. Pops the most recently pushed element (LIFO). Returns
    /// false when the deque is empty or a thief won the last element.
    bool
    pop(T* out)
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        Ring* a = ring_.load(std::memory_order_relaxed);
        // seq_cst store + seq_cst load stand in for the SC fence between
        // reserving the bottom slot and reading top (Lê et al., fig. 1).
        bottom_.store(b, std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        if (t < b) {
            *out = a->get(b);  // more than one element: no thief can reach b
            return true;
        }
        bool won = false;
        if (t == b) {
            // Last element: race the thieves for it via top.
            won = top_.compare_exchange_strong(t, t + 1,
                                               std::memory_order_seq_cst,
                                               std::memory_order_relaxed);
            if (won) {
                *out = a->get(b);
            }
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
        return won;
    }

    /// Any thread. Steals the oldest element (FIFO). Returns false when the
    /// deque looked empty or another thief (or the owner, on the last
    /// element) raced us; callers treat false as "try elsewhere", not as a
    /// guarantee of emptiness.
    bool
    steal(T* out)
    {
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b) {
            return false;
        }
        // Read the slot *before* claiming it: a successful CAS on top_
        // validates that the slot was not recycled underneath us (top_ is
        // monotonic, so there is no ABA), and the acquire pairing on
        // ring_/bottom_ makes both the slot value and, for pointer
        // elements, the pointee contents visible.
        Ring* a = ring_.load(std::memory_order_acquire);
        const T item = a->get(t);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
            return false;
        }
        *out = item;
        return true;
    }

    /// Approximate element count (relaxed reads; for victim selection and
    /// diagnostics only — never use it to prove emptiness).
    std::size_t
    size_estimate() const
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_relaxed);
        return b > t ? static_cast<std::size_t>(b - t) : 0;
    }

    /// Current ring capacity (exposed for the growth tests).
    std::size_t
    capacity() const
    {
        return ring_.load(std::memory_order_relaxed)->capacity();
    }

  private:
    /// A power-of-two ring of atomic slots. Slots are atomic not for
    /// inter-thread ordering (top_/bottom_ carry that) but so that a
    /// thief's read racing with the owner recycling a slot is a benign
    /// stale value (discarded by the CAS) instead of a torn read.
    class Ring {
      public:
        explicit Ring(std::size_t capacity)
            : mask_(capacity - 1),
              slots_(std::make_unique<std::atomic<T>[]>(capacity))
        {
            TF_ASSERT((capacity & mask_) == 0);  // power of two
        }

        std::size_t capacity() const { return mask_ + 1; }

        T
        get(std::int64_t i) const
        {
            return slots_[static_cast<std::size_t>(i) & mask_].load(
                std::memory_order_relaxed);
        }

        void
        put(std::int64_t i, T item)
        {
            slots_[static_cast<std::size_t>(i) & mask_].store(
                item, std::memory_order_relaxed);
        }

      private:
        std::size_t mask_;
        std::unique_ptr<std::atomic<T>[]> slots_;
    };

    /// Owner only: doubles the ring, copying the live range [top, bottom).
    /// The old ring is retired (kept allocated) because a thief may hold a
    /// pointer to it; rings are small (pointers), so deferring reclamation
    /// to the destructor is cheaper than hazard pointers.
    Ring*
    grow(Ring* old, std::int64_t top, std::int64_t bottom)
    {
        Ring* bigger = new Ring(old->capacity() * 2);
        for (std::int64_t i = top; i < bottom; ++i) {
            bigger->put(i, old->get(i));
        }
        retired_.emplace_back(old);
        // Release: a thief that acquires the new ring pointer sees every
        // copied slot.
        ring_.store(bigger, std::memory_order_release);
        return bigger;
    }

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<Ring*> ring_{nullptr};
    std::vector<std::unique_ptr<Ring>> retired_;  ///< owner-only
};

}  // namespace transform::sched
