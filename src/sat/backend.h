/// \file
/// The pluggable solver-backend seam underneath the relational layer.
///
/// Everything above the CNF level (mtm::ProgramEncoding, the incremental
/// session, the enumerator) talks to a SolverBackend rather than to the
/// concrete CDCL solver, mirroring ESBMC's smt_conv/solve factory layering:
/// clauses and assumptions go through the virtual surface, so an
/// alternative solver (a different CDCL, a portfolio, an IPASIR wrapper)
/// can be slotted in — or raced — behind one `make_backend` name without
/// touching the encodings. The default (and currently only) implementation
/// wraps sat::Solver.
///
/// One deliberate seam leak: rel::BoolFactory's Tseitin compiler emits
/// straight into a sat::Solver, so backends expose `native()` for the
/// circuit layer. A backend with no native CDCL underneath would return
/// nullptr and circuit-based encodings would refuse it; pure-CNF users
/// (the property tests, the enumerator) never need it.
#pragma once

#include <memory>
#include <string_view>

#include "sat/solver.h"

namespace transform::sat {

/// Virtual solving surface: clause intake, assumption-based solving, model
/// and statistics access. Mirrors sat::Solver's incremental API; see that
/// header for the contracts (reset bit-identity, lifetime_stats retirement,
/// gated timing).
class SolverBackend {
  public:
    virtual ~SolverBackend() = default;

    /// Stable backend name ("cdcl"), the `make_backend` key.
    virtual std::string_view name() const = 0;

    virtual void reset() = 0;
    virtual Var new_var() = 0;
    virtual int num_vars() const = 0;

    /// Returns false when the formula became trivially unsatisfiable.
    virtual bool add_clause(const Lit* lits, std::size_t count) = 0;

    bool add_clause(const Clause& clause)
    {
        return add_clause(clause.data(), clause.size());
    }

    bool add_unit(Lit a) { return add_clause(&a, 1); }

    virtual SolveResult solve(const std::vector<Lit>& assumptions = {},
                              std::int64_t conflict_budget = -1) = 0;

    /// AllSAT continuation; see Solver::block_and_resolve for the trail
    /// and activation-guard contract.
    virtual SolveResult block_and_resolve(
        const Lit* lits, std::size_t count,
        const std::vector<Lit>& assumptions,
        std::int64_t conflict_budget = -1) = 0;

    virtual LBool model_value(Var v) const = 0;
    virtual bool model_literal_true(Lit l) const = 0;

    /// Permanently asserts ~\p activation; see Solver::retire_activation.
    virtual bool retire_activation(Lit activation) = 0;

    virtual const SolverStats& stats() const = 0;
    virtual SolverStats lifetime_stats() const = 0;
    virtual void set_timing(bool enabled) = 0;

    /// Persistent conflict budget (0 = unlimited) applied when the per-call
    /// budget is left at -1; see Solver::set_conflict_budget.
    virtual void set_conflict_budget(std::int64_t budget) = 0;

    /// Cooperative interrupt hook polled at conflict-count intervals; see
    /// Solver::set_interrupt.
    virtual void set_interrupt(std::function<bool()> poll) = 0;

    /// Per-solve latency observer, fired under set_timing(true); see
    /// Solver::set_solve_observer.
    virtual void
    set_solve_observer(std::function<void(std::uint64_t)> observer) = 0;

    /// Why the last solve answered kUnknown; see Solver::unknown_cause.
    virtual UnknownCause unknown_cause() const = 0;

    /// The native CDCL solver when this backend has one (the Tseitin
    /// compiler requires it); nullptr for hypothetical non-native backends.
    virtual Solver* native() = 0;
    const Solver* native() const
    {
        return const_cast<SolverBackend*>(this)->native();
    }
};

/// The in-tree CDCL solver behind the backend surface.
class CdclBackend final : public SolverBackend {
  public:
    std::string_view name() const override { return "cdcl"; }
    void reset() override { solver_.reset(); }
    Var new_var() override { return solver_.new_var(); }
    int num_vars() const override { return solver_.num_vars(); }

    bool
    add_clause(const Lit* lits, std::size_t count) override
    {
        return solver_.add_clause(lits, count);
    }

    SolveResult
    solve(const std::vector<Lit>& assumptions,
          std::int64_t conflict_budget) override
    {
        return solver_.solve(assumptions, conflict_budget);
    }

    SolveResult
    block_and_resolve(const Lit* lits, std::size_t count,
                      const std::vector<Lit>& assumptions,
                      std::int64_t conflict_budget) override
    {
        return solver_.block_and_resolve(lits, count, assumptions,
                                         conflict_budget);
    }

    LBool model_value(Var v) const override { return solver_.model_value(v); }

    bool
    model_literal_true(Lit l) const override
    {
        return solver_.model_literal_true(l);
    }

    bool
    retire_activation(Lit activation) override
    {
        return solver_.retire_activation(activation);
    }

    const SolverStats& stats() const override { return solver_.stats(); }

    SolverStats
    lifetime_stats() const override
    {
        return solver_.lifetime_stats();
    }

    void set_timing(bool enabled) override { solver_.set_timing(enabled); }

    void
    set_conflict_budget(std::int64_t budget) override
    {
        solver_.set_conflict_budget(budget);
    }

    void
    set_interrupt(std::function<bool()> poll) override
    {
        solver_.set_interrupt(std::move(poll));
    }

    void
    set_solve_observer(std::function<void(std::uint64_t)> observer) override
    {
        solver_.set_solve_observer(std::move(observer));
    }

    UnknownCause unknown_cause() const override
    {
        return solver_.unknown_cause();
    }

    Solver* native() override { return &solver_; }

  private:
    Solver solver_;
};

/// Constructs the backend registered under \p name ("cdcl"), or nullptr
/// for an unknown name — callers surface that as a configuration error.
std::unique_ptr<SolverBackend> make_backend(std::string_view name);

}  // namespace transform::sat
