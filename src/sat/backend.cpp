#include "sat/backend.h"

namespace transform::sat {

std::unique_ptr<SolverBackend>
make_backend(std::string_view name)
{
    if (name == "cdcl" || name.empty()) {
        return std::make_unique<CdclBackend>();
    }
    return nullptr;
}

}  // namespace transform::sat
