/// \file
/// DIMACS CNF import/export, provided so formulas produced by the relational
/// compiler can be inspected with external tools and so the test suite can
/// exercise the solver on stock CNF instances.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.h"

namespace transform::sat {

class Solver;

/// A CNF formula in portable form.
struct CnfFormula {
    int num_vars = 0;
    std::vector<Clause> clauses;
};

/// Parses DIMACS text ("p cnf V C" header, clauses terminated by 0).
/// Returns false on malformed input.
bool parse_dimacs(std::istream& in, CnfFormula* out);

/// Parses DIMACS from a string.
bool parse_dimacs_string(const std::string& text, CnfFormula* out);

/// Renders a formula in DIMACS format.
std::string to_dimacs(const CnfFormula& formula);

/// Loads a formula into a fresh region of \p solver (variables are created
/// as needed). Returns false if the formula is trivially unsatisfiable.
bool load_into_solver(const CnfFormula& formula, Solver* solver);

}  // namespace transform::sat
