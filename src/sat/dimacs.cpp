#include "sat/dimacs.h"

#include <sstream>

#include "sat/solver.h"

namespace transform::sat {

bool
parse_dimacs(std::istream& in, CnfFormula* out)
{
    out->num_vars = 0;
    out->clauses.clear();
    std::string token;
    bool saw_header = false;
    Clause current;
    while (in >> token) {
        if (token == "c") {
            std::string rest;
            std::getline(in, rest);
            continue;
        }
        if (token == "p") {
            std::string kind;
            int clause_count = 0;
            if (!(in >> kind >> out->num_vars >> clause_count) || kind != "cnf") {
                return false;
            }
            saw_header = true;
            continue;
        }
        int value = 0;
        try {
            value = std::stoi(token);
        } catch (...) {
            return false;
        }
        if (!saw_header) {
            return false;
        }
        if (value == 0) {
            out->clauses.push_back(current);
            current.clear();
        } else {
            const int var = std::abs(value) - 1;
            if (var >= out->num_vars) {
                return false;
            }
            current.push_back(Lit(var, value < 0));
        }
    }
    return saw_header && current.empty();
}

bool
parse_dimacs_string(const std::string& text, CnfFormula* out)
{
    std::istringstream in(text);
    return parse_dimacs(in, out);
}

std::string
to_dimacs(const CnfFormula& formula)
{
    std::ostringstream out;
    out << "p cnf " << formula.num_vars << " " << formula.clauses.size() << "\n";
    for (const Clause& clause : formula.clauses) {
        for (const Lit l : clause) {
            out << (l.negated() ? -(l.var() + 1) : (l.var() + 1)) << " ";
        }
        out << "0\n";
    }
    return out.str();
}

bool
load_into_solver(const CnfFormula& formula, Solver* solver)
{
    const int base = solver->num_vars();
    for (int i = 0; i < formula.num_vars; ++i) {
        solver->new_var();
    }
    for (const Clause& clause : formula.clauses) {
        Clause shifted;
        shifted.reserve(clause.size());
        for (const Lit l : clause) {
            shifted.push_back(Lit(base + l.var(), l.negated()));
        }
        if (!solver->add_clause(std::move(shifted))) {
            return false;
        }
    }
    return true;
}

}  // namespace transform::sat
