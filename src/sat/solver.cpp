#include "sat/solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/logging.h"

namespace transform::sat {

void
SolverStats::merge(const SolverStats& other)
{
    decisions += other.decisions;
    propagations += other.propagations;
    conflicts += other.conflicts;
    restarts += other.restarts;
    learned_clauses += other.learned_clauses;
    deleted_clauses += other.deleted_clauses;
    max_learned = std::max(max_learned, other.max_learned);
    solve_calls += other.solve_calls;
    solve_nanos += other.solve_nanos;
    assumed_literals += other.assumed_literals;
    retired_activations += other.retired_activations;
    retained_clauses += other.retained_clauses;
    bases_built += other.bases_built;
    bases_reused += other.bases_reused;
}

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kRescaleLimit = 1e100;
constexpr int kRestartBase = 100;
/// How many conflicts between set_interrupt() polls: frequent enough that
/// a cancelled run stops within milliseconds even inside one hard query,
/// rare enough that the hook (a relaxed atomic load) never shows up in a
/// profile.
constexpr std::uint64_t kInterruptPollConflicts = 1024;
}  // namespace

Solver::Solver()
{
    stats_.max_learned = static_cast<std::uint64_t>(max_learned_);
}

void
Solver::reset()
{
    ok_ = true;
    clauses_used_ = 0;  // slots (and their lit buffers) are kept for reuse
    for (auto& list : watches_) {
        list.clear();  // entries kept for reuse by new_var
    }
    assigns_.clear();
    model_.clear();
    saved_phase_.clear();
    reason_.clear();
    level_.clear();
    activity_.clear();
    heap_position_.clear();
    seen_.clear();
    trail_.clear();
    trail_limits_.clear();
    planted_.clear();
    propagation_head_ = 0;
    order_heap_.clear();
    var_activity_increment_ = 1.0;
    clause_activity_increment_ = 1.0;
    conflict_assumptions_.clear();
    // Retire the live counters into the lifetime accumulator before
    // clearing — per-suite aggregation reads lifetime_stats() off solvers
    // that reset once per query.
    retired_stats_.merge(stats_);
    stats_ = SolverStats{};
    max_learned_ = 4096;
    stats_.max_learned = static_cast<std::uint64_t>(max_learned_);
}

SolverStats
Solver::lifetime_stats() const
{
    SolverStats out = retired_stats_;
    out.merge(stats_);
    return out;
}

bool
Solver::retire_activation(Lit activation)
{
    ++stats_.retired_activations;
    // Live learned clauses this retirement keeps around: the payoff a
    // fresh-solver restart would have thrown away.
    stats_.retained_clauses +=
        stats_.learned_clauses - stats_.deleted_clauses;
    return add_unit(~activation);
}

Var
Solver::new_var()
{
    const Var v = static_cast<Var>(assigns_.size());
    assigns_.push_back(LBool::kUndef);
    model_.push_back(LBool::kUndef);
    saved_phase_.push_back(false);
    reason_.push_back(-1);
    level_.push_back(0);
    activity_.push_back(0.0);
    heap_position_.push_back(-1);
    seen_.push_back(false);
    while (watches_.size() < 2 * assigns_.size()) {
        watches_.emplace_back();  // after a reset the entries already exist
    }
    heap_insert(v);
    return v;
}

LBool
Solver::value(Var v) const
{
    return assigns_[v];
}

LBool
Solver::value(Lit l) const
{
    const LBool v = assigns_[l.var()];
    if (v == LBool::kUndef) {
        return LBool::kUndef;
    }
    const bool truth = (v == LBool::kTrue) != l.negated();
    return truth ? LBool::kTrue : LBool::kFalse;
}

bool
Solver::add_clause(const Lit* lits, std::size_t count)
{
    if (!ok_) {
        return false;
    }
    // A preceding solve() may have left its satisfying trail in place for
    // block_and_resolve(); adding a clause abandons that continuation.
    cancel_until(0);
    // Simplify in the reused scratch buffer: sort, drop duplicates, detect
    // tautologies, drop literals already false at the root level, detect
    // already-satisfied clauses.
    add_scratch_.assign(lits, lits + count);
    std::sort(add_scratch_.begin(), add_scratch_.end());
    std::size_t keep = 0;
    Lit previous = kUndefLit;
    for (const Lit l : add_scratch_) {
        TF_ASSERT(l.var() >= 0 && l.var() < num_vars());
        if (value(l) == LBool::kTrue || l == ~previous) {
            return true;  // satisfied or tautology
        }
        if (value(l) == LBool::kFalse || l == previous) {
            continue;  // falsified at root or duplicate
        }
        add_scratch_[keep++] = l;
        previous = l;
    }
    if (keep == 0) {
        ok_ = false;
        return false;
    }
    if (keep == 1) {
        enqueue(add_scratch_[0], -1);
        if (propagate() != -1) {
            ok_ = false;
            return false;
        }
        return true;
    }
    attach_clause(store_clause(add_scratch_.data(), keep, /*learned=*/false));
    return true;
}

int
Solver::store_clause(const Lit* lits, std::size_t count, bool learned)
{
    if (clauses_used_ < clauses_.size()) {
        // Refill a retired slot, reusing its literal buffer.
        InternalClause& slot = clauses_[clauses_used_];
        slot.lits.assign(lits, lits + count);
        slot.learned = learned;
        slot.activity = 0.0;
        slot.deleted = false;
    } else {
        clauses_.push_back({Clause(lits, lits + count), learned, 0.0, false});
    }
    return static_cast<int>(clauses_used_++);
}

void
Solver::attach_clause(int clause_index)
{
    const InternalClause& c = clauses_[clause_index];
    TF_ASSERT(c.lits.size() >= 2);
    watches_[(~c.lits[0]).code()].push_back({clause_index, c.lits[1]});
    watches_[(~c.lits[1]).code()].push_back({clause_index, c.lits[0]});
}

void
Solver::enqueue(Lit l, int reason_clause)
{
    TF_ASSERT(value(l) == LBool::kUndef);
    assigns_[l.var()] = l.negated() ? LBool::kFalse : LBool::kTrue;
    reason_[l.var()] = reason_clause;
    level_[l.var()] = decision_level();
    trail_.push_back(l);
}

int
Solver::propagate()
{
    while (propagation_head_ < static_cast<int>(trail_.size())) {
        const Lit p = trail_[propagation_head_++];
        ++stats_.propagations;
        auto& ws = watches_[p.code()];
        std::size_t insert = 0;
        std::size_t read = 0;
        while (read < ws.size()) {
            const Watcher w = ws[read];
            if (value(w.blocker) == LBool::kTrue) {
                ws[insert++] = ws[read++];
                continue;
            }
            InternalClause& c = clauses_[w.clause_index];
            const Lit false_lit = ~p;
            if (c.lits[0] == false_lit) {
                std::swap(c.lits[0], c.lits[1]);
            }
            TF_ASSERT(c.lits[1] == false_lit);
            ++read;
            const Lit first = c.lits[0];
            if (first != w.blocker && value(first) == LBool::kTrue) {
                ws[insert++] = {w.clause_index, first};
                continue;
            }
            bool found_watch = false;
            for (std::size_t k = 2; k < c.lits.size(); ++k) {
                if (value(c.lits[k]) != LBool::kFalse) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches_[(~c.lits[1]).code()].push_back({w.clause_index, first});
                    found_watch = true;
                    break;
                }
            }
            if (found_watch) {
                continue;  // moved to another watch list
            }
            // Clause is unit or conflicting.
            ws[insert++] = {w.clause_index, first};
            if (value(first) == LBool::kFalse) {
                // Conflict: keep the remaining watchers and bail out.
                while (read < ws.size()) {
                    ws[insert++] = ws[read++];
                }
                ws.resize(insert);
                propagation_head_ = static_cast<int>(trail_.size());
                return w.clause_index;
            }
            enqueue(first, w.clause_index);
        }
        ws.resize(insert);
    }
    return -1;
}

void
Solver::cancel_until(int target_level)
{
    if (decision_level() <= target_level) {
        return;
    }
    const int boundary = trail_limits_[target_level];
    for (int i = static_cast<int>(trail_.size()) - 1; i >= boundary; --i) {
        const Var v = trail_[i].var();
        saved_phase_[v] = !trail_[i].negated();
        assigns_[v] = LBool::kUndef;
        reason_[v] = -1;
        if (!heap_contains(v)) {
            heap_insert(v);
        }
    }
    trail_.resize(boundary);
    trail_limits_.resize(target_level);
    propagation_head_ = static_cast<int>(trail_.size());
    if (planted_.size() > static_cast<std::size_t>(target_level)) {
        planted_.resize(target_level);
    }
}

void
Solver::analyze(int conflict_index, Clause& learned, int& backtrack_level)
{
    learned.clear();
    learned.push_back(kUndefLit);  // placeholder for the asserting literal
    Lit p = kUndefLit;
    int path_count = 0;
    int index = static_cast<int>(trail_.size()) - 1;

    int current = conflict_index;
    do {
        TF_ASSERT(current != -1);
        InternalClause& c = clauses_[current];
        if (c.learned) {
            bump_clause(current);
        }
        for (const Lit q : c.lits) {
            if (p != kUndefLit && q.var() == p.var()) {
                continue;
            }
            if (!seen_[q.var()] && level_[q.var()] > 0) {
                seen_[q.var()] = true;
                bump_var(q.var());
                if (level_[q.var()] >= decision_level()) {
                    ++path_count;
                } else {
                    learned.push_back(q);
                }
            }
        }
        // Select the next trail literal to expand.
        while (!seen_[trail_[index].var()]) {
            --index;
        }
        p = trail_[index];
        --index;
        current = reason_[p.var()];
        seen_[p.var()] = false;
        --path_count;
    } while (path_count > 0);
    learned[0] = ~p;

    // Conflict-clause minimization: drop literals implied by the rest.
    analyze_to_clear_.assign(learned.begin(), learned.end());
    std::uint32_t abstract_levels = 0;
    for (std::size_t i = 1; i < learned.size(); ++i) {
        abstract_levels |= 1u << (level_[learned[i].var()] & 31);
    }
    std::size_t keep = 1;
    for (std::size_t i = 1; i < learned.size(); ++i) {
        const Lit l = learned[i];
        if (reason_[l.var()] == -1 || !literal_redundant(l, abstract_levels)) {
            learned[keep++] = l;
        }
    }
    learned.resize(keep);
    for (const Lit l : analyze_to_clear_) {
        if (l != kUndefLit) {
            seen_[l.var()] = false;
        }
    }
    analyze_to_clear_.clear();

    // Compute the backtrack level (second-highest decision level).
    if (learned.size() == 1) {
        backtrack_level = 0;
    } else {
        std::size_t max_index = 1;
        for (std::size_t i = 2; i < learned.size(); ++i) {
            if (level_[learned[i].var()] > level_[learned[max_index].var()]) {
                max_index = i;
            }
        }
        std::swap(learned[1], learned[max_index]);
        backtrack_level = level_[learned[1].var()];
    }
}

bool
Solver::literal_redundant(Lit l, std::uint32_t abstract_levels)
{
    analyze_stack_.clear();
    analyze_stack_.push_back(l);
    const std::size_t top = analyze_to_clear_.size();
    while (!analyze_stack_.empty()) {
        const Lit current = analyze_stack_.back();
        analyze_stack_.pop_back();
        TF_ASSERT(reason_[current.var()] != -1);
        const InternalClause& c = clauses_[reason_[current.var()]];
        for (const Lit q : c.lits) {
            if (q.var() == current.var()) {
                continue;
            }
            if (seen_[q.var()] || level_[q.var()] == 0) {
                continue;
            }
            const bool in_levels =
                (abstract_levels & (1u << (level_[q.var()] & 31))) != 0;
            if (reason_[q.var()] != -1 && in_levels) {
                seen_[q.var()] = true;
                analyze_stack_.push_back(q);
                analyze_to_clear_.push_back(q);
            } else {
                for (std::size_t j = top; j < analyze_to_clear_.size(); ++j) {
                    seen_[analyze_to_clear_[j].var()] = false;
                }
                analyze_to_clear_.resize(top);
                return false;
            }
        }
    }
    return true;
}

void
Solver::analyze_final(int /*conflict_index*/)
{
    // conflict_assumptions_ has been primed with the falsified assumption by
    // the caller; walk the implication graph back to decisions.
    if (decision_level() == 0 || conflict_assumptions_.empty()) {
        return;
    }
    const Lit falsified = conflict_assumptions_[0];
    seen_[falsified.var()] = true;
    for (int i = static_cast<int>(trail_.size()) - 1;
         i >= trail_limits_[0]; --i) {
        const Var x = trail_[i].var();
        if (!seen_[x]) {
            continue;
        }
        if (reason_[x] == -1) {
            conflict_assumptions_.push_back(~trail_[i]);
        } else {
            for (const Lit q : clauses_[reason_[x]].lits) {
                if (q.var() != x && level_[q.var()] > 0) {
                    seen_[q.var()] = true;
                }
            }
        }
        seen_[x] = false;
    }
    seen_[falsified.var()] = false;
}

void
Solver::bump_var(Var v)
{
    activity_[v] += var_activity_increment_;
    if (activity_[v] > kRescaleLimit) {
        for (double& a : activity_) {
            a *= 1e-100;
        }
        var_activity_increment_ *= 1e-100;
    }
    if (heap_contains(v)) {
        heap_percolate_up(heap_position_[v]);
    }
}

void
Solver::decay_var_activity()
{
    var_activity_increment_ /= kVarDecay;
}

void
Solver::bump_clause(int clause_index)
{
    InternalClause& c = clauses_[clause_index];
    c.activity += clause_activity_increment_;
    if (c.activity > kRescaleLimit) {
        for (std::size_t i = 0; i < clauses_used_; ++i) {
            clauses_[i].activity *= 1e-100;
        }
        clause_activity_increment_ *= 1e-100;
    }
}

void
Solver::decay_clause_activity()
{
    clause_activity_increment_ /= kClauseDecay;
}

bool
Solver::heap_contains(Var v) const
{
    return heap_position_[v] >= 0;
}

void
Solver::heap_insert(Var v)
{
    heap_position_[v] = static_cast<int>(order_heap_.size());
    order_heap_.push_back(v);
    heap_percolate_up(heap_position_[v]);
}

void
Solver::heap_percolate_up(int position)
{
    const Var v = order_heap_[position];
    while (position > 0) {
        const int parent = (position - 1) / 2;
        if (activity_[order_heap_[parent]] >= activity_[v]) {
            break;
        }
        order_heap_[position] = order_heap_[parent];
        heap_position_[order_heap_[position]] = position;
        position = parent;
    }
    order_heap_[position] = v;
    heap_position_[v] = position;
}

void
Solver::heap_percolate_down(int position)
{
    const Var v = order_heap_[position];
    const int size = static_cast<int>(order_heap_.size());
    while (true) {
        int child = 2 * position + 1;
        if (child >= size) {
            break;
        }
        if (child + 1 < size &&
            activity_[order_heap_[child + 1]] > activity_[order_heap_[child]]) {
            ++child;
        }
        if (activity_[order_heap_[child]] <= activity_[v]) {
            break;
        }
        order_heap_[position] = order_heap_[child];
        heap_position_[order_heap_[position]] = position;
        position = child;
    }
    order_heap_[position] = v;
    heap_position_[v] = position;
}

Var
Solver::heap_pop()
{
    if (order_heap_.empty()) {
        return kUndefVar;
    }
    const Var top = order_heap_[0];
    heap_position_[top] = -1;
    const Var last = order_heap_.back();
    order_heap_.pop_back();
    if (!order_heap_.empty()) {
        order_heap_[0] = last;
        heap_position_[last] = 0;
        heap_percolate_down(0);
    }
    return top;
}

Lit
Solver::pick_branch_literal()
{
    while (true) {
        const Var v = heap_pop();
        if (v == kUndefVar) {
            return kUndefLit;
        }
        if (assigns_[v] == LBool::kUndef) {
            ++stats_.decisions;
            return Lit(v, !saved_phase_[v]);
        }
    }
}

void
Solver::reduce_db()
{
    // Fast path: nothing to do until the learned database outgrows the cap.
    const std::int64_t live_learned =
        static_cast<std::int64_t>(stats_.learned_clauses) -
        static_cast<std::int64_t>(stats_.deleted_clauses);
    if (live_learned < max_learned_) {
        return;
    }
    std::vector<int> learned_indices;
    for (int i = 0; i < static_cast<int>(clauses_used_); ++i) {
        const InternalClause& c = clauses_[i];
        if (c.learned && !c.deleted && c.lits.size() > 2) {
            const bool is_reason = reason_[c.lits[0].var()] == i &&
                                   assigns_[c.lits[0].var()] != LBool::kUndef;
            if (!is_reason) {
                learned_indices.push_back(i);
            }
        }
    }
    if (learned_indices.size() < 2) {
        // Nothing meaningful to delete (everything learned is binary or
        // locked as a propagation reason). Still grow the cap: without
        // growth it would stay below the live count forever and every
        // later conflict would pay the full-DB scan above.
        grow_max_learned();
        return;
    }
    std::sort(learned_indices.begin(), learned_indices.end(), [this](int a, int b) {
        return clauses_[a].activity < clauses_[b].activity;
    });
    const std::size_t to_delete = learned_indices.size() / 2;
    for (std::size_t i = 0; i < to_delete; ++i) {
        clauses_[learned_indices[i]].deleted = true;
        clauses_[learned_indices[i]].lits.clear();
        clauses_[learned_indices[i]].lits.shrink_to_fit();
        ++stats_.deleted_clauses;
    }
    // Rebuild the watch lists from scratch (simple and safe).
    for (auto& list : watches_) {
        list.clear();
    }
    for (int i = 0; i < static_cast<int>(clauses_used_); ++i) {
        if (!clauses_[i].deleted) {
            attach_clause(i);
        }
    }
    grow_max_learned();
}

void
Solver::grow_max_learned()
{
    max_learned_ = static_cast<int>(max_learned_ * 1.2);
    stats_.max_learned = static_cast<std::uint64_t>(max_learned_);
}

double
Solver::luby(double base, int index)
{
    // Finds the Luby sequence value for the given index (1-based reluctant
    // doubling sequence: 1 1 2 1 1 2 4 ...).
    int size = 1;
    int sequence = 0;
    while (size < index + 1) {
        ++sequence;
        size = 2 * size + 1;
    }
    while (size - 1 != index) {
        size = (size - 1) / 2;
        --sequence;
        index = index % size;
    }
    return std::pow(base, sequence);
}

SolveResult
Solver::solve(const std::vector<Lit>& assumptions, std::int64_t conflict_budget)
{
    ++stats_.solve_calls;
    stats_.assumed_literals += assumptions.size();
    if (!timing_) {
        return solve_impl(assumptions, conflict_budget);
    }
    const auto start = std::chrono::steady_clock::now();
    const SolveResult result = solve_impl(assumptions, conflict_budget);
    const std::uint64_t elapsed = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    stats_.solve_nanos += elapsed;
    if (solve_observer_) {
        solve_observer_(elapsed);
    }
    return result;
}

SolveResult
Solver::solve_impl(const std::vector<Lit>& assumptions,
                   std::int64_t conflict_budget)
{
    conflict_assumptions_.clear();
    unknown_cause_ = UnknownCause::kNone;
    if (conflict_budget < 0) {
        conflict_budget = default_budget_;
    }
    if (!ok_) {
        return SolveResult::kUnsat;
    }
    // Trail reuse: keep the longest prefix of decision levels that were
    // planted for the same assumption literals by the previous solve —
    // their propagations are still valid, so an enumeration sweeping
    // near-identical assumption vectors (the incremental session's
    // candidate pins differ in a suffix) skips most of the
    // re-propagation. Callers without assumptions get the historical
    // restart-from-root behavior (the prefix is empty).
    int reuse = 0;
    const int limit =
        std::min(decision_level(),
                 static_cast<int>(std::min(planted_.size(),
                                           assumptions.size())));
    while (reuse < limit && planted_[reuse] == assumptions[reuse]) {
        ++reuse;
    }
    cancel_until(reuse);
    return search(assumptions, conflict_budget);
}

SolveResult
Solver::block_and_resolve(const Lit* lits, std::size_t count,
                          const std::vector<Lit>& assumptions,
                          std::int64_t conflict_budget)
{
    ++stats_.solve_calls;
    stats_.assumed_literals += assumptions.size();
    if (!timing_) {
        return block_and_resolve_impl(lits, count, assumptions,
                                      conflict_budget);
    }
    const auto start = std::chrono::steady_clock::now();
    const SolveResult result =
        block_and_resolve_impl(lits, count, assumptions, conflict_budget);
    const std::uint64_t elapsed = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    stats_.solve_nanos += elapsed;
    if (solve_observer_) {
        solve_observer_(elapsed);
    }
    return result;
}

SolveResult
Solver::block_and_resolve_impl(const Lit* lits, std::size_t count,
                               const std::vector<Lit>& assumptions,
                               std::int64_t conflict_budget)
{
    conflict_assumptions_.clear();
    unknown_cause_ = UnknownCause::kNone;
    if (conflict_budget < 0) {
        conflict_budget = default_budget_;
    }
    if (!ok_) {
        return SolveResult::kUnsat;
    }
    // The preceding kSat trail must be intact: every assumption level
    // established and every clause literal falsified by the model.
    TF_ASSERT(decision_level() >= static_cast<int>(assumptions.size()));
    add_scratch_.clear();
    for (std::size_t i = 0; i < count; ++i) {
        const Lit l = lits[i];
        TF_ASSERT(value(l) == LBool::kFalse);
        if (level_[l.var()] > 0) {
            add_scratch_.push_back(l);
        }
    }
    if (add_scratch_.empty()) {
        // Falsified at the root with nothing left to flip: the formula
        // itself excludes every other model.
        ok_ = false;
        return SolveResult::kUnsat;
    }
    // Move the two deepest-falsified literals to the watch positions.
    std::size_t deepest = 0;
    for (std::size_t i = 1; i < add_scratch_.size(); ++i) {
        if (level_[add_scratch_[i].var()] >
            level_[add_scratch_[deepest].var()]) {
            deepest = i;
        }
    }
    std::swap(add_scratch_[0], add_scratch_[deepest]);
    const int level_max = level_[add_scratch_[0].var()];
    if (level_max <= static_cast<int>(assumptions.size())) {
        // Every remaining literal is pinned false by the assumption prefix
        // itself: no flip is reachable without undoing an assumption, so
        // this scope holds no further model. The clause is not stored —
        // the caller's activation guard (see the header contract) is about
        // to be retired, which would satisfy it permanently anyway.
        return SolveResult::kUnsat;
    }
    if (add_scratch_.size() == 1) {
        // Unit after root simplification: assert it at the root.
        cancel_until(0);
        enqueue(add_scratch_[0], -1);
        return search(assumptions, conflict_budget);
    }
    std::size_t second = 1;
    for (std::size_t i = 2; i < add_scratch_.size(); ++i) {
        if (level_[add_scratch_[i].var()] >
            level_[add_scratch_[second].var()]) {
            second = i;
        }
    }
    std::swap(add_scratch_[1], add_scratch_[second]);
    const int level_second = level_[add_scratch_[1].var()];
    if (level_second < level_max) {
        // Asserting clause: backjump to the second-deepest level and
        // propagate the flipped deepest literal, exactly like a learned
        // conflict clause (watches on the asserting + deepest-false lit).
        cancel_until(level_second);
        const int index = store_clause(add_scratch_.data(),
                                       add_scratch_.size(),
                                       /*learned=*/false);
        attach_clause(index);
        enqueue(add_scratch_[0], index);
    } else {
        // Two or more literals die at the deepest level: undo that level so
        // both watches sit on unassigned literals, then search on.
        cancel_until(level_max - 1);
        const int index = store_clause(add_scratch_.data(),
                                       add_scratch_.size(),
                                       /*learned=*/false);
        attach_clause(index);
    }
    return search(assumptions, conflict_budget);
}

SolveResult
Solver::search(const std::vector<Lit>& assumptions,
               std::int64_t conflict_budget)
{
    const std::uint64_t conflict_start = stats_.conflicts;
    std::uint64_t restart_conflicts =
        static_cast<std::uint64_t>(luby(2.0, static_cast<int>(stats_.restarts)) *
                                   kRestartBase);
    std::uint64_t conflicts_since_restart = 0;
    std::uint64_t conflicts_since_poll = 0;
    Clause learned;

    while (true) {
        const int conflict = propagate();
        if (conflict != -1) {
            ++stats_.conflicts;
            ++conflicts_since_restart;
            if (decision_level() == 0) {
                ok_ = false;
                return SolveResult::kUnsat;
            }
            int backtrack_level = 0;
            analyze(conflict, learned, backtrack_level);
            cancel_until(backtrack_level);
            if (learned.size() == 1) {
                enqueue(learned[0], -1);
            } else {
                const int index =
                    store_clause(learned.data(), learned.size(),
                                 /*learned=*/true);
                attach_clause(index);
                bump_clause(index);
                enqueue(learned[0], index);
                ++stats_.learned_clauses;
            }
            decay_var_activity();
            decay_clause_activity();
            if (conflict_budget >= 0 &&
                stats_.conflicts - conflict_start >
                    static_cast<std::uint64_t>(conflict_budget)) {
                cancel_until(0);
                unknown_cause_ = UnknownCause::kConflictBudget;
                return SolveResult::kUnknown;
            }
            // Cooperative interrupt: poll at conflict-count intervals so a
            // cancelled run stops even mid-way through one hard query.
            if (interrupt_ && ++conflicts_since_poll >= kInterruptPollConflicts) {
                conflicts_since_poll = 0;
                if (interrupt_()) {
                    cancel_until(0);
                    unknown_cause_ = UnknownCause::kInterrupt;
                    return SolveResult::kUnknown;
                }
            }
            continue;
        }

        if (conflicts_since_restart >= restart_conflicts) {
            ++stats_.restarts;
            conflicts_since_restart = 0;
            restart_conflicts = static_cast<std::uint64_t>(
                luby(2.0, static_cast<int>(stats_.restarts)) * kRestartBase);
            cancel_until(0);
            continue;
        }
        reduce_db();

        // Establish pending assumptions, then branch. Each planted level is
        // recorded so the next solve can reuse a matching prefix.
        Lit next = kUndefLit;
        while (decision_level() < static_cast<int>(assumptions.size())) {
            const Lit a = assumptions[decision_level()];
            if (value(a) == LBool::kTrue) {
                planted_.push_back(a);
                trail_limits_.push_back(static_cast<int>(trail_.size()));
            } else if (value(a) == LBool::kFalse) {
                conflict_assumptions_.clear();
                conflict_assumptions_.push_back(~a);
                analyze_final(-1);
                // The levels established so far stay on the trail for the
                // next solve's prefix reuse; every entry point that needs
                // the root backtracks there itself.
                return SolveResult::kUnsat;
            } else {
                planted_.push_back(a);
                next = a;
                break;
            }
        }
        if (next == kUndefLit) {
            next = pick_branch_literal();
        }
        if (next == kUndefLit) {
            // Keep the satisfying trail: block_and_resolve() resumes from
            // it, and every other entry point backtracks on entry.
            model_ = assigns_;
            return SolveResult::kSat;
        }
        trail_limits_.push_back(static_cast<int>(trail_.size()));
        enqueue(next, -1);
    }
}

LBool
Solver::model_value(Var v) const
{
    return model_[v];
}

bool
Solver::model_literal_true(Lit l) const
{
    const LBool v = model_[l.var()];
    if (v == LBool::kUndef) {
        return false;
    }
    return (v == LBool::kTrue) != l.negated();
}

}  // namespace transform::sat
