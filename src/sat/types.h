/// \file
/// Core propositional types shared by the CDCL solver and the relational
/// compiler: variables, literals, and the three-valued assignment.
#pragma once

#include <cstdint>
#include <vector>

namespace transform::sat {

/// A propositional variable, numbered from 0.
using Var = int;

/// Sentinel for "no variable".
inline constexpr Var kUndefVar = -1;

/// A literal encodes (variable, sign) as 2*var + (negated ? 1 : 0).
///
/// Value semantics only; the encoding matches MiniSat so watch lists can be
/// indexed directly by literal.
class Lit {
  public:
    /// Constructs the undefined literal.
    constexpr Lit() : code_(-2) {}

    /// Constructs a literal over \p var; \p negated selects the sign.
    constexpr Lit(Var var, bool negated) : code_(2 * var + (negated ? 1 : 0)) {}

    /// The underlying variable.
    constexpr Var var() const { return code_ >> 1; }

    /// True for the negative phase.
    constexpr bool negated() const { return (code_ & 1) != 0; }

    /// Integer encoding, usable as an array index.
    constexpr int code() const { return code_; }

    /// Builds a literal from its integer encoding.
    static constexpr Lit from_code(int code)
    {
        Lit l;
        l.code_ = code;
        return l;
    }

    /// Logical negation.
    constexpr Lit operator~() const { return from_code(code_ ^ 1); }

    constexpr bool operator==(const Lit& other) const = default;
    constexpr auto operator<=>(const Lit& other) const = default;

  private:
    int code_;
};

/// Sentinel literal.
inline constexpr Lit kUndefLit{};

/// Three-valued truth assignment.
enum class LBool : std::int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

/// Negation over the three-valued domain (undef stays undef).
inline LBool negate(LBool value)
{
    switch (value) {
    case LBool::kFalse: return LBool::kTrue;
    case LBool::kTrue: return LBool::kFalse;
    default: return LBool::kUndef;
    }
}

/// A clause is a disjunction of literals.
using Clause = std::vector<Lit>;

}  // namespace transform::sat
