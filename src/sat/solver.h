/// \file
/// A conflict-driven clause-learning (CDCL) SAT solver.
///
/// This is the stand-in for MiniSat in the paper's Alloy/Kodkod/MiniSat
/// pipeline (see DESIGN.md, substitutions). Features: two-watched-literal
/// propagation, first-UIP clause learning with recursive minimization, VSIDS
/// branching with phase saving, Luby restarts, learned-clause database
/// reduction, and solving under assumptions (used by the AllSAT enumerator
/// and the relational layer's incremental queries).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

#include "sat/types.h"

namespace transform::sat {

/// Result of a solve call.
enum class SolveResult { kSat, kUnsat, kUnknown };

/// Why the most recent solve answered kUnknown (kNone after kSat/kUnsat).
/// Callers that must tell a budget expiry (retryable shard fault) from a
/// cooperative interrupt (cancellation/deadline: discard and stop) branch
/// on this instead of guessing.
enum class UnknownCause {
    kNone,            ///< last answer was decisive
    kConflictBudget,  ///< per-call or set_conflict_budget limit hit
    kInterrupt,       ///< the set_interrupt hook asked the search to stop
};

/// Thrown by the encoding layers (mtm::ProgramEncoding,
/// mtm::IncrementalEncoding) when a witness query exhausts its conflict
/// budget: the candidate's verdict is unknown, so the enumeration result
/// would be unsound to keep. The synthesis engine catches it at the shard
/// boundary and treats the shard as a retryable fault (docs/robustness.md).
class BudgetExhausted : public std::runtime_error {
  public:
    BudgetExhausted()
        : std::runtime_error(
              "SAT conflict budget exhausted before a decisive verdict")
    {
    }
};

/// Aggregate statistics, exposed for the substrate micro-benchmarks and
/// aggregated per suite into synth::SuiteResult::solver (the observability
/// layer's solver-time attribution — see docs/observability.md).
struct SolverStats {
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learned_clauses = 0;
    std::uint64_t deleted_clauses = 0;
    /// Current learned-clause database cap; starts at 4096 and grows
    /// geometrically on every reduce_db pass (MiniSat-style), so
    /// long-running enumeration queries stop thrashing the reducer.
    std::uint64_t max_learned = 0;
    /// solve() invocations (every AllSAT model extraction is one call).
    std::uint64_t solve_calls = 0;
    /// Wall nanoseconds inside solve(). Only accumulated while
    /// set_timing(true) — the default-off clock reads keep the hot path
    /// identical when nobody is measuring.
    std::uint64_t solve_nanos = 0;
    /// Assumption literals passed across all solve() calls — the
    /// incremental backend's per-candidate work is pure assumptions, so
    /// this is its "encoding avoided" proxy.
    std::uint64_t assumed_literals = 0;
    /// Activation literals permanently retired via retire_activation()
    /// (one per candidate the incremental session advanced past).
    std::uint64_t retired_activations = 0;
    /// Learned clauses alive at each retire_activation() call, summed —
    /// the clause-retention payoff of keeping one solver across
    /// candidates instead of resetting per query.
    std::uint64_t retained_clauses = 0;
    /// Structure-base encodings built from scratch / served from the
    /// incremental session's base cache. Counted by the session (the
    /// solver never bumps them itself); carried here so the per-suite
    /// solver aggregation surfaces the circuit-construction sharing.
    std::uint64_t bases_built = 0;
    std::uint64_t bases_reused = 0;

    /// Accumulates another solver's counters (monotonic counters add;
    /// `max_learned`, a cap rather than a count, takes the maximum).
    void merge(const SolverStats& other);
};

/// CDCL SAT solver over clauses added incrementally.
class Solver {
  public:
    Solver();

    /// Returns the solver to its freshly-constructed state while keeping
    /// every internal buffer's capacity (clause slots, watch lists, per-var
    /// arrays, analysis scratch). A reset solver behaves bit-identically to
    /// a new one; the synthesis engine reuses one solver per worker across
    /// millions of per-program queries to keep the hot path allocation-free
    /// in steady state.
    void reset();

    /// Creates a fresh variable and returns it.
    Var new_var();

    /// Number of variables created so far.
    int num_vars() const { return static_cast<int>(assigns_.size()); }

    /// Adds a clause from a literal range; returns false if the formula is
    /// already trivially unsatisfiable (empty clause after simplification).
    /// The allocation-free core: simplification runs in a reused member
    /// buffer and stored clauses reuse retired slots.
    bool add_clause(const Lit* lits, std::size_t count);

    /// Vector convenience wrapper.
    bool add_clause(const Clause& clause)
    {
        return add_clause(clause.data(), clause.size());
    }

    /// Convenience overloads for short clauses.
    bool add_unit(Lit a) { return add_clause(&a, 1); }
    bool add_binary(Lit a, Lit b)
    {
        const Lit lits[] = {a, b};
        return add_clause(lits, 2);
    }
    bool add_ternary(Lit a, Lit b, Lit c)
    {
        const Lit lits[] = {a, b, c};
        return add_clause(lits, 3);
    }

    /// Solves the current formula under optional \p assumptions.
    /// \p conflict_budget bounds the search (<0 means unlimited).
    ///
    /// A kSat answer leaves the satisfying trail in place (the model is
    /// additionally snapshotted for model_value()): the caller may resume
    /// the search from it via block_and_resolve(), and every other entry
    /// point (add_clause, solve, retire_activation) backtracks to the root
    /// on entry, so callers that never resume see no behavior change.
    SolveResult solve(const std::vector<Lit>& assumptions = {},
                      std::int64_t conflict_budget = -1);

    /// AllSAT continuation: blocks the model found by the immediately
    /// preceding kSat answer (whose trail must be untouched) and resumes
    /// the search in place instead of re-solving from scratch — the
    /// falsified clause is handled like a conflict (backjump, attach,
    /// propagate), so the decisions below the blocked choice survive.
    ///
    /// \p lits must be falsified by the current model. \p assumptions must
    /// be the vector the preceding solve ran under. Returns kSat with the
    /// next model, or kUnsat when no model remains under the assumptions —
    /// including a constant-time exit when every literal not already false
    /// at the root is pinned false by the assumption prefix itself. In
    /// that exit the clause is NOT stored: enumeration callers guard their
    /// blocking clauses with an activation literal they permanently retire
    /// before the next query, which is what makes the omission sound.
    SolveResult block_and_resolve(const Lit* lits, std::size_t count,
                                  const std::vector<Lit>& assumptions,
                                  std::int64_t conflict_budget = -1);

    /// Value of \p v in the most recent satisfying model.
    LBool model_value(Var v) const;

    /// Value of \p l in the most recent satisfying model.
    bool model_literal_true(Lit l) const;

    /// After an UNSAT answer under assumptions, the subset of assumptions
    /// (negated) that formed the final conflict.
    const std::vector<Lit>& unsat_core() const { return conflict_assumptions_; }

    /// Permanently asserts ~\p activation (a unit clause), retiring an
    /// activation literal the caller had been solving under: clauses
    /// guarded on \p activation become satisfied dead weight until the
    /// next reset(), while every learned clause stays sound (learning
    /// only ever resolves stored clauses, so retirement cannot invalidate
    /// it). Bumps the retirement/retention counters.
    bool retire_activation(Lit activation);

    /// Solver statistics accumulated since construction or the last
    /// reset().
    const SolverStats& stats() const { return stats_; }

    /// Statistics accumulated across every reset() since construction:
    /// reset() folds the live counters into a retired accumulator before
    /// clearing them, so a per-worker solver reused across millions of
    /// queries can still report per-suite totals. Purely observational —
    /// the reset-is-bit-identical contract is untouched.
    SolverStats lifetime_stats() const;

    /// Enables wall-clock accumulation into SolverStats::solve_nanos
    /// (default off: two clock reads per solve() call are only paid when
    /// somebody asked for solver-time attribution). Survives reset() —
    /// it is configuration, like buffer capacity.
    void set_timing(bool enabled) { timing_ = enabled; }

    /// Persistent conflict budget applied to every solve()/
    /// block_and_resolve() whose caller left the per-call budget at the
    /// default: the search answers kUnknown (unknown_cause() ==
    /// kConflictBudget) once it spends this many conflicts. 0 = unlimited
    /// (the default). An explicit per-call budget still takes precedence.
    /// Survives reset() — configuration, like set_timing.
    void
    set_conflict_budget(std::int64_t budget)
    {
        default_budget_ = budget <= 0 ? -1 : budget;
    }

    /// Installs a cooperative interrupt hook, polled inside the CDCL loop
    /// every ~1024 conflicts: when it returns true the search unwinds to
    /// the root and answers kUnknown (unknown_cause() == kInterrupt). The
    /// hook runs on the solving thread and must be cheap (the engine polls
    /// a relaxed atomic). An empty function clears it. Survives reset().
    void set_interrupt(std::function<bool()> poll)
    {
        interrupt_ = std::move(poll);
    }

    /// Installs a per-solve latency observer, invoked with each
    /// solve()/block_and_resolve() call's wall nanoseconds. Only fires
    /// while set_timing(true) — it rides the same two gated clock reads,
    /// so the untimed hot path stays identical. The observer runs on the
    /// solving thread (the engine feeds a per-worker histogram cell, so
    /// no synchronization is needed). An empty function clears it.
    /// Survives reset() — configuration, like set_timing.
    void set_solve_observer(std::function<void(std::uint64_t)> observer)
    {
        solve_observer_ = std::move(observer);
    }

    /// Why the most recent solve()/block_and_resolve() answered kUnknown
    /// (kNone after a decisive answer).
    UnknownCause unknown_cause() const { return unknown_cause_; }

    /// True if the formula was proven unsatisfiable without assumptions.
    bool proven_unsat() const { return ok_ == false; }

  private:
    /// The CDCL search loop behind solve() (which only adds the gated
    /// timing wrapper).
    SolveResult solve_impl(const std::vector<Lit>& assumptions,
                           std::int64_t conflict_budget);

    /// block_and_resolve() behind its timing wrapper.
    SolveResult block_and_resolve_impl(const Lit* lits, std::size_t count,
                                       const std::vector<Lit>& assumptions,
                                       std::int64_t conflict_budget);

    /// The shared CDCL loop: propagate / analyze / restart / branch from
    /// the current trail until a model, a refutation, or the budget.
    SolveResult search(const std::vector<Lit>& assumptions,
                       std::int64_t conflict_budget);

    struct Watcher {
        int clause_index;
        Lit blocker;
    };

    struct InternalClause {
        Clause lits;
        bool learned = false;
        double activity = 0.0;
        bool deleted = false;
    };

    // Assignment/trail machinery.
    LBool value(Lit l) const;
    LBool value(Var v) const;
    void enqueue(Lit l, int reason_clause);
    int propagate();  // returns conflicting clause index or -1
    void attach_clause(int clause_index);
    void cancel_until(int level);
    int decision_level() const { return static_cast<int>(trail_limits_.size()); }

    // Conflict analysis.
    void analyze(int conflict_index, Clause& learned, int& backtrack_level);
    bool literal_redundant(Lit l, std::uint32_t abstract_levels);
    void analyze_final(int conflict_index);

    // Branching heuristics.
    void bump_var(Var v);
    void decay_var_activity();
    void bump_clause(int clause_index);
    void decay_clause_activity();
    Lit pick_branch_literal();
    void heap_insert(Var v);
    Var heap_pop();
    void heap_percolate_up(int position);
    void heap_percolate_down(int position);
    bool heap_contains(Var v) const;

    // Learned-clause database management.
    void reduce_db();
    void grow_max_learned();

    // Restart schedule.
    static double luby(double base, int index);

    /// Appends (or slot-reuses) a stored clause; returns its index.
    int store_clause(const Lit* lits, std::size_t count, bool learned);

    bool ok_ = true;
    std::vector<InternalClause> clauses_;  ///< slots; only clauses_used_ live
    /// Live clause count. Slots past it are retired (their lit buffers are
    /// kept and refilled by store_clause after a reset).
    std::size_t clauses_used_ = 0;
    std::vector<std::vector<Watcher>> watches_;  // indexed by literal code
    std::vector<LBool> assigns_;
    std::vector<LBool> model_;
    std::vector<bool> saved_phase_;
    std::vector<int> reason_;  // clause index or -1, per var
    std::vector<int> level_;   // decision level per var
    std::vector<Lit> trail_;
    std::vector<int> trail_limits_;
    /// The assumption literal each leading decision level was planted for
    /// (kept in lockstep by cancel_until): solve() reuses the longest
    /// prefix matching its new assumption vector instead of backtracking
    /// to the root.
    std::vector<Lit> planted_;
    int propagation_head_ = 0;

    // VSIDS.
    std::vector<double> activity_;
    double var_activity_increment_ = 1.0;
    double clause_activity_increment_ = 1.0;
    std::vector<Var> order_heap_;
    std::vector<int> heap_position_;  // per var, -1 when absent

    // Scratch buffers for analyze() and add_clause().
    std::vector<bool> seen_;
    std::vector<Lit> analyze_stack_;
    std::vector<Lit> analyze_to_clear_;
    Clause add_scratch_;

    std::vector<Lit> conflict_assumptions_;
    SolverStats stats_;
    /// Counters folded in from previous reset() epochs (lifetime_stats).
    SolverStats retired_stats_;
    bool timing_ = false;  ///< accumulate solve_nanos (set_timing)
    /// Configuration (survives reset() like timing_): the fallback budget
    /// applied when a caller passes conflict_budget = -1, the cooperative
    /// interrupt hook, and the cause of the last kUnknown answer.
    std::int64_t default_budget_ = -1;
    std::function<bool()> interrupt_;
    std::function<void(std::uint64_t)> solve_observer_;
    UnknownCause unknown_cause_ = UnknownCause::kNone;
    /// Learned-DB cap; grown geometrically by reduce_db (never fixed — a
    /// static cap makes every conflict past it rescan the clause DB).
    int max_learned_ = 4096;
};

}  // namespace transform::sat
