#include "sat/enumerator.h"

namespace transform::sat {

EnumerationStats
enumerate_models(Solver* solver, const std::vector<Var>& projection,
                 const std::function<bool(const std::vector<bool>&)>& visit,
                 std::int64_t max_models)
{
    EnumerationStats stats;
    std::vector<bool> values(projection.size());
    while (true) {
        if (max_models > 0 &&
            stats.models >= static_cast<std::uint64_t>(max_models)) {
            return stats;
        }
        const SolveResult result = solver->solve();
        if (result == SolveResult::kUnsat) {
            stats.exhausted = true;
            return stats;
        }
        if (result == SolveResult::kUnknown) {
            return stats;
        }
        for (std::size_t i = 0; i < projection.size(); ++i) {
            values[i] = solver->model_value(projection[i]) == LBool::kTrue;
        }
        ++stats.models;
        if (!visit(values)) {
            return stats;
        }
        // Block this projected model: at least one projection variable must
        // differ in the next model.
        Clause blocking;
        blocking.reserve(projection.size());
        for (std::size_t i = 0; i < projection.size(); ++i) {
            blocking.push_back(Lit(projection[i], values[i]));
        }
        ++stats.blocked_clauses;
        if (!solver->add_clause(std::move(blocking))) {
            stats.exhausted = true;
            return stats;
        }
    }
}

}  // namespace transform::sat
