/// \file
/// AllSAT model enumeration over a projection set.
///
/// The synthesis engine's SAT backend enumerates every candidate execution
/// of a bounded ELT universe. Each model is projected onto the variables
/// that define the execution (the "shape" variables); a blocking clause over
/// the projection excludes the model and the solver is re-run. This mirrors
/// how the paper's Alloy/Kodkod pipeline enumerates instances.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sat/solver.h"
#include "sat/types.h"

namespace transform::sat {

/// Statistics from an enumeration run.
struct EnumerationStats {
    std::uint64_t models = 0;
    std::uint64_t blocked_clauses = 0;
    bool exhausted = false;  ///< true when the space was fully enumerated
};

/// Enumerates satisfying assignments of \p solver projected onto
/// \p projection. For each model, \p visit receives the projected values
/// (true/false per projection variable, positionally). \p visit may return
/// false to stop early. \p max_models <= 0 means unlimited.
EnumerationStats enumerate_models(
    Solver* solver, const std::vector<Var>& projection,
    const std::function<bool(const std::vector<bool>&)>& visit,
    std::int64_t max_models = -1);

}  // namespace transform::sat
