#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace transform::obs {

namespace {

/// JSON string escaping for span names (keys are literals and never need
/// it).
void
append_escaped(std::string* out, const std::string& text)
{
    for (const char c : text) {
        switch (c) {
        case '"':
            *out += "\\\"";
            break;
        case '\\':
            *out += "\\\\";
            break;
        case '\n':
            *out += "\\n";
            break;
        case '\t':
            *out += "\\t";
            break;
        case '\r':
            *out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x",
                              static_cast<unsigned>(c));
                *out += buffer;
            } else {
                out->push_back(c);
            }
        }
    }
}

/// Chrome trace timestamps are microseconds; keep nanosecond precision
/// with three decimals.
void
append_us(std::string* out, std::uint64_t ns)
{
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%" PRIu64 ".%03u", ns / 1000,
                  static_cast<unsigned>(ns % 1000));
    *out += buffer;
}

}  // namespace

TraceCollector::TraceCollector(int worker_lanes,
                               std::size_t capacity_per_lane)
    : lanes_(static_cast<std::size_t>(worker_lanes > 0 ? worker_lanes : 1) +
             1),
      capacity_(capacity_per_lane > 0 ? capacity_per_lane : 1),
      epoch_ns_(now_nanos())
{
    for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
        lanes_[lane].ring.reserve(capacity_);
        lanes_[lane].name = lane + 1 == lanes_.size()
                                ? "main"
                                : "worker " + std::to_string(lane);
    }
}

std::uint64_t
TraceCollector::next_flow_id()
{
    return next_flow_.fetch_add(1, std::memory_order_relaxed);
}

void
TraceCollector::set_lane_name(int lane, std::string name)
{
    if (lane >= 0 && lane < lanes()) {
        lanes_[static_cast<std::size_t>(lane)].name = std::move(name);
    }
}

void
TraceCollector::push(int lane, Event event)
{
    if (lane < 0 || lane >= lanes()) {
        invalid_lane_drops_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Lane& l = lanes_[static_cast<std::size_t>(lane)];
    if (l.ring.size() < capacity_) {
        l.ring.push_back(std::move(event));
    } else {
        l.ring[l.next] = std::move(event);
    }
    l.next = (l.next + 1) % capacity_;
    ++l.written;
}

void
TraceCollector::record_complete(int lane, std::string name,
                                std::uint64_t start_ns, std::uint64_t end_ns,
                                std::initializer_list<Arg> args)
{
    Event event;
    event.kind = Event::Kind::kComplete;
    event.name = std::move(name);
    event.ts_ns = start_ns;
    event.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
    for (const Arg& arg : args) {
        if (event.num_args < 3) {
            event.args[event.num_args++] = arg;
        }
    }
    push(lane, std::move(event));
}

void
TraceCollector::record_instant(int lane, std::string name,
                               std::uint64_t ts_ns)
{
    Event event;
    event.kind = Event::Kind::kInstant;
    event.name = std::move(name);
    event.ts_ns = ts_ns;
    push(lane, std::move(event));
}

void
TraceCollector::record_flow_start(int lane, std::uint64_t flow_id,
                                  std::uint64_t ts_ns)
{
    Event event;
    event.kind = Event::Kind::kFlowStart;
    event.name = "resplit";
    event.ts_ns = ts_ns;
    event.flow_id = flow_id;
    push(lane, std::move(event));
}

void
TraceCollector::record_flow_end(int lane, std::uint64_t flow_id,
                                std::uint64_t ts_ns)
{
    Event event;
    event.kind = Event::Kind::kFlowEnd;
    event.name = "resplit";
    event.ts_ns = ts_ns;
    event.flow_id = flow_id;
    push(lane, std::move(event));
}

void
TraceCollector::record_async_begin(int lane, std::string name,
                                   std::uint64_t id, std::uint64_t ts_ns)
{
    Event event;
    event.kind = Event::Kind::kAsyncBegin;
    event.name = std::move(name);
    event.ts_ns = ts_ns;
    event.flow_id = id;
    push(lane, std::move(event));
}

void
TraceCollector::record_async_end(int lane, std::string name,
                                 std::uint64_t id, std::uint64_t ts_ns)
{
    Event event;
    event.kind = Event::Kind::kAsyncEnd;
    event.name = std::move(name);
    event.ts_ns = ts_ns;
    event.flow_id = id;
    push(lane, std::move(event));
}

void
TraceCollector::record_counter(int lane, std::string name,
                               std::uint64_t ts_ns,
                               std::initializer_list<Arg> args)
{
    Event event;
    event.kind = Event::Kind::kCounter;
    event.name = std::move(name);
    event.ts_ns = ts_ns;
    for (const Arg& arg : args) {
        if (event.num_args < 3) {
            event.args[event.num_args++] = arg;
        }
    }
    push(lane, std::move(event));
}

std::size_t
TraceCollector::events_resident() const
{
    std::size_t total = 0;
    for (const Lane& lane : lanes_) {
        total += lane.ring.size();
    }
    return total;
}

std::uint64_t
TraceCollector::dropped() const
{
    std::uint64_t total =
        invalid_lane_drops_.load(std::memory_order_relaxed);
    for (const Lane& lane : lanes_) {
        total += lane.written - lane.ring.size();
    }
    return total;
}

std::string
TraceCollector::chrome_json() const
{
    std::string out;
    out.reserve(events_resident() * 120 + 1024);
    out += "{\n\"displayTimeUnit\": \"ms\",\n";
    out += "\"otherData\": {\"exporter\": \"transform-obs\", "
           "\"dropped_events\": " +
           std::to_string(dropped()) + "},\n";
    out += "\"traceEvents\": [\n";
    bool first = true;
    auto sep = [&] {
        if (!first) {
            out += ",\n";
        }
        first = false;
    };
    for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
        sep();
        out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" +
               std::to_string(lane) + ",\"args\":{\"name\":\"";
        append_escaped(&out, lanes_[lane].name);
        out += "\"}}";
    }
    for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
        for (const Event& event : lanes_[lane].ring) {
            const std::uint64_t ts =
                event.ts_ns >= epoch_ns_ ? event.ts_ns - epoch_ns_ : 0;
            sep();
            switch (event.kind) {
            case Event::Kind::kComplete:
                out += "{\"ph\":\"X\",\"cat\":\"synth\",\"name\":\"";
                append_escaped(&out, event.name);
                out += "\",\"pid\":1,\"tid\":" + std::to_string(lane) +
                       ",\"ts\":";
                append_us(&out, ts);
                out += ",\"dur\":";
                append_us(&out, event.dur_ns);
                if (event.num_args > 0) {
                    out += ",\"args\":{";
                    for (int a = 0; a < event.num_args; ++a) {
                        if (a > 0) {
                            out += ",";
                        }
                        out += "\"";
                        out += event.args[a].key;
                        out += "\":" + std::to_string(event.args[a].value);
                    }
                    out += "}";
                }
                out += "}";
                break;
            case Event::Kind::kInstant:
                out += "{\"ph\":\"i\",\"cat\":\"synth\",\"s\":\"t\","
                       "\"name\":\"";
                append_escaped(&out, event.name);
                out += "\",\"pid\":1,\"tid\":" + std::to_string(lane) +
                       ",\"ts\":";
                append_us(&out, ts);
                out += "}";
                break;
            case Event::Kind::kFlowStart:
                out += "{\"ph\":\"s\",\"cat\":\"resplit\",\"name\":\"";
                append_escaped(&out, event.name);
                out += "\",\"id\":" + std::to_string(event.flow_id) +
                       ",\"pid\":1,\"tid\":" + std::to_string(lane) +
                       ",\"ts\":";
                append_us(&out, ts);
                out += "}";
                break;
            case Event::Kind::kFlowEnd:
                out += "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"resplit\","
                       "\"name\":\"";
                append_escaped(&out, event.name);
                out += "\",\"id\":" + std::to_string(event.flow_id) +
                       ",\"pid\":1,\"tid\":" + std::to_string(lane) +
                       ",\"ts\":";
                append_us(&out, ts);
                out += "}";
                break;
            case Event::Kind::kAsyncBegin:
            case Event::Kind::kAsyncEnd:
                out += event.kind == Event::Kind::kAsyncBegin
                           ? "{\"ph\":\"b\",\"cat\":\"suite\",\"name\":\""
                           : "{\"ph\":\"e\",\"cat\":\"suite\",\"name\":\"";
                append_escaped(&out, event.name);
                out += "\",\"id\":" + std::to_string(event.flow_id) +
                       ",\"pid\":1,\"tid\":" + std::to_string(lane) +
                       ",\"ts\":";
                append_us(&out, ts);
                out += "}";
                break;
            case Event::Kind::kCounter:
                out += "{\"ph\":\"C\",\"cat\":\"synth\",\"name\":\"";
                append_escaped(&out, event.name);
                out += "\",\"pid\":1,\"tid\":" + std::to_string(lane) +
                       ",\"ts\":";
                append_us(&out, ts);
                out += ",\"args\":{";
                for (int a = 0; a < event.num_args; ++a) {
                    if (a > 0) {
                        out += ",";
                    }
                    out += "\"";
                    out += event.args[a].key;
                    out += "\":" + std::to_string(event.args[a].value);
                }
                out += "}}";
                break;
            }
        }
    }
    out += "\n]\n}\n";
    return out;
}

bool
TraceCollector::write(const std::string& path, std::string* error) const
{
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        if (error != nullptr) {
            *error = "cannot open " + path + " for writing";
        }
        return false;
    }
    const std::string json = chrome_json();
    const std::size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    const bool ok = written == json.size() && std::fclose(file) == 0;
    if (!ok && error != nullptr) {
        *error = "short write to " + path;
    }
    return ok;
}

ScopedSpan::ScopedSpan(TraceCollector* trace, int lane, std::string name)
    : trace_(trace), lane_(lane), name_(std::move(name)),
      start_(trace != nullptr ? now_nanos() : 0)
{
}

ScopedSpan::~ScopedSpan()
{
    if (trace_ != nullptr) {
        trace_->record_complete(lane_, std::move(name_), start_,
                                now_nanos());
    }
}

}  // namespace transform::obs
