/// \file
/// Span collection and Chrome trace-event export — the timeline half of
/// the observability layer (see obs/metrics.h for the counter half and
/// docs/observability.md for how to open the output in Perfetto or
/// chrome://tracing).
///
/// Writers record *complete* spans (begin + duration in one event, so a
/// truncated ring can never produce unbalanced begin/end pairs), instant
/// markers, and flow arrows (used for shard re-split lineage: a parent
/// shard job's flow-start connects to each resubmitted child's
/// flow-end). Storage is one ring buffer per lane; a lane has exactly one
/// writer (pool worker w writes lane w, the submitting thread writes the
/// lane returned by main_lane()), so recording is lock- and wait-free.
/// When the ring wraps, the oldest events are overwritten and counted in
/// dropped() — a bounded trace of the most recent activity, never
/// unbounded memory.
///
/// Export (chrome_json / write) must not run concurrently with recording;
/// the engine's contract is "export after every job group has been
/// wait()ed", which is also when ring contents are settled.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace transform::obs {

/// Collects spans from concurrent single-writer lanes and serializes them
/// as a Chrome trace-event JSON object.
class TraceCollector {
  public:
    /// One numeric argument attached to a span (rendered into the event's
    /// "args" object). The key must outlive the collector (string
    /// literals).
    struct Arg {
        const char* key;
        std::uint64_t value;
    };

    /// \p worker_lanes writer lanes for pool workers plus one extra lane
    /// (main_lane()) for the submitting thread. Each lane holds at most
    /// \p capacity_per_lane events; older events are overwritten.
    explicit TraceCollector(int worker_lanes,
                            std::size_t capacity_per_lane = 1 << 14);

    TraceCollector(const TraceCollector&) = delete;
    TraceCollector& operator=(const TraceCollector&) = delete;

    /// Total lanes, including the main lane.
    int lanes() const { return static_cast<int>(lanes_.size()); }

    /// The extra lane reserved for the submitting thread.
    int main_lane() const { return lanes() - 1; }

    /// A fresh process-unique flow id (never 0; 0 means "no flow").
    std::uint64_t next_flow_id();

    /// Labels a lane in the exported trace (defaults to "worker N" /
    /// "main").
    void set_lane_name(int lane, std::string name);

    /// Records a complete span [start_ns, end_ns] (obs::now_nanos()
    /// timestamps) on \p lane with up to 3 numeric args. Out-of-range
    /// lanes drop the event (counted).
    void record_complete(int lane, std::string name, std::uint64_t start_ns,
                         std::uint64_t end_ns,
                         std::initializer_list<Arg> args = {});

    /// Records an instant marker.
    void record_instant(int lane, std::string name, std::uint64_t ts_ns);

    /// Records the producing end of a flow arrow (e.g. a shard job
    /// submitting a re-split child).
    void record_flow_start(int lane, std::uint64_t flow_id,
                           std::uint64_t ts_ns);

    /// Records the consuming end of a flow arrow (e.g. the child job
    /// starting).
    void record_flow_end(int lane, std::uint64_t flow_id,
                         std::uint64_t ts_ns);

    /// Records an async span pair (Chrome "b"/"e" events, rendered on
    /// their own track). Async spans may overlap freely — used for
    /// per-suite spans, which interleave on a shared pool. Pair the two
    /// calls with the same \p id (next_flow_id() is a fine source).
    void record_async_begin(int lane, std::string name, std::uint64_t id,
                            std::uint64_t ts_ns);
    void record_async_end(int lane, std::string name, std::uint64_t id,
                          std::uint64_t ts_ns);

    /// Records a counter sample (Chrome "C" event, rendered as a stacked
    /// chart of the arg series). Used for per-phase latency percentiles
    /// and the observed-cost re-split threshold at suite boundaries.
    void record_counter(int lane, std::string name, std::uint64_t ts_ns,
                        std::initializer_list<Arg> args);

    /// Events recorded and still resident across all lanes.
    std::size_t events_resident() const;

    /// Events lost to ring wraparound or invalid lanes.
    std::uint64_t dropped() const;

    /// Serializes everything recorded so far as a Chrome trace-event JSON
    /// object (the `{"traceEvents": [...]}` dictionary form), with lane
    /// thread-name metadata. Timestamps are microseconds relative to the
    /// collector's construction. Not safe concurrently with record_*.
    std::string chrome_json() const;

    /// Writes chrome_json() to \p path; false (with \p error filled when
    /// non-null) when the file cannot be written.
    bool write(const std::string& path, std::string* error = nullptr) const;

  private:
    struct Event {
        enum class Kind : std::uint8_t {
            kComplete,
            kInstant,
            kFlowStart,
            kFlowEnd,
            kAsyncBegin,
            kAsyncEnd,
            kCounter,
        };
        Kind kind = Kind::kComplete;
        std::uint8_t num_args = 0;
        std::string name;
        std::uint64_t ts_ns = 0;
        std::uint64_t dur_ns = 0;
        std::uint64_t flow_id = 0;
        Arg args[3] = {};
    };

    /// Single-writer ring; padded so lanes never share a cache line.
    struct alignas(64) Lane {
        std::vector<Event> ring;   ///< capacity fixed at construction
        std::size_t next = 0;      ///< insertion cursor
        std::uint64_t written = 0; ///< events ever recorded on this lane
        std::string name;
    };

    void push(int lane, Event event);

    std::vector<Lane> lanes_;
    std::size_t capacity_;
    std::uint64_t epoch_ns_;
    std::atomic_uint64_t next_flow_{1};
    std::atomic_uint64_t invalid_lane_drops_{0};
};

/// RAII complete-span helper: records [construction, destruction] on
/// destruction. A null collector is the disabled fast path (one branch,
/// no clock read).
class ScopedSpan {
  public:
    ScopedSpan(TraceCollector* trace, int lane, std::string name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

  private:
    TraceCollector* trace_;
    int lane_;
    std::string name_;
    std::uint64_t start_;
};

}  // namespace transform::obs
