/// \file
/// Phase-attributed heap-allocation tracking — the allocation half of the
/// observability layer (obs/metrics.h counts time, this counts operator
/// new; see docs/observability.md, "Allocation tracking").
///
/// The library interposes the global operator new/new[] family (alloc.cpp)
/// behind two tiers:
///
///  - A process-wide allocation counter that is ALWAYS on (one relaxed
///    fetch_add per allocation). This is the proxy the substrate bench has
///    graded the zero-allocation hot path on since PR 4; it moved here so
///    tools and tests share it (alloc_count()).
///  - An opt-in thread-local binding (bind_alloc_tracker) that attributes
///    each allocation's count and bytes to the thread's ACTIVE PHASE and
///    ACTIVE SITE on a per-worker padded cell of an AllocTracker — the
///    same single-writer/relaxed-merge design as MetricsRegistry. With no
///    binding the hot path is one thread-local pointer test.
///
/// The active phase follows obs::ScopedPhase sections automatically
/// (metrics.h swaps the thread-local phase whenever a tracker is bound),
/// so allocation attribution reuses the exact taxonomy the time metrics
/// already pin. Allocations outside any scoped section land in
/// kSkeletonEnum, mirroring the engine's "unclaimed shard wall time"
/// convention — which is what makes per-phase counts SUM EXACTLY to the
/// process-wide proxy delta over an instrumented region (tested in
/// tests/obs_test.cpp).
///
/// Attribution never perturbs synthesis output: suites are byte-identical
/// with tracking bound or not (the on/off matrix in tests/obs_test.cpp).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace transform::obs {

/// Allocations performed by the whole process so far (the always-on
/// proxy). Monotonic; diff two reads around a workload to grade it.
std::uint64_t alloc_count();

/// Call-site buckets for the allocation hunt: a ScopedAllocSite names the
/// code region so per-phase totals can be split by suspect
/// (ROADMAP "finish the allocation story"). kSiteOther is everything
/// untagged.
enum class AllocSite : int {
    kSiteOther = 0,       ///< no ScopedAllocSite active
    kSiteCanonicalKey,    ///< canonical-key strings crossing the dedup index
    kSiteSuiteGrowth,     ///< suite-result/test accumulation
    kSiteBlockingClause,  ///< AllSAT blocking-clause construction
    kSiteJudgeVerdict,    ///< minimality judge verdict-side allocations
};

/// Number of call-site buckets (kSiteJudgeVerdict is the last).
inline constexpr int kAllocSiteCount =
    static_cast<int>(AllocSite::kSiteJudgeVerdict) + 1;

/// Stable lower_snake_case name of a call-site bucket (JSON/report
/// spelling).
const char* alloc_site_name(AllocSite site);

/// One bucket's merged allocation totals.
struct AllocSlot {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
};

/// Merged allocation totals across every worker of an AllocTracker:
/// per-phase and per-site breakdowns of the same allocations (each
/// allocation lands in exactly one phase bucket AND exactly one site
/// bucket, so both tables sum to the same grand total).
struct AllocTotals {
    std::array<AllocSlot, kPhaseCount> phases{};
    std::array<AllocSlot, kAllocSiteCount> sites{};

    void merge(const AllocTotals& other);
    /// Sum of count over all phase buckets.
    std::uint64_t total_count() const;
    /// Sum of bytes over all phase buckets.
    std::uint64_t total_bytes() const;
};

/// A registry of per-worker allocation cells, written from inside
/// operator new by whichever threads are bound to it. Same concurrency
/// contract as MetricsRegistry: worker w's bound thread writes cell w at
/// zero contention; merged() is settled once writers have quiesced.
class AllocTracker {
  public:
    /// One cell per worker in [0, workers); out-of-range worker ids are
    /// dropped (counted in dropped()).
    explicit AllocTracker(int workers);

    AllocTracker(const AllocTracker&) = delete;
    AllocTracker& operator=(const AllocTracker&) = delete;

    int workers() const { return static_cast<int>(cells_.size()); }

    /// Attributes one allocation of \p bytes to (\p phase, \p site) on
    /// \p worker's cell. Called from operator new; must not allocate.
    void add(int worker, int phase, int site, std::uint64_t bytes);

    /// Merged totals across all workers.
    AllocTotals merged() const;

    /// Allocation count attributed to one worker's cell (all phases).
    std::uint64_t worker_count(int worker) const;

    /// add() calls that named an out-of-range worker/phase/site.
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    /// One worker's counters, padded so neighbouring workers never
    /// false-share.
    struct alignas(64) Cell {
        std::atomic<std::uint64_t> phase_count[kPhaseCount];
        std::atomic<std::uint64_t> phase_bytes[kPhaseCount];
        std::atomic<std::uint64_t> site_count[kAllocSiteCount];
        std::atomic<std::uint64_t> site_bytes[kAllocSiteCount];

        Cell()
        {
            for (int p = 0; p < kPhaseCount; ++p) {
                phase_count[p].store(0, std::memory_order_relaxed);
                phase_bytes[p].store(0, std::memory_order_relaxed);
            }
            for (int s = 0; s < kAllocSiteCount; ++s) {
                site_count[s].store(0, std::memory_order_relaxed);
                site_bytes[s].store(0, std::memory_order_relaxed);
            }
        }
    };

    std::vector<Cell> cells_;
    std::atomic<std::uint64_t> dropped_{0};
};

/// Binds the calling thread's allocations to \p tracker as \p worker,
/// starting in phase kSkeletonEnum / site kSiteOther. Passing nullptr
/// unbinds. A thread has at most one binding; bindings never cross
/// threads. (The binding POD itself lives in metrics.h's detail namespace
/// so ScopedPhase can keep the phase in sync.)
void bind_alloc_tracker(AllocTracker* tracker, int worker);

/// True when the calling thread currently has a tracker bound.
inline bool
alloc_tracking_bound()
{
    return detail::t_alloc_binding.tracker != nullptr;
}

/// RAII call-site tag: allocations on this thread between construction
/// and destruction land in \p site's bucket (in addition to the active
/// phase's). Nests by save/restore. No-op overhead when unbound: two
/// thread-local int writes, no atomics, no branches on the alloc path.
class ScopedAllocSite {
  public:
    explicit ScopedAllocSite(AllocSite site)
        : saved_(detail::t_alloc_binding.site)
    {
        detail::t_alloc_binding.site = static_cast<int>(site);
    }

    ~ScopedAllocSite() { detail::t_alloc_binding.site = saved_; }

    ScopedAllocSite(const ScopedAllocSite&) = delete;
    ScopedAllocSite& operator=(const ScopedAllocSite&) = delete;

  private:
    int saved_;
};

}  // namespace transform::obs
