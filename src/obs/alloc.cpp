/// \file
/// Global operator-new interposition + the AllocTracker cells it feeds.
///
/// The replacement allocator family lives in the transform library (one
/// definition per process; bench_substrate_micro's private proxy moved
/// here in PR 10). Every path is malloc/free-based and allocation-free
/// itself, so tracker attribution can run inside operator new without
/// recursion. Alignment-aware forms use posix_memalign; the standard
/// nothrow forms are NOT replaced — the default ones forward to these
/// throwing forms, so they are counted too.
#include "obs/alloc.h"

#include <cstdlib>
#include <new>

namespace transform::obs {

namespace {

/// The always-on process-wide proxy. Constant-initialized: safe to bump
/// from allocations that run before main().
constinit std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace

namespace detail {

thread_local constinit AllocBinding t_alloc_binding{nullptr, 0, 0, 0};

/// One allocation of \p bytes on the calling thread: bump the global
/// proxy, then attribute to the bound tracker when there is one.
inline void
note_alloc(std::size_t bytes) noexcept
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    const AllocBinding& binding = t_alloc_binding;
    if (binding.tracker != nullptr) {
        binding.tracker->add(binding.worker, binding.phase, binding.site,
                             static_cast<std::uint64_t>(bytes));
    }
}

}  // namespace detail

std::uint64_t
alloc_count()
{
    return g_alloc_count.load(std::memory_order_relaxed);
}

const char*
alloc_site_name(AllocSite site)
{
    switch (site) {
    case AllocSite::kSiteOther:
        return "other";
    case AllocSite::kSiteCanonicalKey:
        return "canonical_key";
    case AllocSite::kSiteSuiteGrowth:
        return "suite_growth";
    case AllocSite::kSiteBlockingClause:
        return "blocking_clause";
    case AllocSite::kSiteJudgeVerdict:
        return "judge_verdict";
    }
    return "unknown";
}

void
AllocTotals::merge(const AllocTotals& other)
{
    for (int p = 0; p < kPhaseCount; ++p) {
        phases[static_cast<std::size_t>(p)].count +=
            other.phases[static_cast<std::size_t>(p)].count;
        phases[static_cast<std::size_t>(p)].bytes +=
            other.phases[static_cast<std::size_t>(p)].bytes;
    }
    for (int s = 0; s < kAllocSiteCount; ++s) {
        sites[static_cast<std::size_t>(s)].count +=
            other.sites[static_cast<std::size_t>(s)].count;
        sites[static_cast<std::size_t>(s)].bytes +=
            other.sites[static_cast<std::size_t>(s)].bytes;
    }
}

std::uint64_t
AllocTotals::total_count() const
{
    std::uint64_t total = 0;
    for (const AllocSlot& slot : phases) {
        total += slot.count;
    }
    return total;
}

std::uint64_t
AllocTotals::total_bytes() const
{
    std::uint64_t total = 0;
    for (const AllocSlot& slot : phases) {
        total += slot.bytes;
    }
    return total;
}

AllocTracker::AllocTracker(int workers)
    : cells_(workers > 0 ? static_cast<std::size_t>(workers) : 1)
{
}

void
AllocTracker::add(int worker, int phase, int site, std::uint64_t bytes)
{
    if (worker < 0 || worker >= workers() || phase < 0 ||
        phase >= kPhaseCount || site < 0 || site >= kAllocSiteCount) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Cell& cell = cells_[static_cast<std::size_t>(worker)];
    cell.phase_count[phase].fetch_add(1, std::memory_order_relaxed);
    cell.phase_bytes[phase].fetch_add(bytes, std::memory_order_relaxed);
    cell.site_count[site].fetch_add(1, std::memory_order_relaxed);
    cell.site_bytes[site].fetch_add(bytes, std::memory_order_relaxed);
}

AllocTotals
AllocTracker::merged() const
{
    AllocTotals totals;
    for (const Cell& cell : cells_) {
        for (int p = 0; p < kPhaseCount; ++p) {
            totals.phases[static_cast<std::size_t>(p)].count +=
                cell.phase_count[p].load(std::memory_order_relaxed);
            totals.phases[static_cast<std::size_t>(p)].bytes +=
                cell.phase_bytes[p].load(std::memory_order_relaxed);
        }
        for (int s = 0; s < kAllocSiteCount; ++s) {
            totals.sites[static_cast<std::size_t>(s)].count +=
                cell.site_count[s].load(std::memory_order_relaxed);
            totals.sites[static_cast<std::size_t>(s)].bytes +=
                cell.site_bytes[s].load(std::memory_order_relaxed);
        }
    }
    return totals;
}

std::uint64_t
AllocTracker::worker_count(int worker) const
{
    if (worker < 0 || worker >= workers()) {
        return 0;
    }
    const Cell& cell = cells_[static_cast<std::size_t>(worker)];
    std::uint64_t total = 0;
    for (int p = 0; p < kPhaseCount; ++p) {
        total += cell.phase_count[p].load(std::memory_order_relaxed);
    }
    return total;
}

void
bind_alloc_tracker(AllocTracker* tracker, int worker)
{
    detail::t_alloc_binding.tracker = tracker;
    detail::t_alloc_binding.worker = worker;
    detail::t_alloc_binding.phase = static_cast<int>(Phase::kSkeletonEnum);
    detail::t_alloc_binding.site = static_cast<int>(AllocSite::kSiteOther);
}

}  // namespace transform::obs

// ---------------------------------------------------------------------------
// Replacement allocation functions (global namespace, one set per process).
// ---------------------------------------------------------------------------

namespace {

void*
counted_alloc(std::size_t size)
{
    transform::obs::detail::note_alloc(size);
    // malloc(0) may return nullptr; callers of operator new expect a
    // distinct non-null pointer.
    if (void* p = std::malloc(size != 0 ? size : 1)) {
        return p;
    }
    throw std::bad_alloc();
}

void*
counted_aligned_alloc(std::size_t size, std::align_val_t align)
{
    transform::obs::detail::note_alloc(size);
    // posix_memalign needs alignment to be a power of two multiple of
    // sizeof(void*); std::align_val_t guarantees the power of two.
    std::size_t alignment = static_cast<std::size_t>(align);
    if (alignment < sizeof(void*)) {
        alignment = sizeof(void*);
    }
    void* p = nullptr;
    if (posix_memalign(&p, alignment, size != 0 ? size : alignment) == 0) {
        return p;
    }
    throw std::bad_alloc();
}

}  // namespace

void*
operator new(std::size_t size)
{
    return counted_alloc(size);
}

void*
operator new[](std::size_t size)
{
    return counted_alloc(size);
}

void*
operator new(std::size_t size, std::align_val_t align)
{
    return counted_aligned_alloc(size, align);
}

void*
operator new[](std::size_t size, std::align_val_t align)
{
    return counted_aligned_alloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
