#include "obs/report.h"

#include <cinttypes>
#include <cstdio>

namespace transform::obs {

namespace {

/// Minimal JSON string escaping for the free-form fields (model may be a
/// filesystem path).
std::string
escaped(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out.push_back(c);
        }
    }
    return out;
}

void
append_kv(std::string* out, const char* key, std::uint64_t value,
          const char* suffix = ",")
{
    char buffer[96];
    std::snprintf(buffer, sizeof buffer, "\"%s\": %" PRIu64 "%s", key, value,
                  suffix);
    *out += buffer;
}

void
append_kv(std::string* out, const char* key, double value,
          const char* suffix = ",")
{
    char buffer[96];
    std::snprintf(buffer, sizeof buffer, "\"%s\": %.9g%s", key, value,
                  suffix);
    *out += buffer;
}

void
append_scheduler(std::string* out, const std::string& indent,
                 const sched::SchedulerStats& s)
{
    *out += "{\n";
    *out += indent + "  ";
    append_kv(out, "workers", static_cast<std::uint64_t>(s.workers));
    *out += "\n" + indent + "  ";
    append_kv(out, "jobs_run", s.jobs_run);
    *out += "\n" + indent + "  ";
    append_kv(out, "steals", s.steals);
    *out += "\n" + indent + "  ";
    append_kv(out, "lazy_resplits", s.lazy_resplits);
    *out += "\n" + indent + "  ";
    append_kv(out, "closed_prefix_splits", s.closed_prefix_splits);
    *out += "\n" + indent + "  ";
    append_kv(out, "skip_enumerations", s.skip_enumerations);
    *out += "\n" + indent + "  ";
    append_kv(out, "dedup_hits", s.dedup_hits);
    *out += "\n" + indent + "  ";
    append_kv(out, "queue_wait_seconds", s.queue_wait_seconds);
    *out += "\n" + indent + "  ";
    append_kv(out, "job_faults", s.job_faults);
    *out += "\n" + indent + "  ";
    append_kv(out, "shard_retries", s.shard_retries);
    *out += "\n" + indent + "  ";
    append_kv(out, "shards_quarantined", s.shards_quarantined);
    *out += "\n" + indent + "  ";
    append_kv(out, "checkpoint_shards_saved", s.checkpoint_shards_saved);
    *out += "\n" + indent + "  ";
    append_kv(out, "checkpoint_shards_replayed", s.checkpoint_shards_replayed);
    *out += "\n" + indent + "  ";
    append_kv(out, "observed_cost_resplits", s.observed_cost_resplits);
    *out += "\n" + indent + "  ";
    append_kv(out, "resplit_threshold_min", s.resplit_threshold_min);
    *out += "\n" + indent + "  ";
    append_kv(out, "resplit_threshold_max", s.resplit_threshold_max, "");
    *out += "\n" + indent + "}";
}

void
append_solver(std::string* out, const std::string& indent,
              const sat::SolverStats& s)
{
    *out += "{\n";
    *out += indent + "  ";
    append_kv(out, "solve_calls", s.solve_calls);
    *out += "\n" + indent + "  ";
    append_kv(out, "solve_seconds",
              static_cast<double>(s.solve_nanos) * 1e-9);
    *out += "\n" + indent + "  ";
    append_kv(out, "decisions", s.decisions);
    *out += "\n" + indent + "  ";
    append_kv(out, "propagations", s.propagations);
    *out += "\n" + indent + "  ";
    append_kv(out, "conflicts", s.conflicts);
    *out += "\n" + indent + "  ";
    append_kv(out, "restarts", s.restarts);
    *out += "\n" + indent + "  ";
    append_kv(out, "learned_clauses", s.learned_clauses);
    *out += "\n" + indent + "  ";
    append_kv(out, "deleted_clauses", s.deleted_clauses);
    *out += "\n" + indent + "  ";
    append_kv(out, "max_learned", s.max_learned);
    *out += "\n" + indent + "  ";
    append_kv(out, "assumed_literals", s.assumed_literals);
    *out += "\n" + indent + "  ";
    append_kv(out, "retired_activations", s.retired_activations);
    *out += "\n" + indent + "  ";
    append_kv(out, "retained_clauses", s.retained_clauses);
    *out += "\n" + indent + "  ";
    append_kv(out, "bases_built", s.bases_built);
    *out += "\n" + indent + "  ";
    append_kv(out, "bases_reused", s.bases_reused, "");
    *out += "\n" + indent + "}";
}

void
append_phases(std::string* out, const std::string& indent,
              const PhaseTotals& phases, const AllocTotals& allocs)
{
    *out += "{\n";
    for (int p = 0; p < kPhaseCount; ++p) {
        const Phase phase = static_cast<Phase>(p);
        const LatencyHistogram& hist =
            phases.latency[static_cast<std::size_t>(p)];
        const AllocSlot& alloc = allocs.phases[static_cast<std::size_t>(p)];
        *out += indent + "  \"";
        *out += phase_name(phase);
        *out += "\": {";
        append_kv(out, "seconds", phases.seconds(phase));
        *out += " ";
        append_kv(out, "count", phases.count(phase));
        *out += " ";
        append_kv(out, "p50_ns", hist.percentile_nanos(0.5));
        *out += " ";
        append_kv(out, "p90_ns", hist.percentile_nanos(0.9));
        *out += " ";
        append_kv(out, "p99_ns", hist.percentile_nanos(0.99));
        *out += " ";
        append_kv(out, "alloc_count", alloc.count);
        *out += " ";
        append_kv(out, "alloc_bytes", alloc.bytes, "");
        *out += "}";
        *out += p + 1 < kPhaseCount ? ",\n" : "\n";
    }
    *out += indent + "}";
}

void
append_alloc_sites(std::string* out, const std::string& indent,
                   const AllocTotals& allocs)
{
    *out += "{\n";
    for (int s = 0; s < kAllocSiteCount; ++s) {
        const AllocSlot& slot = allocs.sites[static_cast<std::size_t>(s)];
        *out += indent + "  \"";
        *out += alloc_site_name(static_cast<AllocSite>(s));
        *out += "\": {";
        append_kv(out, "count", slot.count);
        *out += " ";
        append_kv(out, "bytes", slot.bytes, "");
        *out += "}";
        *out += s + 1 < kAllocSiteCount ? ",\n" : "\n";
    }
    *out += indent + "}";
}

void
append_failures(std::string* out, const std::string& indent,
                const std::vector<synth::ShardFailure>& failures)
{
    if (failures.empty()) {
        *out += "[]";
        return;
    }
    *out += "[\n";
    for (std::size_t i = 0; i < failures.size(); ++i) {
        const synth::ShardFailure& f = failures[i];
        *out += indent + "  {\"shard\": \"" + escaped(f.shard) +
                "\", \"error\": \"" + escaped(f.error) + "\", ";
        append_kv(out, "attempts", static_cast<std::uint64_t>(f.attempts),
                  "");
        *out += "}";
        *out += i + 1 < failures.size() ? ",\n" : "\n";
    }
    *out += indent + "]";
}

void
append_suite(std::string* out, const std::string& indent,
             const SuiteReport& suite, bool with_axiom)
{
    *out += "{\n";
    if (with_axiom) {
        *out += indent + "  \"axiom\": \"" + escaped(suite.axiom) + "\",\n";
    }
    *out += indent + "  ";
    append_kv(out, "tests", suite.tests);
    *out += "\n" + indent + "  ";
    append_kv(out, "programs_considered", suite.programs_considered);
    *out += "\n" + indent + "  ";
    append_kv(out, "executions_considered", suite.executions_considered);
    *out += "\n" + indent + "  ";
    append_kv(out, "duplicates_rejected", suite.duplicates_rejected);
    *out += "\n" + indent + "  ";
    append_kv(out, "seconds", suite.seconds);
    *out += "\n" + indent + "  \"complete\": ";
    *out += suite.complete ? "true" : "false";
    *out += ",\n" + indent + "  \"cancelled\": ";
    *out += suite.cancelled ? "true" : "false";
    *out += ",\n" + indent + "  \"scheduler\": ";
    append_scheduler(out, indent + "  ", suite.scheduler);
    *out += ",\n" + indent + "  \"solver\": ";
    append_solver(out, indent + "  ", suite.solver);
    *out += ",\n" + indent + "  \"phases\": ";
    append_phases(out, indent + "  ", suite.phases, suite.allocs);
    *out += ",\n" + indent + "  \"alloc_sites\": ";
    append_alloc_sites(out, indent + "  ", suite.allocs);
    *out += ",\n" + indent + "  \"failures\": ";
    append_failures(out, indent + "  ", suite.failures);
    *out += "\n" + indent + "}";
}

}  // namespace

void
SuiteReport::merge(const SuiteReport& other)
{
    tests += other.tests;
    programs_considered += other.programs_considered;
    executions_considered += other.executions_considered;
    duplicates_rejected += other.duplicates_rejected;
    seconds += other.seconds;
    complete = complete && other.complete;
    cancelled = cancelled || other.cancelled;
    scheduler.merge(other.scheduler);
    solver.merge(other.solver);
    phases.merge(other.phases);
    allocs.merge(other.allocs);
    failures.insert(failures.end(), other.failures.begin(),
                    other.failures.end());
}

SuiteReport
suite_report(const synth::SuiteResult& suite)
{
    SuiteReport report;
    report.axiom = suite.axiom;
    report.tests = suite.tests.size();
    report.programs_considered = suite.programs_considered;
    report.executions_considered = suite.executions_considered;
    report.duplicates_rejected = suite.duplicates_rejected;
    report.seconds = suite.seconds;
    report.complete = suite.complete;
    report.cancelled = suite.cancelled;
    report.scheduler = suite.scheduler;
    report.solver = suite.solver;
    report.phases = suite.phases;
    report.allocs = suite.allocs;
    report.failures = suite.failures;
    return report;
}

SuiteReport
RunReport::totals() const
{
    SuiteReport total;
    total.axiom = "all";
    for (const SuiteReport& suite : suites) {
        total.merge(suite);
    }
    return total;
}

std::string
report_to_json(const RunReport& report)
{
    std::string out;
    out.reserve(4096);
    out += "{\n";
    out += "  \"schema\": \"transform-metrics\",\n";
    out += "  ";
    append_kv(&out, "schema_version",
              static_cast<std::uint64_t>(kMetricsSchemaVersion));
    out += "\n  \"tool\": \"" + escaped(report.tool) + "\",\n";
    out += "  \"model\": \"" + escaped(report.model) + "\",\n";
    out += "  \"backend\": \"" + escaped(report.backend) + "\",\n";
    out += "  ";
    append_kv(&out, "bound", static_cast<std::uint64_t>(report.bound));
    out += "\n  ";
    append_kv(&out, "jobs", static_cast<std::uint64_t>(report.jobs));
    out += "\n  \"suites\": [\n";
    for (std::size_t i = 0; i < report.suites.size(); ++i) {
        out += "    ";
        append_suite(&out, "    ", report.suites[i], /*with_axiom=*/true);
        out += i + 1 < report.suites.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
    out += "  \"totals\": ";
    const SuiteReport total = report.totals();
    append_suite(&out, "  ", total, /*with_axiom=*/false);
    out += "\n}\n";
    return out;
}

bool
write_report(const std::string& path, const RunReport& report,
             std::string* error)
{
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        if (error != nullptr) {
            *error = "cannot open " + path + " for writing";
        }
        return false;
    }
    const std::string json = report_to_json(report);
    const std::size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    const bool ok = written == json.size() && std::fclose(file) == 0;
    if (!ok && error != nullptr) {
        *error = "short write to " + path;
    }
    return ok;
}

}  // namespace transform::obs
