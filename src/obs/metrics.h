/// \file
/// Phase-attributed metrics for the synthesis runtime — the counter/timer
/// half of the observability layer (the span half is obs/trace.h, the
/// machine-readable export obs/report.h; see docs/observability.md).
///
/// The paper's headline claims are throughput claims, so the runtime must
/// be able to answer "what fraction of a run is SAT solve vs. derivation
/// vs. judging?" without perturbing the numbers it reports. The design is
/// a MetricsRegistry of per-worker cache-line-padded cells over a FIXED
/// phase taxonomy: a worker only ever touches its own cell (relaxed atomic
/// adds, zero contention on the hot path), and totals are merged on
/// demand once the writers have quiesced. When metrics are disabled the
/// instrumentation sites compile down to one null-pointer test — no clock
/// reads, no atomic traffic (ScopedPhase below).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace transform::obs {

class AllocTracker;  // obs/alloc.h

/// The phase taxonomy. Fixed and versioned with the metrics-JSON schema
/// (obs/report.h): every nanosecond a shard job spends is attributed to
/// exactly one phase, so per-phase seconds sum to shard-job wall time.
enum class Phase : int {
    kSkeletonEnum = 0,  ///< skeleton/execution enumeration + shard framing
                        ///  (a shard job's wall time not claimed below)
    kSatEncode,         ///< SAT backend: building the relational encoding
    kSatSolve,          ///< SAT backend: time inside sat::Solver::solve
    kDerive,            ///< Table-I relation derivation + axiom verdicts
    kCanonicalize,      ///< canonical-key construction (dedup gate input)
    kJudge,             ///< spanning-set minimality judging (verdict side)
    kRelax,             ///< relaxation rebuilds inside the judge (one
                        ///  relaxed execution per applicable relaxation)
    kDedup,             ///< sharded canonical-key index lookups
    kQueueWait,         ///< wall time queued on a shared pool before the
                        ///  suite's first job ran
};

/// Number of phases in the taxonomy (kQueueWait is the last).
inline constexpr int kPhaseCount = static_cast<int>(Phase::kQueueWait) + 1;

/// Stable lower_snake_case name of a phase — the spelling used by the
/// metrics-JSON schema and docs/observability.md.
const char* phase_name(Phase phase);

/// One phase's merged totals.
struct PhaseSlot {
    std::uint64_t count = 0;  ///< instrumented sections entered
    std::uint64_t nanos = 0;  ///< wall nanoseconds attributed
};

/// Number of log2 latency buckets. Bucket i (i >= 1) holds samples whose
/// nanosecond value has bit-width i, i.e. [2^(i-1), 2^i - 1]; bucket 0
/// holds exact zeros. 40 buckets cover up to ~9 minutes per sample.
inline constexpr int kLatencyBucketCount = 40;

/// The bucket index a latency sample lands in.
inline int
latency_bucket(std::uint64_t nanos)
{
    const int width = std::bit_width(nanos);
    return width < kLatencyBucketCount ? width : kLatencyBucketCount - 1;
}

/// A log2-bucket latency distribution. Merging across workers is exact
/// (bucket counts add); percentiles are resolved to the owning bucket's
/// upper edge, so merged percentiles equal the percentile of the merged
/// sample multiset at bucket resolution.
struct LatencyHistogram {
    std::array<std::uint64_t, kLatencyBucketCount> buckets{};

    void record(std::uint64_t nanos)
    {
        ++buckets[static_cast<std::size_t>(latency_bucket(nanos))];
    }
    void merge(const LatencyHistogram& other);
    /// Total samples recorded.
    std::uint64_t total() const;
    /// Upper edge (in nanos) of the bucket holding the p-quantile sample
    /// (p in [0, 1]); 0 when the histogram is empty.
    std::uint64_t percentile_nanos(double p) const;
};

/// Totals across every worker, merged on demand by MetricsRegistry or
/// accumulated across suites by tools.
struct PhaseTotals {
    std::array<PhaseSlot, kPhaseCount> phases{};
    /// Per-phase latency distribution of the *scoped* sections (one
    /// sample per ScopedPhase / explicit record_latency; subtract-based
    /// add() attributions contribute no samples — they are aggregates,
    /// not per-item latencies).
    std::array<LatencyHistogram, kPhaseCount> latency{};

    void merge(const PhaseTotals& other);
    double seconds(Phase phase) const;
    std::uint64_t count(Phase phase) const;
    /// Sum of nanos over all phases.
    std::uint64_t total_nanos() const;
};

/// Reads the process-wide monotonic clock, in nanoseconds. All obs
/// timestamps (metrics and trace spans) come from this one clock so phase
/// totals and span durations agree.
std::uint64_t now_nanos();

/// A registry of per-worker metric cells. Construction fixes the worker
/// count; worker w may call add(w, ...) concurrently with every other
/// worker at zero contention (each cell owns its cache lines). merged()
/// may run concurrently with writers (relaxed reads — totals are only
/// "settled" once the writers have quiesced, e.g. after the owning job
/// group has been waited).
class MetricsRegistry {
  public:
    /// One cell per worker in [0, workers); out-of-range worker ids are
    /// dropped (counted in dropped()) rather than asserting, so callers
    /// with extra lanes degrade gracefully.
    explicit MetricsRegistry(int workers);

    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    int workers() const { return static_cast<int>(cells_.size()); }

    /// Attributes \p nanos (and \p count sections) to \p phase on
    /// \p worker's cell. Relaxed; wait-free.
    void add(int worker, Phase phase, std::uint64_t nanos,
             std::uint64_t count = 1);

    /// Records one latency sample of \p nanos into \p phase's histogram
    /// on \p worker's cell. Kept separate from add(): totals sum every
    /// attribution (including subtract-based aggregates), histograms only
    /// take genuine per-section/per-solve samples.
    void record_latency(int worker, Phase phase, std::uint64_t nanos);

    /// Sum of nanos across every phase of \p worker's cell. Used by the
    /// engine to attribute a shard job's *unclaimed* wall time to
    /// kSkeletonEnum: snapshot before the job, subtract after.
    std::uint64_t worker_nanos(int worker) const;

    /// Nanos of one phase on one worker's cell.
    std::uint64_t worker_phase_nanos(int worker, Phase phase) const;

    /// Merged totals across all workers.
    PhaseTotals merged() const;

    /// add() calls that named an out-of-range worker.
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    /// One worker's counters, padded to whole cache lines so neighbouring
    /// workers never false-share. The histogram block is cold relative to
    /// count/nanos (one extra fetch_add per scoped section) and lives in
    /// the same single-writer cell, so merging stays exact.
    struct alignas(64) Cell {
        std::atomic<std::uint64_t> count[kPhaseCount];
        std::atomic<std::uint64_t> nanos[kPhaseCount];
        std::atomic<std::uint64_t> hist[kPhaseCount][kLatencyBucketCount];

        Cell()
        {
            for (int p = 0; p < kPhaseCount; ++p) {
                count[p].store(0, std::memory_order_relaxed);
                nanos[p].store(0, std::memory_order_relaxed);
                for (int b = 0; b < kLatencyBucketCount; ++b) {
                    hist[p][b].store(0, std::memory_order_relaxed);
                }
            }
        }
    };

    std::vector<Cell> cells_;
    std::atomic<std::uint64_t> dropped_{0};
};

namespace detail {

/// The thread-local binding consulted by the interposed operator new
/// (obs/alloc.cpp) and maintained by ScopedPhase. Plain zero-initialized
/// POD: no dynamic initialization or destruction order to worry about, so
/// it is safe to read from allocations at any point in a thread's life.
/// Lives here (not obs/alloc.h) so ScopedPhase can swap the phase without
/// a header cycle.
struct AllocBinding {
    AllocTracker* tracker;
    int worker;
    int phase;  ///< static_cast<int>(Phase), maintained by ScopedPhase
    int site;   ///< static_cast<int>(AllocSite), by ScopedAllocSite
};

extern thread_local constinit AllocBinding t_alloc_binding;

/// Swaps the calling thread's active allocation phase, returning the
/// previous one. Unconditional (two thread-local int moves): when no
/// tracker is bound the value is simply never read.
inline int
exchange_alloc_phase(int phase)
{
    const int previous = t_alloc_binding.phase;
    t_alloc_binding.phase = phase;
    return previous;
}

}  // namespace detail

/// RAII phase section: times construction-to-destruction and attributes it
/// to (worker, phase), records the duration as one latency sample, and
/// keeps the thread-local *allocation* phase in sync so a bound
/// AllocTracker (obs/alloc.h) attributes this section's allocations to the
/// same phase. A null registry is the disabled fast path — no clock read
/// on either end, one branch plus two thread-local int moves.
class ScopedPhase {
  public:
    ScopedPhase(MetricsRegistry* registry, int worker, Phase phase)
        : registry_(registry), worker_(worker), phase_(phase),
          saved_alloc_phase_(
              detail::exchange_alloc_phase(static_cast<int>(phase))),
          start_(registry != nullptr ? now_nanos() : 0)
    {
    }

    ~ScopedPhase()
    {
        detail::t_alloc_binding.phase = saved_alloc_phase_;
        if (registry_ != nullptr) {
            const std::uint64_t elapsed = now_nanos() - start_;
            registry_->add(worker_, phase_, elapsed);
            registry_->record_latency(worker_, phase_, elapsed);
        }
    }

    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

  private:
    MetricsRegistry* registry_;
    int worker_;
    Phase phase_;
    int saved_alloc_phase_;
    std::uint64_t start_;
};

/// RAII allocation-phase-only section: swaps the thread-local allocation
/// phase without touching timers — for regions whose *time* is attributed
/// by subtraction (e.g. the SAT-encode shell around a witness search) but
/// whose allocations should still land in a named phase.
class ScopedAllocPhase {
  public:
    explicit ScopedAllocPhase(Phase phase)
        : saved_(detail::exchange_alloc_phase(static_cast<int>(phase)))
    {
    }

    ~ScopedAllocPhase() { detail::t_alloc_binding.phase = saved_; }

    ScopedAllocPhase(const ScopedAllocPhase&) = delete;
    ScopedAllocPhase& operator=(const ScopedAllocPhase&) = delete;

  private:
    int saved_;
};

}  // namespace transform::obs
