/// \file
/// Phase-attributed metrics for the synthesis runtime — the counter/timer
/// half of the observability layer (the span half is obs/trace.h, the
/// machine-readable export obs/report.h; see docs/observability.md).
///
/// The paper's headline claims are throughput claims, so the runtime must
/// be able to answer "what fraction of a run is SAT solve vs. derivation
/// vs. judging?" without perturbing the numbers it reports. The design is
/// a MetricsRegistry of per-worker cache-line-padded cells over a FIXED
/// phase taxonomy: a worker only ever touches its own cell (relaxed atomic
/// adds, zero contention on the hot path), and totals are merged on
/// demand once the writers have quiesced. When metrics are disabled the
/// instrumentation sites compile down to one null-pointer test — no clock
/// reads, no atomic traffic (ScopedPhase below).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace transform::obs {

/// The phase taxonomy. Fixed and versioned with the metrics-JSON schema
/// (obs/report.h): every nanosecond a shard job spends is attributed to
/// exactly one phase, so per-phase seconds sum to shard-job wall time.
enum class Phase : int {
    kSkeletonEnum = 0,  ///< skeleton/execution enumeration + shard framing
                        ///  (a shard job's wall time not claimed below)
    kSatEncode,         ///< SAT backend: building the relational encoding
    kSatSolve,          ///< SAT backend: time inside sat::Solver::solve
    kDerive,            ///< Table-I relation derivation + axiom verdicts
    kCanonicalize,      ///< canonical-key construction (dedup gate input)
    kJudge,             ///< spanning-set minimality judging (verdict side)
    kRelax,             ///< relaxation rebuilds inside the judge (one
                        ///  relaxed execution per applicable relaxation)
    kDedup,             ///< sharded canonical-key index lookups
    kQueueWait,         ///< wall time queued on a shared pool before the
                        ///  suite's first job ran
};

/// Number of phases in the taxonomy (kQueueWait is the last).
inline constexpr int kPhaseCount = static_cast<int>(Phase::kQueueWait) + 1;

/// Stable lower_snake_case name of a phase — the spelling used by the
/// metrics-JSON schema and docs/observability.md.
const char* phase_name(Phase phase);

/// One phase's merged totals.
struct PhaseSlot {
    std::uint64_t count = 0;  ///< instrumented sections entered
    std::uint64_t nanos = 0;  ///< wall nanoseconds attributed
};

/// Totals across every worker, merged on demand by MetricsRegistry or
/// accumulated across suites by tools.
struct PhaseTotals {
    std::array<PhaseSlot, kPhaseCount> phases{};

    void merge(const PhaseTotals& other);
    double seconds(Phase phase) const;
    std::uint64_t count(Phase phase) const;
    /// Sum of nanos over all phases.
    std::uint64_t total_nanos() const;
};

/// Reads the process-wide monotonic clock, in nanoseconds. All obs
/// timestamps (metrics and trace spans) come from this one clock so phase
/// totals and span durations agree.
std::uint64_t now_nanos();

/// A registry of per-worker metric cells. Construction fixes the worker
/// count; worker w may call add(w, ...) concurrently with every other
/// worker at zero contention (each cell owns its cache lines). merged()
/// may run concurrently with writers (relaxed reads — totals are only
/// "settled" once the writers have quiesced, e.g. after the owning job
/// group has been waited).
class MetricsRegistry {
  public:
    /// One cell per worker in [0, workers); out-of-range worker ids are
    /// dropped (counted in dropped()) rather than asserting, so callers
    /// with extra lanes degrade gracefully.
    explicit MetricsRegistry(int workers);

    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    int workers() const { return static_cast<int>(cells_.size()); }

    /// Attributes \p nanos (and \p count sections) to \p phase on
    /// \p worker's cell. Relaxed; wait-free.
    void add(int worker, Phase phase, std::uint64_t nanos,
             std::uint64_t count = 1);

    /// Sum of nanos across every phase of \p worker's cell. Used by the
    /// engine to attribute a shard job's *unclaimed* wall time to
    /// kSkeletonEnum: snapshot before the job, subtract after.
    std::uint64_t worker_nanos(int worker) const;

    /// Nanos of one phase on one worker's cell.
    std::uint64_t worker_phase_nanos(int worker, Phase phase) const;

    /// Merged totals across all workers.
    PhaseTotals merged() const;

    /// add() calls that named an out-of-range worker.
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    /// One worker's counters, padded to whole cache lines so neighbouring
    /// workers never false-share. 9 phases x 2 counters x 8 bytes = 144
    /// bytes, padded by alignas to three lines.
    struct alignas(64) Cell {
        std::atomic<std::uint64_t> count[kPhaseCount];
        std::atomic<std::uint64_t> nanos[kPhaseCount];

        Cell()
        {
            for (int p = 0; p < kPhaseCount; ++p) {
                count[p].store(0, std::memory_order_relaxed);
                nanos[p].store(0, std::memory_order_relaxed);
            }
        }
    };

    std::vector<Cell> cells_;
    std::atomic<std::uint64_t> dropped_{0};
};

/// RAII phase section: times construction-to-destruction and attributes it
/// to (worker, phase). A null registry is the disabled fast path — no
/// clock read on either end, just one branch.
class ScopedPhase {
  public:
    ScopedPhase(MetricsRegistry* registry, int worker, Phase phase)
        : registry_(registry), worker_(worker), phase_(phase),
          start_(registry != nullptr ? now_nanos() : 0)
    {
    }

    ~ScopedPhase()
    {
        if (registry_ != nullptr) {
            registry_->add(worker_, phase_, now_nanos() - start_);
        }
    }

    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

  private:
    MetricsRegistry* registry_;
    int worker_;
    Phase phase_;
    std::uint64_t start_;
};

}  // namespace transform::obs
