#include "obs/metrics.h"

#include <chrono>

namespace transform::obs {

const char*
phase_name(Phase phase)
{
    switch (phase) {
    case Phase::kSkeletonEnum:
        return "skeleton_enum";
    case Phase::kSatEncode:
        return "sat_encode";
    case Phase::kSatSolve:
        return "sat_solve";
    case Phase::kDerive:
        return "derive";
    case Phase::kCanonicalize:
        return "canonicalize";
    case Phase::kJudge:
        return "judge";
    case Phase::kRelax:
        return "relax";
    case Phase::kDedup:
        return "dedup";
    case Phase::kQueueWait:
        return "queue_wait";
    }
    return "unknown";
}

void
LatencyHistogram::merge(const LatencyHistogram& other)
{
    for (int b = 0; b < kLatencyBucketCount; ++b) {
        buckets[static_cast<std::size_t>(b)] +=
            other.buckets[static_cast<std::size_t>(b)];
    }
}

std::uint64_t
LatencyHistogram::total() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t bucket : buckets) {
        total += bucket;
    }
    return total;
}

std::uint64_t
LatencyHistogram::percentile_nanos(double p) const
{
    const std::uint64_t samples = total();
    if (samples == 0) {
        return 0;
    }
    if (p < 0.0) {
        p = 0.0;
    }
    if (p > 1.0) {
        p = 1.0;
    }
    // Rank of the p-quantile sample, 1-based ("nearest rank" definition).
    std::uint64_t rank =
        static_cast<std::uint64_t>(p * static_cast<double>(samples) + 0.5);
    if (rank < 1) {
        rank = 1;
    }
    if (rank > samples) {
        rank = samples;
    }
    std::uint64_t cumulative = 0;
    for (int b = 0; b < kLatencyBucketCount; ++b) {
        cumulative += buckets[static_cast<std::size_t>(b)];
        if (cumulative >= rank) {
            // Upper edge of bucket b: bucket 0 holds exact zeros, bucket
            // i >= 1 holds [2^(i-1), 2^i - 1].
            return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
        }
    }
    return (std::uint64_t{1} << (kLatencyBucketCount - 1)) - 1;
}

void
PhaseTotals::merge(const PhaseTotals& other)
{
    for (int p = 0; p < kPhaseCount; ++p) {
        phases[static_cast<std::size_t>(p)].count +=
            other.phases[static_cast<std::size_t>(p)].count;
        phases[static_cast<std::size_t>(p)].nanos +=
            other.phases[static_cast<std::size_t>(p)].nanos;
        latency[static_cast<std::size_t>(p)].merge(
            other.latency[static_cast<std::size_t>(p)]);
    }
}

double
PhaseTotals::seconds(Phase phase) const
{
    return static_cast<double>(
               phases[static_cast<std::size_t>(phase)].nanos) *
           1e-9;
}

std::uint64_t
PhaseTotals::count(Phase phase) const
{
    return phases[static_cast<std::size_t>(phase)].count;
}

std::uint64_t
PhaseTotals::total_nanos() const
{
    std::uint64_t total = 0;
    for (const PhaseSlot& slot : phases) {
        total += slot.nanos;
    }
    return total;
}

std::uint64_t
now_nanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

MetricsRegistry::MetricsRegistry(int workers)
    : cells_(workers > 0 ? static_cast<std::size_t>(workers) : 1)
{
}

void
MetricsRegistry::add(int worker, Phase phase, std::uint64_t nanos,
                     std::uint64_t count)
{
    if (worker < 0 || worker >= workers()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Cell& cell = cells_[static_cast<std::size_t>(worker)];
    const int p = static_cast<int>(phase);
    cell.count[p].fetch_add(count, std::memory_order_relaxed);
    cell.nanos[p].fetch_add(nanos, std::memory_order_relaxed);
}

void
MetricsRegistry::record_latency(int worker, Phase phase, std::uint64_t nanos)
{
    if (worker < 0 || worker >= workers()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Cell& cell = cells_[static_cast<std::size_t>(worker)];
    cell.hist[static_cast<int>(phase)][latency_bucket(nanos)].fetch_add(
        1, std::memory_order_relaxed);
}

std::uint64_t
MetricsRegistry::worker_nanos(int worker) const
{
    if (worker < 0 || worker >= workers()) {
        return 0;
    }
    const Cell& cell = cells_[static_cast<std::size_t>(worker)];
    std::uint64_t total = 0;
    for (int p = 0; p < kPhaseCount; ++p) {
        total += cell.nanos[p].load(std::memory_order_relaxed);
    }
    return total;
}

std::uint64_t
MetricsRegistry::worker_phase_nanos(int worker, Phase phase) const
{
    if (worker < 0 || worker >= workers()) {
        return 0;
    }
    return cells_[static_cast<std::size_t>(worker)]
        .nanos[static_cast<int>(phase)]
        .load(std::memory_order_relaxed);
}

PhaseTotals
MetricsRegistry::merged() const
{
    PhaseTotals totals;
    for (const Cell& cell : cells_) {
        for (int p = 0; p < kPhaseCount; ++p) {
            totals.phases[static_cast<std::size_t>(p)].count +=
                cell.count[p].load(std::memory_order_relaxed);
            totals.phases[static_cast<std::size_t>(p)].nanos +=
                cell.nanos[p].load(std::memory_order_relaxed);
            for (int b = 0; b < kLatencyBucketCount; ++b) {
                totals.latency[static_cast<std::size_t>(p)]
                    .buckets[static_cast<std::size_t>(b)] +=
                    cell.hist[p][b].load(std::memory_order_relaxed);
            }
        }
    }
    return totals;
}

}  // namespace transform::obs
