/// \file
/// The machine-readable run report — one versioned JSON schema folding
/// SuiteResult counters, merged SchedulerStats, per-suite-aggregated
/// SolverStats, and the phase time breakdown, consumed by benches, CI,
/// and (eventually) the serving layer. `elt_synth --metrics-json out.json`
/// writes one; docs/observability.md documents the schema.
///
/// The schema is versioned (kMetricsSchemaVersion) so downstream
/// consumers can detect layout changes instead of silently misreading
/// fields; any key addition/removal/rename bumps it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/alloc.h"
#include "obs/metrics.h"
#include "sat/solver.h"
#include "sched/scheduler.h"
#include "synth/engine.h"

namespace transform::obs {

/// Version of the metrics-JSON layout produced by report_to_json.
/// v2: solver objects gained assumed_literals / retired_activations /
/// retained_clauses (the incremental-session counters).
/// v3: solver objects gained bases_built / bases_reused (the structure
/// base cache's hit accounting) and the phase breakdown gained "relax".
/// v4: suites gained "cancelled" (cooperative cancellation fired) and
/// scheduler objects gained job_faults, shard_retries,
/// shards_quarantined, checkpoint_shards_saved, and
/// checkpoint_shards_replayed (the fault-tolerant runtime's counters —
/// docs/robustness.md).
/// v5: phase entries gained p50_ns/p90_ns/p99_ns (log2-bucket latency
/// percentiles) and alloc_count/alloc_bytes (phase-attributed allocation
/// tracking); suites gained "alloc_sites" (call-site allocation buckets)
/// and "failures" (quarantined-shard records, elt_check parity); scheduler
/// objects gained observed_cost_resplits, resplit_threshold_min, and
/// resplit_threshold_max (the observed-cost re-split feedback).
inline constexpr int kMetricsSchemaVersion = 5;

/// One suite's slice of the report.
struct SuiteReport {
    std::string axiom;
    std::uint64_t tests = 0;
    std::uint64_t programs_considered = 0;
    std::uint64_t executions_considered = 0;
    std::uint64_t duplicates_rejected = 0;
    double seconds = 0.0;
    bool complete = true;
    bool cancelled = false;
    sched::SchedulerStats scheduler;
    sat::SolverStats solver;
    PhaseTotals phases;
    AllocTotals allocs;  ///< all-zero unless the run tracked allocations
    std::vector<synth::ShardFailure> failures;  ///< quarantined shards

    /// Accumulates another suite's counters (SchedulerStats/SolverStats
    /// merge semantics; seconds add, complete ANDs, cancelled ORs,
    /// failures concatenate).
    void merge(const SuiteReport& other);
};

/// Copies every reportable field out of a finished SuiteResult.
SuiteReport suite_report(const synth::SuiteResult& suite);

/// A whole run: invocation context plus one SuiteReport per suite.
struct RunReport {
    std::string tool;     ///< "elt_synth" / "elt_check" / a bench name
    std::string model;
    std::string backend;  ///< "enum" / "sat" (empty when not applicable)
    int bound = 0;
    int jobs = 0;
    std::vector<SuiteReport> suites;

    /// All suites merged into one aggregate (the report's "totals" object).
    SuiteReport totals() const;
};

/// Serializes \p report as the versioned metrics-JSON document.
std::string report_to_json(const RunReport& report);

/// Writes report_to_json to \p path; false (with \p error filled when
/// non-null) when the file cannot be written.
bool write_report(const std::string& path, const RunReport& report,
                  std::string* error = nullptr);

}  // namespace transform::obs
