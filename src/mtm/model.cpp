#include "mtm/model.h"

#include <algorithm>

#include "util/logging.h"

namespace transform::mtm {

using elt::CycleScratch;
using elt::DerivedRelations;
using elt::EdgeSet;
using elt::Program;

namespace {

bool
acyclic(const Program& p, std::initializer_list<const EdgeSet*> parts,
        CycleScratch* scratch)
{
    return !elt::has_cycle(p.num_events(), parts, scratch);
}

/// sc_per_loc: acyclic(rf + co + fr + po_loc).
Axiom
sc_per_loc_axiom()
{
    return {"sc_per_loc",
            "coherence: rf + co + fr + po_loc is acyclic per location",
            AxiomTag::kScPerLoc,
            [](const Program& p, const DerivedRelations& d,
               CycleScratch* scratch) {
                return acyclic(p, {&d.rf, &d.co, &d.fr, &d.po_loc}, scratch);
            }};
}

/// rmw_atomicity: fr.co does not intersect rmw.
Axiom
rmw_atomicity_axiom()
{
    return {"rmw_atomicity",
            "no same-address write intervenes inside an RMW (fr.co & rmw = 0)",
            AxiomTag::kRmwAtomicity,
            [](const Program& p, const DerivedRelations& d,
               CycleScratch* scratch) {
                (void)p;
                (void)scratch;
                for (const auto& [r, w] : d.rmw) {
                    // Does some w' exist with fr(r, w') and co(w', w)?
                    for (const auto& [fr_from, fr_to] : d.fr) {
                        if (fr_from != r) {
                            continue;
                        }
                        for (const auto& [co_from, co_to] : d.co) {
                            if (co_from == fr_to && co_to == w) {
                                return false;
                            }
                        }
                    }
                }
                return true;
            }};
}

/// causality: acyclic(rfe + co + fr + ppo + fence).
Axiom
causality_axiom(bool sequential_ppo)
{
    return {"causality",
            sequential_ppo
                ? "acyclic(rfe + co + fr + po + fence) (sequential consistency)"
                : "acyclic(rfe + co + fr + ppo + fence) (TSO ppo)",
            sequential_ppo ? AxiomTag::kCausalitySc : AxiomTag::kCausalityTso,
            [sequential_ppo](const Program& p, const DerivedRelations& d,
                             CycleScratch* scratch) {
                // For the SC variant the full extended program order between
                // memory events is preserved: ppo U (the pairs TSO drops) ==
                // po_loc-agnostic extended order. DerivedRelations keeps TSO
                // ppo; reconstruct full order by adding write->read pairs.
                if (!sequential_ppo) {
                    return acyclic(p, {&d.rfe, &d.co, &d.fr, &d.ppo, &d.fence},
                                   scratch);
                }
                CycleScratch local;
                if (scratch == nullptr) {
                    scratch = &local;
                }
                EdgeSet& full = scratch->tmp_edges;
                full.assign(d.ppo.begin(), d.ppo.end());
                for (elt::EventId a = 0; a < p.num_events(); ++a) {
                    for (elt::EventId b = 0; b < p.num_events(); ++b) {
                        if (a != b && elt::is_memory(p.event(a).kind) &&
                            elt::is_memory(p.event(b).kind) &&
                            p.precedes(a, b) &&
                            elt::is_write_like(p.event(a).kind) &&
                            elt::is_read_like(p.event(b).kind)) {
                            full.emplace_back(a, b);
                        }
                    }
                }
                return acyclic(p, {&d.rfe, &d.co, &d.fr, &full, &d.fence},
                               scratch);
            }};
}

/// invlpg: acyclic(fr_va + ^po + remap).
Axiom
invlpg_axiom()
{
    return {"invlpg",
            "accesses after an INVLPG use the latest mapping: "
            "acyclic(fr_va + ^po + remap)",
            AxiomTag::kInvlpg,
            [](const Program& p, const DerivedRelations& d,
               CycleScratch* scratch) {
                return acyclic(p, {&d.fr_va, &d.po, &d.remap}, scratch);
            }};
}

/// tlb_causality: acyclic(ptw_source + com).
Axiom
tlb_causality_axiom()
{
    return {"tlb_causality",
            "diagnostic: acyclic(ptw_source + rf + co + fr)",
            AxiomTag::kTlbCausality,
            [](const Program& p, const DerivedRelations& d,
               CycleScratch* scratch) {
                return acyclic(p, {&d.ptw_source, &d.rf, &d.co, &d.fr},
                               scratch);
            }};
}

}  // namespace

Model::Model(std::string name, bool vm_aware, std::vector<Axiom> axioms)
    : name_(std::move(name)), vm_aware_(vm_aware), axioms_(std::move(axioms))
{
    TF_ASSERT(static_cast<int>(axioms_.size()) <= kMaxAxioms);
}

const Axiom*
Model::axiom(const std::string& name) const
{
    for (const Axiom& a : axioms_) {
        if (a.name == name) {
            return &a;
        }
    }
    return nullptr;
}

int
Model::axiom_index(const std::string& name) const
{
    for (std::size_t i = 0; i < axioms_.size(); ++i) {
        if (axioms_[i].name == name) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

AxiomMask
Model::violated_mask(const elt::Program& program,
                     const elt::DerivedRelations& d,
                     elt::CycleScratch* scratch) const
{
    AxiomMask mask = 0;
    for (std::size_t i = 0; i < axioms_.size(); ++i) {
        if (!axioms_[i].holds(program, d, scratch)) {
            mask |= AxiomMask{1} << i;
        }
    }
    return mask;
}

std::vector<std::string>
Model::mask_names(AxiomMask mask) const
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < axioms_.size(); ++i) {
        if (mask & (AxiomMask{1} << i)) {
            out.push_back(axioms_[i].name);
        }
    }
    return out;
}

std::vector<std::string>
Model::violated_axioms(const elt::Program& program,
                       const elt::DerivedRelations& d) const
{
    return mask_names(violated_mask(program, d));
}

std::vector<std::string>
Model::violated_axioms(const elt::Execution& e) const
{
    const elt::DerivedRelations d = elt::derive(e, derive_options());
    if (!d.well_formed) {
        return {"well_formed"};
    }
    return violated_axioms(e.program, d);
}

Model
x86tso()
{
    return Model("x86tso", /*vm_aware=*/false,
                 {sc_per_loc_axiom(), rmw_atomicity_axiom(),
                  causality_axiom(/*sequential_ppo=*/false)});
}

Model
x86t_elt()
{
    return Model("x86t_elt", /*vm_aware=*/true,
                 {sc_per_loc_axiom(), rmw_atomicity_axiom(),
                  causality_axiom(/*sequential_ppo=*/false), invlpg_axiom(),
                  tlb_causality_axiom()});
}

Model
sc_t_elt()
{
    return Model("sc_t_elt", /*vm_aware=*/true,
                 {sc_per_loc_axiom(), rmw_atomicity_axiom(),
                  causality_axiom(/*sequential_ppo=*/true), invlpg_axiom(),
                  tlb_causality_axiom()});
}

std::vector<std::string>
x86t_elt_axiom_names()
{
    return {"sc_per_loc", "rmw_atomicity", "causality", "invlpg",
            "tlb_causality"};
}

}  // namespace transform::mtm
