#include "mtm/encoding.h"

#include <algorithm>
#include <utility>

#include "mtm/encoding_detail.h"
#include "obs/alloc.h"
#include "rel/bool_factory.h"
#include "rel/constraints.h"
#include "rel/relation.h"
#include "sat/solver.h"
#include "spec/ast.h"
#include "spec/eval.h"
#include "util/logging.h"

namespace transform::mtm {

using elt::Event;
using elt::EventId;
using elt::EventKind;
using elt::Execution;
using elt::kNone;
using elt::Program;
using rel::BoolFactory;
using rel::ExprId;
using rel::RelExpr;
using rel::SetExpr;

// RelNeed and ChoiceMap live in encoding_detail.h, shared with the
// incremental assumption-based session (incremental.cpp).

/// The pooled per-query Build containers (PR-4 left these as per-program
/// allocations; see docs/performance.md for the reuse contract). One Pool
/// per EncodingScratch, reset — capacities kept — by every Build.
struct EncodingScratch::Pool {
    std::vector<ChoiceMap> rf_choice;
    std::vector<ExprId> init_choice;
    std::vector<ChoiceMap> ptw_choice;
    std::vector<std::vector<ExprId>> pa;
    std::vector<ChoiceMap> prov;
    std::vector<ExprId> prov_init;

    RelExpr co, co_pa;
    RelExpr rf, fr, po_loc, rfe, rf_ptw_rel, ptw_source, rf_pa, fr_pa, fr_va;
    RelExpr po_const, remap_const, ppo_const, fence_const;
    RelExpr po_mem_const, rmw_const, ghost_const;

    std::vector<sat::Lit> clause_buf;
    std::vector<ExprId> options_buf;
    std::vector<EventId> events_buf;   ///< writes / Wptes scans
    std::vector<EventId> peers_buf;    ///< same-location peers per Wdb

    /// Per-query memo of lowered `.mtm` expression nodes: a let body shared
    /// by several references (or axioms) compiles once per Build.
    std::vector<std::pair<const spec::Expr*, RelExpr>> expr_memo;
};

EncodingScratch::EncodingScratch() : pool(std::make_unique<Pool>()) {}
EncodingScratch::~EncodingScratch() = default;
EncodingScratch::EncodingScratch(EncodingScratch&&) noexcept = default;
EncodingScratch&
EncodingScratch::operator=(EncodingScratch&&) noexcept = default;

namespace {

/// ONE source of truth per `.mtm` base relation: the need bit its circuit
/// is gated on AND the pooled circuit it lowers to. Keeping the pair in a
/// single switch makes a mismatch — a circuit read without its need bit,
/// i.e. a stale pooled RelExpr from a previous program — structurally
/// impossible. co and co_pa are free choice relations, always built
/// (needs = 0).
struct BaseRelInfo {
    unsigned needs;
    rel::RelExpr EncodingScratch::Pool::* circuit;
};

BaseRelInfo
base_rel_info(spec::BaseRel base)
{
    using Pool = EncodingScratch::Pool;
    switch (base) {
    case spec::BaseRel::kPo: return {kNeedPoConst, &Pool::po_const};
    case spec::BaseRel::kPoLoc: return {kNeedPoLoc, &Pool::po_loc};
    case spec::BaseRel::kPoMem: return {kNeedPoMemConst, &Pool::po_mem_const};
    case spec::BaseRel::kRf: return {kNeedRf, &Pool::rf};
    case spec::BaseRel::kRfe: return {kNeedRfe, &Pool::rfe};
    case spec::BaseRel::kCo: return {0, &Pool::co};
    case spec::BaseRel::kFr: return {kNeedFr, &Pool::fr};
    case spec::BaseRel::kPpo: return {kNeedPpoFenceConst, &Pool::ppo_const};
    case spec::BaseRel::kFence:
        return {kNeedPpoFenceConst, &Pool::fence_const};
    case spec::BaseRel::kRmw: return {kNeedRmwConst, &Pool::rmw_const};
    case spec::BaseRel::kGhost: return {kNeedGhostConst, &Pool::ghost_const};
    case spec::BaseRel::kRfPtw: return {kNeedRfPtw, &Pool::rf_ptw_rel};
    case spec::BaseRel::kRfPa: return {kNeedRfPa, &Pool::rf_pa};
    case spec::BaseRel::kCoPa: return {0, &Pool::co_pa};
    case spec::BaseRel::kFrPa: return {kNeedFrPa, &Pool::fr_pa};
    case spec::BaseRel::kFrVa: return {kNeedFrVa, &Pool::fr_va};
    case spec::BaseRel::kRemap: return {kNeedRemapConst, &Pool::remap_const};
    case spec::BaseRel::kPtwSource:
        return {kNeedPtwSource, &Pool::ptw_source};
    }
    TF_PANIC("unknown base relation");
}

/// Union of the need bits under \p e. The AST is a DAG through shared
/// `let` bodies, so the walk carries a visited set — linear in the DAG,
/// not exponential in the let-chain depth.
unsigned
needs_for_expr(const spec::Expr& e, std::vector<const spec::Expr*>* visited)
{
    if (std::find(visited->begin(), visited->end(), &e) != visited->end()) {
        return 0;
    }
    visited->push_back(&e);
    unsigned needs = 0;
    if (e.op == spec::ExprOp::kBase) {
        needs |= base_rel_info(e.base).needs;
    }
    if (e.lhs != nullptr) {
        needs |= needs_for_expr(*e.lhs, visited);
    }
    if (e.rhs != nullptr) {
        needs |= needs_for_expr(*e.rhs, visited);
    }
    return needs;
}

}  // namespace

/// The relations axiom_circuit(axiom) touches. Hardwired axioms have a
/// fixed footprint per tag; a `.mtm` axiom's footprint is read off its
/// expression DAG.
unsigned
needs_for(const Axiom& axiom)
{
    switch (axiom.tag) {
    case AxiomTag::kScPerLoc:
        return kNeedRf | kNeedFr | kNeedPoLoc;
    case AxiomTag::kRmwAtomicity:
        return kNeedFr;
    case AxiomTag::kCausalityTso:
    case AxiomTag::kCausalitySc:
        return kNeedRfe | kNeedFr | kNeedPpoFenceConst;
    case AxiomTag::kInvlpg:
        return kNeedFrVa | kNeedPoConst | kNeedRemapConst;
    case AxiomTag::kTlbCausality:
        return kNeedPtwSource | kNeedRf | kNeedFr;
    case AxiomTag::kExpr: {
        TF_ASSERT(axiom.def != nullptr && axiom.def->expr != nullptr);
        std::vector<const spec::Expr*> visited;
        return needs_for_expr(*axiom.def->expr, &visited);
    }
    }
    TF_PANIC("unknown axiom tag");
}

/// Per-query encoding state: the witness choice variables and the
/// derived-relation circuits, built into a (reset) scratch's factory,
/// solver and container pool.
struct ProgramEncoding::Build {
    Build(const Program& program, bool vm, unsigned needs,
          EncodingScratch* scratch)
        : p(program), n(program.num_events()), vm_enabled(vm),
          factory(scratch->factory), solver(scratch->solver),
          pool(*scratch->pool),
          rf_choice(scratch->pool->rf_choice),
          init_choice(scratch->pool->init_choice),
          ptw_choice(scratch->pool->ptw_choice), pa(scratch->pool->pa),
          prov(scratch->pool->prov), prov_init(scratch->pool->prov_init),
          co(scratch->pool->co), co_pa(scratch->pool->co_pa),
          rf(scratch->pool->rf), fr(scratch->pool->fr),
          po_loc(scratch->pool->po_loc), rfe(scratch->pool->rfe),
          rf_ptw_rel(scratch->pool->rf_ptw_rel),
          ptw_source(scratch->pool->ptw_source), rf_pa(scratch->pool->rf_pa),
          fr_pa(scratch->pool->fr_pa), fr_va(scratch->pool->fr_va),
          po_const(scratch->pool->po_const),
          remap_const(scratch->pool->remap_const),
          ppo_const(scratch->pool->ppo_const),
          fence_const(scratch->pool->fence_const),
          po_mem_const(scratch->pool->po_mem_const),
          rmw_const(scratch->pool->rmw_const),
          ghost_const(scratch->pool->ghost_const),
          clause_buf(scratch->pool->clause_buf),
          options_buf(scratch->pool->options_buf),
          events_buf(scratch->pool->events_buf),
          peers_buf(scratch->pool->peers_buf),
          expr_memo(scratch->pool->expr_memo)
    {
        factory.reset();
        solver.reset();
        expr_memo.clear();
        build_choices();
        build_address_resolution();
        build_coherence();
        build_derived(needs);
        build_placement_constraints();
    }

    // ------------------------------------------------------------------
    // Inputs.
    // ------------------------------------------------------------------
    const Program& p;
    const int n;
    const bool vm_enabled;

    BoolFactory& factory;
    sat::Solver& solver;
    EncodingScratch::Pool& pool;  ///< base_rel_info circuits resolve here

    // ------------------------------------------------------------------
    // Choice variables (pooled storage; see EncodingScratch::Pool).
    // ------------------------------------------------------------------
    // rf_choice[r]: write-candidate -> ExprId; init_choice[r] for the
    // initial state.
    std::vector<ChoiceMap>& rf_choice;
    std::vector<ExprId>& init_choice;
    // ptw_choice[e]: walk -> ExprId (data accesses only).
    std::vector<ChoiceMap>& ptw_choice;
    // pa[e][k]: one-hot resolved physical address (memory events only).
    std::vector<std::vector<ExprId>>& pa;
    // prov[e]: Wpte -> ExprId, plus prov_init[e] (data accesses, walks,
    // dirty-bit writes).
    std::vector<ChoiceMap>& prov;
    std::vector<ExprId>& prov_init;

    // Coherence order over write-like events; alias-creation order over
    // Wptes.
    RelExpr& co;
    RelExpr& co_pa;

    // ------------------------------------------------------------------
    // Derived circuits.
    // ------------------------------------------------------------------
    RelExpr& rf;
    RelExpr& fr;
    RelExpr& po_loc;
    RelExpr& rfe;
    RelExpr& rf_ptw_rel;
    RelExpr& ptw_source;
    RelExpr& rf_pa;
    RelExpr& fr_pa;
    RelExpr& fr_va;
    RelExpr& po_const;
    RelExpr& remap_const;
    RelExpr& ppo_const;
    RelExpr& fence_const;
    RelExpr& po_mem_const;
    RelExpr& rmw_const;
    RelExpr& ghost_const;

    int num_pas = 0;

    // ------------------------------------------------------------------
    // Direct clause emission. Nearly every placement constraint is a
    // 2-/3-literal clause over choice variables; routing them through the
    // circuit layer (assert_true -> Tseitin compile) used to cost an
    // auxiliary variable plus ~4 clauses each and dominated the per-program
    // Build time. The helpers below emit the clauses straight into the
    // solver through one reused buffer; constant exprs fold (a true term
    // drops the clause, a false term drops out of it).
    // ------------------------------------------------------------------
    std::vector<sat::Lit>& clause_buf;
    bool clause_sat = false;

    /// Reused exactly-one option buffer and event scans.
    std::vector<ExprId>& options_buf;
    std::vector<EventId>& events_buf;
    std::vector<EventId>& peers_buf;

    /// Memo for compile_expr (pooled; cleared per Build).
    std::vector<std::pair<const spec::Expr*, RelExpr>>& expr_memo;

    void
    cl_begin()
    {
        clause_buf.clear();
        clause_sat = false;
    }

    /// Adds \p e as a positive term. \p e may be any expression; non-var
    /// exprs Tseitin-compile once (memoized) to an equivalent literal.
    void
    cl_pos(ExprId e)
    {
        if (e == rel::kTrueExpr) {
            clause_sat = true;
        } else if (e != rel::kFalseExpr) {
            clause_buf.push_back(factory.compile(e, &solver));
        }
    }

    void
    cl_neg(ExprId e)
    {
        if (e == rel::kFalseExpr) {
            clause_sat = true;
        } else if (e != rel::kTrueExpr) {
            clause_buf.push_back(~factory.compile(e, &solver));
        }
    }

    void
    cl_end()
    {
        if (!clause_sat) {
            solver.add_clause(clause_buf);
        }
    }

    /// Exactly-one over literal-backed options: one at-least-one clause
    /// plus pairwise at-most-one clauses (the same pairwise encoding the
    /// circuit layer used, minus its per-pair auxiliary variables). An
    /// empty option list yields the empty clause, i.e. unsatisfiable —
    /// matching assert_true(mk_exactly_one({})).
    void
    assert_exactly_one(const std::vector<ExprId>& options)
    {
        cl_begin();
        for (const ExprId o : options) {
            cl_pos(o);
        }
        cl_end();
        for (std::size_t i = 0; i < options.size(); ++i) {
            for (std::size_t j = i + 1; j < options.size(); ++j) {
                cl_begin();
                cl_neg(options[i]);
                cl_neg(options[j]);
                cl_end();
            }
        }
    }

    ExprId
    var()
    {
        return factory.mk_var(solver.new_var());
    }

    ExprId
    pa_equal(EventId a, EventId b)
    {
        // One-hot equality: some PA selected by both.
        ExprId acc = factory.mk_const(false);
        for (int k = 0; k < num_pas; ++k) {
            acc = factory.mk_or(acc, factory.mk_and(pa[a][k], pa[b][k]));
        }
        return acc;
    }

    /// Asserts guard -> pa[a] == pa[b]: per one-hot slot k, the clauses
    /// (!guard | !pa[a][k] | pa[b][k]) and (!guard | !pa[b][k] | pa[a][k]).
    void
    link_pa(ExprId guard, EventId a, EventId b)
    {
        for (int k = 0; k < num_pas; ++k) {
            cl_begin();
            cl_neg(guard);
            cl_neg(pa[a][k]);
            cl_pos(pa[b][k]);
            cl_end();
            cl_begin();
            cl_neg(guard);
            cl_neg(pa[b][k]);
            cl_pos(pa[a][k]);
            cl_end();
        }
    }

    /// Asserts guard -> prov[a] == prov[b].
    void
    link_prov(ExprId guard, EventId a, EventId b)
    {
        cl_begin();
        cl_neg(guard);
        cl_neg(prov_init[a]);
        cl_pos(prov_init[b]);
        cl_end();
        cl_begin();
        cl_neg(guard);
        cl_neg(prov_init[b]);
        cl_pos(prov_init[a]);
        cl_end();
        for (const auto& [w, flag] : prov[a]) {
            const ExprId* it = prov[b].find(w);
            const ExprId other = it == nullptr ? rel::kFalseExpr : *it;
            cl_begin();
            cl_neg(guard);
            cl_neg(flag);
            cl_pos(other);
            cl_end();
        }
        for (const auto& [w, flag] : prov[b]) {
            const ExprId* it = prov[a].find(w);
            const ExprId other = it == nullptr ? rel::kFalseExpr : *it;
            cl_begin();
            cl_neg(guard);
            cl_neg(flag);
            cl_pos(other);
            cl_end();
        }
    }

    ExprId
    same_class(EventId a, EventId b)
    {
        const Event& ea = p.event(a);
        const Event& eb = p.event(b);
        if (elt::is_data_access(ea.kind) && elt::is_data_access(eb.kind)) {
            if (!vm_enabled) {
                return factory.mk_const(ea.va == eb.va);
            }
            return pa_equal(a, b);
        }
        if (elt::is_pte_access(ea.kind) && elt::is_pte_access(eb.kind)) {
            return factory.mk_const(ea.va == eb.va);
        }
        return factory.mk_const(false);
    }

    /// Resizes a vector of per-event containers to n rows and clears each
    /// row, keeping every row's capacity.
    template <typename Row>
    void
    reset_rows(std::vector<Row>& rows)
    {
        rows.resize(n);
        for (Row& row : rows) {
            row.clear();
        }
    }

    void
    build_choices()
    {
        num_pas = std::max(p.num_pas(), 1);
        reset_rows(rf_choice);
        init_choice.assign(n, rel::kFalseExpr);
        reset_rows(ptw_choice);
        reset_rows(pa);
        reset_rows(prov);
        prov_init.assign(n, rel::kFalseExpr);

        for (EventId r = 0; r < n; ++r) {
            const Event& e = p.event(r);
            if (!elt::is_read_like(e.kind)) {
                continue;
            }
            std::vector<ExprId>& options = options_buf;
            options.clear();
            init_choice[r] = var();
            options.push_back(init_choice[r]);
            for (EventId w = 0; w < n; ++w) {
                if (w == r) {
                    continue;
                }
                const Event& we = p.event(w);
                // Data rf candidates: any data write under VM (the dynamic
                // same-PA constraint gates it); same-VA writes in MCM mode
                // (VAs are the locations).
                const bool data_pair = elt::is_data_access(e.kind) &&
                                       we.kind == EventKind::kWrite &&
                                       (vm_enabled || we.va == e.va);
                const bool pte_pair = elt::is_pte_access(e.kind) &&
                                      elt::is_pte_access(we.kind) &&
                                      elt::is_write_like(we.kind) &&
                                      we.va == e.va;
                if (data_pair || pte_pair) {
                    const ExprId choice = var();
                    rf_choice[r].insert(w, choice);
                    options.push_back(choice);
                }
            }
            assert_exactly_one(options);
        }

        if (!vm_enabled) {
            return;
        }
        for (EventId e = 0; e < n; ++e) {
            if (!elt::is_data_access(p.event(e).kind)) {
                continue;
            }
            std::vector<ExprId>& options = options_buf;
            options.clear();
            for (EventId w = 0; w < n; ++w) {
                const Event& we = p.event(w);
                if (we.kind != EventKind::kRptw || we.thread != p.event(e).thread ||
                    we.va != p.event(e).va) {
                    continue;
                }
                const EventId walker = we.parent;
                if (walker != e && !p.precedes(walker, e)) {
                    continue;
                }
                // No same-VA INVLPG between the walk and the use.
                bool blocked = false;
                for (EventId i = 0; i < n; ++i) {
                    const Event& inv = p.event(i);
                    const bool evicts =
                        (inv.kind == EventKind::kInvlpg && inv.va == we.va) ||
                        inv.kind == EventKind::kInvlpgAll;
                    if (evicts && inv.thread == we.thread &&
                        p.precedes(walker, i) && p.precedes(i, e)) {
                        blocked = true;
                        break;
                    }
                }
                if (!blocked) {
                    const ExprId choice = var();
                    ptw_choice[e].insert(w, choice);
                    options.push_back(choice);
                }
            }
            assert_exactly_one(options);
            // An access that invoked its own walk must use it.
            const EventId own = p.rptw_of(e);
            if (own != kNone) {
                const ExprId* choice = ptw_choice[e].find(own);
                TF_ASSERT(choice != nullptr);
                factory.assert_true(*choice, &solver);
            }
        }
    }

    void
    build_address_resolution()
    {
        if (!vm_enabled) {
            return;
        }
        // One-hot pa and provenance vectors for memory events.
        for (EventId e = 0; e < n; ++e) {
            const Event& ev = p.event(e);
            if (!elt::is_memory(ev.kind)) {
                continue;
            }
            if (ev.kind == EventKind::kWpte) {
                // Constant: the mapping it installs.
                pa[e].assign(num_pas, rel::kFalseExpr);
                pa[e][ev.map_pa] = rel::kTrueExpr;
                continue;
            }
            pa[e].reserve(num_pas);
            for (int k = 0; k < num_pas; ++k) {
                pa[e].push_back(var());
            }
            assert_exactly_one(pa[e]);
            prov_init[e] = var();
            std::vector<ExprId>& options = options_buf;
            options.clear();
            options.push_back(prov_init[e]);
            for (EventId w = 0; w < n; ++w) {
                if (p.event(w).kind == EventKind::kWpte &&
                    p.event(w).va == ev.va) {
                    const ExprId flag = var();
                    prov[e].insert(w, flag);
                    options.push_back(flag);
                }
            }
            assert_exactly_one(options);
        }

        for (EventId e = 0; e < n; ++e) {
            const Event& ev = p.event(e);
            switch (ev.kind) {
            case EventKind::kRead:
            case EventKind::kWrite:
                for (const auto& [walk, guard] : ptw_choice[e]) {
                    link_pa(guard, e, walk);
                    link_prov(guard, e, walk);
                }
                break;
            case EventKind::kRptw:
            case EventKind::kRdb: {
                // Initial mapping: VA i -> PA i.
                cl_begin();
                cl_neg(init_choice[e]);
                cl_pos(pa[e][ev.va]);
                cl_end();
                cl_begin();
                cl_neg(init_choice[e]);
                cl_pos(prov_init[e]);
                cl_end();
                for (const auto& [w, guard] : rf_choice[e]) {
                    const Event& we = p.event(w);
                    if (we.kind == EventKind::kWpte) {
                        cl_begin();
                        cl_neg(guard);
                        cl_pos(pa[e][we.map_pa]);
                        cl_end();
                        cl_begin();
                        cl_neg(guard);
                        cl_pos(prov[e].at(w));
                        cl_end();
                    } else {  // Wdb: mapping propagates through
                        link_pa(guard, e, w);
                        link_prov(guard, e, w);
                    }
                }
                break;
            }
            case EventKind::kWdb:
                // A dirty-bit update preserves the mapping its immediate
                // coherence predecessor left at this PTE location (initial
                // mapping when coherence-first). Because co is a strict
                // total order per location, values always ground out in a
                // Wpte or the initial state — no cyclic dependencies can
                // arise. Constraints are built in build_coherence(), once
                // the co variables exist.
                break;
            default:
                break;
            }
        }

        // A data read may only be sourced by a same-PA write: under the
        // one-hot PA encoding, guard & pa[r][k] -> pa[w][k] per slot pins
        // the equality (exactly-one on pa[w] rules every other slot out).
        for (EventId r = 0; r < n; ++r) {
            if (!elt::is_data_access(p.event(r).kind)) {
                continue;
            }
            for (const auto& [w, guard] : rf_choice[r]) {
                for (int k = 0; k < num_pas; ++k) {
                    cl_begin();
                    cl_neg(guard);
                    cl_neg(pa[r][k]);
                    cl_pos(pa[w][k]);
                    cl_end();
                }
            }
        }
    }

    void
    build_coherence()
    {
        co.reset_empty(&factory, n);
        co_pa.reset_empty(&factory, n);
        std::vector<EventId>& writes = events_buf;
        writes.clear();
        for (EventId w = 0; w < n; ++w) {
            if (elt::is_write_like(p.event(w).kind)) {
                writes.push_back(w);
            }
        }
        for (const EventId a : writes) {
            for (const EventId b : writes) {
                if (a != b) {
                    co.set(a, b, var());
                }
            }
        }
        for (const EventId a : writes) {
            for (const EventId b : writes) {
                if (a == b) {
                    continue;
                }
                // co(a, b) -> same class. For VM data-data pairs the class
                // is the dynamic one-hot PA: per slot k, co(a,b) & pa[a][k]
                // -> pa[b][k] pins equality (exactly-one excludes the
                // rest). Every other combination has a constant class.
                const bool dynamic_class =
                    vm_enabled && elt::is_data_access(p.event(a).kind) &&
                    elt::is_data_access(p.event(b).kind);
                if (dynamic_class) {
                    for (int k = 0; k < num_pas; ++k) {
                        cl_begin();
                        cl_neg(co.at(a, b));
                        cl_neg(pa[a][k]);
                        cl_pos(pa[b][k]);
                        cl_end();
                    }
                } else {
                    cl_begin();
                    cl_neg(co.at(a, b));
                    cl_pos(same_class(a, b));  // constant here
                    cl_end();
                }
                if (a < b) {
                    // Same class -> exactly one direction. The at-most-one
                    // half holds unconditionally (different-class pairs have
                    // both directions forced false above), the totality half
                    // is guarded by the class condition.
                    cl_begin();
                    cl_neg(co.at(a, b));
                    cl_neg(co.at(b, a));
                    cl_end();
                    if (dynamic_class) {
                        for (int k = 0; k < num_pas; ++k) {
                            cl_begin();
                            cl_neg(pa[a][k]);
                            cl_neg(pa[b][k]);
                            cl_pos(co.at(a, b));
                            cl_pos(co.at(b, a));
                            cl_end();
                        }
                    } else {
                        cl_begin();
                        cl_neg(same_class(a, b));  // constant here
                        cl_pos(co.at(a, b));
                        cl_pos(co.at(b, a));
                        cl_end();
                    }
                }
                for (const EventId c : writes) {
                    if (c != a && c != b) {
                        cl_begin();
                        cl_neg(co.at(a, b));
                        cl_neg(co.at(b, c));
                        cl_pos(co.at(a, c));
                        cl_end();
                    }
                }
            }
        }
        if (!vm_enabled) {
            return;
        }
        // Dirty-bit value semantics: a Wdb takes the mapping value of its
        // immediate coherence predecessor at its PTE location (the initial
        // mapping when coherence-first). co is total per location, so the
        // values always ground out in a Wpte or the initial state.
        for (EventId d = 0; d < n; ++d) {
            if (p.event(d).kind != EventKind::kWdb) {
                continue;
            }
            const int va = p.event(d).va;
            std::vector<EventId>& peers = peers_buf;
            peers.clear();
            for (EventId w = 0; w < n; ++w) {
                if (w != d && elt::is_pte_access(p.event(w).kind) &&
                    elt::is_write_like(p.event(w).kind) &&
                    p.event(w).va == va) {
                    peers.push_back(w);
                }
            }
            // Coherence-first: no peer precedes d. Directly clausal, since
            // "not first" is a plain disjunction of co(w, d) literals.
            cl_begin();
            for (const EventId w : peers) {
                cl_pos(co.at(w, d));
            }
            cl_pos(pa[d][va]);
            cl_end();
            cl_begin();
            for (const EventId w : peers) {
                cl_pos(co.at(w, d));
            }
            cl_pos(prov_init[d]);
            cl_end();
            for (const EventId w : peers) {
                // immediate(w, d) = co(w, d) with nothing in between — the
                // one constraint here that is a genuine circuit; its
                // Tseitin literal compiles once and guards plain clauses.
                ExprId immediate = co.at(w, d);
                for (const EventId between : peers) {
                    if (between != w) {
                        immediate = factory.mk_and(
                            immediate,
                            factory.mk_not(factory.mk_and(
                                co.at(w, between), co.at(between, d))));
                    }
                }
                if (p.event(w).kind == EventKind::kWpte) {
                    cl_begin();
                    cl_neg(immediate);
                    cl_pos(pa[d][p.event(w).map_pa]);
                    cl_end();
                    cl_begin();
                    cl_neg(immediate);
                    cl_pos(prov[d].at(w));
                    cl_end();
                } else {
                    link_pa(immediate, d, w);
                    link_prov(immediate, d, w);
                }
            }
        }
        // co_pa: strict total order per (static) target-PA class of Wptes,
        // consistent with co where both orders apply.
        std::vector<EventId>& wptes = events_buf;
        wptes.clear();
        for (EventId w = 0; w < n; ++w) {
            if (p.event(w).kind == EventKind::kWpte) {
                wptes.push_back(w);
            }
        }
        for (const EventId a : wptes) {
            for (const EventId b : wptes) {
                if (a == b || p.event(a).map_pa != p.event(b).map_pa) {
                    continue;
                }
                co_pa.set(a, b, var());
            }
        }
        for (const EventId a : wptes) {
            for (const EventId b : wptes) {
                if (a == b || p.event(a).map_pa != p.event(b).map_pa) {
                    continue;
                }
                if (a < b) {
                    // Strict total order per class: exactly one direction.
                    cl_begin();
                    cl_pos(co_pa.at(a, b));
                    cl_pos(co_pa.at(b, a));
                    cl_end();
                    cl_begin();
                    cl_neg(co_pa.at(a, b));
                    cl_neg(co_pa.at(b, a));
                    cl_end();
                }
                for (const EventId c : wptes) {
                    if (c != a && c != b &&
                        p.event(c).map_pa == p.event(a).map_pa) {
                        cl_begin();
                        cl_neg(co_pa.at(a, b));
                        cl_neg(co_pa.at(b, c));
                        cl_pos(co_pa.at(a, c));
                        cl_end();
                    }
                }
                if (p.event(a).va == p.event(b).va) {
                    // co and co_pa agree where both apply: co(a,b) <-> co_pa(a,b).
                    cl_begin();
                    cl_neg(co.at(a, b));
                    cl_pos(co_pa.at(a, b));
                    cl_end();
                    cl_begin();
                    cl_pos(co.at(a, b));
                    cl_neg(co_pa.at(a, b));
                    cl_end();
                }
            }
        }
    }

    void
    build_derived(unsigned needs)
    {
        if (needs & kNeedRf) {
            rf.reset_empty(&factory, n);
            for (EventId r = 0; r < n; ++r) {
                for (const auto& [w, guard] : rf_choice[r]) {
                    rf.set(w, r, factory.mk_or(rf.at(w, r), guard));
                }
            }
        }
        if (needs & kNeedRfe) {
            rfe.reset_empty(&factory, n);
            for (EventId r = 0; r < n; ++r) {
                for (const auto& [w, guard] : rf_choice[r]) {
                    if (p.event(w).thread != p.event(r).thread) {
                        rfe.set(w, r, factory.mk_or(rfe.at(w, r), guard));
                    }
                }
            }
        }
        // fr(r, w') = exists w: rf(w, r) & co(w, w')  |  init(r) & class(r, w').
        if (needs & kNeedFr) {
            fr.reset_empty(&factory, n);
            for (EventId r = 0; r < n; ++r) {
                if (!elt::is_read_like(p.event(r).kind)) {
                    continue;
                }
                for (EventId w2 = 0; w2 < n; ++w2) {
                    if (!elt::is_write_like(p.event(w2).kind)) {
                        continue;
                    }
                    ExprId acc =
                        factory.mk_and(init_choice[r], same_class(r, w2));
                    for (const auto& [w, guard] : rf_choice[r]) {
                        if (w != w2) {
                            acc = factory.mk_or(
                                acc, factory.mk_and(guard, co.at(w, w2)));
                        }
                    }
                    fr.set(r, w2, acc);
                }
            }
        }
        // po_loc over extended order.
        if (needs & kNeedPoLoc) {
            po_loc.reset_empty(&factory, n);
            for (EventId a = 0; a < n; ++a) {
                for (EventId b = 0; b < n; ++b) {
                    if (a != b && elt::is_memory(p.event(a).kind) &&
                        elt::is_memory(p.event(b).kind) && p.precedes(a, b)) {
                        po_loc.set(a, b, same_class(a, b));
                    }
                }
            }
        }
        // Constants: po (transitive), po_mem, remap, ppo, fence, rmw, ghost.
        if (needs & kNeedPoConst) {
            po_const.reset_empty(&factory, n);
            for (int t = 0; t < p.num_threads(); ++t) {
                const auto& seq = p.thread(t);
                for (std::size_t i = 0; i < seq.size(); ++i) {
                    for (std::size_t j = i + 1; j < seq.size(); ++j) {
                        po_const.set(seq[i], seq[j], rel::kTrueExpr);
                    }
                }
            }
        }
        if (needs & kNeedPoMemConst) {
            // Extended program order over memory events, ghosts included —
            // the same pairs the concrete evaluator's po_mem base and the
            // hardwired SC causality's `full` relation enumerate.
            po_mem_const.reset_empty(&factory, n);
            for (EventId a = 0; a < n; ++a) {
                for (EventId b = 0; b < n; ++b) {
                    if (a != b && elt::is_memory(p.event(a).kind) &&
                        elt::is_memory(p.event(b).kind) && p.precedes(a, b)) {
                        po_mem_const.set(a, b, rel::kTrueExpr);
                    }
                }
            }
        }
        if (needs & kNeedRemapConst) {
            remap_const.reset_empty(&factory, n);
            for (EventId i = 0; i < n; ++i) {
                const Event& e = p.event(i);
                if (e.kind == EventKind::kInvlpg && e.remap_src != kNone) {
                    remap_const.set(e.remap_src, i, rel::kTrueExpr);
                }
            }
        }
        if (needs & kNeedRmwConst) {
            rmw_const.reset_empty(&factory, n);
            for (const auto& [r, w] : p.rmw_pairs()) {
                rmw_const.set(r, w, rel::kTrueExpr);
            }
        }
        if (needs & kNeedGhostConst) {
            ghost_const.reset_empty(&factory, n);
            for (EventId i = 0; i < n; ++i) {
                if (elt::is_ghost(p.event(i).kind)) {
                    ghost_const.set(p.event(i).parent, i, rel::kTrueExpr);
                }
            }
        }
        if (needs & kNeedPpoFenceConst) {
            ppo_const.reset_empty(&factory, n);
            fence_const.reset_empty(&factory, n);
            for (EventId a = 0; a < n; ++a) {
                for (EventId b = 0; b < n; ++b) {
                    if (a == b || !elt::is_memory(p.event(a).kind) ||
                        !elt::is_memory(p.event(b).kind) || !p.precedes(a, b)) {
                        continue;
                    }
                    if (!(elt::is_write_like(p.event(a).kind) &&
                          elt::is_read_like(p.event(b).kind))) {
                        ppo_const.set(a, b, rel::kTrueExpr);
                    }
                    for (EventId f = 0; f < n; ++f) {
                        if (p.event(f).kind == EventKind::kMfence &&
                            p.precedes(a, f) && p.precedes(f, b)) {
                            fence_const.set(a, b, rel::kTrueExpr);
                            break;
                        }
                    }
                }
            }
        }
        if (!vm_enabled) {
            // A non-VM model may still carry VM axioms (Model is an open
            // "define your own MTM" API): their relations are simply empty
            // here, exactly as the eager builder produced them.
            if (needs & (kNeedRfPtw | kNeedPtwSource)) {
                rf_ptw_rel.reset_empty(&factory, n);
                ptw_source.reset_empty(&factory, n);
            }
            if (needs & kNeedRfPa) {
                rf_pa.reset_empty(&factory, n);
            }
            if (needs & kNeedFrVa) {
                fr_va.reset_empty(&factory, n);
            }
            if (needs & kNeedFrPa) {
                fr_pa.reset_empty(&factory, n);
            }
            return;
        }

        if (needs & (kNeedRfPtw | kNeedPtwSource)) {
            rf_ptw_rel.reset_empty(&factory, n);
            ptw_source.reset_empty(&factory, n);
            for (EventId e = 0; e < n; ++e) {
                for (const auto& [walk, guard] : ptw_choice[e]) {
                    rf_ptw_rel.set(
                        walk, e, factory.mk_or(rf_ptw_rel.at(walk, e), guard));
                    const EventId walker = p.event(walk).parent;
                    if (walker != e) {
                        ptw_source.set(walker, e,
                                       factory.mk_or(ptw_source.at(walker, e),
                                                     guard));
                    }
                }
            }
        }
        if (needs & kNeedRfPa) {
            rf_pa.reset_empty(&factory, n);
            for (EventId e = 0; e < n; ++e) {
                if (!elt::is_data_access(p.event(e).kind)) {
                    continue;
                }
                for (const auto& [wpte, flag] : prov[e]) {
                    rf_pa.set(wpte, e, flag);
                }
            }
        }
        // fr_va: later Wptes (in PTE-location coherence) remapping e's VA.
        if (needs & kNeedFrVa) {
            fr_va.reset_empty(&factory, n);
            for (EventId e = 0; e < n; ++e) {
                if (!elt::is_data_access(p.event(e).kind)) {
                    continue;
                }
                for (EventId w2 = 0; w2 < n; ++w2) {
                    const Event& we2 = p.event(w2);
                    if (we2.kind != EventKind::kWpte ||
                        we2.va != p.event(e).va) {
                        continue;
                    }
                    ExprId acc = prov_init[e];
                    for (const auto& [wpte, flag] : prov[e]) {
                        if (wpte != w2) {
                            acc = factory.mk_or(
                                acc, factory.mk_and(flag, co.at(wpte, w2)));
                        }
                    }
                    fr_va.set(e, w2, acc);
                }
            }
        }
        // fr_pa: co_pa-successors of the provenance (initial mapping
        // precedes every alias creation for its PA).
        if (needs & kNeedFrPa) {
            fr_pa.reset_empty(&factory, n);
            for (EventId e = 0; e < n; ++e) {
                if (!elt::is_data_access(p.event(e).kind)) {
                    continue;
                }
                for (EventId w2 = 0; w2 < n; ++w2) {
                    const Event& we2 = p.event(w2);
                    if (we2.kind != EventKind::kWpte) {
                        continue;
                    }
                    ExprId acc = factory.mk_and(prov_init[e],
                                                pa[e].empty()
                                                    ? rel::kFalseExpr
                                                    : pa[e][we2.map_pa]);
                    for (const auto& [wpte, flag] : prov[e]) {
                        if (wpte != w2 &&
                            p.event(wpte).map_pa == we2.map_pa) {
                            acc = factory.mk_or(
                                acc, factory.mk_and(flag, co_pa.at(wpte, w2)));
                        }
                    }
                    fr_pa.set(e, w2, acc);
                }
            }
        }
    }

    void
    build_placement_constraints()
    {
        // Everything structural is static (checked by Program::validate());
        // the dynamic placement rules were asserted inline above.
    }

    // ------------------------------------------------------------------
    // Generic `.mtm` expression lowering — the symbolic twin of
    // spec/eval.cpp. Base relations map onto the circuits above; the
    // relational operators map 1:1 onto rel::RelExpr's algebra. Nodes are
    // memoized per Build so a let body shared by several references (the
    // AST is a DAG) compiles once.
    // ------------------------------------------------------------------

    const RelExpr&
    base_circuit(spec::BaseRel base)
    {
        // Resolved through the same table that produced the need bits, so
        // a circuit can never be read without having been (re)built for
        // this query.
        return pool.*(base_rel_info(base).circuit);
    }

    RelExpr
    set_identity(spec::EventSet set)
    {
        RelExpr id = RelExpr::empty(&factory, n);
        for (EventId a = 0; a < n; ++a) {
            if (spec::event_in_set(set, p.event(a).kind)) {
                id.set(a, a, rel::kTrueExpr);
            }
        }
        return id;
    }

    RelExpr
    compile_expr(const spec::Expr& e)
    {
        for (const auto& [node, circuit] : expr_memo) {
            if (node == &e) {
                return circuit;
            }
        }
        RelExpr result;
        switch (e.op) {
        case spec::ExprOp::kBase:
            result = base_circuit(e.base);
            break;
        case spec::ExprOp::kEmpty:
            result = RelExpr::empty(&factory, n);
            break;
        case spec::ExprOp::kIdSet:
            result = set_identity(e.set);
            break;
        case spec::ExprOp::kUnion:
            result = compile_expr(*e.lhs).rel_union(&factory,
                                                    compile_expr(*e.rhs));
            break;
        case spec::ExprOp::kIntersect:
            result = compile_expr(*e.lhs).rel_intersect(&factory,
                                                        compile_expr(*e.rhs));
            break;
        case spec::ExprOp::kMinus:
            result = compile_expr(*e.lhs).rel_minus(&factory,
                                                    compile_expr(*e.rhs));
            break;
        case spec::ExprOp::kJoin:
            result =
                compile_expr(*e.lhs).join(&factory, compile_expr(*e.rhs));
            break;
        case spec::ExprOp::kTranspose:
            result = compile_expr(*e.lhs).transpose(&factory);
            break;
        case spec::ExprOp::kClosure:
            result = compile_expr(*e.lhs).closure(&factory);
            break;
        case spec::ExprOp::kReflexiveClosure:
            result = compile_expr(*e.lhs).closure(&factory).rel_union(
                &factory, RelExpr::identity(&factory, n));
            break;
        case spec::ExprOp::kLetRef:
            result = compile_expr(*e.lhs);
            break;
        }
        expr_memo.emplace_back(&e, result);
        return result;
    }

    /// Circuit stating that the given axiom HOLDS.
    ExprId
    axiom_circuit(const Axiom& axiom)
    {
        if (axiom.tag == AxiomTag::kExpr) {
            TF_ASSERT(axiom.def != nullptr && axiom.def->expr != nullptr);
            const RelExpr r = compile_expr(*axiom.def->expr);
            switch (axiom.def->form) {
            case spec::AxiomForm::kAcyclic:
                return r.acyclic(&factory);
            case spec::AxiomForm::kIrreflexive:
                return r.irreflexive(&factory);
            case spec::AxiomForm::kEmpty:
                return r.is_empty(&factory);
            }
            TF_PANIC("unknown axiom form");
        }
        switch (axiom.tag) {
        case AxiomTag::kScPerLoc:
            return rel::acyclic_union(&factory, {&rf, &co, &fr, &po_loc});
        case AxiomTag::kRmwAtomicity: {
            ExprId acc = rel::kTrueExpr;
            for (const auto& [r, w] : p.rmw_pairs()) {
                for (EventId mid = 0; mid < n; ++mid) {
                    acc = factory.mk_and(
                        acc, factory.mk_not(factory.mk_and(fr.at(r, mid),
                                                           co.at(mid, w))));
                }
            }
            return acc;
        }
        case AxiomTag::kCausalityTso:
            return rel::acyclic_union(&factory,
                                      {&rfe, &co, &fr, &ppo_const, &fence_const});
        case AxiomTag::kCausalitySc: {
            // Full program order preserved: use po over memory events
            // (extended), i.e. ppo plus the write->read pairs TSO drops.
            RelExpr full = ppo_const;
            for (EventId a = 0; a < n; ++a) {
                for (EventId b = 0; b < n; ++b) {
                    if (a != b && elt::is_memory(p.event(a).kind) &&
                        elt::is_memory(p.event(b).kind) && p.precedes(a, b)) {
                        full.set(a, b, rel::kTrueExpr);
                    }
                }
            }
            return rel::acyclic_union(&factory,
                                      {&rfe, &co, &fr, &full, &fence_const});
        }
        case AxiomTag::kInvlpg:
            return rel::acyclic_union(&factory,
                                      {&fr_va, &po_const, &remap_const});
        case AxiomTag::kTlbCausality:
            return rel::acyclic_union(&factory, {&ptw_source, &rf, &co, &fr});
        case AxiomTag::kExpr:
            break;  // handled above
        }
        TF_PANIC("unknown axiom tag");
    }

};

ProgramEncoding::ProgramEncoding(Program program, const Model* model,
                                 EncodingScratch* scratch)
    : program_(std::move(program)), model_(model), scratch_(scratch)
{
    TF_ASSERT(model_ != nullptr);
    TF_ASSERT(program_.validate(model_->vm_aware()).empty());
    if (scratch_ == nullptr) {
        owned_scratch_ = std::make_unique<EncodingScratch>();
        scratch_ = owned_scratch_.get();
    }
}

namespace {

/// Extracts a concrete Execution from a satisfying model of the encoding
/// into \p out, resetting and reusing its witness vectors.
void
extract_into(const ProgramEncoding::Build& b, const Program& program,
             Execution* out)
{
    const int n = program.num_events();
    out->rf_src.assign(n, kNone);
    out->co_pos.assign(n, kNone);
    out->ptw_src.assign(n, kNone);
    out->co_pa_pos.assign(n, kNone);
    auto lit_true = [&](ExprId e) {
        return b.factory.evaluate(e, [&](sat::Var v) {
            return b.solver.model_value(v) == sat::LBool::kTrue;
        });
    };
    for (EventId r = 0; r < n; ++r) {
        for (const auto& [w, guard] : b.rf_choice[r]) {
            if (lit_true(guard)) {
                out->rf_src[r] = w;
            }
        }
        for (const auto& [walk, guard] : b.ptw_choice[r]) {
            if (lit_true(guard)) {
                out->ptw_src[r] = walk;
            }
        }
    }
    // co positions: count predecessors within each class.
    for (EventId w = 0; w < n; ++w) {
        if (!elt::is_write_like(program.event(w).kind)) {
            continue;
        }
        int predecessors = 0;
        for (EventId w2 = 0; w2 < n; ++w2) {
            if (w2 != w && elt::is_write_like(program.event(w2).kind) &&
                lit_true(b.co.at(w2, w))) {
                ++predecessors;
            }
        }
        out->co_pos[w] = predecessors;
    }
    for (EventId w = 0; w < n; ++w) {
        if (program.event(w).kind != EventKind::kWpte) {
            continue;
        }
        int predecessors = 0;
        for (EventId w2 = 0; w2 < n; ++w2) {
            if (w2 != w && program.event(w2).kind == EventKind::kWpte &&
                program.event(w2).map_pa == program.event(w).map_pa &&
                lit_true(b.co_pa.at(w2, w))) {
                ++predecessors;
            }
        }
        out->co_pa_pos[w] = predecessors;
    }
}

/// Collects every solver variable used by the witness choices — the
/// projection set for AllSAT enumeration and blocking — into the reused
/// \p clause buffer.
void
blocking_clause(ProgramEncoding::Build& b, std::vector<sat::Lit>* clause)
{
    clause->clear();
    auto block = [&](ExprId e) {
        // Choice expressions are single variables created via var(); compile
        // is a lookup returning the underlying literal.
        const sat::Lit l = b.factory.compile(e, &b.solver);
        const bool value = b.solver.model_literal_true(l);
        clause->push_back(value ? ~l : l);
    };
    const int n = b.n;
    for (EventId r = 0; r < n; ++r) {
        for (const auto& [w, guard] : b.rf_choice[r]) {
            (void)w;
            block(guard);
        }
        if (elt::is_read_like(b.p.event(r).kind)) {
            block(b.init_choice[r]);
        }
        for (const auto& [walk, guard] : b.ptw_choice[r]) {
            (void)walk;
            block(guard);
        }
    }
    for (EventId a = 0; a < n; ++a) {
        for (EventId c = 0; c < n; ++c) {
            if (a != c && b.co.at(a, c) != rel::kFalseExpr) {
                block(b.co.at(a, c));
            }
            if (a != c && b.co_pa.at(a, c) != rel::kFalseExpr) {
                block(b.co_pa.at(a, c));
            }
        }
    }
}

/// Maps a non-kSat query verdict onto the robustness contract: a
/// budget-exhausted kUnknown is unsound to fold into "no model" and is
/// surfaced as a retryable fault; an interrupt kUnknown reads as
/// "not found" — the cancelled caller discards the result anyway.
void
require_decisive_or_interrupted(const sat::Solver& solver,
                                sat::SolveResult verdict)
{
    if (verdict == sat::SolveResult::kUnknown &&
        solver.unknown_cause() == sat::UnknownCause::kConflictBudget) {
        throw sat::BudgetExhausted();
    }
}

}  // namespace

bool
ProgramEncoding::exists_violating(const std::string& axiom_name)
{
    return find_violating(axiom_name).has_value();
}

std::optional<Execution>
ProgramEncoding::find_violating(const std::string& axiom_name)
{
    const Axiom* axiom = model_->axiom(axiom_name);
    TF_ASSERT(axiom != nullptr);
    Build b(program_, model_->vm_aware(), needs_for(*axiom), scratch_);
    b.factory.assert_true(b.factory.mk_not(b.axiom_circuit(*axiom)),
                          &b.solver);
    stats_.variables = b.solver.num_vars();
    stats_.circuit_nodes = static_cast<int>(b.factory.num_nodes());
    const sat::SolveResult verdict = b.solver.solve();
    require_decisive_or_interrupted(b.solver, verdict);
    if (verdict != sat::SolveResult::kSat) {
        return std::nullopt;
    }
    Execution out = Execution::empty_for(program_);
    extract_into(b, program_, &out);
    return out;
}

bool
ProgramEncoding::exists_permitted()
{
    unsigned needs = 0;
    for (const Axiom& axiom : model_->axioms()) {
        needs |= needs_for(axiom);
    }
    Build b(program_, model_->vm_aware(), needs, scratch_);
    for (const Axiom& axiom : model_->axioms()) {
        b.factory.assert_true(b.axiom_circuit(axiom), &b.solver);
    }
    stats_.variables = b.solver.num_vars();
    stats_.circuit_nodes = static_cast<int>(b.factory.num_nodes());
    const sat::SolveResult verdict = b.solver.solve();
    require_decisive_or_interrupted(b.solver, verdict);
    return verdict == sat::SolveResult::kSat;
}

bool
ProgramEncoding::exists_execution()
{
    Build b(program_, model_->vm_aware(), /*needs=*/0, scratch_);
    stats_.variables = b.solver.num_vars();
    stats_.circuit_nodes = static_cast<int>(b.factory.num_nodes());
    const sat::SolveResult verdict = b.solver.solve();
    require_decisive_or_interrupted(b.solver, verdict);
    return verdict == sat::SolveResult::kSat;
}

bool
ProgramEncoding::enumerate(const std::string& violating_axiom,
                           const ExecutionVisitor& visit)
{
    const Axiom* axiom = nullptr;
    if (!violating_axiom.empty()) {
        axiom = model_->axiom(violating_axiom);
        TF_ASSERT(axiom != nullptr);
    }
    Build b(program_, model_->vm_aware(),
            axiom == nullptr ? 0u : needs_for(*axiom), scratch_);
    if (axiom != nullptr) {
        b.factory.assert_true(b.factory.mk_not(b.axiom_circuit(*axiom)),
                              &b.solver);
    }
    stats_.variables = b.solver.num_vars();
    stats_.circuit_nodes = static_cast<int>(b.factory.num_nodes());
    stats_.models = 0;
    Execution current = Execution::empty_for(program_);
    sat::Clause clause;
    while (true) {
        const sat::SolveResult verdict = b.solver.solve();
        require_decisive_or_interrupted(b.solver, verdict);
        if (verdict != sat::SolveResult::kSat) {
            // kUnsat exhausts the space; an interrupt kUnknown stops the
            // sweep like a visitor veto — the cancelled caller discards it.
            return verdict == sat::SolveResult::kUnsat;
        }
        extract_into(b, program_, &current);
        ++stats_.models;
        if (!visit(current)) {
            return false;  // the visitor stopped the solver
        }
        const obs::ScopedAllocSite alloc_site(
            obs::AllocSite::kSiteBlockingClause);
        blocking_clause(b, &clause);
        if (clause.empty() || !b.solver.add_clause(clause)) {
            break;
        }
    }
    return true;
}

std::vector<Execution>
ProgramEncoding::enumerate(const std::string& violating_axiom,
                           int max_executions)
{
    std::vector<Execution> out;
    enumerate(violating_axiom, [&](const Execution& e) {
        out.push_back(e);
        return max_executions <= 0 ||
               static_cast<int>(out.size()) < max_executions;
    });
    return out;
}

}  // namespace transform::mtm
