#include "mtm/encoding.h"

#include <algorithm>
#include <map>

#include "rel/bool_factory.h"
#include "rel/constraints.h"
#include "rel/relation.h"
#include "sat/solver.h"
#include "util/logging.h"

namespace transform::mtm {

using elt::Event;
using elt::EventId;
using elt::EventKind;
using elt::Execution;
using elt::kNone;
using elt::Program;
using rel::BoolFactory;
using rel::ExprId;
using rel::RelExpr;

/// Per-query encoding state: the factory, the solver, the witness choice
/// variables, and the derived-relation circuits.
struct ProgramEncoding::Build {
    explicit Build(const Program& program, bool vm)
        : p(program), n(program.num_events()), vm_enabled(vm)
    {
        build_choices();
        build_address_resolution();
        build_coherence();
        build_derived();
        build_placement_constraints();
    }

    // ------------------------------------------------------------------
    // Inputs.
    // ------------------------------------------------------------------
    const Program& p;
    const int n;
    const bool vm_enabled;

    BoolFactory factory;
    sat::Solver solver;

    // ------------------------------------------------------------------
    // Choice variables.
    // ------------------------------------------------------------------
    // rf_choice[r]: map write-candidate -> ExprId; init_choice[r] for the
    // initial state.
    std::vector<std::map<EventId, ExprId>> rf_choice;
    std::vector<ExprId> init_choice;
    // ptw_choice[e]: map walk -> ExprId (data accesses only).
    std::vector<std::map<EventId, ExprId>> ptw_choice;
    // pa[e][k]: one-hot resolved physical address (memory events only).
    std::vector<std::vector<ExprId>> pa;
    // prov[e]: map Wpte -> ExprId, plus prov_init[e] (data accesses, walks,
    // dirty-bit writes).
    std::vector<std::map<EventId, ExprId>> prov;
    std::vector<ExprId> prov_init;

    // Coherence order over write-like events; alias-creation order over
    // Wptes.
    RelExpr co;
    RelExpr co_pa;

    // ------------------------------------------------------------------
    // Derived circuits.
    // ------------------------------------------------------------------
    RelExpr rf, fr, po_loc, rfe, rf_ptw_rel, ptw_source, rf_pa, fr_pa, fr_va;
    RelExpr po_const, remap_const, ppo_const, fence_const;

    int num_pas = 0;

    ExprId
    var()
    {
        return factory.mk_var(solver.new_var());
    }

    ExprId
    pa_equal(EventId a, EventId b)
    {
        // One-hot equality: some PA selected by both.
        ExprId acc = factory.mk_const(false);
        for (int k = 0; k < num_pas; ++k) {
            acc = factory.mk_or(acc, factory.mk_and(pa[a][k], pa[b][k]));
        }
        return acc;
    }

    /// Asserts guard -> pa[a] == pa[b] (one-hot implications both ways).
    void
    link_pa(ExprId guard, EventId a, EventId b)
    {
        for (int k = 0; k < num_pas; ++k) {
            factory.assert_true(
                factory.mk_implies(factory.mk_and(guard, pa[a][k]), pa[b][k]),
                &solver);
            factory.assert_true(
                factory.mk_implies(factory.mk_and(guard, pa[b][k]), pa[a][k]),
                &solver);
        }
    }

    /// Asserts guard -> prov[a] == prov[b].
    void
    link_prov(ExprId guard, EventId a, EventId b)
    {
        factory.assert_true(
            factory.mk_implies(factory.mk_and(guard, prov_init[a]),
                               prov_init[b]),
            &solver);
        factory.assert_true(
            factory.mk_implies(factory.mk_and(guard, prov_init[b]),
                               prov_init[a]),
            &solver);
        for (auto& [w, flag] : prov[a]) {
            const auto it = prov[b].find(w);
            const ExprId other =
                it == prov[b].end() ? rel::kFalseExpr : it->second;
            factory.assert_true(
                factory.mk_implies(factory.mk_and(guard, flag), other),
                &solver);
        }
        for (auto& [w, flag] : prov[b]) {
            const auto it = prov[a].find(w);
            const ExprId other =
                it == prov[a].end() ? rel::kFalseExpr : it->second;
            factory.assert_true(
                factory.mk_implies(factory.mk_and(guard, flag), other),
                &solver);
        }
    }

    ExprId
    same_class(EventId a, EventId b)
    {
        const Event& ea = p.event(a);
        const Event& eb = p.event(b);
        if (elt::is_data_access(ea.kind) && elt::is_data_access(eb.kind)) {
            if (!vm_enabled) {
                return factory.mk_const(ea.va == eb.va);
            }
            return pa_equal(a, b);
        }
        if (elt::is_pte_access(ea.kind) && elt::is_pte_access(eb.kind)) {
            return factory.mk_const(ea.va == eb.va);
        }
        return factory.mk_const(false);
    }

    void
    build_choices()
    {
        num_pas = std::max(p.num_pas(), 1);
        rf_choice.resize(n);
        init_choice.assign(n, rel::kFalseExpr);
        ptw_choice.resize(n);
        pa.assign(n, {});
        prov.resize(n);
        prov_init.assign(n, rel::kFalseExpr);

        for (EventId r = 0; r < n; ++r) {
            const Event& e = p.event(r);
            if (!elt::is_read_like(e.kind)) {
                continue;
            }
            std::vector<ExprId> options;
            init_choice[r] = var();
            options.push_back(init_choice[r]);
            for (EventId w = 0; w < n; ++w) {
                if (w == r) {
                    continue;
                }
                const Event& we = p.event(w);
                // Data rf candidates: any data write under VM (the dynamic
                // same-PA constraint gates it); same-VA writes in MCM mode
                // (VAs are the locations).
                const bool data_pair = elt::is_data_access(e.kind) &&
                                       we.kind == EventKind::kWrite &&
                                       (vm_enabled || we.va == e.va);
                const bool pte_pair = elt::is_pte_access(e.kind) &&
                                      elt::is_pte_access(we.kind) &&
                                      elt::is_write_like(we.kind) &&
                                      we.va == e.va;
                if (data_pair || pte_pair) {
                    rf_choice[r][w] = var();
                    options.push_back(rf_choice[r][w]);
                }
            }
            factory.assert_true(factory.mk_exactly_one(options), &solver);
        }

        if (!vm_enabled) {
            return;
        }
        for (EventId e = 0; e < n; ++e) {
            if (!elt::is_data_access(p.event(e).kind)) {
                continue;
            }
            std::vector<ExprId> options;
            for (EventId w = 0; w < n; ++w) {
                const Event& we = p.event(w);
                if (we.kind != EventKind::kRptw || we.thread != p.event(e).thread ||
                    we.va != p.event(e).va) {
                    continue;
                }
                const EventId walker = we.parent;
                if (walker != e && !p.precedes(walker, e)) {
                    continue;
                }
                // No same-VA INVLPG between the walk and the use.
                bool blocked = false;
                for (EventId i = 0; i < n; ++i) {
                    const Event& inv = p.event(i);
                    const bool evicts =
                        (inv.kind == EventKind::kInvlpg && inv.va == we.va) ||
                        inv.kind == EventKind::kInvlpgAll;
                    if (evicts && inv.thread == we.thread &&
                        p.precedes(walker, i) && p.precedes(i, e)) {
                        blocked = true;
                        break;
                    }
                }
                if (!blocked) {
                    ptw_choice[e][w] = var();
                    options.push_back(ptw_choice[e][w]);
                }
            }
            factory.assert_true(factory.mk_exactly_one(options), &solver);
            // An access that invoked its own walk must use it.
            const EventId own = p.rptw_of(e);
            if (own != kNone) {
                const auto it = ptw_choice[e].find(own);
                TF_ASSERT(it != ptw_choice[e].end());
                factory.assert_true(it->second, &solver);
            }
        }
    }

    void
    build_address_resolution()
    {
        if (!vm_enabled) {
            return;
        }
        // One-hot pa and provenance vectors for memory events.
        for (EventId e = 0; e < n; ++e) {
            const Event& ev = p.event(e);
            if (!elt::is_memory(ev.kind)) {
                continue;
            }
            if (ev.kind == EventKind::kWpte) {
                // Constant: the mapping it installs.
                pa[e].assign(num_pas, rel::kFalseExpr);
                pa[e][ev.map_pa] = rel::kTrueExpr;
                continue;
            }
            pa[e].reserve(num_pas);
            for (int k = 0; k < num_pas; ++k) {
                pa[e].push_back(var());
            }
            factory.assert_true(factory.mk_exactly_one(pa[e]), &solver);
            prov_init[e] = var();
            std::vector<ExprId> options{prov_init[e]};
            for (EventId w = 0; w < n; ++w) {
                if (p.event(w).kind == EventKind::kWpte &&
                    p.event(w).va == ev.va) {
                    prov[e][w] = var();
                    options.push_back(prov[e][w]);
                }
            }
            factory.assert_true(factory.mk_exactly_one(options), &solver);
        }

        for (EventId e = 0; e < n; ++e) {
            const Event& ev = p.event(e);
            switch (ev.kind) {
            case EventKind::kRead:
            case EventKind::kWrite:
                for (auto& [walk, guard] : ptw_choice[e]) {
                    link_pa(guard, e, walk);
                    link_prov(guard, e, walk);
                }
                break;
            case EventKind::kRptw:
            case EventKind::kRdb: {
                // Initial mapping: VA i -> PA i.
                factory.assert_true(
                    factory.mk_implies(init_choice[e], pa[e][ev.va]), &solver);
                factory.assert_true(
                    factory.mk_implies(init_choice[e], prov_init[e]), &solver);
                for (auto& [w, guard] : rf_choice[e]) {
                    const Event& we = p.event(w);
                    if (we.kind == EventKind::kWpte) {
                        factory.assert_true(
                            factory.mk_implies(guard, pa[e][we.map_pa]),
                            &solver);
                        factory.assert_true(
                            factory.mk_implies(guard, prov[e].at(w)), &solver);
                    } else {  // Wdb: mapping propagates through
                        link_pa(guard, e, w);
                        link_prov(guard, e, w);
                    }
                }
                break;
            }
            case EventKind::kWdb:
                // A dirty-bit update preserves the mapping its immediate
                // coherence predecessor left at this PTE location (initial
                // mapping when coherence-first). Because co is a strict
                // total order per location, values always ground out in a
                // Wpte or the initial state — no cyclic dependencies can
                // arise. Constraints are built in build_coherence(), once
                // the co variables exist.
                break;
            default:
                break;
            }
        }

        // A data read may only be sourced by a same-PA write.
        for (EventId r = 0; r < n; ++r) {
            if (!elt::is_data_access(p.event(r).kind)) {
                continue;
            }
            for (auto& [w, guard] : rf_choice[r]) {
                factory.assert_true(factory.mk_implies(guard, pa_equal(r, w)),
                                    &solver);
            }
        }
    }

    void
    build_coherence()
    {
        co = RelExpr::empty(&factory, n);
        co_pa = RelExpr::empty(&factory, n);
        std::vector<EventId> writes;
        for (EventId w = 0; w < n; ++w) {
            if (elt::is_write_like(p.event(w).kind)) {
                writes.push_back(w);
            }
        }
        for (const EventId a : writes) {
            for (const EventId b : writes) {
                if (a != b) {
                    co.set(a, b, var());
                }
            }
        }
        for (const EventId a : writes) {
            for (const EventId b : writes) {
                if (a == b) {
                    continue;
                }
                const ExprId cls = same_class(a, b);
                factory.assert_true(factory.mk_implies(co.at(a, b), cls),
                                    &solver);
                if (a < b) {
                    factory.assert_true(
                        factory.mk_implies(
                            cls, factory.mk_xor(co.at(a, b), co.at(b, a))),
                        &solver);
                }
                for (const EventId c : writes) {
                    if (c != a && c != b) {
                        factory.assert_true(
                            factory.mk_implies(
                                factory.mk_and(co.at(a, b), co.at(b, c)),
                                co.at(a, c)),
                            &solver);
                    }
                }
            }
        }
        if (!vm_enabled) {
            return;
        }
        // Dirty-bit value semantics: a Wdb takes the mapping value of its
        // immediate coherence predecessor at its PTE location (the initial
        // mapping when coherence-first). co is total per location, so the
        // values always ground out in a Wpte or the initial state.
        for (EventId d = 0; d < n; ++d) {
            if (p.event(d).kind != EventKind::kWdb) {
                continue;
            }
            const int va = p.event(d).va;
            std::vector<EventId> peers;
            for (EventId w = 0; w < n; ++w) {
                if (w != d && elt::is_pte_access(p.event(w).kind) &&
                    elt::is_write_like(p.event(w).kind) &&
                    p.event(w).va == va) {
                    peers.push_back(w);
                }
            }
            ExprId is_first = rel::kTrueExpr;
            for (const EventId w : peers) {
                is_first = factory.mk_and(is_first, factory.mk_not(co.at(w, d)));
            }
            factory.assert_true(factory.mk_implies(is_first, pa[d][va]),
                                &solver);
            factory.assert_true(factory.mk_implies(is_first, prov_init[d]),
                                &solver);
            for (const EventId w : peers) {
                ExprId immediate = co.at(w, d);
                for (const EventId between : peers) {
                    if (between != w) {
                        immediate = factory.mk_and(
                            immediate,
                            factory.mk_not(factory.mk_and(
                                co.at(w, between), co.at(between, d))));
                    }
                }
                if (p.event(w).kind == EventKind::kWpte) {
                    factory.assert_true(
                        factory.mk_implies(immediate, pa[d][p.event(w).map_pa]),
                        &solver);
                    factory.assert_true(
                        factory.mk_implies(immediate, prov[d].at(w)), &solver);
                } else {
                    link_pa(immediate, d, w);
                    link_prov(immediate, d, w);
                }
            }
        }
        // co_pa: strict total order per (static) target-PA class of Wptes,
        // consistent with co where both orders apply.
        std::vector<EventId> wptes;
        for (EventId w = 0; w < n; ++w) {
            if (p.event(w).kind == EventKind::kWpte) {
                wptes.push_back(w);
            }
        }
        for (const EventId a : wptes) {
            for (const EventId b : wptes) {
                if (a == b || p.event(a).map_pa != p.event(b).map_pa) {
                    continue;
                }
                co_pa.set(a, b, var());
            }
        }
        for (const EventId a : wptes) {
            for (const EventId b : wptes) {
                if (a == b || p.event(a).map_pa != p.event(b).map_pa) {
                    continue;
                }
                if (a < b) {
                    factory.assert_true(
                        factory.mk_xor(co_pa.at(a, b), co_pa.at(b, a)),
                        &solver);
                }
                for (const EventId c : wptes) {
                    if (c != a && c != b &&
                        p.event(c).map_pa == p.event(a).map_pa) {
                        factory.assert_true(
                            factory.mk_implies(
                                factory.mk_and(co_pa.at(a, b), co_pa.at(b, c)),
                                co_pa.at(a, c)),
                            &solver);
                    }
                }
                if (p.event(a).va == p.event(b).va) {
                    factory.assert_true(
                        factory.mk_iff(co.at(a, b), co_pa.at(a, b)), &solver);
                }
            }
        }
    }

    void
    build_derived()
    {
        rf = RelExpr::empty(&factory, n);
        for (EventId r = 0; r < n; ++r) {
            for (auto& [w, guard] : rf_choice[r]) {
                rf.set(w, r, factory.mk_or(rf.at(w, r), guard));
            }
        }
        rfe = RelExpr::empty(&factory, n);
        for (EventId r = 0; r < n; ++r) {
            for (auto& [w, guard] : rf_choice[r]) {
                if (p.event(w).thread != p.event(r).thread) {
                    rfe.set(w, r, factory.mk_or(rfe.at(w, r), guard));
                }
            }
        }
        // fr(r, w') = exists w: rf(w, r) & co(w, w')  |  init(r) & class(r, w').
        fr = RelExpr::empty(&factory, n);
        for (EventId r = 0; r < n; ++r) {
            if (!elt::is_read_like(p.event(r).kind)) {
                continue;
            }
            for (EventId w2 = 0; w2 < n; ++w2) {
                if (!elt::is_write_like(p.event(w2).kind)) {
                    continue;
                }
                ExprId acc = factory.mk_and(init_choice[r], same_class(r, w2));
                for (auto& [w, guard] : rf_choice[r]) {
                    if (w != w2) {
                        acc = factory.mk_or(acc,
                                            factory.mk_and(guard, co.at(w, w2)));
                    }
                }
                fr.set(r, w2, acc);
            }
        }
        // po_loc over extended order.
        po_loc = RelExpr::empty(&factory, n);
        for (EventId a = 0; a < n; ++a) {
            for (EventId b = 0; b < n; ++b) {
                if (a != b && elt::is_memory(p.event(a).kind) &&
                    elt::is_memory(p.event(b).kind) && p.precedes(a, b)) {
                    po_loc.set(a, b, same_class(a, b));
                }
            }
        }
        // Constants: po (transitive), remap, ppo, fence, rmw.
        po_const = RelExpr::empty(&factory, n);
        for (int t = 0; t < p.num_threads(); ++t) {
            const auto& seq = p.thread(t);
            for (std::size_t i = 0; i < seq.size(); ++i) {
                for (std::size_t j = i + 1; j < seq.size(); ++j) {
                    po_const.set(seq[i], seq[j], rel::kTrueExpr);
                }
            }
        }
        remap_const = RelExpr::empty(&factory, n);
        for (EventId i = 0; i < n; ++i) {
            const Event& e = p.event(i);
            if (e.kind == EventKind::kInvlpg && e.remap_src != kNone) {
                remap_const.set(e.remap_src, i, rel::kTrueExpr);
            }
        }
        ppo_const = RelExpr::empty(&factory, n);
        fence_const = RelExpr::empty(&factory, n);
        for (EventId a = 0; a < n; ++a) {
            for (EventId b = 0; b < n; ++b) {
                if (a == b || !elt::is_memory(p.event(a).kind) ||
                    !elt::is_memory(p.event(b).kind) || !p.precedes(a, b)) {
                    continue;
                }
                if (!(elt::is_write_like(p.event(a).kind) &&
                      elt::is_read_like(p.event(b).kind))) {
                    ppo_const.set(a, b, rel::kTrueExpr);
                }
                for (EventId f = 0; f < n; ++f) {
                    if (p.event(f).kind == EventKind::kMfence &&
                        p.precedes(a, f) && p.precedes(f, b)) {
                        fence_const.set(a, b, rel::kTrueExpr);
                        break;
                    }
                }
            }
        }
        if (!vm_enabled) {
            rf_ptw_rel = RelExpr::empty(&factory, n);
            ptw_source = RelExpr::empty(&factory, n);
            rf_pa = RelExpr::empty(&factory, n);
            fr_pa = RelExpr::empty(&factory, n);
            fr_va = RelExpr::empty(&factory, n);
            return;
        }

        rf_ptw_rel = RelExpr::empty(&factory, n);
        ptw_source = RelExpr::empty(&factory, n);
        for (EventId e = 0; e < n; ++e) {
            for (auto& [walk, guard] : ptw_choice[e]) {
                rf_ptw_rel.set(walk, e,
                               factory.mk_or(rf_ptw_rel.at(walk, e), guard));
                const EventId walker = p.event(walk).parent;
                if (walker != e) {
                    ptw_source.set(walker, e,
                                   factory.mk_or(ptw_source.at(walker, e),
                                                 guard));
                }
            }
        }
        rf_pa = RelExpr::empty(&factory, n);
        fr_va = RelExpr::empty(&factory, n);
        fr_pa = RelExpr::empty(&factory, n);
        for (EventId e = 0; e < n; ++e) {
            if (!elt::is_data_access(p.event(e).kind)) {
                continue;
            }
            for (auto& [wpte, flag] : prov[e]) {
                rf_pa.set(wpte, e, flag);
            }
            // fr_va: later Wptes (in PTE-location coherence) remapping e's VA.
            for (EventId w2 = 0; w2 < n; ++w2) {
                const Event& we2 = p.event(w2);
                if (we2.kind != EventKind::kWpte || we2.va != p.event(e).va) {
                    continue;
                }
                ExprId acc = prov_init[e];
                for (auto& [wpte, flag] : prov[e]) {
                    if (wpte != w2) {
                        acc = factory.mk_or(
                            acc, factory.mk_and(flag, co.at(wpte, w2)));
                    }
                }
                fr_va.set(e, w2, acc);
            }
            // fr_pa: co_pa-successors of the provenance (initial mapping
            // precedes every alias creation for its PA).
            for (EventId w2 = 0; w2 < n; ++w2) {
                const Event& we2 = p.event(w2);
                if (we2.kind != EventKind::kWpte) {
                    continue;
                }
                ExprId acc = factory.mk_and(prov_init[e],
                                            pa[e].empty()
                                                ? rel::kFalseExpr
                                                : pa[e][we2.map_pa]);
                for (auto& [wpte, flag] : prov[e]) {
                    if (wpte != w2 &&
                        p.event(wpte).map_pa == we2.map_pa) {
                        acc = factory.mk_or(
                            acc, factory.mk_and(flag, co_pa.at(wpte, w2)));
                    }
                }
                fr_pa.set(e, w2, acc);
            }
        }
    }

    void
    build_placement_constraints()
    {
        // Everything structural is static (checked by Program::validate());
        // the dynamic placement rules were asserted inline above.
    }

    /// Circuit stating that the given axiom HOLDS.
    ExprId
    axiom_circuit(AxiomTag tag)
    {
        switch (tag) {
        case AxiomTag::kScPerLoc:
            return rel::acyclic_union(&factory, {&rf, &co, &fr, &po_loc});
        case AxiomTag::kRmwAtomicity: {
            ExprId acc = rel::kTrueExpr;
            for (const auto& [r, w] : p.rmw_pairs()) {
                for (EventId mid = 0; mid < n; ++mid) {
                    acc = factory.mk_and(
                        acc, factory.mk_not(factory.mk_and(fr.at(r, mid),
                                                           co.at(mid, w))));
                }
            }
            return acc;
        }
        case AxiomTag::kCausalityTso:
            return rel::acyclic_union(&factory,
                                      {&rfe, &co, &fr, &ppo_const, &fence_const});
        case AxiomTag::kCausalitySc: {
            // Full program order preserved: use po over memory events
            // (extended), i.e. ppo plus the write->read pairs TSO drops.
            RelExpr full = ppo_const;
            for (EventId a = 0; a < n; ++a) {
                for (EventId b = 0; b < n; ++b) {
                    if (a != b && elt::is_memory(p.event(a).kind) &&
                        elt::is_memory(p.event(b).kind) && p.precedes(a, b)) {
                        full.set(a, b, rel::kTrueExpr);
                    }
                }
            }
            return rel::acyclic_union(&factory,
                                      {&rfe, &co, &fr, &full, &fence_const});
        }
        case AxiomTag::kInvlpg:
            return rel::acyclic_union(&factory,
                                      {&fr_va, &po_const, &remap_const});
        case AxiomTag::kTlbCausality:
            return rel::acyclic_union(&factory, {&ptw_source, &rf, &co, &fr});
        }
        TF_PANIC("unknown axiom tag");
    }

};

ProgramEncoding::ProgramEncoding(Program program, const Model* model)
    : program_(std::move(program)), model_(model)
{
    TF_ASSERT(model_ != nullptr);
    TF_ASSERT(program_.validate(model_->vm_aware()).empty());
}

namespace {

/// Extracts a concrete Execution from a satisfying model of the encoding.
Execution
extract(const ProgramEncoding::Build& b, const Program& program)
{
    Execution out = Execution::empty_for(program);
    auto lit_true = [&](ExprId e) {
        return b.factory.evaluate(e, [&](sat::Var v) {
            return b.solver.model_value(v) == sat::LBool::kTrue;
        });
    };
    const int n = program.num_events();
    for (EventId r = 0; r < n; ++r) {
        for (const auto& [w, guard] : b.rf_choice[r]) {
            if (lit_true(guard)) {
                out.rf_src[r] = w;
            }
        }
        for (const auto& [walk, guard] : b.ptw_choice[r]) {
            if (lit_true(guard)) {
                out.ptw_src[r] = walk;
            }
        }
    }
    // co positions: count predecessors within each class.
    for (EventId w = 0; w < n; ++w) {
        if (!elt::is_write_like(program.event(w).kind)) {
            continue;
        }
        int predecessors = 0;
        for (EventId w2 = 0; w2 < n; ++w2) {
            if (w2 != w && elt::is_write_like(program.event(w2).kind) &&
                lit_true(b.co.at(w2, w))) {
                ++predecessors;
            }
        }
        out.co_pos[w] = predecessors;
    }
    for (EventId w = 0; w < n; ++w) {
        if (program.event(w).kind != EventKind::kWpte) {
            continue;
        }
        int predecessors = 0;
        for (EventId w2 = 0; w2 < n; ++w2) {
            if (w2 != w && program.event(w2).kind == EventKind::kWpte &&
                program.event(w2).map_pa == program.event(w).map_pa &&
                lit_true(b.co_pa.at(w2, w))) {
                ++predecessors;
            }
        }
        out.co_pa_pos[w] = predecessors;
    }
    return out;
}

/// Collects every solver variable used by the witness choices — the
/// projection set for AllSAT enumeration and blocking.
std::vector<sat::Lit>
blocking_clause(ProgramEncoding::Build& b)
{
    std::vector<sat::Lit> clause;
    auto block = [&](ExprId e) {
        // Choice expressions are single variables created via var(); compile
        // is a lookup returning the underlying literal.
        const sat::Lit l = b.factory.compile(e, &b.solver);
        const bool value = b.solver.model_literal_true(l);
        clause.push_back(value ? ~l : l);
    };
    const int n = b.n;
    for (EventId r = 0; r < n; ++r) {
        for (const auto& [w, guard] : b.rf_choice[r]) {
            (void)w;
            block(guard);
        }
        if (elt::is_read_like(b.p.event(r).kind)) {
            block(b.init_choice[r]);
        }
        for (const auto& [walk, guard] : b.ptw_choice[r]) {
            (void)walk;
            block(guard);
        }
    }
    for (EventId a = 0; a < n; ++a) {
        for (EventId c = 0; c < n; ++c) {
            if (a != c && b.co.at(a, c) != rel::kFalseExpr) {
                block(b.co.at(a, c));
            }
            if (a != c && b.co_pa.at(a, c) != rel::kFalseExpr) {
                block(b.co_pa.at(a, c));
            }
        }
    }
    return clause;
}

}  // namespace

bool
ProgramEncoding::exists_violating(const std::string& axiom_name)
{
    return find_violating(axiom_name).has_value();
}

std::optional<Execution>
ProgramEncoding::find_violating(const std::string& axiom_name)
{
    const Axiom* axiom = model_->axiom(axiom_name);
    TF_ASSERT(axiom != nullptr);
    Build b(program_, model_->vm_aware());
    b.factory.assert_true(b.factory.mk_not(b.axiom_circuit(axiom->tag)),
                          &b.solver);
    stats_.variables = b.solver.num_vars();
    stats_.circuit_nodes = static_cast<int>(b.factory.num_nodes());
    if (b.solver.solve() != sat::SolveResult::kSat) {
        return std::nullopt;
    }
    return extract(b, program_);
}

bool
ProgramEncoding::exists_permitted()
{
    Build b(program_, model_->vm_aware());
    for (const Axiom& axiom : model_->axioms()) {
        b.factory.assert_true(b.axiom_circuit(axiom.tag), &b.solver);
    }
    stats_.variables = b.solver.num_vars();
    stats_.circuit_nodes = static_cast<int>(b.factory.num_nodes());
    return b.solver.solve() == sat::SolveResult::kSat;
}

bool
ProgramEncoding::exists_execution()
{
    Build b(program_, model_->vm_aware());
    stats_.variables = b.solver.num_vars();
    stats_.circuit_nodes = static_cast<int>(b.factory.num_nodes());
    return b.solver.solve() == sat::SolveResult::kSat;
}

std::vector<Execution>
ProgramEncoding::enumerate(const std::string& violating_axiom,
                           int max_executions)
{
    Build b(program_, model_->vm_aware());
    if (!violating_axiom.empty()) {
        const Axiom* axiom = model_->axiom(violating_axiom);
        TF_ASSERT(axiom != nullptr);
        b.factory.assert_true(b.factory.mk_not(b.axiom_circuit(axiom->tag)),
                              &b.solver);
    }
    stats_.variables = b.solver.num_vars();
    stats_.circuit_nodes = static_cast<int>(b.factory.num_nodes());
    std::vector<Execution> out;
    stats_.models = 0;
    while (b.solver.solve() == sat::SolveResult::kSat) {
        out.push_back(extract(b, program_));
        ++stats_.models;
        if (max_executions > 0 &&
            static_cast<int>(out.size()) >= max_executions) {
            break;
        }
        sat::Clause clause = blocking_clause(b);
        if (clause.empty() || !b.solver.add_clause(std::move(clause))) {
            break;
        }
    }
    return out;
}

}  // namespace transform::mtm
