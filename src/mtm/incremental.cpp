#include "mtm/incremental.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "mtm/encoding_detail.h"
#include "obs/alloc.h"
#include "rel/bool_factory.h"
#include "rel/constraints.h"
#include "rel/relation.h"
#include "sat/backend.h"
#include "spec/ast.h"
#include "spec/eval.h"
#include "util/logging.h"

namespace transform::mtm {

using elt::Event;
using elt::EventId;
using elt::EventKind;
using elt::Execution;
using elt::kNone;
using elt::Program;
using rel::BoolFactory;
using rel::ExprId;
using rel::RelExpr;

namespace {

/// Events carrying a virtual address, i.e. the events that get a VA
/// selector row. Kind-determined, so membership is part of the structure
/// key even though the VA value is not.
bool
has_selector(EventKind kind)
{
    return kind != EventKind::kMfence && kind != EventKind::kInvlpgAll;
}

/// Default base-cache capacity (live base included). The skeleton
/// enumerator's late stages (rmw marking, linking variants) ping-pong
/// between a handful of neighbouring structures, so a small cache captures
/// nearly all revisits; each retained base owns a solver, so the cap also
/// bounds the session's memory.
constexpr int kDefaultBaseCacheCapacity = 8;

/// One edge of a flat extraction template (see BaseState::ext_rf).
struct TemplateEdge {
    EventId a;
    EventId b;
    sat::Lit lit;
};

/// The swappable per-structure slice of a session: one built base — its
/// solver backend, circuit factory, structure key, selector/choice rows,
/// derived relations, frozen projection templates, and the deferred
/// activation guards of candidates already served from it. The session's
/// base cache stashes whole BaseStates and swaps one back in when the
/// enumerator revisits a known signature; every RelExpr/ExprId inside
/// indexes the co-swapped factory and expr_memo keys are stable AST
/// pointers owned by the Model, so a swapped-out base stays internally
/// consistent with no pointer fixups.
struct BaseState {
    std::unique_ptr<sat::SolverBackend> backend;
    BoolFactory factory;

    std::vector<int> structure_key;  ///< empty = no base built in this slot
    std::uint64_t last_used = 0;     ///< session use-stamp (LRU eviction)

    int n = 0;
    /// s_va[e][v]: one-hot VA selector (events with has_selector only).
    std::vector<std::vector<ExprId>> s_va;
    /// Symmetric n*n memo of va_eq circuits, built lazily: a pair's
    /// circuit is created by the first base constraint that touches it
    /// (va_eq_built marks construction — all before freeze_projection, so
    /// the no-new-circuits-after-freeze discipline holds), and pairs no
    /// constraint touches never pay for their OR-of-ANDs.
    std::vector<ExprId> va_eq_tab;
    std::vector<char> va_eq_built;

    std::vector<ChoiceMap> rf_choice;
    std::vector<ExprId> init_choice;
    std::vector<ChoiceMap> ptw_choice;
    /// pa[e][k]: one-hot resolved PA. A Wpte's row doubles as its map_pa
    /// selector: the candidate pins it by assumption, and every fresh
    /// constraint that indexed by the concrete map_pa becomes a per-slot
    /// link through this row.
    std::vector<std::vector<ExprId>> pa;
    std::vector<ChoiceMap> prov;
    std::vector<ExprId> prov_init;

    RelExpr co, co_pa;
    RelExpr rf, fr, po_loc, rfe, rf_ptw_rel, ptw_source, rf_pa, fr_pa, fr_va;
    RelExpr po_const, remap_const, ppo_const, fence_const;
    RelExpr po_mem_const, rmw_const, ghost_const;

    std::vector<std::pair<const spec::Expr*, RelExpr>> expr_memo;

    /// Activation guards whose blocking clauses are live in this base.
    /// Retirement is deferred to the base's rebuild: within the base each
    /// is assumed false instead (after the pins, so the pin-prefix trail
    /// survives a candidate advance), which disables its clauses just as
    /// the unit assertion would — without the backtrack-to-root that
    /// asserting mid-session costs. Per-base, because the guards are
    /// variables of this base's solver.
    std::vector<sat::Lit> spent_acts;

    /// Flat extraction templates, rebuilt per structure by
    /// freeze_projection(): guard expressions resolved to their Tseitin
    /// literals once, so the per-model extraction loop is array walks and
    /// O(1) model reads instead of hash-memo probes per guard per model.
    std::vector<TemplateEdge> ext_rf;
    std::vector<TemplateEdge> ext_ptw;
    std::vector<TemplateEdge> ext_co;
    std::vector<EventId> ext_write_like;
};

}  // namespace

/// The session: configuration, the LIVE BaseState (inherited slice — the
/// build methods below address its members unqualified), the stash of
/// swapped-out bases, and the per-candidate machinery. The overall shape
/// deliberately mirrors ProgramEncoding::Build (encoding.cpp) constraint
/// for constraint; comments below only call out where the symbolic
/// (selector-based) translation departs from the fresh encoding. The
/// equivalence argument per constraint: every clause here either (a) is
/// identical to the fresh clause, (b) is the fresh clause with a concrete
/// VA/PA test replaced by a va_eq/pa-slot guard that the candidate's
/// pinned selectors decide by unit propagation, or (c) constrains a
/// superset choice variable that those same guards force false, making the
/// clause vacuous — so under any candidate's pins, the satisfying
/// assignments projected onto the fresh encoding's choice variables are
/// exactly the fresh encoding's models.
struct IncrementalEncoding::Impl : BaseState {
    // ------------------------------------------------------------------
    // Session configuration (set by configure()).
    // ------------------------------------------------------------------
    const Model* model = nullptr;
    std::string axiom_name;
    const Axiom* axiom = nullptr;
    unsigned needs = 0;
    bool vm = false;
    int max_vas = 0;
    int max_pas = 0;
    std::string backend_name = "cdcl";
    bool timing = false;
    /// Robustness configuration, applied (like timing) to every backend
    /// the session holds or later creates: 0 = no conflict budget; an
    /// empty interrupt = never interrupted.
    std::int64_t conflict_budget = 0;
    std::function<bool()> interrupt;
    std::function<void(std::uint64_t)> solve_observer;

    SessionStats stats;
    /// Counters of backends this session destroyed (stash shrink,
    /// configure with a different backend): folded here so
    /// lifetime_stats() never loses an epoch.
    sat::SolverStats retired_stats;

    // ------------------------------------------------------------------
    // Base cache: swapped-out bases, LRU-evicted past the capacity
    // (which counts the live base too). capacity <= 1 = no caching.
    // ------------------------------------------------------------------
    std::vector<BaseState> stash;
    int cache_capacity = kDefaultBaseCacheCapacity;
    std::uint64_t use_stamp = 0;

    std::vector<int> key_buf;

    // Build-time clause scratch (valid only while build_base runs on the
    // live slice, so session-level sharing across bases is safe).
    std::vector<sat::Lit> clause_buf;
    bool clause_sat = false;
    std::vector<ExprId> options_buf;
    std::vector<EventId> events_buf;
    std::vector<EventId> peers_buf;

    // ------------------------------------------------------------------
    // Per-candidate buffers.
    // ------------------------------------------------------------------
    std::vector<sat::Lit> assumptions;
    std::vector<sat::Lit> block_buf;
    Execution current;
    /// Per-candidate projection literals (build_block_template): the
    /// validity filtering and memo lookups run once per candidate, and
    /// blocking_clause() per model only reads polarities.
    std::vector<sat::Lit> block_tmpl;

    sat::Solver&
    native()
    {
        sat::Solver* s = backend->native();
        TF_ASSERT(s != nullptr);  // circuit encodings need a native solver
        return *s;
    }

    // Direct clause emission, as in the fresh Build (see encoding.cpp for
    // the rationale); clauses go through the backend seam.
    void
    cl_begin()
    {
        clause_buf.clear();
        clause_sat = false;
    }

    void
    cl_pos(ExprId e)
    {
        if (e == rel::kTrueExpr) {
            clause_sat = true;
        } else if (e != rel::kFalseExpr) {
            clause_buf.push_back(factory.compile(e, &native()));
        }
    }

    void
    cl_neg(ExprId e)
    {
        if (e == rel::kFalseExpr) {
            clause_sat = true;
        } else if (e != rel::kTrueExpr) {
            clause_buf.push_back(~factory.compile(e, &native()));
        }
    }

    void
    cl_end()
    {
        if (!clause_sat) {
            backend->add_clause(clause_buf.data(), clause_buf.size());
        }
    }

    void
    assert_exactly_one(const std::vector<ExprId>& options)
    {
        cl_begin();
        for (const ExprId o : options) {
            cl_pos(o);
        }
        cl_end();
        for (std::size_t i = 0; i < options.size(); ++i) {
            for (std::size_t j = i + 1; j < options.size(); ++j) {
                cl_begin();
                cl_neg(options[i]);
                cl_neg(options[j]);
                cl_end();
            }
        }
    }

    ExprId
    var()
    {
        return factory.mk_var(backend->new_var());
    }

    /// Lazy va_eq: the pair's OR-of-ANDs circuit is created by the first
    /// base constraint that asks for it (always during build_base, before
    /// freeze_projection). Pairs without two selector rows — or the
    /// diagonal — stay kFalseExpr, matching the eager table this replaces.
    ExprId
    va_eq(EventId a, EventId b)
    {
        const std::size_t idx = static_cast<std::size_t>(a) * n + b;
        if (!va_eq_built[idx]) {
            ExprId acc = rel::kFalseExpr;
            if (a != b && !s_va[a].empty() && !s_va[b].empty()) {
                acc = factory.mk_const(false);
                for (int v = 0; v < max_vas; ++v) {
                    acc = factory.mk_or(
                        acc, factory.mk_and(s_va[a][v], s_va[b][v]));
                }
            }
            const std::size_t mirror = static_cast<std::size_t>(b) * n + a;
            va_eq_tab[idx] = acc;
            va_eq_tab[mirror] = acc;
            va_eq_built[idx] = 1;
            va_eq_built[mirror] = 1;
        }
        return va_eq_tab[idx];
    }

    ExprId
    pa_equal(EventId a, EventId b)
    {
        ExprId acc = factory.mk_const(false);
        for (int k = 0; k < max_pas; ++k) {
            acc = factory.mk_or(acc, factory.mk_and(pa[a][k], pa[b][k]));
        }
        return acc;
    }

    void
    link_pa(ExprId guard, EventId a, EventId b)
    {
        for (int k = 0; k < max_pas; ++k) {
            cl_begin();
            cl_neg(guard);
            cl_neg(pa[a][k]);
            cl_pos(pa[b][k]);
            cl_end();
            cl_begin();
            cl_neg(guard);
            cl_neg(pa[b][k]);
            cl_pos(pa[a][k]);
            cl_end();
        }
    }

    void
    link_prov(ExprId guard, EventId a, EventId b)
    {
        cl_begin();
        cl_neg(guard);
        cl_neg(prov_init[a]);
        cl_pos(prov_init[b]);
        cl_end();
        cl_begin();
        cl_neg(guard);
        cl_neg(prov_init[b]);
        cl_pos(prov_init[a]);
        cl_end();
        for (const auto& [w, flag] : prov[a]) {
            const ExprId* it = prov[b].find(w);
            const ExprId other = it == nullptr ? rel::kFalseExpr : *it;
            cl_begin();
            cl_neg(guard);
            cl_neg(flag);
            cl_pos(other);
            cl_end();
        }
        for (const auto& [w, flag] : prov[b]) {
            const ExprId* it = prov[a].find(w);
            const ExprId other = it == nullptr ? rel::kFalseExpr : *it;
            cl_begin();
            cl_neg(guard);
            cl_neg(flag);
            cl_pos(other);
            cl_end();
        }
    }

    /// Symbolic same-coherence-class: where the fresh encoding folds a
    /// concrete VA comparison to a constant, the selector circuit decides
    /// it per candidate.
    ExprId
    same_class(const Program& p, EventId a, EventId b)
    {
        const Event& ea = p.event(a);
        const Event& eb = p.event(b);
        if (elt::is_data_access(ea.kind) && elt::is_data_access(eb.kind)) {
            return vm ? pa_equal(a, b) : va_eq(a, b);
        }
        if (elt::is_pte_access(ea.kind) && elt::is_pte_access(eb.kind)) {
            return va_eq(a, b);
        }
        return rel::kFalseExpr;
    }

    template <typename Row>
    void
    reset_rows(std::vector<Row>& rows)
    {
        rows.resize(n);
        for (Row& row : rows) {
            row.clear();
        }
    }

    // ------------------------------------------------------------------
    // Structure key: everything about the program except VA assignment
    // and Wpte target PAs (those are pinned per candidate).
    // ------------------------------------------------------------------
    void
    compute_key(const Program& p, std::vector<int>* key) const
    {
        key->clear();
        key->push_back(p.num_events());
        key->push_back(p.num_threads());
        for (const Event& e : p.events()) {
            key->push_back(static_cast<int>(e.kind));
            key->push_back(e.thread);
            key->push_back(e.parent);
            key->push_back(e.remap_src);
        }
        key->push_back(static_cast<int>(p.rmw_pairs().size()));
        for (const auto& [r, w] : p.rmw_pairs()) {
            key->push_back(r);
            key->push_back(w);
        }
    }

    // ------------------------------------------------------------------
    // Base build (once per structure).
    // ------------------------------------------------------------------
    /// Flushes deferred guard retirements (observability: this is where
    /// the retirement/retention counters accumulate) — called when the
    /// guards' clauses are about to die anyway at a backend reset.
    void
    retire_spent_acts()
    {
        for (const sat::Lit act : spent_acts) {
            backend->retire_activation(act);
        }
        spent_acts.clear();
    }

    void
    build_base(const Program& p)
    {
        ++stats.bases_built;
        n = p.num_events();
        retire_spent_acts();
        backend->reset();
        factory.reset();
        expr_memo.clear();
        build_selectors(p);
        build_choices(p);
        build_address_resolution(p);
        build_coherence(p);
        build_derived(p, needs);
        if (axiom != nullptr) {
            factory.assert_true(factory.mk_not(axiom_circuit(p, *axiom)),
                                &native());
        }
        freeze_projection(p);
    }

    std::unique_ptr<sat::SolverBackend>
    make_session_backend() const
    {
        std::unique_ptr<sat::SolverBackend> made =
            sat::make_backend(backend_name);
        if (made == nullptr) {
            made = sat::make_backend("cdcl");
        }
        made->set_timing(timing);
        made->set_conflict_budget(conflict_budget);
        made->set_interrupt(interrupt);
        made->set_solve_observer(solve_observer);
        return made;
    }

    /// Permanently drops a base slot, folding its backend's lifetime
    /// counters into retired_stats first (after flushing the slot's
    /// deferred retirements, so the retention counters are complete).
    void
    fold_and_drop(BaseState* slot)
    {
        if (slot->backend != nullptr) {
            for (const sat::Lit act : slot->spent_acts) {
                slot->backend->retire_activation(act);
            }
            retired_stats.merge(slot->backend->lifetime_stats());
        }
        *slot = BaseState();
    }

    /// Evicts least-recently-used stashed bases until the stash fits the
    /// capacity (minus one for the live base).
    void
    shrink_stash()
    {
        const int keep = std::max(cache_capacity - 1, 0);
        while (static_cast<int>(stash.size()) > keep) {
            std::size_t lru = 0;
            for (std::size_t i = 1; i < stash.size(); ++i) {
                if (stash[i].last_used < stash[lru].last_used) {
                    lru = i;
                }
            }
            fold_and_drop(&stash[lru]);
            stash.erase(stash.begin() + static_cast<std::ptrdiff_t>(lru));
        }
    }

    /// Makes the base for key_buf's structure live: a cache hit swaps the
    /// frozen base back in untouched (its solver, learned clauses and
    /// projection templates resume where the structure was left); a miss
    /// stashes the live base and builds into a fresh or LRU-recycled slot.
    void
    switch_structure(const Program& p)
    {
        for (BaseState& slot : stash) {
            if (slot.structure_key == key_buf) {
                std::swap(static_cast<BaseState&>(*this), slot);
                ++stats.bases_reused;
                return;
            }
        }
        if (cache_capacity > 1 && !structure_key.empty()) {
            if (static_cast<int>(stash.size()) + 1 < cache_capacity) {
                // Stash the live base in a new slot; the live slice is now
                // empty and gets a fresh backend below.
                stash.emplace_back();
                std::swap(static_cast<BaseState&>(*this), stash.back());
            } else {
                // Stash the live base into the LRU slot, recycling that
                // slot's backend (build_base resets it) for the build.
                std::size_t lru = 0;
                for (std::size_t i = 1; i < stash.size(); ++i) {
                    if (stash[i].last_used < stash[lru].last_used) {
                        lru = i;
                    }
                }
                std::swap(static_cast<BaseState&>(*this), stash[lru]);
            }
        }
        if (backend == nullptr) {
            backend = make_session_backend();
        }
        build_base(p);
        structure_key = key_buf;
    }

    /// Pre-compiles every expression extract_into() and blocking_clause()
    /// will touch, while the trail is still at the root. Two payoffs: the
    /// per-model hot paths become pure memo hits plus O(1) model lookups
    /// (no clause can be added mid-enumeration, which would backtrack the
    /// kept kSat trail), and extract_into() can read the Tseitin literal's
    /// model value instead of re-walking the circuit DAG per guard — the
    /// compiler emits the full biconditional, so the literal's value in
    /// any model equals the circuit's.
    void
    freeze_projection(const Program& p)
    {
        sat::Solver& s = native();
        ext_rf.clear();
        ext_ptw.clear();
        ext_co.clear();
        ext_write_like.clear();
        for (EventId r = 0; r < n; ++r) {
            for (const auto& [w, guard] : rf_choice[r]) {
                ext_rf.push_back({r, w, factory.compile(guard, &s)});
            }
            if (elt::is_read_like(p.event(r).kind)) {
                (void)factory.compile(init_choice[r], &s);
            }
            for (const auto& [walk, guard] : ptw_choice[r]) {
                ext_ptw.push_back({r, walk, factory.compile(guard, &s)});
            }
        }
        for (EventId a = 0; a < n; ++a) {
            if (elt::is_write_like(p.event(a).kind)) {
                ext_write_like.push_back(a);
            }
            for (EventId c = 0; c < n; ++c) {
                if (a == c) {
                    continue;
                }
                if (co.at(a, c) != rel::kFalseExpr &&
                    elt::is_write_like(p.event(a).kind) &&
                    elt::is_write_like(p.event(c).kind)) {
                    ext_co.push_back({a, c, factory.compile(co.at(a, c), &s)});
                } else if (co.at(a, c) != rel::kFalseExpr) {
                    (void)factory.compile(co.at(a, c), &s);
                }
                if (co_pa.at(a, c) != rel::kFalseExpr) {
                    (void)factory.compile(co_pa.at(a, c), &s);
                }
            }
        }
    }

    void
    build_selectors(const Program& p)
    {
        reset_rows(s_va);
        for (EventId e = 0; e < n; ++e) {
            if (!has_selector(p.event(e).kind)) {
                continue;
            }
            s_va[e].reserve(max_vas);
            for (int v = 0; v < max_vas; ++v) {
                s_va[e].push_back(var());
            }
            // At-most-one per row; the candidate's pin supplies the
            // at-least-one half. Without AMO a free row could satisfy two
            // slots and corrupt every va_eq circuit built from it.
            for (int v = 0; v < max_vas; ++v) {
                for (int u = v + 1; u < max_vas; ++u) {
                    cl_begin();
                    cl_neg(s_va[e][v]);
                    cl_neg(s_va[e][u]);
                    cl_end();
                }
            }
        }
        // va_eq circuits are NOT built here: va_eq() creates each pair's
        // circuit on first touch, and untouched pairs never build one.
        va_eq_tab.assign(static_cast<std::size_t>(n) * n, rel::kFalseExpr);
        va_eq_built.assign(static_cast<std::size_t>(n) * n, 0);
    }

    void
    build_choices(const Program& p)
    {
        reset_rows(rf_choice);
        init_choice.assign(n, rel::kFalseExpr);
        reset_rows(ptw_choice);
        reset_rows(pa);
        reset_rows(prov);
        prov_init.assign(n, rel::kFalseExpr);

        for (EventId r = 0; r < n; ++r) {
            const Event& e = p.event(r);
            if (!elt::is_read_like(e.kind)) {
                continue;
            }
            std::vector<ExprId>& options = options_buf;
            options.clear();
            init_choice[r] = var();
            options.push_back(init_choice[r]);
            for (EventId w = 0; w < n; ++w) {
                if (w == r) {
                    continue;
                }
                const Event& we = p.event(w);
                // Superset of the fresh candidate sets: the concrete
                // same-VA tests become validity clauses below.
                const bool data_pair = elt::is_data_access(e.kind) &&
                                       we.kind == EventKind::kWrite;
                const bool pte_pair = elt::is_pte_access(e.kind) &&
                                      elt::is_pte_access(we.kind) &&
                                      elt::is_write_like(we.kind);
                if (data_pair || pte_pair) {
                    const ExprId choice = var();
                    rf_choice[r].insert(w, choice);
                    options.push_back(choice);
                    // VM-mode data rf carries no VA condition in the fresh
                    // encoding either (the dynamic same-PA rule gates it).
                    if (pte_pair || (data_pair && !vm)) {
                        cl_begin();
                        cl_neg(choice);
                        cl_pos(va_eq(w, r));
                        cl_end();
                    }
                }
            }
            assert_exactly_one(options);
        }

        if (!vm) {
            return;
        }
        for (EventId e = 0; e < n; ++e) {
            if (!elt::is_data_access(p.event(e).kind)) {
                continue;
            }
            std::vector<ExprId>& options = options_buf;
            options.clear();
            for (EventId w = 0; w < n; ++w) {
                const Event& we = p.event(w);
                if (we.kind != EventKind::kRptw ||
                    we.thread != p.event(e).thread) {
                    continue;
                }
                const EventId walker = we.parent;
                if (walker != e && !p.precedes(walker, e)) {
                    continue;
                }
                // INVLPG-all evicts every entry regardless of VA, so that
                // half of the fresh "blocked" test stays structural; the
                // per-VA INVLPG half becomes a validity clause.
                bool blocked = false;
                for (EventId i = 0; i < n; ++i) {
                    if (p.event(i).kind == EventKind::kInvlpgAll &&
                        p.event(i).thread == we.thread &&
                        p.precedes(walker, i) && p.precedes(i, e)) {
                        blocked = true;
                        break;
                    }
                }
                if (blocked) {
                    continue;
                }
                const ExprId choice = var();
                ptw_choice[e].insert(w, choice);
                options.push_back(choice);
                cl_begin();
                cl_neg(choice);
                cl_pos(va_eq(w, e));
                cl_end();
                for (EventId i = 0; i < n; ++i) {
                    if (p.event(i).kind == EventKind::kInvlpg &&
                        p.event(i).thread == we.thread &&
                        p.precedes(walker, i) && p.precedes(i, e)) {
                        cl_begin();
                        cl_neg(choice);
                        cl_neg(va_eq(i, w));
                        cl_end();
                    }
                }
            }
            assert_exactly_one(options);
            const EventId own = p.rptw_of(e);
            if (own != kNone) {
                // Own walks are never structurally blocked (the walker is
                // e itself, so nothing fits between), hence always in the
                // superset.
                const ExprId* choice = ptw_choice[e].find(own);
                TF_ASSERT(choice != nullptr);
                factory.assert_true(*choice, &native());
            }
        }
    }

    void
    build_address_resolution(const Program& p)
    {
        if (!vm) {
            return;
        }
        for (EventId e = 0; e < n; ++e) {
            const Event& ev = p.event(e);
            if (!elt::is_memory(ev.kind)) {
                continue;
            }
            if (ev.kind == EventKind::kWpte) {
                // The map_pa selector row (see the pa member comment):
                // at-most-one in the base, pinned one-hot per candidate.
                pa[e].reserve(max_pas);
                for (int k = 0; k < max_pas; ++k) {
                    pa[e].push_back(var());
                }
                for (int k = 0; k < max_pas; ++k) {
                    for (int j = k + 1; j < max_pas; ++j) {
                        cl_begin();
                        cl_neg(pa[e][k]);
                        cl_neg(pa[e][j]);
                        cl_end();
                    }
                }
                continue;
            }
            pa[e].reserve(max_pas);
            for (int k = 0; k < max_pas; ++k) {
                pa[e].push_back(var());
            }
            assert_exactly_one(pa[e]);
            prov_init[e] = var();
            std::vector<ExprId>& options = options_buf;
            options.clear();
            options.push_back(prov_init[e]);
            for (EventId w = 0; w < n; ++w) {
                if (p.event(w).kind == EventKind::kWpte) {
                    const ExprId flag = var();
                    prov[e].insert(w, flag);
                    options.push_back(flag);
                    cl_begin();
                    cl_neg(flag);
                    cl_pos(va_eq(w, e));
                    cl_end();
                }
            }
            assert_exactly_one(options);
        }

        for (EventId e = 0; e < n; ++e) {
            const Event& ev = p.event(e);
            switch (ev.kind) {
            case EventKind::kRead:
            case EventKind::kWrite:
                for (const auto& [walk, guard] : ptw_choice[e]) {
                    link_pa(guard, e, walk);
                    link_prov(guard, e, walk);
                }
                break;
            case EventKind::kRptw:
            case EventKind::kRdb: {
                // Initial mapping VA v -> PA v, per selector slot.
                for (int v = 0; v < max_vas; ++v) {
                    cl_begin();
                    cl_neg(init_choice[e]);
                    cl_neg(s_va[e][v]);
                    cl_pos(pa[e][v]);
                    cl_end();
                }
                cl_begin();
                cl_neg(init_choice[e]);
                cl_pos(prov_init[e]);
                cl_end();
                for (const auto& [w, guard] : rf_choice[e]) {
                    if (p.event(w).kind == EventKind::kWpte) {
                        for (int k = 0; k < max_pas; ++k) {
                            cl_begin();
                            cl_neg(guard);
                            cl_neg(pa[w][k]);
                            cl_pos(pa[e][k]);
                            cl_end();
                        }
                        cl_begin();
                        cl_neg(guard);
                        cl_pos(prov[e].at(w));
                        cl_end();
                    } else {
                        link_pa(guard, e, w);
                        link_prov(guard, e, w);
                    }
                }
                break;
            }
            default:
                break;
            }
        }

        for (EventId r = 0; r < n; ++r) {
            if (!elt::is_data_access(p.event(r).kind)) {
                continue;
            }
            for (const auto& [w, guard] : rf_choice[r]) {
                for (int k = 0; k < max_pas; ++k) {
                    cl_begin();
                    cl_neg(guard);
                    cl_neg(pa[r][k]);
                    cl_pos(pa[w][k]);
                    cl_end();
                }
            }
        }
    }

    void
    build_coherence(const Program& p)
    {
        co.reset_empty(&factory, n);
        co_pa.reset_empty(&factory, n);
        std::vector<EventId>& writes = events_buf;
        writes.clear();
        for (EventId w = 0; w < n; ++w) {
            if (elt::is_write_like(p.event(w).kind)) {
                writes.push_back(w);
            }
        }
        for (const EventId a : writes) {
            for (const EventId b : writes) {
                if (a != b) {
                    co.set(a, b, var());
                }
            }
        }
        for (const EventId a : writes) {
            for (const EventId b : writes) {
                if (a == b) {
                    continue;
                }
                const bool dynamic_class =
                    vm && elt::is_data_access(p.event(a).kind) &&
                    elt::is_data_access(p.event(b).kind);
                if (dynamic_class) {
                    for (int k = 0; k < max_pas; ++k) {
                        cl_begin();
                        cl_neg(co.at(a, b));
                        cl_neg(pa[a][k]);
                        cl_pos(pa[b][k]);
                        cl_end();
                    }
                } else {
                    cl_begin();
                    cl_neg(co.at(a, b));
                    cl_pos(same_class(p, a, b));
                    cl_end();
                }
                if (a < b) {
                    cl_begin();
                    cl_neg(co.at(a, b));
                    cl_neg(co.at(b, a));
                    cl_end();
                    if (dynamic_class) {
                        for (int k = 0; k < max_pas; ++k) {
                            cl_begin();
                            cl_neg(pa[a][k]);
                            cl_neg(pa[b][k]);
                            cl_pos(co.at(a, b));
                            cl_pos(co.at(b, a));
                            cl_end();
                        }
                    } else {
                        cl_begin();
                        cl_neg(same_class(p, a, b));
                        cl_pos(co.at(a, b));
                        cl_pos(co.at(b, a));
                        cl_end();
                    }
                }
                for (const EventId c : writes) {
                    if (c != a && c != b) {
                        cl_begin();
                        cl_neg(co.at(a, b));
                        cl_neg(co.at(b, c));
                        cl_pos(co.at(a, c));
                        cl_end();
                    }
                }
            }
        }
        if (!vm) {
            return;
        }
        for (EventId d = 0; d < n; ++d) {
            if (p.event(d).kind != EventKind::kWdb) {
                continue;
            }
            // Peer superset: every PTE write, any VA — different-VA peers
            // have co(w, d) forced false (pte-pte coherence requires
            // va_eq), which makes each clause below collapse to its fresh
            // counterpart.
            std::vector<EventId>& peers = peers_buf;
            peers.clear();
            for (EventId w = 0; w < n; ++w) {
                if (w != d && elt::is_pte_access(p.event(w).kind) &&
                    elt::is_write_like(p.event(w).kind)) {
                    peers.push_back(w);
                }
            }
            for (int v = 0; v < max_vas; ++v) {
                cl_begin();
                for (const EventId w : peers) {
                    cl_pos(co.at(w, d));
                }
                cl_neg(s_va[d][v]);
                cl_pos(pa[d][v]);
                cl_end();
            }
            cl_begin();
            for (const EventId w : peers) {
                cl_pos(co.at(w, d));
            }
            cl_pos(prov_init[d]);
            cl_end();
            for (const EventId w : peers) {
                ExprId immediate = co.at(w, d);
                for (const EventId between : peers) {
                    if (between != w) {
                        immediate = factory.mk_and(
                            immediate,
                            factory.mk_not(factory.mk_and(
                                co.at(w, between), co.at(between, d))));
                    }
                }
                if (p.event(w).kind == EventKind::kWpte) {
                    for (int k = 0; k < max_pas; ++k) {
                        cl_begin();
                        cl_neg(immediate);
                        cl_neg(pa[w][k]);
                        cl_pos(pa[d][k]);
                        cl_end();
                    }
                    cl_begin();
                    cl_neg(immediate);
                    cl_pos(prov[d].at(w));
                    cl_end();
                } else {
                    link_pa(immediate, d, w);
                    link_prov(immediate, d, w);
                }
            }
        }
        // co_pa over ALL Wpte pairs (the fresh encoding only creates
        // same-target-PA pairs): the per-slot class-forcing clause drives
        // cross-class pairs false under any candidate's pins, and the
        // totality clause only fires within a pinned class.
        std::vector<EventId>& wptes = events_buf;
        wptes.clear();
        for (EventId w = 0; w < n; ++w) {
            if (p.event(w).kind == EventKind::kWpte) {
                wptes.push_back(w);
            }
        }
        for (const EventId a : wptes) {
            for (const EventId b : wptes) {
                if (a != b) {
                    co_pa.set(a, b, var());
                }
            }
        }
        for (const EventId a : wptes) {
            for (const EventId b : wptes) {
                if (a == b) {
                    continue;
                }
                for (int k = 0; k < max_pas; ++k) {
                    cl_begin();
                    cl_neg(co_pa.at(a, b));
                    cl_neg(pa[a][k]);
                    cl_pos(pa[b][k]);
                    cl_end();
                }
                if (a < b) {
                    cl_begin();
                    cl_neg(co_pa.at(a, b));
                    cl_neg(co_pa.at(b, a));
                    cl_end();
                    for (int k = 0; k < max_pas; ++k) {
                        cl_begin();
                        cl_neg(pa[a][k]);
                        cl_neg(pa[b][k]);
                        cl_pos(co_pa.at(a, b));
                        cl_pos(co_pa.at(b, a));
                        cl_end();
                    }
                }
                for (const EventId c : wptes) {
                    if (c != a && c != b) {
                        cl_begin();
                        cl_neg(co_pa.at(a, b));
                        cl_neg(co_pa.at(b, c));
                        cl_pos(co_pa.at(a, c));
                        cl_end();
                    }
                }
                // co / co_pa agreement where both orders apply, i.e. same
                // VA (co compares the pair) and same target PA (co_pa
                // classes the pair).
                const ExprId both =
                    factory.mk_and(va_eq(a, b), pa_equal(a, b));
                cl_begin();
                cl_neg(both);
                cl_neg(co.at(a, b));
                cl_pos(co_pa.at(a, b));
                cl_end();
                cl_begin();
                cl_neg(both);
                cl_pos(co.at(a, b));
                cl_neg(co_pa.at(a, b));
                cl_end();
            }
        }
    }

    void
    build_derived(const Program& p, unsigned need_bits)
    {
        if (need_bits & kNeedRf) {
            rf.reset_empty(&factory, n);
            for (EventId r = 0; r < n; ++r) {
                for (const auto& [w, guard] : rf_choice[r]) {
                    rf.set(w, r, factory.mk_or(rf.at(w, r), guard));
                }
            }
        }
        if (need_bits & kNeedRfe) {
            rfe.reset_empty(&factory, n);
            for (EventId r = 0; r < n; ++r) {
                for (const auto& [w, guard] : rf_choice[r]) {
                    if (p.event(w).thread != p.event(r).thread) {
                        rfe.set(w, r, factory.mk_or(rfe.at(w, r), guard));
                    }
                }
            }
        }
        if (need_bits & kNeedFr) {
            fr.reset_empty(&factory, n);
            for (EventId r = 0; r < n; ++r) {
                if (!elt::is_read_like(p.event(r).kind)) {
                    continue;
                }
                for (EventId w2 = 0; w2 < n; ++w2) {
                    if (!elt::is_write_like(p.event(w2).kind)) {
                        continue;
                    }
                    ExprId acc = factory.mk_and(init_choice[r],
                                                same_class(p, r, w2));
                    for (const auto& [w, guard] : rf_choice[r]) {
                        if (w != w2) {
                            acc = factory.mk_or(
                                acc, factory.mk_and(guard, co.at(w, w2)));
                        }
                    }
                    fr.set(r, w2, acc);
                }
            }
        }
        if (need_bits & kNeedPoLoc) {
            po_loc.reset_empty(&factory, n);
            for (EventId a = 0; a < n; ++a) {
                for (EventId b = 0; b < n; ++b) {
                    if (a != b && elt::is_memory(p.event(a).kind) &&
                        elt::is_memory(p.event(b).kind) && p.precedes(a, b)) {
                        po_loc.set(a, b, same_class(p, a, b));
                    }
                }
            }
        }
        if (need_bits & kNeedPoConst) {
            po_const.reset_empty(&factory, n);
            for (int t = 0; t < p.num_threads(); ++t) {
                const auto& seq = p.thread(t);
                for (std::size_t i = 0; i < seq.size(); ++i) {
                    for (std::size_t j = i + 1; j < seq.size(); ++j) {
                        po_const.set(seq[i], seq[j], rel::kTrueExpr);
                    }
                }
            }
        }
        if (need_bits & kNeedPoMemConst) {
            po_mem_const.reset_empty(&factory, n);
            for (EventId a = 0; a < n; ++a) {
                for (EventId b = 0; b < n; ++b) {
                    if (a != b && elt::is_memory(p.event(a).kind) &&
                        elt::is_memory(p.event(b).kind) && p.precedes(a, b)) {
                        po_mem_const.set(a, b, rel::kTrueExpr);
                    }
                }
            }
        }
        if (need_bits & kNeedRemapConst) {
            remap_const.reset_empty(&factory, n);
            for (EventId i = 0; i < n; ++i) {
                const Event& e = p.event(i);
                if (e.kind == EventKind::kInvlpg && e.remap_src != kNone) {
                    remap_const.set(e.remap_src, i, rel::kTrueExpr);
                }
            }
        }
        if (need_bits & kNeedRmwConst) {
            rmw_const.reset_empty(&factory, n);
            for (const auto& [r, w] : p.rmw_pairs()) {
                rmw_const.set(r, w, rel::kTrueExpr);
            }
        }
        if (need_bits & kNeedGhostConst) {
            ghost_const.reset_empty(&factory, n);
            for (EventId i = 0; i < n; ++i) {
                if (elt::is_ghost(p.event(i).kind)) {
                    ghost_const.set(p.event(i).parent, i, rel::kTrueExpr);
                }
            }
        }
        if (need_bits & kNeedPpoFenceConst) {
            ppo_const.reset_empty(&factory, n);
            fence_const.reset_empty(&factory, n);
            for (EventId a = 0; a < n; ++a) {
                for (EventId b = 0; b < n; ++b) {
                    if (a == b || !elt::is_memory(p.event(a).kind) ||
                        !elt::is_memory(p.event(b).kind) ||
                        !p.precedes(a, b)) {
                        continue;
                    }
                    if (!(elt::is_write_like(p.event(a).kind) &&
                          elt::is_read_like(p.event(b).kind))) {
                        ppo_const.set(a, b, rel::kTrueExpr);
                    }
                    for (EventId f = 0; f < n; ++f) {
                        if (p.event(f).kind == EventKind::kMfence &&
                            p.precedes(a, f) && p.precedes(f, b)) {
                            fence_const.set(a, b, rel::kTrueExpr);
                            break;
                        }
                    }
                }
            }
        }
        if (!vm) {
            if (need_bits & (kNeedRfPtw | kNeedPtwSource)) {
                rf_ptw_rel.reset_empty(&factory, n);
                ptw_source.reset_empty(&factory, n);
            }
            if (need_bits & kNeedRfPa) {
                rf_pa.reset_empty(&factory, n);
            }
            if (need_bits & kNeedFrVa) {
                fr_va.reset_empty(&factory, n);
            }
            if (need_bits & kNeedFrPa) {
                fr_pa.reset_empty(&factory, n);
            }
            return;
        }

        if (need_bits & (kNeedRfPtw | kNeedPtwSource)) {
            rf_ptw_rel.reset_empty(&factory, n);
            ptw_source.reset_empty(&factory, n);
            for (EventId e = 0; e < n; ++e) {
                for (const auto& [walk, guard] : ptw_choice[e]) {
                    rf_ptw_rel.set(
                        walk, e,
                        factory.mk_or(rf_ptw_rel.at(walk, e), guard));
                    const EventId walker = p.event(walk).parent;
                    if (walker != e) {
                        ptw_source.set(
                            walker, e,
                            factory.mk_or(ptw_source.at(walker, e), guard));
                    }
                }
            }
        }
        if (need_bits & kNeedRfPa) {
            rf_pa.reset_empty(&factory, n);
            for (EventId e = 0; e < n; ++e) {
                if (!elt::is_data_access(p.event(e).kind)) {
                    continue;
                }
                for (const auto& [wpte, flag] : prov[e]) {
                    rf_pa.set(wpte, e, flag);
                }
            }
        }
        if (need_bits & kNeedFrVa) {
            fr_va.reset_empty(&factory, n);
            for (EventId e = 0; e < n; ++e) {
                if (!elt::is_data_access(p.event(e).kind)) {
                    continue;
                }
                for (EventId w2 = 0; w2 < n; ++w2) {
                    if (p.event(w2).kind != EventKind::kWpte) {
                        continue;
                    }
                    // The fresh encoding only creates entries for Wptes
                    // remapping e's VA; here the va_eq conjunct zeroes the
                    // entry for every other candidate.
                    ExprId acc = prov_init[e];
                    for (const auto& [wpte, flag] : prov[e]) {
                        if (wpte != w2) {
                            acc = factory.mk_or(
                                acc, factory.mk_and(flag, co.at(wpte, w2)));
                        }
                    }
                    fr_va.set(e, w2, factory.mk_and(va_eq(e, w2), acc));
                }
            }
        }
        if (need_bits & kNeedFrPa) {
            fr_pa.reset_empty(&factory, n);
            for (EventId e = 0; e < n; ++e) {
                if (!elt::is_data_access(p.event(e).kind)) {
                    continue;
                }
                for (EventId w2 = 0; w2 < n; ++w2) {
                    if (p.event(w2).kind != EventKind::kWpte) {
                        continue;
                    }
                    ExprId acc = factory.mk_and(prov_init[e],
                                                pa_equal(e, w2));
                    for (const auto& [wpte, flag] : prov[e]) {
                        if (wpte != w2) {
                            // No same-target-PA filter needed: co_pa is
                            // forced false across classes.
                            acc = factory.mk_or(
                                acc,
                                factory.mk_and(flag, co_pa.at(wpte, w2)));
                        }
                    }
                    fr_pa.set(e, w2, acc);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // `.mtm` expression lowering and axiom circuits — mirrors the fresh
    // Build, resolving base relations against this Impl's members.
    // ------------------------------------------------------------------
    const RelExpr&
    base_circuit(spec::BaseRel base)
    {
        switch (base) {
        case spec::BaseRel::kPo: return po_const;
        case spec::BaseRel::kPoLoc: return po_loc;
        case spec::BaseRel::kPoMem: return po_mem_const;
        case spec::BaseRel::kRf: return rf;
        case spec::BaseRel::kRfe: return rfe;
        case spec::BaseRel::kCo: return co;
        case spec::BaseRel::kFr: return fr;
        case spec::BaseRel::kPpo: return ppo_const;
        case spec::BaseRel::kFence: return fence_const;
        case spec::BaseRel::kRmw: return rmw_const;
        case spec::BaseRel::kGhost: return ghost_const;
        case spec::BaseRel::kRfPtw: return rf_ptw_rel;
        case spec::BaseRel::kRfPa: return rf_pa;
        case spec::BaseRel::kCoPa: return co_pa;
        case spec::BaseRel::kFrPa: return fr_pa;
        case spec::BaseRel::kFrVa: return fr_va;
        case spec::BaseRel::kRemap: return remap_const;
        case spec::BaseRel::kPtwSource: return ptw_source;
        }
        TF_PANIC("unknown base relation");
    }

    RelExpr
    set_identity(const Program& p, spec::EventSet set)
    {
        RelExpr id = RelExpr::empty(&factory, n);
        for (EventId a = 0; a < n; ++a) {
            if (spec::event_in_set(set, p.event(a).kind)) {
                id.set(a, a, rel::kTrueExpr);
            }
        }
        return id;
    }

    RelExpr
    compile_expr(const Program& p, const spec::Expr& e)
    {
        for (const auto& [node, circuit] : expr_memo) {
            if (node == &e) {
                return circuit;
            }
        }
        RelExpr result;
        switch (e.op) {
        case spec::ExprOp::kBase:
            result = base_circuit(e.base);
            break;
        case spec::ExprOp::kEmpty:
            result = RelExpr::empty(&factory, n);
            break;
        case spec::ExprOp::kIdSet:
            result = set_identity(p, e.set);
            break;
        case spec::ExprOp::kUnion:
            result = compile_expr(p, *e.lhs)
                         .rel_union(&factory, compile_expr(p, *e.rhs));
            break;
        case spec::ExprOp::kIntersect:
            result = compile_expr(p, *e.lhs)
                         .rel_intersect(&factory, compile_expr(p, *e.rhs));
            break;
        case spec::ExprOp::kMinus:
            result = compile_expr(p, *e.lhs)
                         .rel_minus(&factory, compile_expr(p, *e.rhs));
            break;
        case spec::ExprOp::kJoin:
            result = compile_expr(p, *e.lhs)
                         .join(&factory, compile_expr(p, *e.rhs));
            break;
        case spec::ExprOp::kTranspose:
            result = compile_expr(p, *e.lhs).transpose(&factory);
            break;
        case spec::ExprOp::kClosure:
            result = compile_expr(p, *e.lhs).closure(&factory);
            break;
        case spec::ExprOp::kReflexiveClosure:
            result = compile_expr(p, *e.lhs).closure(&factory).rel_union(
                &factory, RelExpr::identity(&factory, n));
            break;
        case spec::ExprOp::kLetRef:
            result = compile_expr(p, *e.lhs);
            break;
        }
        expr_memo.emplace_back(&e, result);
        return result;
    }

    ExprId
    axiom_circuit(const Program& p, const Axiom& ax)
    {
        if (ax.tag == AxiomTag::kExpr) {
            TF_ASSERT(ax.def != nullptr && ax.def->expr != nullptr);
            const RelExpr r = compile_expr(p, *ax.def->expr);
            switch (ax.def->form) {
            case spec::AxiomForm::kAcyclic:
                return r.acyclic(&factory);
            case spec::AxiomForm::kIrreflexive:
                return r.irreflexive(&factory);
            case spec::AxiomForm::kEmpty:
                return r.is_empty(&factory);
            }
            TF_PANIC("unknown axiom form");
        }
        switch (ax.tag) {
        case AxiomTag::kScPerLoc:
            return rel::acyclic_union(&factory, {&rf, &co, &fr, &po_loc});
        case AxiomTag::kRmwAtomicity: {
            ExprId acc = rel::kTrueExpr;
            for (const auto& [r, w] : p.rmw_pairs()) {
                for (EventId mid = 0; mid < n; ++mid) {
                    acc = factory.mk_and(
                        acc, factory.mk_not(factory.mk_and(
                                 fr.at(r, mid), co.at(mid, w))));
                }
            }
            return acc;
        }
        case AxiomTag::kCausalityTso:
            return rel::acyclic_union(
                &factory, {&rfe, &co, &fr, &ppo_const, &fence_const});
        case AxiomTag::kCausalitySc: {
            RelExpr full = ppo_const;
            for (EventId a = 0; a < n; ++a) {
                for (EventId b = 0; b < n; ++b) {
                    if (a != b && elt::is_memory(p.event(a).kind) &&
                        elt::is_memory(p.event(b).kind) && p.precedes(a, b)) {
                        full.set(a, b, rel::kTrueExpr);
                    }
                }
            }
            return rel::acyclic_union(&factory,
                                      {&rfe, &co, &fr, &full, &fence_const});
        }
        case AxiomTag::kInvlpg:
            return rel::acyclic_union(&factory,
                                      {&fr_va, &po_const, &remap_const});
        case AxiomTag::kTlbCausality:
            return rel::acyclic_union(&factory,
                                      {&ptw_source, &rf, &co, &fr});
        case AxiomTag::kExpr:
            break;  // handled above
        }
        TF_PANIC("unknown axiom tag");
    }

    // ------------------------------------------------------------------
    // Per-candidate machinery.
    // ------------------------------------------------------------------

    /// The fresh encoding's membership test for a superset rf pair.
    bool
    rf_valid(const Program& p, EventId r, EventId w) const
    {
        const Event& e = p.event(r);
        const Event& we = p.event(w);
        const bool data_pair = elt::is_data_access(e.kind) &&
                               we.kind == EventKind::kWrite &&
                               (vm || we.va == e.va);
        const bool pte_pair = elt::is_pte_access(e.kind) &&
                              elt::is_pte_access(we.kind) &&
                              elt::is_write_like(we.kind) && we.va == e.va;
        return data_pair || pte_pair;
    }

    /// The fresh encoding's membership test for a superset ptw pair
    /// (thread/walker-order/INVLPG-all screening already happened at
    /// superset construction).
    bool
    ptw_valid(const Program& p, EventId e, EventId walk) const
    {
        const Event& we = p.event(walk);
        if (we.va != p.event(e).va) {
            return false;
        }
        const EventId walker = we.parent;
        for (EventId i = 0; i < n; ++i) {
            const Event& inv = p.event(i);
            const bool evicts =
                (inv.kind == EventKind::kInvlpg && inv.va == we.va) ||
                inv.kind == EventKind::kInvlpgAll;
            if (evicts && inv.thread == we.thread && p.precedes(walker, i) &&
                p.precedes(i, e)) {
                return false;
            }
        }
        return true;
    }

    /// Pins the candidate: one positive selector assumption per VA slot
    /// and per Wpte target-PA slot, in event order. Everything else the
    /// fresh encoding would specialize on follows by unit propagation.
    void
    build_assumptions(const Program& p)
    {
        assumptions.clear();
        for (EventId e = 0; e < n; ++e) {
            const Event& ev = p.event(e);
            if (!has_selector(ev.kind)) {
                continue;
            }
            TF_ASSERT(ev.va >= 0 && ev.va < max_vas);
            assumptions.push_back(factory.compile(s_va[e][ev.va], &native()));
        }
        if (!vm) {
            return;
        }
        for (EventId e = 0; e < n; ++e) {
            const Event& ev = p.event(e);
            if (ev.kind != EventKind::kWpte) {
                continue;
            }
            TF_ASSERT(ev.map_pa >= 0 && ev.map_pa < max_pas);
            assumptions.push_back(
                factory.compile(pa[e][ev.map_pa], &native()));
        }
    }

    /// Resolves the candidate's *valid* projection variables — the same
    /// variable set the fresh encoding would block on, so the enumerated
    /// model count matches it exactly — to their literals, once per
    /// candidate (validity is pin-dependent, so this cannot live in
    /// freeze_projection).
    void
    build_block_template(const Program& p)
    {
        block_tmpl.clear();
        sat::Solver& s = native();
        auto block = [&](ExprId e) {
            block_tmpl.push_back(factory.compile(e, &s));
        };
        for (EventId r = 0; r < n; ++r) {
            for (const auto& [w, guard] : rf_choice[r]) {
                if (rf_valid(p, r, w)) {
                    block(guard);
                }
            }
            if (elt::is_read_like(p.event(r).kind)) {
                block(init_choice[r]);
            }
            for (const auto& [walk, guard] : ptw_choice[r]) {
                if (ptw_valid(p, r, walk)) {
                    block(guard);
                }
            }
        }
        for (EventId a = 0; a < n; ++a) {
            for (EventId c = 0; c < n; ++c) {
                if (a == c) {
                    continue;
                }
                if (co.at(a, c) != rel::kFalseExpr) {
                    block(co.at(a, c));
                }
                if (co_pa.at(a, c) != rel::kFalseExpr &&
                    p.event(a).map_pa == p.event(c).map_pa) {
                    block(co_pa.at(a, c));
                }
            }
        }
    }

    /// Projection clause for the current model: the template's literals,
    /// each inverted where the model satisfies it.
    void
    blocking_clause(std::vector<sat::Lit>* clause)
    {
        clause->clear();
        sat::Solver& s = native();
        for (const sat::Lit l : block_tmpl) {
            clause->push_back(s.model_literal_true(l) ? ~l : l);
        }
    }

    void
    extract_into(const Program& p, Execution* out)
    {
        out->rf_src.assign(n, kNone);
        out->co_pos.assign(n, kNone);
        out->ptw_src.assign(n, kNone);
        out->co_pa_pos.assign(n, kNone);
        sat::Solver& s = native();
        // The freeze_projection() templates resolve every guard to its
        // Tseitin literal (the compiler emits the full biconditional, so
        // the literal's model value is the circuit's) — the per-model loop
        // is flat array walks and O(1) model reads, no DAG re-walk and no
        // memo probe per guard.
        for (const TemplateEdge& e : ext_rf) {
            if (s.model_literal_true(e.lit)) {
                out->rf_src[e.a] = e.b;
            }
        }
        for (const TemplateEdge& e : ext_ptw) {
            if (s.model_literal_true(e.lit)) {
                out->ptw_src[e.a] = e.b;
            }
        }
        for (const EventId w : ext_write_like) {
            out->co_pos[w] = 0;
        }
        for (const TemplateEdge& e : ext_co) {
            if (s.model_literal_true(e.lit)) {
                ++out->co_pos[e.b];
            }
        }
        // co_pa pairs are map_pa-gated (pin-dependent) and Wpte events are
        // rare, so this stays a direct loop over memoized literals.
        auto lit_true = [&](ExprId ex) {
            if (ex == rel::kFalseExpr) {
                return false;
            }
            return s.model_literal_true(factory.compile(ex, &s));
        };
        for (EventId w = 0; w < n; ++w) {
            if (p.event(w).kind != EventKind::kWpte) {
                continue;
            }
            int predecessors = 0;
            for (EventId w2 = 0; w2 < n; ++w2) {
                if (w2 != w && p.event(w2).kind == EventKind::kWpte &&
                    p.event(w2).map_pa == p.event(w).map_pa &&
                    lit_true(co_pa.at(w2, w))) {
                    ++predecessors;
                }
            }
            out->co_pa_pos[w] = predecessors;
        }
    }
};

IncrementalEncoding::IncrementalEncoding() : impl_(std::make_unique<Impl>())
{
    // A default backend from construction keeps backend() total — callers
    // read stats or toggle timing on sessions that never get configured
    // (e.g. a worker scratch under the enumerative backend).
    impl_->backend = sat::make_backend("cdcl");
}

IncrementalEncoding::~IncrementalEncoding() = default;

IncrementalEncoding::IncrementalEncoding(IncrementalEncoding&&) noexcept =
    default;

IncrementalEncoding&
IncrementalEncoding::operator=(IncrementalEncoding&&) noexcept = default;

void
IncrementalEncoding::configure(const Model* model, std::string axiom_name,
                               int max_vas, int max_pas,
                               std::string_view backend_name)
{
    TF_ASSERT(model != nullptr);
    Impl& im = *impl_;
    im.model = model;
    im.axiom_name = std::move(axiom_name);
    im.axiom = nullptr;
    if (!im.axiom_name.empty()) {
        im.axiom = model->axiom(im.axiom_name);
        TF_ASSERT(im.axiom != nullptr);
    }
    im.needs = im.axiom == nullptr ? 0u : needs_for(*im.axiom);
    im.vm = model->vm_aware();
    im.max_vas = std::max(max_vas, 1);
    im.max_pas = std::max(max_pas, 1);
    if (im.backend != nullptr) {
        im.retire_spent_acts();  // flush counters before any backend swap
    }
    im.backend_name = std::string(backend_name);
    if (im.backend == nullptr || im.backend->name() != backend_name) {
        if (im.backend != nullptr) {
            im.retired_stats.merge(im.backend->lifetime_stats());
        }
        im.backend = im.make_session_backend();
    }
    im.structure_key.clear();  // drop any live base
    // Stale cached bases encode the previous model/axiom/bounds; drop them
    // (folding their counters) rather than risking a key collision.
    for (BaseState& slot : im.stash) {
        im.fold_and_drop(&slot);
    }
    im.stash.clear();
}

sat::SolverBackend&
IncrementalEncoding::backend()
{
    TF_ASSERT(impl_->backend != nullptr);  // configure() first
    return *impl_->backend;
}

const sat::SolverBackend&
IncrementalEncoding::backend() const
{
    TF_ASSERT(impl_->backend != nullptr);
    return *impl_->backend;
}

void
IncrementalEncoding::set_timing(bool enabled)
{
    Impl& im = *impl_;
    im.timing = enabled;
    if (im.backend != nullptr) {
        im.backend->set_timing(enabled);
    }
    for (BaseState& slot : im.stash) {
        if (slot.backend != nullptr) {
            slot.backend->set_timing(enabled);
        }
    }
}

void
IncrementalEncoding::set_conflict_budget(std::int64_t budget)
{
    Impl& im = *impl_;
    im.conflict_budget = budget;
    if (im.backend != nullptr) {
        im.backend->set_conflict_budget(budget);
    }
    for (BaseState& slot : im.stash) {
        if (slot.backend != nullptr) {
            slot.backend->set_conflict_budget(budget);
        }
    }
}

void
IncrementalEncoding::set_interrupt(std::function<bool()> poll)
{
    Impl& im = *impl_;
    im.interrupt = std::move(poll);
    if (im.backend != nullptr) {
        im.backend->set_interrupt(im.interrupt);
    }
    for (BaseState& slot : im.stash) {
        if (slot.backend != nullptr) {
            slot.backend->set_interrupt(im.interrupt);
        }
    }
}

void
IncrementalEncoding::set_solve_observer(
    std::function<void(std::uint64_t)> observer)
{
    Impl& im = *impl_;
    im.solve_observer = std::move(observer);
    if (im.backend != nullptr) {
        im.backend->set_solve_observer(im.solve_observer);
    }
    for (BaseState& slot : im.stash) {
        if (slot.backend != nullptr) {
            slot.backend->set_solve_observer(im.solve_observer);
        }
    }
}

sat::SolverStats
IncrementalEncoding::lifetime_stats() const
{
    const Impl& im = *impl_;
    sat::SolverStats out = im.retired_stats;
    if (im.backend != nullptr) {
        out.merge(im.backend->lifetime_stats());
    }
    for (const BaseState& slot : im.stash) {
        if (slot.backend != nullptr) {
            out.merge(slot.backend->lifetime_stats());
        }
    }
    out.bases_built += im.stats.bases_built;
    out.bases_reused += im.stats.bases_reused;
    return out;
}

void
IncrementalEncoding::set_base_cache_capacity(int capacity)
{
    impl_->cache_capacity = std::max(capacity, 0);
    impl_->shrink_stash();
}

const IncrementalEncoding::SessionStats&
IncrementalEncoding::session_stats() const
{
    return impl_->stats;
}

bool
IncrementalEncoding::enumerate(const elt::Program& program,
                               const ExecutionVisitor& visit)
{
    Impl& im = *impl_;
    TF_ASSERT(im.model != nullptr);  // configure() first
    ++im.stats.candidates;

    im.compute_key(program, &im.key_buf);
    if (im.key_buf != im.structure_key) {
        im.switch_structure(program);
    }
    im.last_used = ++im.use_stamp;
    im.build_assumptions(program);

    im.current.program = program;
    // Disable every previous candidate's blocking clauses by assuming its
    // guard false. Placed after the pins: two candidates of one structure
    // always differ in some pin, so the planted-trail prefix the solver
    // reuses between them is bounded by the pins anyway, and the guard
    // levels re-establish for free (a false guard propagates nothing —
    // no stored clause contains it positively).
    for (const sat::Lit spent : im.spent_acts) {
        im.assumptions.push_back(~spent);
    }
    // Per-candidate activation guard, assumed LAST so it sits on the
    // deepest assumption level: blocking clauses carry ~act, and the
    // assumption-establishment machinery keeps act pinned true across
    // every backjump of the continued search.
    const sat::Lit act(im.backend->new_var(), false);
    im.assumptions.push_back(act);
    bool act_used = false;
    bool completed = true;
    bool have_template = false;
    sat::SolveResult verdict = im.backend->solve(im.assumptions);
    while (verdict == sat::SolveResult::kSat) {
        im.extract_into(program, &im.current);
        if (!visit(im.current)) {
            completed = false;  // the visitor stopped the enumeration
            break;
        }
        if (!have_template) {
            im.build_block_template(program);
            have_template = true;
        }
        const obs::ScopedAllocSite alloc_site(
            obs::AllocSite::kSiteBlockingClause);
        im.blocking_clause(&im.block_buf);
        if (im.block_buf.empty()) {
            break;  // no projection variables: the single model is it
        }
        act_used = true;
        im.block_buf.push_back(~act);
        verdict = im.backend->block_and_resolve(
            im.block_buf.data(), im.block_buf.size(), im.assumptions);
    }
    if (act_used) {
        // Deferred retirement: the guard joins the assumed-false set for
        // the structure's remaining candidates and is permanently retired
        // at the next base rebuild. Asserting the unit clause here would
        // backtrack the solver to the root, throwing away the pin-prefix
        // trail the next candidate reuses. Guards that never made it into
        // a clause are simply abandoned (recycled wholesale at the next
        // base rebuild).
        im.spent_acts.push_back(act);
    }
    if (verdict == sat::SolveResult::kUnknown) {
        // The guard was parked above, so the session stays consistent
        // whether the caller retries (fresh session after a shard fault)
        // or unwinds (cancellation).
        if (im.backend->unknown_cause() ==
            sat::UnknownCause::kConflictBudget) {
            throw sat::BudgetExhausted();
        }
        completed = false;  // interrupted: partial, caller discards it
    }
    return completed;
}

}  // namespace transform::mtm
