/// \file
/// The paper's restricted relaxations (section IV-B): the minimality
/// criterion requires a forbidden candidate execution to become permitted
/// under *every* isolated relaxation.
///
/// A relaxation removes one "removal group" — an event together with the
/// events that cannot legally outlive it:
///  - a user-facing MemoryEvent goes together with its ghost instructions
///    (a page-table walk whose TLB entry sources other accesses is
///    re-parented to the earliest surviving user instead of vanishing);
///  - a Wpte goes together with the Invlpgs it remap-invoked;
///  - a spurious Invlpg or an Mfence is removed in isolation;
///  - an rmw dependency may be dropped without removing events.
///
/// After removal, witnesses are restricted and repaired deterministically:
/// reads sourced by a removed write fall back to the initial state,
/// coherence positions are re-compacted preserving order, and rf edges
/// invalidated by changed address resolution are dropped.
#pragma once

#include <string>
#include <vector>

#include "elt/execution.h"

namespace transform::mtm {

/// One applicable relaxation of an execution.
struct Relaxation {
    enum class Kind {
        kRemoveUserEvent,    ///< user Read/Write + its ghosts
        kRemoveWpte,         ///< Wpte + its remap Invlpgs
        kRemoveSpuriousInvlpg,
        kRemoveMfence,
        kDropRmw,            ///< drop one rmw dependency
    };
    Kind kind;
    /// Event removed (or the rmw pair index for kDropRmw).
    int target;
    std::string describe(const elt::Program& program) const;
};

/// Enumerates every relaxation applicable to the execution's program.
std::vector<Relaxation> applicable_relaxations(const elt::Program& program);

/// Applies one relaxation, producing the relaxed execution (with witnesses
/// restricted and repaired as described above). \p vm_enabled must match
/// the model's VM-awareness (MCM executions carry no translations).
elt::Execution apply_relaxation(const elt::Execution& execution,
                                const Relaxation& relaxation,
                                bool vm_enabled = true);

/// Removes an arbitrary set of *user/support* events (with their dependent
/// ghosts and Invlpgs pulled in automatically) — used by the comparison
/// tool's category-2 reduction search. Events are identified by id in the
/// original program. Returns the reduced execution.
elt::Execution remove_events(const elt::Execution& execution,
                             const std::vector<elt::EventId>& to_remove,
                             bool vm_enabled = true);

}  // namespace transform::mtm
