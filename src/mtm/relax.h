/// \file
/// The paper's restricted relaxations (section IV-B): the minimality
/// criterion requires a forbidden candidate execution to become permitted
/// under *every* isolated relaxation.
///
/// A relaxation removes one "removal group" — an event together with the
/// events that cannot legally outlive it:
///  - a user-facing MemoryEvent goes together with its ghost instructions
///    (a page-table walk whose TLB entry sources other accesses is
///    re-parented to the earliest surviving user instead of vanishing);
///  - a Wpte goes together with the Invlpgs it remap-invoked;
///  - a spurious Invlpg or an Mfence is removed in isolation;
///  - an rmw dependency may be dropped without removing events.
///
/// After removal, witnesses are restricted and repaired deterministically:
/// reads sourced by a removed write fall back to the initial state,
/// coherence positions are re-compacted preserving order, and rf edges
/// invalidated by changed address resolution are dropped.
///
/// The minimality judge applies every relaxation of every forbidden
/// candidate, so application comes in two forms (the derive/derive_into
/// discipline): the materializing `apply_relaxation` / `remove_events`,
/// and `_into` twins that rebuild the relaxed program and witnesses into a
/// caller-owned RelaxScratch — flat remap/grouping arrays instead of
/// per-call maps, reused event vectors, no steady-state allocation.
#pragma once

#include <string>
#include <vector>

#include "elt/derive.h"
#include "elt/execution.h"

namespace transform::mtm {

/// One applicable relaxation of an execution.
struct Relaxation {
    enum class Kind {
        kRemoveUserEvent,    ///< user Read/Write + its ghosts
        kRemoveWpte,         ///< Wpte + its remap Invlpgs
        kRemoveSpuriousInvlpg,
        kRemoveMfence,
        kDropRmw,            ///< drop one rmw dependency
    };
    Kind kind;
    /// Event removed (or the rmw pair index for kDropRmw).
    int target;
    std::string describe(const elt::Program& program) const;
};

/// Enumerates every relaxation applicable to the execution's program.
std::vector<Relaxation> applicable_relaxations(const elt::Program& program);

/// As applicable_relaxations(), writing into \p out (cleared first,
/// capacity kept) — the judge's per-candidate enumeration without the
/// per-call vector.
void applicable_relaxations_into(const elt::Program& program,
                                 std::vector<Relaxation>* out);

/// Reusable storage for the `_into` relaxation paths. Owns the relaxed
/// execution the twins return a reference to — valid until the next
/// `_into` call on the same scratch. One per worker; not shareable
/// between concurrent relaxations.
struct RelaxScratch {
    /// The relaxed execution (output slot, rebuilt in place per call).
    elt::Execution relaxed;

    /// Pooled enumeration for applicable_relaxations_into callers (the
    /// judge); not touched by the apply/remove twins themselves.
    std::vector<Relaxation> relaxations;

    // Rebuild working set (removal closure, id remapping, coherence
    // re-compaction rows) — internal to the twins.
    std::vector<char> removed;
    std::vector<elt::EventId> new_parent;
    std::vector<elt::EventId> remap_id;
    std::vector<int> old_pos;
    struct Row {
        int key;  ///< coherence-class key (VA / resolved PA / target PA)
        int pos;  ///< translated old position (order preserved within key)
        elt::EventId id;
    };
    std::vector<Row> rows;
    /// Address re-resolution over the rebuilt program.
    elt::ResolutionResult resolution;
    elt::DeriveScratch resolve;
};

/// Applies one relaxation, producing the relaxed execution (with witnesses
/// restricted and repaired as described above). \p vm_enabled must match
/// the model's VM-awareness (MCM executions carry no translations).
elt::Execution apply_relaxation(const elt::Execution& execution,
                                const Relaxation& relaxation,
                                bool vm_enabled = true);

/// As apply_relaxation(), rebuilding into \p scratch and returning a
/// reference to scratch->relaxed (valid until the next call). Field-
/// identical to the materializing overload on the same inputs — asserted
/// by the differential battery in tests/relax_test.cpp.
const elt::Execution& apply_relaxation_into(const elt::Execution& execution,
                                            const Relaxation& relaxation,
                                            bool vm_enabled,
                                            RelaxScratch* scratch);

/// Removes an arbitrary set of *user/support* events (with their dependent
/// ghosts and Invlpgs pulled in automatically) — used by the comparison
/// tool's category-2 reduction search. Events are identified by id in the
/// original program. Returns the reduced execution.
elt::Execution remove_events(const elt::Execution& execution,
                             const std::vector<elt::EventId>& to_remove,
                             bool vm_enabled = true);

/// As remove_events(), rebuilding into \p scratch (same reference contract
/// as apply_relaxation_into).
const elt::Execution& remove_events_into(
    const elt::Execution& execution,
    const std::vector<elt::EventId>& to_remove, bool vm_enabled,
    RelaxScratch* scratch);

}  // namespace transform::mtm
