/// \file
/// Internals shared by the two SAT encodings of a program's execution
/// space: the per-query fresh encoding (encoding.cpp) and the incremental
/// assumption-based session (incremental.cpp). Not part of the public API.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "elt/event.h"
#include "rel/bool_factory.h"
#include "util/logging.h"

namespace transform::mtm {

struct Axiom;

/// Which derived-relation circuits a query needs. The placement
/// constraints and choice variables are always built (they define the
/// execution space and the CNF the solver sees); the derived circuits are
/// pure factory nodes referenced only by axiom circuits, so building just
/// the ones the queried axioms touch skips megabytes of dead circuit per
/// program without changing the solver's clause stream at all.
enum RelNeed : unsigned {
    kNeedRf = 1u << 0,
    kNeedRfe = 1u << 1,
    kNeedFr = 1u << 2,
    kNeedPoLoc = 1u << 3,
    kNeedRfPtw = 1u << 4,
    kNeedPtwSource = 1u << 5,
    kNeedRfPa = 1u << 6,
    kNeedFrPa = 1u << 7,
    kNeedFrVa = 1u << 8,
    kNeedPoConst = 1u << 9,
    kNeedRemapConst = 1u << 10,
    kNeedPpoFenceConst = 1u << 11,
    kNeedPoMemConst = 1u << 12,
    kNeedRmwConst = 1u << 13,
    kNeedGhostConst = 1u << 14,
};

/// The relations axiom_circuit(axiom) touches (defined in encoding.cpp).
unsigned needs_for(const Axiom& axiom);

/// Flat replacement for the per-event std::map<EventId, ExprId> choice
/// maps: every builder loop inserts keys in ascending order, so the vector
/// stays sorted, lookups are binary searches, and — the point — clearing
/// keeps the node storage that a std::map would free per program.
struct ChoiceMap {
    std::vector<std::pair<elt::EventId, rel::ExprId>> kv;

    void clear() { kv.clear(); }
    bool empty() const { return kv.empty(); }

    /// Keys must arrive in strictly ascending order (asserted in debug).
    void
    insert(elt::EventId key, rel::ExprId value)
    {
        TF_ASSERT(kv.empty() || kv.back().first < key);
        kv.emplace_back(key, value);
    }

    /// Pointer to the value for \p key, or nullptr.
    const rel::ExprId*
    find(elt::EventId key) const
    {
        const auto it = std::lower_bound(
            kv.begin(), kv.end(), key,
            [](const std::pair<elt::EventId, rel::ExprId>& entry,
               elt::EventId k) { return entry.first < k; });
        return it != kv.end() && it->first == key ? &it->second : nullptr;
    }

    rel::ExprId
    at(elt::EventId key) const
    {
        const rel::ExprId* value = find(key);
        TF_ASSERT(value != nullptr);
        return *value;
    }

    auto begin() const { return kv.begin(); }
    auto end() const { return kv.end(); }
};

}  // namespace transform::mtm
