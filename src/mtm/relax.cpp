#include "mtm/relax.h"

#include <algorithm>
#include <map>

#include "elt/derive.h"
#include "util/logging.h"

namespace transform::mtm {

using elt::Event;
using elt::EventId;
using elt::EventKind;
using elt::Execution;
using elt::kNone;
using elt::Program;

std::string
Relaxation::describe(const Program& program) const
{
    switch (kind) {
    case Kind::kRemoveUserEvent:
        return "remove " + elt::event_to_string(target, program.event(target)) +
               " (+ghosts)";
    case Kind::kRemoveWpte:
        return "remove " + elt::event_to_string(target, program.event(target)) +
               " (+INVLPGs)";
    case Kind::kRemoveSpuriousInvlpg:
        return "remove spurious " +
               elt::event_to_string(target, program.event(target));
    case Kind::kRemoveMfence:
        return "remove " + elt::event_to_string(target, program.event(target));
    case Kind::kDropRmw:
        return "drop rmw dependency #" + std::to_string(target);
    }
    return "?";
}

std::vector<Relaxation>
applicable_relaxations(const Program& program)
{
    std::vector<Relaxation> out;
    for (EventId id = 0; id < program.num_events(); ++id) {
        const Event& e = program.event(id);
        switch (e.kind) {
        case EventKind::kRead:
        case EventKind::kWrite:
            out.push_back({Relaxation::Kind::kRemoveUserEvent, id});
            break;
        case EventKind::kWpte:
            out.push_back({Relaxation::Kind::kRemoveWpte, id});
            break;
        case EventKind::kInvlpg:
            if (e.remap_src == kNone) {
                out.push_back({Relaxation::Kind::kRemoveSpuriousInvlpg, id});
            }
            break;
        case EventKind::kInvlpgAll:
            out.push_back({Relaxation::Kind::kRemoveSpuriousInvlpg, id});
            break;
        case EventKind::kMfence:
            out.push_back({Relaxation::Kind::kRemoveMfence, id});
            break;
        default:
            break;  // ghosts are never removable in isolation
        }
    }
    for (int i = 0; i < static_cast<int>(program.rmw_pairs().size()); ++i) {
        out.push_back({Relaxation::Kind::kDropRmw, i});
    }
    return out;
}

namespace {

/// Computes the closure of a removal request: ghosts follow their parents,
/// remap Invlpgs follow their Wpte, and spurious Invlpgs whose justifying
/// later same-VA access disappears are cascaded away. Walks whose TLB entry
/// still has surviving users are spared (re-parented later).
std::vector<bool>
removal_closure(const Execution& exec, const std::vector<EventId>& seeds)
{
    const Program& p = exec.program;
    const int n = p.num_events();
    std::vector<bool> removed(n, false);
    for (const EventId id : seeds) {
        removed[id] = true;
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (EventId id = 0; id < n; ++id) {
            if (removed[id]) {
                continue;
            }
            const Event& e = p.event(id);
            // Ghosts follow their parents — except a walk some surviving
            // access still reads through.
            if (elt::is_ghost(e.kind) && removed[e.parent]) {
                bool keep = false;
                if (e.kind == EventKind::kRptw) {
                    for (EventId user = 0; user < n; ++user) {
                        if (!removed[user] && exec.ptw_src[user] == id) {
                            keep = true;
                            break;
                        }
                    }
                }
                if (!keep) {
                    removed[id] = true;
                    changed = true;
                }
            }
            // Remap Invlpgs follow their Wpte.
            if (e.kind == EventKind::kInvlpg && e.remap_src != kNone &&
                removed[e.remap_src]) {
                removed[id] = true;
                changed = true;
            }
            // Spurious invalidations must keep a later (same-VA for
            // targeted INVLPG, any for a full flush) access on their core.
            if ((e.kind == EventKind::kInvlpg && e.remap_src == kNone) ||
                e.kind == EventKind::kInvlpgAll) {
                bool useful = false;
                for (EventId other = 0; other < n; ++other) {
                    const Event& o = p.event(other);
                    if (!removed[other] && elt::is_data_access(o.kind) &&
                        o.thread == e.thread &&
                        (e.kind == EventKind::kInvlpgAll || o.va == e.va) &&
                        p.precedes(id, other)) {
                        useful = true;
                        break;
                    }
                }
                if (!useful) {
                    removed[id] = true;
                    changed = true;
                }
            }
        }
    }
    return removed;
}

/// Rebuilds the program and witnesses over the surviving events.
Execution
rebuild(const Execution& exec, const std::vector<bool>& removed,
        int dropped_rmw_index, bool vm_enabled)
{
    const Program& old = exec.program;
    const int n = old.num_events();

    // Survivor walks that lost their parent get re-parented to their
    // earliest surviving user.
    std::vector<EventId> new_parent(n, kNone);
    for (EventId id = 0; id < n; ++id) {
        const Event& e = old.event(id);
        if (elt::is_ghost(e.kind)) {
            new_parent[id] = e.parent;
        }
        if (e.kind == EventKind::kRptw && !removed[id] && removed[e.parent]) {
            EventId earliest = kNone;
            for (EventId user = 0; user < n; ++user) {
                if (removed[user] || exec.ptw_src[user] != id) {
                    continue;
                }
                if (earliest == kNone || old.precedes(user, earliest)) {
                    earliest = user;
                }
            }
            TF_ASSERT(earliest != kNone);
            new_parent[id] = earliest;
        }
    }

    // Build the new program: non-ghosts first (per-thread po order), then
    // ghosts (which need their parents to exist).
    Program fresh;
    for (int t = 0; t < old.num_threads(); ++t) {
        fresh.add_thread();
    }
    std::vector<EventId> remap_id(n, kNone);
    for (int t = 0; t < old.num_threads(); ++t) {
        for (const EventId id : old.thread(t)) {
            if (removed[id]) {
                continue;
            }
            Event e = old.event(id);
            remap_id[id] = fresh.add_event(e);  // remap_src fixed below
        }
    }
    for (EventId id = 0; id < n; ++id) {
        const Event& e = old.event(id);
        if (removed[id] || !elt::is_ghost(e.kind)) {
            continue;
        }
        Event copy = e;
        copy.parent = remap_id[new_parent[id]];
        TF_ASSERT(copy.parent != kNone);
        remap_id[id] = fresh.add_ghost(copy);
    }
    Execution out = Execution::empty_for(std::move(fresh));
    // Translate remap_src in the copied events.
    {
        Program& np = out.program;
        for (EventId id = 0; id < n; ++id) {
            if (removed[id]) {
                continue;
            }
            const Event& e = old.event(id);
            if (e.kind == EventKind::kInvlpg && e.remap_src != kNone) {
                const EventId nid = remap_id[id];
                Event patched = np.event(nid);
                patched.remap_src = remap_id[e.remap_src];
                TF_ASSERT(patched.remap_src != kNone);
                np.replace_event(nid, patched);
            }
        }
        // rmw pairs: keep pairs with both endpoints alive, except the
        // explicitly dropped one.
        for (int i = 0; i < static_cast<int>(old.rmw_pairs().size()); ++i) {
            if (i == dropped_rmw_index) {
                continue;
            }
            const auto& [r, w] = old.rmw_pairs()[i];
            if (!removed[r] && !removed[w]) {
                np.add_rmw(remap_id[r], remap_id[w]);
            }
        }
    }

    // Witnesses: translate, dropping references to removed events.
    for (EventId id = 0; id < n; ++id) {
        if (removed[id]) {
            continue;
        }
        const EventId nid = remap_id[id];
        const EventId rf = exec.rf_src[id];
        out.rf_src[nid] = (rf != kNone && !removed[rf]) ? remap_id[rf] : kNone;
        const EventId walk = exec.ptw_src[id];
        out.ptw_src[nid] =
            (walk != kNone && !removed[walk]) ? remap_id[walk] : kNone;
    }

    // Old coherence positions, translated to the new ids (used to preserve
    // relative order when classes are re-compacted).
    std::vector<int> old_pos(out.program.num_events(), kNone);
    for (EventId id = 0; id < n; ++id) {
        if (!removed[id] && remap_id[id] != kNone) {
            old_pos[remap_id[id]] = exec.co_pos[id];
        }
    }
    auto compact = [&](std::vector<EventId>& members) {
        std::sort(members.begin(), members.end(), [&](EventId a, EventId b) {
            if (old_pos[a] != old_pos[b]) {
                return old_pos[a] < old_pos[b];
            }
            return a < b;
        });
        for (int i = 0; i < static_cast<int>(members.size()); ++i) {
            out.co_pos[members[i]] = i;
        }
    };

    // PTE-location coherence first: its classes are static (per VA) and
    // dirty-bit value resolution depends on it.
    {
        std::map<int, std::vector<EventId>> classes;
        for (EventId nid = 0; nid < out.program.num_events(); ++nid) {
            const Event& e = out.program.event(nid);
            if (elt::is_pte_access(e.kind) && elt::is_write_like(e.kind)) {
                classes[e.va].push_back(nid);
            }
        }
        for (auto& [va, members] : classes) {
            compact(members);
        }
    }

    // Re-resolve addresses on the new program, then drop rf edges between
    // data accesses that no longer share a physical address (with VM off,
    // resolution degenerates to the VA and the check to same-VA).
    const elt::ResolutionResult resolution =
        elt::resolve_addresses(out, {vm_enabled});
    for (EventId nid = 0; nid < out.program.num_events(); ++nid) {
        const Event& e = out.program.event(nid);
        const EventId src = out.rf_src[nid];
        if (elt::is_data_access(e.kind) && src != kNone &&
            resolution.resolved_pa[nid] != resolution.resolved_pa[src]) {
            out.rf_src[nid] = kNone;
        }
    }

    // Data coherence: classes keyed by the new resolved PAs; relative order
    // preserved (ties between writes merged from different old classes
    // break by old position, then by new id).
    {
        std::map<int, std::vector<EventId>> classes;
        for (EventId nid = 0; nid < out.program.num_events(); ++nid) {
            const Event& e = out.program.event(nid);
            if (elt::is_data_access(e.kind) && elt::is_write_like(e.kind)) {
                classes[resolution.resolved_pa[nid]].push_back(nid);
            }
        }
        for (auto& [pa, members] : classes) {
            compact(members);
        }
    }
    // co_pa: same treatment over surviving Wptes per target PA.
    {
        std::map<int, std::vector<EventId>> classes;
        std::vector<int> old_pos(out.program.num_events(), kNone);
        for (EventId id = 0; id < n; ++id) {
            if (!removed[id] && remap_id[id] != kNone) {
                old_pos[remap_id[id]] = exec.co_pa_pos[id];
            }
        }
        for (EventId nid = 0; nid < out.program.num_events(); ++nid) {
            const Event& e = out.program.event(nid);
            if (e.kind == EventKind::kWpte) {
                classes[e.map_pa].push_back(nid);
            }
        }
        for (auto& [pa, members] : classes) {
            std::sort(members.begin(), members.end(),
                      [&](EventId a, EventId b) {
                          if (old_pos[a] != old_pos[b]) {
                              return old_pos[a] < old_pos[b];
                          }
                          return a < b;
                      });
            for (int i = 0; i < static_cast<int>(members.size()); ++i) {
                out.co_pa_pos[members[i]] = i;
            }
        }
    }
    return out;
}

}  // namespace

Execution
remove_events(const Execution& execution, const std::vector<EventId>& to_remove,
              bool vm_enabled)
{
    const std::vector<bool> removed = removal_closure(execution, to_remove);
    return rebuild(execution, removed, /*dropped_rmw_index=*/-1, vm_enabled);
}

Execution
apply_relaxation(const Execution& execution, const Relaxation& relaxation,
                 bool vm_enabled)
{
    switch (relaxation.kind) {
    case Relaxation::Kind::kRemoveUserEvent:
    case Relaxation::Kind::kRemoveWpte:
    case Relaxation::Kind::kRemoveSpuriousInvlpg:
    case Relaxation::Kind::kRemoveMfence:
        return remove_events(execution, {relaxation.target}, vm_enabled);
    case Relaxation::Kind::kDropRmw: {
        const std::vector<bool> removed(execution.program.num_events(), false);
        return rebuild(execution, removed, relaxation.target, vm_enabled);
    }
    }
    TF_PANIC("unreachable relaxation kind");
}

}  // namespace transform::mtm
