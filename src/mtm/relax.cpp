#include "mtm/relax.h"

#include <algorithm>

#include "elt/derive.h"
#include "util/logging.h"

namespace transform::mtm {

using elt::Event;
using elt::EventId;
using elt::EventKind;
using elt::Execution;
using elt::kNone;
using elt::Program;

std::string
Relaxation::describe(const Program& program) const
{
    switch (kind) {
    case Kind::kRemoveUserEvent:
        return "remove " + elt::event_to_string(target, program.event(target)) +
               " (+ghosts)";
    case Kind::kRemoveWpte:
        return "remove " + elt::event_to_string(target, program.event(target)) +
               " (+INVLPGs)";
    case Kind::kRemoveSpuriousInvlpg:
        return "remove spurious " +
               elt::event_to_string(target, program.event(target));
    case Kind::kRemoveMfence:
        return "remove " + elt::event_to_string(target, program.event(target));
    case Kind::kDropRmw:
        return "drop rmw dependency #" + std::to_string(target);
    }
    return "?";
}

void
applicable_relaxations_into(const Program& program,
                            std::vector<Relaxation>* out)
{
    out->clear();
    for (EventId id = 0; id < program.num_events(); ++id) {
        const Event& e = program.event(id);
        switch (e.kind) {
        case EventKind::kRead:
        case EventKind::kWrite:
            out->push_back({Relaxation::Kind::kRemoveUserEvent, id});
            break;
        case EventKind::kWpte:
            out->push_back({Relaxation::Kind::kRemoveWpte, id});
            break;
        case EventKind::kInvlpg:
            if (e.remap_src == kNone) {
                out->push_back({Relaxation::Kind::kRemoveSpuriousInvlpg, id});
            }
            break;
        case EventKind::kInvlpgAll:
            out->push_back({Relaxation::Kind::kRemoveSpuriousInvlpg, id});
            break;
        case EventKind::kMfence:
            out->push_back({Relaxation::Kind::kRemoveMfence, id});
            break;
        default:
            break;  // ghosts are never removable in isolation
        }
    }
    for (int i = 0; i < static_cast<int>(program.rmw_pairs().size()); ++i) {
        out->push_back({Relaxation::Kind::kDropRmw, i});
    }
}

std::vector<Relaxation>
applicable_relaxations(const Program& program)
{
    std::vector<Relaxation> out;
    applicable_relaxations_into(program, &out);
    return out;
}

namespace {

/// Computes the closure of a removal request into scratch->removed:
/// ghosts follow their parents, remap Invlpgs follow their Wpte, and
/// spurious Invlpgs whose justifying later same-VA access disappears are
/// cascaded away. Walks whose TLB entry still has surviving users are
/// spared (re-parented later).
void
removal_closure_into(const Execution& exec, const EventId* seeds,
                     std::size_t num_seeds, RelaxScratch* scratch)
{
    const Program& p = exec.program;
    const int n = p.num_events();
    std::vector<char>& removed = scratch->removed;
    removed.assign(n, 0);
    for (std::size_t i = 0; i < num_seeds; ++i) {
        removed[seeds[i]] = 1;
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (EventId id = 0; id < n; ++id) {
            if (removed[id]) {
                continue;
            }
            const Event& e = p.event(id);
            // Ghosts follow their parents — except a walk some surviving
            // access still reads through.
            if (elt::is_ghost(e.kind) && removed[e.parent]) {
                bool keep = false;
                if (e.kind == EventKind::kRptw) {
                    for (EventId user = 0; user < n; ++user) {
                        if (!removed[user] && exec.ptw_src[user] == id) {
                            keep = true;
                            break;
                        }
                    }
                }
                if (!keep) {
                    removed[id] = 1;
                    changed = true;
                }
            }
            // Remap Invlpgs follow their Wpte.
            if (e.kind == EventKind::kInvlpg && e.remap_src != kNone &&
                removed[e.remap_src]) {
                removed[id] = 1;
                changed = true;
            }
            // Spurious invalidations must keep a later (same-VA for
            // targeted INVLPG, any for a full flush) access on their core.
            if ((e.kind == EventKind::kInvlpg && e.remap_src == kNone) ||
                e.kind == EventKind::kInvlpgAll) {
                bool useful = false;
                for (EventId other = 0; other < n; ++other) {
                    const Event& o = p.event(other);
                    if (!removed[other] && elt::is_data_access(o.kind) &&
                        o.thread == e.thread &&
                        (e.kind == EventKind::kInvlpgAll || o.va == e.va) &&
                        p.precedes(id, other)) {
                        useful = true;
                        break;
                    }
                }
                if (!useful) {
                    removed[id] = 1;
                    changed = true;
                }
            }
        }
    }
}

/// Sorts the coherence rows (class key, translated old position, new id)
/// and assigns compacted positions 0..k within each equal-key run into
/// \p positions. Per-class compaction is independent of class iteration
/// order, so this matches the old per-map-bucket sorts exactly.
void
compact_rows(std::vector<RelaxScratch::Row>* rows, std::vector<int>* positions)
{
    std::sort(rows->begin(), rows->end(),
              [](const RelaxScratch::Row& a, const RelaxScratch::Row& b) {
                  if (a.key != b.key) {
                      return a.key < b.key;
                  }
                  if (a.pos != b.pos) {
                      return a.pos < b.pos;
                  }
                  return a.id < b.id;
              });
    int within = 0;
    for (std::size_t i = 0; i < rows->size(); ++i) {
        within = (i > 0 && (*rows)[i].key == (*rows)[i - 1].key)
                     ? within + 1
                     : 0;
        (*positions)[(*rows)[i].id] = within;
    }
}

/// Rebuilds the program and witnesses over the surviving events, into
/// scratch->relaxed (pooled storage, no steady-state allocation).
void
rebuild_into(const Execution& exec, int dropped_rmw_index, bool vm_enabled,
             RelaxScratch* scratch)
{
    const Program& old = exec.program;
    const int n = old.num_events();
    const std::vector<char>& removed = scratch->removed;

    // Survivor walks that lost their parent get re-parented to their
    // earliest surviving user.
    std::vector<EventId>& new_parent = scratch->new_parent;
    new_parent.assign(n, kNone);
    for (EventId id = 0; id < n; ++id) {
        const Event& e = old.event(id);
        if (elt::is_ghost(e.kind)) {
            new_parent[id] = e.parent;
        }
        if (e.kind == EventKind::kRptw && !removed[id] && removed[e.parent]) {
            EventId earliest = kNone;
            for (EventId user = 0; user < n; ++user) {
                if (removed[user] || exec.ptw_src[user] != id) {
                    continue;
                }
                if (earliest == kNone || old.precedes(user, earliest)) {
                    earliest = user;
                }
            }
            TF_ASSERT(earliest != kNone);
            new_parent[id] = earliest;
        }
    }

    // Build the new program in place: non-ghosts first (per-thread po
    // order), then ghosts (which need their parents to exist).
    Execution& out = scratch->relaxed;
    Program& fresh = out.program;
    fresh.reset(old.num_threads());
    std::vector<EventId>& remap_id = scratch->remap_id;
    remap_id.assign(n, kNone);
    for (int t = 0; t < old.num_threads(); ++t) {
        for (const EventId id : old.thread(t)) {
            if (removed[id]) {
                continue;
            }
            Event e = old.event(id);
            remap_id[id] = fresh.add_event(e);  // remap_src fixed below
        }
    }
    for (EventId id = 0; id < n; ++id) {
        const Event& e = old.event(id);
        if (removed[id] || !elt::is_ghost(e.kind)) {
            continue;
        }
        Event copy = e;
        copy.parent = remap_id[new_parent[id]];
        TF_ASSERT(copy.parent != kNone);
        remap_id[id] = fresh.add_ghost(copy);
    }
    const int m = fresh.num_events();
    out.rf_src.assign(m, kNone);
    out.co_pos.assign(m, kNone);
    out.ptw_src.assign(m, kNone);
    out.co_pa_pos.assign(m, kNone);
    // Translate remap_src in the copied events.
    for (EventId id = 0; id < n; ++id) {
        if (removed[id]) {
            continue;
        }
        const Event& e = old.event(id);
        if (e.kind == EventKind::kInvlpg && e.remap_src != kNone) {
            const EventId nid = remap_id[id];
            Event patched = fresh.event(nid);
            patched.remap_src = remap_id[e.remap_src];
            TF_ASSERT(patched.remap_src != kNone);
            fresh.replace_event(nid, patched);
        }
    }
    // rmw pairs: keep pairs with both endpoints alive, except the
    // explicitly dropped one.
    for (int i = 0; i < static_cast<int>(old.rmw_pairs().size()); ++i) {
        if (i == dropped_rmw_index) {
            continue;
        }
        const auto& [r, w] = old.rmw_pairs()[i];
        if (!removed[r] && !removed[w]) {
            fresh.add_rmw(remap_id[r], remap_id[w]);
        }
    }

    // Witnesses: translate, dropping references to removed events.
    for (EventId id = 0; id < n; ++id) {
        if (removed[id]) {
            continue;
        }
        const EventId nid = remap_id[id];
        const EventId rf = exec.rf_src[id];
        out.rf_src[nid] = (rf != kNone && !removed[rf]) ? remap_id[rf] : kNone;
        const EventId walk = exec.ptw_src[id];
        out.ptw_src[nid] =
            (walk != kNone && !removed[walk]) ? remap_id[walk] : kNone;
    }

    // Old coherence positions, translated to the new ids (used to preserve
    // relative order when classes are re-compacted).
    std::vector<int>& old_pos = scratch->old_pos;
    old_pos.assign(m, kNone);
    for (EventId id = 0; id < n; ++id) {
        if (!removed[id] && remap_id[id] != kNone) {
            old_pos[remap_id[id]] = exec.co_pos[id];
        }
    }
    std::vector<RelaxScratch::Row>& rows = scratch->rows;

    // PTE-location coherence first: its classes are static (per VA) and
    // dirty-bit value resolution depends on it.
    rows.clear();
    for (EventId nid = 0; nid < m; ++nid) {
        const Event& e = fresh.event(nid);
        if (elt::is_pte_access(e.kind) && elt::is_write_like(e.kind)) {
            rows.push_back({e.va, old_pos[nid], nid});
        }
    }
    compact_rows(&rows, &out.co_pos);

    // Re-resolve addresses on the new program, then drop rf edges between
    // data accesses that no longer share a physical address (with VM off,
    // resolution degenerates to the VA and the check to same-VA).
    elt::ResolutionResult& resolution = scratch->resolution;
    elt::resolve_addresses_into(out, {vm_enabled}, &resolution,
                                &scratch->resolve);
    for (EventId nid = 0; nid < m; ++nid) {
        const Event& e = fresh.event(nid);
        const EventId src = out.rf_src[nid];
        if (elt::is_data_access(e.kind) && src != kNone &&
            resolution.resolved_pa[nid] != resolution.resolved_pa[src]) {
            out.rf_src[nid] = kNone;
        }
    }

    // Data coherence: classes keyed by the new resolved PAs; relative order
    // preserved (ties between writes merged from different old classes
    // break by old position, then by new id).
    rows.clear();
    for (EventId nid = 0; nid < m; ++nid) {
        const Event& e = fresh.event(nid);
        if (elt::is_data_access(e.kind) && elt::is_write_like(e.kind)) {
            rows.push_back({resolution.resolved_pa[nid], old_pos[nid], nid});
        }
    }
    compact_rows(&rows, &out.co_pos);

    // co_pa: same treatment over surviving Wptes per target PA, ordered by
    // the translated old co_pa positions.
    old_pos.assign(m, kNone);
    for (EventId id = 0; id < n; ++id) {
        if (!removed[id] && remap_id[id] != kNone) {
            old_pos[remap_id[id]] = exec.co_pa_pos[id];
        }
    }
    rows.clear();
    for (EventId nid = 0; nid < m; ++nid) {
        const Event& e = fresh.event(nid);
        if (e.kind == EventKind::kWpte) {
            rows.push_back({e.map_pa, old_pos[nid], nid});
        }
    }
    compact_rows(&rows, &out.co_pa_pos);
}

}  // namespace

const Execution&
remove_events_into(const Execution& execution,
                   const std::vector<EventId>& to_remove, bool vm_enabled,
                   RelaxScratch* scratch)
{
    TF_ASSERT(scratch != nullptr);
    removal_closure_into(execution, to_remove.data(), to_remove.size(),
                         scratch);
    rebuild_into(execution, /*dropped_rmw_index=*/-1, vm_enabled, scratch);
    return scratch->relaxed;
}

const Execution&
apply_relaxation_into(const Execution& execution, const Relaxation& relaxation,
                      bool vm_enabled, RelaxScratch* scratch)
{
    TF_ASSERT(scratch != nullptr);
    switch (relaxation.kind) {
    case Relaxation::Kind::kRemoveUserEvent:
    case Relaxation::Kind::kRemoveWpte:
    case Relaxation::Kind::kRemoveSpuriousInvlpg:
    case Relaxation::Kind::kRemoveMfence: {
        const EventId seed = relaxation.target;
        removal_closure_into(execution, &seed, 1, scratch);
        rebuild_into(execution, /*dropped_rmw_index=*/-1, vm_enabled,
                     scratch);
        return scratch->relaxed;
    }
    case Relaxation::Kind::kDropRmw:
        scratch->removed.assign(execution.program.num_events(), 0);
        rebuild_into(execution, relaxation.target, vm_enabled, scratch);
        return scratch->relaxed;
    }
    TF_PANIC("unreachable relaxation kind");
}

Execution
remove_events(const Execution& execution, const std::vector<EventId>& to_remove,
              bool vm_enabled)
{
    RelaxScratch scratch;
    return remove_events_into(execution, to_remove, vm_enabled, &scratch);
}

Execution
apply_relaxation(const Execution& execution, const Relaxation& relaxation,
                 bool vm_enabled)
{
    RelaxScratch scratch;
    return apply_relaxation_into(execution, relaxation, vm_enabled, &scratch);
}

}  // namespace transform::mtm
