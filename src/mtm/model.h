/// \file
/// Memory transistency models as conjunctions of named axioms, and their
/// evaluation on candidate executions.
///
/// A model's *transistency predicate* is the conjunction of its axioms; an
/// execution is PERMITTED when every axiom holds and FORBIDDEN otherwise
/// (section II-A / V-A of the paper). The predefined models are:
///  - x86tso():   sc_per_loc, rmw_atomicity, causality — the x86-TSO MCM;
///  - x86t_elt(): x86-TSO plus the transistency axioms invlpg and
///                tlb_causality — the paper's estimated x86 MTM;
///  - sc_t_elt(): a sequentially-consistent MTM (ppo = full po), provided
///                as the "define your own MTM" example.
///
/// Verdicts come in two forms: `violated_mask` — an axiom-index bitset,
/// the allocation-free fast path the synthesis engine judges millions of
/// candidates through — and the string API (`violated_axioms`), kept as a
/// shim over the mask for printers, tools and tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "elt/derive.h"
#include "elt/execution.h"

namespace transform::spec {
struct AxiomDef;
struct ModelSpec;
}  // namespace transform::spec

namespace transform::mtm {

/// Identifies an axiom's symbolic form for the SAT encoding backend (the
/// concrete evaluator lives in the `holds` closure; the relational encoder
/// must rebuild the same condition as a circuit).
enum class AxiomTag {
    kScPerLoc,
    kRmwAtomicity,
    kCausalityTso,
    kCausalitySc,
    kInvlpg,
    kTlbCausality,
    /// A user-defined axiom from a `.mtm` specification: the condition is
    /// the relational expression in Axiom::def, which the encoding backend
    /// lowers to circuits generically — no bespoke circuit required.
    kExpr,
};

/// Bitset of violated axioms, indexed by a model's axiom order: bit i set
/// means axioms()[i] is violated. 0 == the execution is permitted.
using AxiomMask = std::uint32_t;

/// Models hold at most this many axioms (the mask width).
inline constexpr int kMaxAxioms = 32;

/// One axiom of a transistency (or consistency) predicate.
struct Axiom {
    std::string name;
    std::string description;
    AxiomTag tag;
    /// True when the axiom HOLDS on the given derived relations. \p scratch
    /// may be null; when supplied the evaluator reuses its buffers (cycle
    /// adjacency, edge-set temporaries) instead of allocating.
    std::function<bool(const elt::Program&, const elt::DerivedRelations&,
                       elt::CycleScratch* scratch)>
        holds;
    /// For tag == kExpr: the parsed condition (form + relational
    /// expression) both backends evaluate. Shared, immutable, and also
    /// captured by `holds`, so copying a Model keeps the two in sync.
    std::shared_ptr<const spec::AxiomDef> def = {};
};

/// A memory (transistency) model: a named conjunction of axioms.
class Model {
  public:
    Model(std::string name, bool vm_aware, std::vector<Axiom> axioms);

    const std::string& name() const { return name_; }

    /// True for MTMs (VM events modelled); false for plain MCMs.
    bool vm_aware() const { return vm_aware_; }

    const std::vector<Axiom>& axioms() const { return axioms_; }

    /// Finds an axiom by name (nullptr if absent).
    const Axiom* axiom(const std::string& name) const;

    /// Index of the named axiom in axioms() (-1 if absent) — the bit
    /// position the axiom occupies in an AxiomMask.
    int axiom_index(const std::string& name) const;

    /// Derivation options matching this model's VM-awareness.
    elt::DeriveOptions derive_options() const { return {vm_aware_}; }

    /// Bitset of the axioms the execution violates (0 => permitted). The
    /// allocation-free fast path: no strings are built, and a non-null
    /// \p scratch makes the axiom evaluators reuse buffers too. The
    /// execution must be well-formed (derive it first and check).
    AxiomMask violated_mask(const elt::Program& program,
                            const elt::DerivedRelations& d,
                            elt::CycleScratch* scratch = nullptr) const;

    /// Names for the set bits of \p mask, in axiom order.
    std::vector<std::string> mask_names(AxiomMask mask) const;

    /// Names of the axioms the execution violates (empty => permitted).
    /// String shim over violated_mask for printers/tools; the hot path
    /// uses the mask directly.
    std::vector<std::string> violated_axioms(
        const elt::Program& program, const elt::DerivedRelations& d) const;

    /// Convenience: derives and judges in one step. Ill-formed executions
    /// are reported as a violation of the pseudo-axiom "well_formed".
    std::vector<std::string> violated_axioms(const elt::Execution& e) const;

    /// True when every axiom holds (the transistency predicate).
    bool permits(const elt::Execution& e) const
    {
        return violated_axioms(e).empty();
    }

    /// The parsed `.mtm` specification this model was compiled from (null
    /// for the hardwired builtins and for copies made through the 3-arg
    /// constructor). Consulted only by the spec printers — never on the
    /// synthesis hot path.
    const std::shared_ptr<const spec::ModelSpec>& source_spec() const
    {
        return source_spec_;
    }
    void set_source_spec(std::shared_ptr<const spec::ModelSpec> spec)
    {
        source_spec_ = std::move(spec);
    }

  private:
    std::string name_;
    bool vm_aware_;
    std::vector<Axiom> axioms_;
    std::shared_ptr<const spec::ModelSpec> source_spec_;
};

/// The x86-TSO consistency model (sc_per_loc, rmw_atomicity, causality).
Model x86tso();

/// The paper's estimated x86 MTM: x86-TSO plus invlpg and tlb_causality.
Model x86t_elt();

/// A sequentially-consistent MTM (full ppo) with the transistency axioms —
/// the paper's vocabulary applied to a different base MCM.
Model sc_t_elt();

/// Names of the five x86t_elt axioms in the paper's order.
std::vector<std::string> x86t_elt_axiom_names();

}  // namespace transform::mtm
