/// \file
/// Incremental assumption-based twin of ProgramEncoding (the tentpole of
/// the incremental-SAT work): one live SolverBackend per synthesis worker
/// hosts a *structure-lifetime* base encoding shared by every candidate
/// program with the same skeleton structure, and each candidate is solved
/// purely under assumptions — no per-candidate clause emission at all.
///
/// The split exploits how the skeleton enumerator orders candidates:
/// siblings differing only in VA assignment and Wpte target-PA choice are
/// enumerated contiguously (the "structure" — event kinds, threads, ghost
/// parents, remap links and rmw pairs — changes last). The session builds
/// one superset encoding per structure in which VA and target-PA placement
/// are one-hot *selector* variables, compiles the axiom circuit once, and
/// pins each concrete candidate with one positive selector assumption per
/// placement slot. Placement-validity rules that the fresh encoding bakes
/// into its candidate sets (same-VA rf pairing, walk/INVLPG blocking,
/// provenance VA matching, co_pa target-PA classes) are emitted once as
/// selector-guarded base clauses, so unit propagation under the pinned
/// selectors retires every invalid choice variable — the per-candidate
/// assumption vector stays a handful of literals.
///
/// AllSAT blocking clauses are the only per-candidate clauses and carry a
/// per-candidate activation literal; advancing to the next candidate
/// retires the literal (one unit clause) instead of resetting the solver,
/// so learned clauses survive across a whole structure and reduce_db keeps
/// managing the learned set as usual. The solver is reset only when the
/// structure itself changes.
///
/// Structures are not visited contiguously, though: the enumerator's last
/// stages (rmw marking, linking variants) ping-pong between a handful of
/// nearby structures. The session therefore keeps a small cache of built
/// bases keyed by the structure signature — each base owns its solver,
/// factory and projection templates, and revisiting a cached signature
/// swaps the frozen base back in (bases_reused) instead of rebuilding
/// (bases_built). The va_eq selector circuits inside a base are built
/// lazily, on the first constraint that touches a pair — all before the
/// projection freeze, so the no-clauses-after-freeze discipline holds.
///
/// Contract against the fresh path (asserted by tests/sat_incremental_test
/// and the engine's replay discipline): for every candidate, the verdict
/// (does a violating execution exist / how many are there) and the set of
/// enumerated executions match ProgramEncoding::enumerate exactly; only
/// the *order* models stream in may differ, because the live solver's
/// heuristic state carries over. Callers that need the fresh path's
/// first-found witness byte-for-byte (the synthesis engine) replay
/// accepted candidates through ProgramEncoding.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "elt/execution.h"
#include "elt/program.h"
#include "mtm/model.h"
#include "sat/backend.h"

namespace transform::mtm {

/// One worker's incremental encoding session. Not shareable between
/// concurrent queries; the synthesis engine owns one per WorkerScratch.
class IncrementalEncoding {
  public:
    IncrementalEncoding();
    ~IncrementalEncoding();
    IncrementalEncoding(const IncrementalEncoding&) = delete;
    IncrementalEncoding& operator=(const IncrementalEncoding&) = delete;
    IncrementalEncoding(IncrementalEncoding&&) noexcept;
    IncrementalEncoding& operator=(IncrementalEncoding&&) noexcept;

    /// See ProgramEncoding::ExecutionVisitor — same contract, including
    /// buffer reuse between models.
    using ExecutionVisitor = std::function<bool(const elt::Execution&)>;

    /// (Re)configures the session for a run: the model and violated axiom
    /// every subsequent enumerate() queries (empty \p axiom_name = no
    /// axiom filter, enumerate all well-formed executions), and the
    /// symbolic-domain bounds every candidate must fit in — \p max_vas
    /// bounds every event's VA index, \p max_pas bounds num_pas() and
    /// every Wpte's map_pa. Drops any live base encoding. \p backend_name
    /// selects the solver backend ("cdcl"); unknown names fall back to
    /// the default CDCL backend.
    void configure(const Model* model, std::string axiom_name, int max_vas,
                   int max_pas, std::string_view backend_name = "cdcl");

    /// Streams every well-formed execution of \p program violating the
    /// configured axiom. Verdict and model count match
    /// ProgramEncoding::enumerate on the same program; model order may
    /// differ (see file comment). Returns false iff the visitor stopped
    /// the enumeration early. The program must share the configured
    /// model's VM-awareness and fit the configured domain bounds.
    bool enumerate(const elt::Program& program, const ExecutionVisitor& visit);

    /// The live base's solver backend. With the base cache each cached
    /// base owns its own backend, so session-wide concerns (timing,
    /// stats) go through set_timing()/lifetime_stats() below; this
    /// accessor serves tests that poke the current solver directly.
    sat::SolverBackend& backend();
    const sat::SolverBackend& backend() const;

    /// Enables/disables solve-wall-clock accounting on every backend the
    /// session holds or later creates (cached bases included).
    void set_timing(bool enabled);

    /// Applies a persistent per-solve conflict budget (0 = unlimited) to
    /// every backend the session holds or later creates. A budget-exhausted
    /// candidate query makes enumerate() throw sat::BudgetExhausted — the
    /// engine treats that as a retryable shard fault (docs/robustness.md).
    void set_conflict_budget(std::int64_t budget);

    /// Installs a cooperative interrupt hook (see sat::Solver::set_interrupt)
    /// on every backend the session holds or later creates. An interrupted
    /// candidate query makes enumerate() return false, like a visitor veto;
    /// the cancelled caller discards the partial result.
    void set_interrupt(std::function<bool()> poll);

    /// Installs a per-solve latency observer (see
    /// sat::Solver::set_solve_observer) on every backend the session holds
    /// or later creates. Fires only under set_timing(true).
    void set_solve_observer(std::function<void(std::uint64_t)> observer);

    /// Merged lifetime counters across every backend the session ever
    /// owned (live base, cached bases, evicted bases' folded epochs),
    /// plus the session's bases_built/bases_reused. This is what the
    /// engine merges into SuiteResult::solver.
    sat::SolverStats lifetime_stats() const;

    /// Caps how many structure bases the session retains, the live one
    /// included. 0 and 1 both mean no caching (every structure change
    /// rebuilds — the pre-cache behavior, kept reachable for the
    /// differential tests). Takes effect at the next enumerate();
    /// shrinking evicts least-recently-used bases. Default 8.
    void set_base_cache_capacity(int capacity);

    /// Session-level reuse counters.
    struct SessionStats {
        std::uint64_t candidates = 0;   ///< enumerate() calls served
        std::uint64_t bases_built = 0;  ///< bases built from scratch
        std::uint64_t bases_reused = 0; ///< cache hits (frozen base swapped
                                        ///  back in, no solver reset)
    };
    const SessionStats& session_stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace transform::mtm
