/// \file
/// The SAT-based execution-space backend: a relational (Kodkod-style)
/// encoding of all well-formed candidate executions of a fixed ELT program,
/// mirroring how the paper's Alloy pipeline turns MTM questions into SAT.
///
/// Given a program, the encoding introduces choice variables for the
/// communication witnesses (rf sources, translation sources, coherence
/// orders, alias-creation orders), constrains them by the placement rules of
/// section IV-A, builds the Table-I relations as boolean circuits, and
/// expresses each axiom of the model symbolically. Queries:
///  - does some execution violate a given axiom? (forbidden outcome exists)
///  - does some execution satisfy the whole transistency predicate?
///  - enumerate every execution (optionally filtered), used both by the
///    synthesis engine's SAT backend and to cross-check the explicit
///    enumerator (they must agree — see tests/integration).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "elt/execution.h"
#include "mtm/model.h"

namespace transform::mtm {

/// Statistics from one encoded query.
struct EncodingStats {
    int variables = 0;
    int circuit_nodes = 0;
    std::uint64_t models = 0;
};

/// Relational encoding of one program's execution space under a model.
class ProgramEncoding {
  public:
    /// The program must pass Program::validate(); the model selects both the
    /// axiom set and VM-awareness.
    ProgramEncoding(elt::Program program, const Model* model);

    /// True when some well-formed execution violates \p axiom_name.
    bool exists_violating(const std::string& axiom_name);

    /// True when some well-formed execution satisfies every axiom.
    bool exists_permitted();

    /// True when the program admits any well-formed execution at all.
    bool exists_execution();

    /// Returns a witness execution violating \p axiom_name, if any.
    std::optional<elt::Execution> find_violating(const std::string& axiom_name);

    /// Enumerates every well-formed execution; when \p violating_axiom is
    /// non-empty only executions violating that axiom are produced.
    /// \p max_executions <= 0 means unlimited.
    std::vector<elt::Execution> enumerate(const std::string& violating_axiom = "",
                                          int max_executions = -1);

    /// Stats from the most recent query.
    const EncodingStats& stats() const { return stats_; }

    /// Per-query encoding state (defined in encoding.cpp; public so the
    /// extraction helpers there can reach it, but not part of the API).
    struct Build;

  private:
    elt::Program program_;
    const Model* model_;
    EncodingStats stats_;
};

}  // namespace transform::mtm
