/// \file
/// The SAT-based execution-space backend: a relational (Kodkod-style)
/// encoding of all well-formed candidate executions of a fixed ELT program,
/// mirroring how the paper's Alloy pipeline turns MTM questions into SAT.
///
/// Given a program, the encoding introduces choice variables for the
/// communication witnesses (rf sources, translation sources, coherence
/// orders, alias-creation orders), constrains them by the placement rules of
/// section IV-A, builds the Table-I relations as boolean circuits, and
/// expresses each axiom of the model symbolically. Queries:
///  - does some execution violate a given axiom? (forbidden outcome exists)
///  - does some execution satisfy the whole transistency predicate?
///  - enumerate every execution (optionally filtered), used both by the
///    synthesis engine's SAT backend and to cross-check the explicit
///    enumerator (they must agree — see tests/integration).
///
/// Enumeration is streaming: the solver produces one model at a time and
/// the visitor decides whether to continue, so a caller looking for the
/// first qualifying witness (synth::find_witness) stops the AllSAT loop
/// right there instead of paying for the whole violating space up front.
/// The vector-returning overload is a thin materializing wrapper kept for
/// the cross-check tests and elt_check.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "elt/execution.h"
#include "mtm/model.h"
#include "rel/bool_factory.h"
#include "sat/solver.h"

namespace transform::mtm {

/// Statistics from one encoded query.
struct EncodingStats {
    int variables = 0;
    int circuit_nodes = 0;
    std::uint64_t models = 0;
};

/// Reusable substrate for ProgramEncoding queries: the expression arena,
/// the CDCL solver, and the per-query Build containers (witness-choice
/// maps, one-hot PA vectors, derived-relation RelExpr matrices), all reset
/// with capacities kept at the start of every query. The synthesis engine
/// owns one per worker and threads it through millions of per-program
/// encodings; without one, each ProgramEncoding query builds and tears
/// down everything. Not shareable between concurrent queries.
struct EncodingScratch {
    EncodingScratch();
    ~EncodingScratch();
    EncodingScratch(const EncodingScratch&) = delete;
    EncodingScratch& operator=(const EncodingScratch&) = delete;
    EncodingScratch(EncodingScratch&&) noexcept;
    EncodingScratch& operator=(EncodingScratch&&) noexcept;

    rel::BoolFactory factory;
    sat::Solver solver;

    /// The pooled Build containers (opaque here: the layout is a private
    /// contract of encoding.cpp).
    struct Pool;
    std::unique_ptr<Pool> pool;
};

/// Relational encoding of one program's execution space under a model.
class ProgramEncoding {
  public:
    /// The program must pass Program::validate(); the model selects both the
    /// axiom set and VM-awareness. \p scratch, when given, must outlive the
    /// encoding and provides the factory/solver storage every query reuses.
    ProgramEncoding(elt::Program program, const Model* model,
                    EncodingScratch* scratch = nullptr);

    /// True when some well-formed execution violates \p axiom_name.
    bool exists_violating(const std::string& axiom_name);

    /// True when some well-formed execution satisfies every axiom.
    bool exists_permitted();

    /// True when the program admits any well-formed execution at all.
    bool exists_execution();

    /// Returns a witness execution violating \p axiom_name, if any.
    std::optional<elt::Execution> find_violating(const std::string& axiom_name);

    /// A visitor for streaming enumeration: return true to keep enumerating,
    /// false to stop the solver. The Execution reference is only valid for
    /// the duration of the call (its buffers are reused between models).
    using ExecutionVisitor = std::function<bool(const elt::Execution&)>;

    /// Streams every well-formed execution to \p visit in a fixed solver
    /// order; when \p violating_axiom is non-empty only executions violating
    /// that axiom are produced. Each model is extracted into a reused
    /// buffer — no per-execution allocation in steady state — and the
    /// blocking clause is added only if the visitor continues. Returns
    /// false iff the visitor stopped the enumeration early.
    bool enumerate(const std::string& violating_axiom,
                   const ExecutionVisitor& visit);

    /// Materializing wrapper over the streaming form: collects the visited
    /// executions (in the same order). \p max_executions <= 0 means
    /// unlimited.
    std::vector<elt::Execution> enumerate(const std::string& violating_axiom = "",
                                          int max_executions = -1);

    /// Stats from the most recent query.
    const EncodingStats& stats() const { return stats_; }

    /// Per-query encoding state (defined in encoding.cpp; public so the
    /// extraction helpers there can reach it, but not part of the API).
    struct Build;

  private:
    elt::Program program_;
    const Model* model_;
    EncodingScratch* scratch_;          ///< the substrate queries build in
    std::unique_ptr<EncodingScratch> owned_scratch_;  ///< when none supplied
    EncodingStats stats_;
};

}  // namespace transform::mtm
