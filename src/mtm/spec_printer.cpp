#include "mtm/spec_printer.h"

#include <sstream>

#include "spec/ast.h"
#include "spec/printer.h"
#include "util/logging.h"

namespace transform::mtm {

std::string
vocabulary_to_alloy()
{
    // Static text: the vocabulary is fixed by the library (Table I of the
    // paper plus this library's documented extensions); keeping it inline
    // makes the emitted module self-contained and reviewable.
    return R"(// TransForm MTM vocabulary (Table I), emitted by transform-cpp.
// Events ---------------------------------------------------------------
abstract sig Event { po: lone Event }           // program order (intra-thread)
abstract sig MemoryEvent extends Event { address: one Location }
sig Read extends MemoryEvent { rf: lone Write, rf_ptw: lone Rptw }
sig Write extends MemoryEvent { co: set Write, ghost_db: lone Wdb }
sig Mfence extends Event {}
// System-level (support) instructions ----------------------------------
sig Wpte extends MemoryEvent { maps: one PhysicalAddress,
                               remap: set Invlpg, co_pa: set Wpte }
sig Invlpg extends Event { evicts: one VirtualAddress }
sig InvlpgAll extends Event {}                  // extension: full TLB flush
// Hardware-level (ghost) instructions -----------------------------------
sig Rptw extends MemoryEvent { invoked_by: one MemoryEvent }
sig Wdb  extends MemoryEvent { invoked_by: one Write }
sig Rdb  extends MemoryEvent { invoked_by: one Write }  // RMW-dirty-bit mode
// Locations --------------------------------------------------------------
abstract sig Location {}
sig VirtualAddress extends Location { pte: one PteLocation }
sig PteLocation extends Location {}
sig PhysicalAddress {}
// Placement facts (section IV-A) ------------------------------------------
fact po_total_per_thread { /* po is a strict total order per thread;
                              ghosts inherit their parent's position and
                              are unordered against it */ }
fact walks_source_users  { all r: Rptw | r.invoked_by in r.~rf_ptw }
fact wdb_per_write       { all w: Write | one w.ghost_db }
fact remap_per_core      { all p: Wpte | one core: Thread | one
                           (p.remap & core.events) }
fact no_tlb_reuse_across_invlpg {
  /* rf_ptw may not span a same-VA INVLPG (or any INVLPGALL) between the
     walk's invoking access and the user, on their shared core */ }
fact spurious_invlpg_useful {
  /* an OS-initiated eviction requires a later same-core access it can
     affect (same VA for INVLPG, any VA for INVLPGALL) */ }
fact dirty_bit_value {
  /* a Wdb carries the mapping of its immediate coherence predecessor at
     its PTE location (initial mapping when coherence-first) */ }
// Derived relations --------------------------------------------------------
fun fr        { /* reads to co-successors of their rf source */ }
fun rf_pa     { /* Wpte to accesses whose translation it provided */ }
fun fr_pa     { /* accesses to co_pa-successors of their provenance */ }
fun fr_va     { /* accesses to later Wptes remapping their VA */ }
fun ptw_source{ /* walk's invoking access to other users of the entry */ }
)";
}

namespace {

std::string
axiom_body(const Axiom& axiom)
{
    switch (axiom.tag) {
    case AxiomTag::kScPerLoc:
        return "acyclic[rf + co + fr + po_loc]";
    case AxiomTag::kRmwAtomicity:
        return "no (fr.co & rmw)";
    case AxiomTag::kCausalityTso:
        return "acyclic[rfe + co + fr + ppo + fence]   -- ppo = po - (Write->Read)";
    case AxiomTag::kCausalitySc:
        return "acyclic[rfe + co + fr + po + fence]    -- sequential consistency";
    case AxiomTag::kInvlpg:
        return "acyclic[fr_va + ^po + remap]";
    case AxiomTag::kTlbCausality:
        return "acyclic[ptw_source + rf + co + fr]";
    case AxiomTag::kExpr:
        TF_ASSERT(axiom.def != nullptr);
        return std::string(spec::axiom_form_name(axiom.def->form)) + "[" +
               spec::expr_to_source(*axiom.def->expr) + "]";
    }
    TF_PANIC("unknown axiom tag");
}

/// The `.mtm` condition equivalent to a hardwired axiom — used when a
/// builtin model (no attached ModelSpec) is printed as DSL source.
std::string
builtin_mtm_condition(AxiomTag tag)
{
    switch (tag) {
    case AxiomTag::kScPerLoc:
        return "acyclic(rf | co | fr | po_loc)";
    case AxiomTag::kRmwAtomicity:
        return "empty((fr ; co) & rmw)";
    case AxiomTag::kCausalityTso:
        return "acyclic(rfe | co | fr | ppo | fence)";
    case AxiomTag::kCausalitySc:
        return "acyclic(rfe | co | fr | po_mem | fence)";
    case AxiomTag::kInvlpg:
        return "acyclic(fr_va | po | remap)";
    case AxiomTag::kTlbCausality:
        return "acyclic(ptw_source | rf | co | fr)";
    case AxiomTag::kExpr:
        break;  // handled by the caller through axiom.def
    }
    TF_PANIC("axiom tag has no builtin .mtm condition");
}

}  // namespace

std::string
model_to_alloy(const Model& model)
{
    std::ostringstream out;
    out << "module transform/" << model.name() << "\n\n";
    out << vocabulary_to_alloy() << "\n";
    out << "// Axioms ("
        << (model.vm_aware() ? "transistency" : "consistency")
        << " predicate of " << model.name() << ") ---------------------\n";
    for (const Axiom& axiom : model.axioms()) {
        out << "// " << axiom.description << "\n";
        out << "pred " << axiom.name << " { " << axiom_body(axiom)
            << " }\n\n";
    }
    out << "pred " << model.name() << "_predicate {\n";
    for (const Axiom& axiom : model.axioms()) {
        out << "  " << axiom.name << "\n";
    }
    out << "}\n";
    return out.str();
}

std::string
model_to_mtm(const Model& model)
{
    if (model.source_spec() != nullptr) {
        return spec::model_to_source(*model.source_spec());
    }
    std::ostringstream out;
    out << "model " << model.name() << "\n";
    out << "vm " << (model.vm_aware() ? "on" : "off") << "\n\n";
    for (const Axiom& axiom : model.axioms()) {
        out << "axiom " << axiom.name;
        if (!axiom.description.empty()) {
            out << " \"" << axiom.description << "\"";
        }
        out << ": ";
        if (axiom.tag == AxiomTag::kExpr) {
            TF_ASSERT(axiom.def != nullptr);
            out << spec::axiom_form_name(axiom.def->form) << "("
                << spec::expr_to_source(*axiom.def->expr) << ")";
        } else {
            out << builtin_mtm_condition(axiom.tag);
        }
        out << "\n";
    }
    return out.str();
}

}  // namespace transform::mtm
