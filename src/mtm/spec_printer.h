/// \file
/// Emits a Model as an Alloy-style module — the format of the paper's
/// published artifact. The output documents the full vocabulary (signatures
/// for the event kinds and the Table-I relations, with their placement
/// facts) and one `pred`/`assert` pair per axiom of the model, so a reader
/// can diff this library's semantics against the original Alloy source.
#pragma once

#include <string>

#include "mtm/model.h"

namespace transform::mtm {

/// Renders the shared TransForm vocabulary (signatures + placement facts)
/// in Alloy-like syntax.
std::string vocabulary_to_alloy();

/// Renders \p model as an Alloy-like module: the vocabulary followed by one
/// predicate per axiom and the model's transistency predicate. Axioms from
/// `.mtm` specifications print their relational expression.
std::string model_to_alloy(const Model& model);

/// Renders \p model as `.mtm` DSL source (the language of spec/parser.h).
/// A model compiled from a specification prints its own spec (canonical
/// form, `let` bindings preserved); the hardwired builtins print the
/// equivalent expression per axiom. The output always re-parses: the
/// round-trip tests hold parse(model_to_mtm(m)) to a fixed point.
std::string model_to_mtm(const Model& model);

}  // namespace transform::mtm
