#include "util/cancel.h"

#include <csignal>

namespace transform::util {
namespace {

/// Process-global cancellation state shared by every token returned from
/// install_signal_cancel(). Never destroyed, so tokens stay valid through
/// static teardown.
std::atomic<int> g_signal_state{0};

void
handle_cancel_signal(int)
{
    // Async-signal-safe: a single lock-free CAS, no locks, no allocation.
    int expected = 0;
    g_signal_state.compare_exchange_strong(
        expected, static_cast<int>(CancelReason::kSignal),
        std::memory_order_relaxed);
}

}  // namespace

CancelToken
install_signal_cancel()
{
    std::signal(SIGINT, handle_cancel_signal);
    std::signal(SIGTERM, handle_cancel_signal);
    return CancelToken(&g_signal_state);
}

}  // namespace transform::util
