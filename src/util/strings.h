/// \file
/// Small string helpers shared by the pretty printers and serializers.
#pragma once

#include <string>
#include <vector>

namespace transform::util {

/// Joins \p parts with \p sep ("a", "b" -> "a,b").
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits \p text on the single character \p sep; keeps empty fields.
std::vector<std::string> split(const std::string& text, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string trim(const std::string& text);

/// True when \p text starts with \p prefix.
bool starts_with(const std::string& text, const std::string& prefix);

/// Escapes the five XML special characters.
std::string xml_escape(const std::string& text);

/// Pads \p text with spaces on the right to at least \p width columns.
std::string pad_right(const std::string& text, std::size_t width);

}  // namespace transform::util
