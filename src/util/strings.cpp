#include "util/strings.h"

#include <cctype>

namespace transform::util {

std::string join(const std::vector<std::string>& parts, const std::string& sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) {
            out += sep;
        }
        out += parts[i];
    }
    return out;
}

std::vector<std::string> split(const std::string& text, char sep)
{
    std::vector<std::string> out;
    std::string current;
    for (char c : text) {
        if (c == sep) {
            out.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    out.push_back(current);
    return out;
}

std::string trim(const std::string& text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool starts_with(const std::string& text, const std::string& prefix)
{
    return text.size() >= prefix.size() && text.compare(0, prefix.size(), prefix) == 0;
}

std::string xml_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '<': out += "&lt;"; break;
        case '>': out += "&gt;"; break;
        case '&': out += "&amp;"; break;
        case '"': out += "&quot;"; break;
        case '\'': out += "&apos;"; break;
        default: out.push_back(c);
        }
    }
    return out;
}

std::string pad_right(const std::string& text, std::size_t width)
{
    if (text.size() >= width) {
        return text;
    }
    return text + std::string(width - text.size(), ' ');
}

}  // namespace transform::util
