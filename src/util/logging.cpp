#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace transform::util {

namespace {
/// Threshold reads happen on every log() call from every scheduler worker;
/// an atomic keeps them race-free without a lock.
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

/// Serializes writes so concurrent workers cannot interleave log lines.
std::mutex g_write_mu;

const char* level_name(LogLevel level)
{
    switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    }
    return "?";
}
}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level)
{
    g_threshold.store(level, std::memory_order_relaxed);
}

void log(LogLevel level, const std::string& message)
{
    if (static_cast<int>(level) <
        static_cast<int>(g_threshold.load(std::memory_order_relaxed))) {
        return;
    }
    std::lock_guard<std::mutex> lock(g_write_mu);
    std::fprintf(stderr, "[transform %s] %s\n", level_name(level), message.c_str());
}

void panic_impl(const char* file, int line, const std::string& message)
{
    {
        std::lock_guard<std::mutex> lock(g_write_mu);
        std::fprintf(stderr, "[transform PANIC] %s:%d: %s\n", file, line,
                     message.c_str());
    }
    std::abort();
}

void fatal_impl(const char* file, int line, const std::string& message)
{
    {
        std::lock_guard<std::mutex> lock(g_write_mu);
        std::fprintf(stderr, "[transform FATAL] %s:%d: %s\n", file, line,
                     message.c_str());
    }
    std::exit(1);
}

}  // namespace transform::util
