#include "util/logging.h"

#include <cstdio>

namespace transform::util {

namespace {
LogLevel g_threshold = LogLevel::kInfo;

const char* level_name(LogLevel level)
{
    switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    }
    return "?";
}
}  // namespace

LogLevel log_threshold() { return g_threshold; }

void set_log_threshold(LogLevel level) { g_threshold = level; }

void log(LogLevel level, const std::string& message)
{
    if (static_cast<int>(level) < static_cast<int>(g_threshold)) {
        return;
    }
    std::fprintf(stderr, "[transform %s] %s\n", level_name(level), message.c_str());
}

void panic_impl(const char* file, int line, const std::string& message)
{
    std::fprintf(stderr, "[transform PANIC] %s:%d: %s\n", file, line, message.c_str());
    std::abort();
}

void fatal_impl(const char* file, int line, const std::string& message)
{
    std::fprintf(stderr, "[transform FATAL] %s:%d: %s\n", file, line, message.c_str());
    std::exit(1);
}

}  // namespace transform::util
