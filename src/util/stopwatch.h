/// \file
/// Wall-clock stopwatch used by the synthesis engine for time budgets and by
/// the benchmark harness for the Fig-9b runtime series.
#pragma once

#include <chrono>

namespace transform::util {

/// A restartable wall-clock stopwatch.
class Stopwatch {
  public:
    /// Starts timing on construction.
    Stopwatch();

    /// Restarts the stopwatch from zero.
    void restart();

    /// Elapsed time since construction/restart, in seconds.
    double elapsed_seconds() const;

    /// Elapsed time since construction/restart, in milliseconds.
    double elapsed_ms() const;

  private:
    std::chrono::steady_clock::time_point start_;
};

/// A soft deadline: answers "is there budget left?". A non-positive budget
/// means "unlimited".
class Deadline {
  public:
    /// Creates a deadline \p budget_seconds from now (<= 0 means unlimited).
    explicit Deadline(double budget_seconds);

    /// True when the budget has been exhausted.
    bool expired() const;

    /// Seconds remaining (infinity when unlimited).
    double remaining_seconds() const;

  private:
    Stopwatch watch_;
    double budget_seconds_;
};

}  // namespace transform::util
