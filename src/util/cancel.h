/// \file
/// Cooperative cancellation for long-running synthesis runs.
///
/// A `CancelSource` owns one atomic flag; `CancelToken` is a trivially
/// copyable view of it that search loops poll at safe points (per
/// candidate in the engine, at conflict-count intervals inside the SAT
/// solver). Requesting cancellation never interrupts a worker
/// asynchronously: every holder notices at its next poll, stops cleanly,
/// and the run still emits the deterministic partial suite with
/// `SuiteResult::cancelled` set (see docs/robustness.md, "Cancellation
/// contract").
///
/// `install_signal_cancel()` wires SIGINT/SIGTERM to a process-global
/// source so Ctrl-C on `elt_synth` behaves exactly like a programmatic
/// request. The handler only performs a lock-free atomic store, which is
/// async-signal-safe.
#pragma once

#include <atomic>

namespace transform::util {

/// Why a run was cancelled. First request wins; later requests with a
/// different reason are ignored.
enum class CancelReason : int {
    kNone = 0,          ///< not cancelled
    kProgrammatic = 1,  ///< CancelSource::request() from code
    kSignal = 2,        ///< SIGINT/SIGTERM via install_signal_cancel()
};

/// A read-only, trivially copyable view of a CancelSource's flag. The
/// default-constructed token is inert: it is never cancelled and costs a
/// null check per poll. The source (or the process-global signal state)
/// must outlive every token viewing it.
class CancelToken {
  public:
    constexpr CancelToken() = default;

    /// True when this token views a real source (polling can ever fire).
    bool valid() const { return state_ != nullptr; }

    /// True once cancellation was requested. Relaxed load: safe to call
    /// from any thread at any frequency.
    bool
    requested() const
    {
        return state_ != nullptr &&
               state_->load(std::memory_order_relaxed) != 0;
    }

    /// The first-requested reason, or kNone.
    CancelReason
    reason() const
    {
        return state_ == nullptr
                   ? CancelReason::kNone
                   : static_cast<CancelReason>(
                         state_->load(std::memory_order_relaxed));
    }

  private:
    friend class CancelSource;
    friend CancelToken install_signal_cancel();

    explicit constexpr CancelToken(const std::atomic<int>* state)
        : state_(state)
    {
    }

    const std::atomic<int>* state_ = nullptr;
};

/// Owns the cancellation flag. Hand out tokens with token(); request
/// cancellation from any thread with request(). Must outlive its tokens.
class CancelSource {
  public:
    /// Requests cancellation; the first call's reason sticks.
    void
    request(CancelReason reason = CancelReason::kProgrammatic)
    {
        int expected = 0;
        state_.compare_exchange_strong(expected, static_cast<int>(reason),
                                       std::memory_order_relaxed);
    }

    bool
    requested() const
    {
        return state_.load(std::memory_order_relaxed) != 0;
    }

    CancelToken token() const { return CancelToken(&state_); }

  private:
    std::atomic<int> state_{0};
};

/// Installs SIGINT/SIGTERM handlers that request cancellation on a
/// process-global source and returns a token viewing it. Idempotent; the
/// global state outlives everything, so the returned token is always safe
/// to hold. Tools call this once at startup and thread the token through
/// SynthesisOptions::cancel.
CancelToken install_signal_cancel();

}  // namespace transform::util
