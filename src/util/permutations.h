/// \file
/// Enumeration helpers for the synthesis engine: permutations (symmetry
/// canonicalization), compositions (splitting an instruction budget across
/// threads), and subsets (category-2 minimization in the comparison tool).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

namespace transform::util {

/// Calls \p visit for every permutation of {0,..,n-1}. \p visit may return
/// false to stop early; for_each_permutation returns false in that case.
inline bool
for_each_permutation(int n, const std::function<bool(const std::vector<int>&)>& visit)
{
    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    do {
        if (!visit(perm)) {
            return false;
        }
    } while (std::next_permutation(perm.begin(), perm.end()));
    return true;
}

/// Calls \p visit for every way to write \p total = c_0 + ... + c_{k-1} with
/// each c_i >= 1, for every k in [1, max_parts]. Order of parts matters for
/// the enumerator (threads are later canonicalized), but to cut symmetry we
/// only emit non-increasing compositions (partitions); thread-order symmetry
/// is restored by the canonicalizer.
inline void
for_each_partition(int total, int max_parts,
                   const std::function<void(const std::vector<int>&)>& visit)
{
    std::vector<int> parts;
    // Recursive lambda: extend `parts` with values <= last part.
    std::function<void(int, int)> recurse = [&](int remaining, int max_value) {
        if (remaining == 0) {
            if (!parts.empty()) {
                visit(parts);
            }
            return;
        }
        if (static_cast<int>(parts.size()) == max_parts) {
            return;
        }
        for (int next = std::min(remaining, max_value); next >= 1; --next) {
            parts.push_back(next);
            recurse(remaining - next, next);
            parts.pop_back();
        }
    };
    recurse(total, total);
}

/// Calls \p visit for every non-empty subset of {0,..,n-1}, smallest
/// cardinality first (useful for finding minimal reductions). \p visit may
/// return false to stop the enumeration.
inline bool
for_each_subset_by_size(int n, const std::function<bool(const std::vector<int>&)>& visit)
{
    for (int size = 1; size <= n; ++size) {
        std::vector<int> mask(n, 0);
        std::fill(mask.begin(), mask.begin() + size, 1);
        // Enumerate combinations via prev_permutation on the 1/0 mask.
        do {
            std::vector<int> subset;
            for (int i = 0; i < n; ++i) {
                if (mask[i]) {
                    subset.push_back(i);
                }
            }
            if (!visit(subset)) {
                return false;
            }
        } while (std::prev_permutation(mask.begin(), mask.end()));
    }
    return true;
}

}  // namespace transform::util
