/// \file
/// Hash combination helpers for the deduplication engine's canonical keys.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace transform::util {

/// Mixes \p value into \p seed (boost::hash_combine recipe, 64-bit variant).
inline void hash_combine(std::size_t& seed, std::size_t value)
{
    seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes any range of hashable elements into one value.
template <typename Range>
std::size_t hash_range(const Range& range)
{
    std::size_t seed = 0;
    for (const auto& element : range) {
        hash_combine(seed, std::hash<std::decay_t<decltype(element)>>{}(element));
    }
    return seed;
}

}  // namespace transform::util
