/// \file
/// Deterministic fault injection for the synthesis runtime.
///
/// A `FaultPlan` describes one kind of failure to inject at one site in
/// the candidate pipeline. Whether a particular probe fires is a pure
/// function of (seed, site, key, attempt): the key is the candidate's
/// deterministic merge ticket (or the shard's ticket base at shard
/// boundaries), so the same plan fires at the same logical places at
/// every `--jobs` value and shard depth — which is what lets the fault
/// matrix in tests/fault_test.cpp assert byte-identical suites after
/// retries. See docs/robustness.md, "Fault injection".
///
/// Plans parse from the `--fault-plan` flag / `TRANSFORM_FAULT_PLAN` env
/// grammar: comma-separated `key=value` pairs, e.g.
///   site=derive,rate=64,seed=7,mode=transient
///   site=shard_boundary,kind=kill,after=2   (SIGKILL for crash tests)
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace transform::util {

/// Where in the pipeline a probe sits.
enum class FaultSite : int {
    kShardBoundary = 0,  ///< entry of a shard-search job
    kDerive = 1,         ///< before deriving a candidate's executions
    kJudge = 2,          ///< before judging a witness's minimality
    kSatSolve = 3,       ///< before a SAT witness query
};

/// Stable lowercase name used by the parse grammar and error messages.
const char* fault_site_name(FaultSite site);

/// The exception thrown by Kind::kThrow probes. Deliberately a plain
/// std::runtime_error subtype: the engine's fault containment must catch
/// it through the same `catch (const std::exception&)` boundary that
/// contains real faults.
class InjectedFault : public std::runtime_error {
  public:
    explicit InjectedFault(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/// One deterministic fault-injection plan. The public fields are the
/// plan's configuration (set directly or via parse()); maybe_fire() is
/// called from probe points and throws/kills when the plan selects that
/// probe. Thread-safe: firing decisions are pure except for the `after`
/// skip counter and the fired tally, which are atomics.
class FaultPlan {
  public:
    enum class Kind {
        kThrow,     ///< throw InjectedFault
        kBadAlloc,  ///< throw std::bad_alloc (allocation-failure simulation)
        kKill,      ///< raise(SIGKILL) — for checkpoint/resume crash tests
    };

    FaultPlan() = default;
    FaultPlan(const FaultPlan&) = delete;
    FaultPlan& operator=(const FaultPlan&) = delete;

    std::uint64_t seed = 0;
    FaultSite site = FaultSite::kDerive;
    Kind kind = Kind::kThrow;

    /// Fire on probes whose hash(seed, site, key) lands in 1-in-`rate`.
    /// 1 = every probe at the site.
    std::uint64_t rate = 1;

    /// Fire only while the shard's retry attempt is below this: 1 models a
    /// transient fault (first execution fails, the retry succeeds), a
    /// large value models a deterministic fault that survives every retry
    /// and forces quarantine.
    int attempts = 1;

    /// Skip the first `after` selected probes before firing (a process-wide
    /// atomic count, so with jobs > 1 which probe is skipped depends on
    /// scheduling — use jobs=1 when `after` must be deterministic, as the
    /// kill-mid-run checkpoint test does).
    std::uint64_t after = 0;

    /// Parses the `key=value[,key=value...]` grammar into \p out. Keys:
    /// seed=N, site=shard_boundary|derive|judge|sat_solve,
    /// kind=throw|alloc|kill, rate=N (>=1), mode=transient|sticky,
    /// attempts=N, after=N. Returns false and fills \p error on a bad spec.
    static bool parse(const std::string& spec, FaultPlan* out,
                      std::string* error);

    /// Probe point: decides deterministically whether this (site, key,
    /// attempt) fires and, if so, injects the configured failure.
    void maybe_fire(FaultSite site, std::uint64_t key, int attempt) const;

    /// How many times this plan actually fired (kThrow/kBadAlloc only;
    /// a kKill firing never returns).
    std::uint64_t
    fired() const
    {
        return fired_.load(std::memory_order_relaxed);
    }

  private:
    mutable std::atomic<std::uint64_t> matched_{0};
    mutable std::atomic<std::uint64_t> fired_{0};
};

}  // namespace transform::util
