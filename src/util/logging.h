/// \file
/// Minimal logging and invariant-checking helpers used across the library.
///
/// Follows the gem5 panic()/fatal() distinction: TF_PANIC signals an
/// internal invariant violation (a library bug), TF_FATAL signals a user
/// error (bad input, impossible configuration).
///
/// All entry points are thread-safe: the threshold is atomic and writes are
/// serialized, so concurrent scheduler workers never interleave log lines.
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace transform::util {

/// Severity for log() messages.
enum class LogLevel { kDebug, kInfo, kWarn, kError };

/// Global minimum level below which log() calls are dropped.
LogLevel log_threshold();

/// Sets the global minimum log level (e.g. to silence benches).
void set_log_threshold(LogLevel level);

/// Writes a single log line to stderr if \p level passes the threshold.
void log(LogLevel level, const std::string& message);

/// Formats and terminates on an internal invariant violation.
[[noreturn]] void panic_impl(const char* file, int line, const std::string& message);

/// Formats and terminates on an unrecoverable user error.
[[noreturn]] void fatal_impl(const char* file, int line, const std::string& message);

}  // namespace transform::util

#define TF_PANIC(msg)                                                        \
    ::transform::util::panic_impl(__FILE__, __LINE__,                       \
                                  (std::ostringstream() << msg).str())

#define TF_FATAL(msg)                                                        \
    ::transform::util::fatal_impl(__FILE__, __LINE__,                       \
                                  (std::ostringstream() << msg).str())

/// Checks an internal invariant; compiled in all build types because the
/// synthesis engine relies on these checks in its own tests.
#define TF_ASSERT(cond)                                                      \
    do {                                                                     \
        if (!(cond)) {                                                       \
            TF_PANIC("assertion failed: " #cond);                            \
        }                                                                    \
    } while (false)

#define TF_LOG_INFO(msg)                                                     \
    ::transform::util::log(::transform::util::LogLevel::kInfo,              \
                           (std::ostringstream() << msg).str())

#define TF_LOG_WARN(msg)                                                     \
    ::transform::util::log(::transform::util::LogLevel::kWarn,              \
                           (std::ostringstream() << msg).str())

#define TF_LOG_DEBUG(msg)                                                    \
    ::transform::util::log(::transform::util::LogLevel::kDebug,             \
                           (std::ostringstream() << msg).str())
