#include "util/fault.h"

#include <csignal>
#include <cstdint>
#include <limits>
#include <new>
#include <sstream>
#include <vector>

#include "util/strings.h"

namespace transform::util {
namespace {

/// splitmix64 finalizer over (seed, site, key): a high-quality stateless
/// mix so rate-based selection is uniform yet reproducible.
std::uint64_t
fault_hash(std::uint64_t seed, FaultSite site, std::uint64_t key)
{
    std::uint64_t x = seed * 0x9E3779B97F4A7C15ULL;
    x += key + (static_cast<std::uint64_t>(site) << 56);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

bool
parse_u64(const std::string& text, std::uint64_t* out)
{
    if (text.empty()) {
        return false;
    }
    std::uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9') {
            return false;
        }
        if (value > (std::numeric_limits<std::uint64_t>::max() - 9) / 10) {
            return false;
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    *out = value;
    return true;
}

}  // namespace

const char*
fault_site_name(FaultSite site)
{
    switch (site) {
    case FaultSite::kShardBoundary:
        return "shard_boundary";
    case FaultSite::kDerive:
        return "derive";
    case FaultSite::kJudge:
        return "judge";
    case FaultSite::kSatSolve:
        return "sat_solve";
    }
    return "unknown";
}

bool
FaultPlan::parse(const std::string& spec, FaultPlan* out, std::string* error)
{
    for (const std::string& pair : split(spec, ',')) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos) {
            *error = "expected key=value, got '" + pair + "'";
            return false;
        }
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        if (key == "seed") {
            if (!parse_u64(value, &out->seed)) {
                *error = "seed: expected a non-negative integer, got '" +
                         value + "'";
                return false;
            }
        } else if (key == "site") {
            if (value == "shard_boundary") {
                out->site = FaultSite::kShardBoundary;
            } else if (value == "derive") {
                out->site = FaultSite::kDerive;
            } else if (value == "judge") {
                out->site = FaultSite::kJudge;
            } else if (value == "sat_solve") {
                out->site = FaultSite::kSatSolve;
            } else {
                *error = "site: expected shard_boundary|derive|judge|"
                         "sat_solve, got '" +
                         value + "'";
                return false;
            }
        } else if (key == "kind") {
            if (value == "throw") {
                out->kind = Kind::kThrow;
            } else if (value == "alloc") {
                out->kind = Kind::kBadAlloc;
            } else if (value == "kill") {
                out->kind = Kind::kKill;
            } else {
                *error = "kind: expected throw|alloc|kill, got '" + value +
                         "'";
                return false;
            }
        } else if (key == "rate") {
            if (!parse_u64(value, &out->rate) || out->rate == 0) {
                *error = "rate: expected an integer >= 1, got '" + value +
                         "'";
                return false;
            }
        } else if (key == "mode") {
            if (value == "transient") {
                out->attempts = 1;
            } else if (value == "sticky") {
                out->attempts = std::numeric_limits<int>::max();
            } else {
                *error = "mode: expected transient|sticky, got '" + value +
                         "'";
                return false;
            }
        } else if (key == "attempts") {
            std::uint64_t n = 0;
            if (!parse_u64(value, &n) || n == 0 ||
                n > static_cast<std::uint64_t>(
                        std::numeric_limits<int>::max())) {
                *error = "attempts: expected an integer >= 1, got '" + value +
                         "'";
                return false;
            }
            out->attempts = static_cast<int>(n);
        } else if (key == "after") {
            if (!parse_u64(value, &out->after)) {
                *error = "after: expected a non-negative integer, got '" +
                         value + "'";
                return false;
            }
        } else {
            *error = "unknown key '" + key + "'";
            return false;
        }
    }
    return true;
}

void
FaultPlan::maybe_fire(FaultSite at, std::uint64_t key, int attempt) const
{
    if (at != site || attempt >= attempts) {
        return;
    }
    if (rate > 1 && fault_hash(seed, at, key) % rate != 0) {
        return;
    }
    if (after > 0 && matched_.fetch_add(1, std::memory_order_relaxed) < after) {
        return;
    }
    fired_.fetch_add(1, std::memory_order_relaxed);
    switch (kind) {
    case Kind::kThrow: {
        std::ostringstream msg;
        msg << "injected fault: site=" << fault_site_name(at)
            << " key=" << key << " attempt=" << attempt;
        throw InjectedFault(msg.str());
    }
    case Kind::kBadAlloc:
        throw std::bad_alloc();
    case Kind::kKill:
        std::raise(SIGKILL);
        break;
    }
}

}  // namespace transform::util
