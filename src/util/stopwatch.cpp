#include "util/stopwatch.h"

#include <limits>

namespace transform::util {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::restart() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::elapsed_seconds() const
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
}

double Stopwatch::elapsed_ms() const { return elapsed_seconds() * 1000.0; }

Deadline::Deadline(double budget_seconds) : budget_seconds_(budget_seconds) {}

bool Deadline::expired() const
{
    if (budget_seconds_ <= 0.0) {
        return false;
    }
    return watch_.elapsed_seconds() >= budget_seconds_;
}

double Deadline::remaining_seconds() const
{
    if (budget_seconds_ <= 0.0) {
        return std::numeric_limits<double>::infinity();
    }
    const double left = budget_seconds_ - watch_.elapsed_seconds();
    return left > 0.0 ? left : 0.0;
}

}  // namespace transform::util
