/// \file
/// Bounded enumeration of ELT program skeletons.
///
/// The paper's synthesis bound counts *every* event, ghost instructions
/// included (ptwalk2 = 4 events). Enumeration proceeds per thread over
/// weighted instruction slots:
///   - Read  (TLB miss: R + Rptw = 2 events | hit: R = 1 event)
///   - Write (miss: W + Wdb + Rptw = 3 | hit: W + Wdb = 2; with the
///     dirty-bit-as-RMW ablation each Write also carries an Rdb)
///   - MFENCE (1)
///   - WPTE (1; later linked to exactly one INVLPG per core)
///   - INVLPG (1; linked to a WPTE or spurious)
/// followed by remap linking, canonical VA assignment, WPTE target-PA
/// assignment and optional rmw marking. In MCM mode (vm_enabled = false)
/// only plain Reads/Writes/fences exist with weight 1, reproducing the
/// prior-work litmus synthesis setting used as our baseline.
#pragma once

#include <cstdint>
#include <functional>

#include "elt/program.h"

namespace transform::synth {

/// Knobs for skeleton generation.
struct SkeletonOptions {
    int num_events = 4;       ///< exact total event count
    int max_threads = 2;      ///< cores to consider
    int max_vas = 2;          ///< distinct data VAs
    int max_fresh_pas = 1;    ///< extra PAs beyond the initial frames
    bool vm_enabled = true;   ///< MTM (true) or plain MCM (false) vocabulary
    bool allow_rmw = true;    ///< generate rmw-marked adjacent pairs
    bool allow_fences = true; ///< generate MFENCE slots
    bool allow_full_flush = false;  ///< extension: INVLPGALL (full TLB flush)
    bool dirty_bit_as_rmw = false;  ///< ablation: Writes carry Rdb + Wdb

    // Static per-axiom requirements (soundness-preserving pruning): a
    // violation of the target axiom structurally requires these features.
    bool require_wpte = false;   ///< invlpg axiom needs a PTE write
    bool require_rmw = false;    ///< rmw_atomicity needs an rmw pair
    bool require_shared_walk = false;  ///< tlb_causality needs a TLB hit
};

/// Invokes \p visit for every valid program skeleton with exactly
/// `num_events` events. \p visit returns false to stop early; the function
/// returns false in that case.
bool for_each_skeleton(const SkeletonOptions& options,
                       const std::function<bool(const elt::Program&)>& visit);

/// In a shard prefix, ends the thread under construction instead of
/// appending a slot.
inline constexpr int kCloseThread = -1;

/// A contiguous slice of the skeleton space: every skeleton whose slot
/// structure begins with the given sequence of decisions. A decision is an
/// ordinal into the enumerator's slot vocabulary (append that slot to the
/// thread under construction) or kCloseThread (end the thread). The stream
/// runs across threads: after a kCloseThread, later decisions constrain the
/// next thread — so prefixes can descend past a closed first thread into
/// thread 1+, which is what lets deep adaptive re-splits keep subdividing a
/// heavy one-slot-first-thread subtree. Shards are the unit of work of the
/// parallel synthesis runtime: they are disjoint, they can be searched
/// independently, and visiting the shards of partition_skeletons() in list
/// order yields exactly the program sequence of for_each_skeleton(options)
/// — the property the engine's deterministic merge relies on.
struct SkeletonShard {
    SkeletonOptions options;
    std::vector<int> prefix;
};

/// Splits the skeleton space of \p options into at least
/// min(target_shards, available splits) shards by fixing the first one or
/// more decisions of the first thread. Prefixes that cannot fit in the
/// event budget are dropped; shards may still turn out empty for deeper
/// reasons (linking, VA feasibility), which is harmless.
std::vector<SkeletonShard> partition_skeletons(const SkeletonOptions& options,
                                               int target_shards);

/// Splits the skeleton space of \p options to exactly \p depth fixed
/// decisions (shards whose subtree leaves the first thread earlier stay
/// shallower). depth must be >= 1. Shards in list order concatenate to the
/// full enumeration stream, as with partition_skeletons.
std::vector<SkeletonShard> partition_skeletons_at_depth(
    const SkeletonOptions& options, int depth);

/// Splits \p shard one decision deeper: returns its children in the
/// enumerator's child order (close-thread first — only when the thread
/// under construction is non-empty — then each slot that fits the event
/// budget). A prefix that has closed thread 0 splits on the *next* thread's
/// decisions (closed-prefix splitting), so deep re-splits never dead-end on
/// a heavy one-slot-first-thread subtree. Visiting the children in list
/// order replays the parent's program stream exactly, which is what lets
/// the engine's lazy re-splitting preserve the deterministic-suite
/// contract. Returns an empty vector only when no structural decision
/// remains (the prefix pins the complete slot structure: the event budget
/// is spent and the last thread is closed, or no further thread may open) —
/// such a shard still holds the linking/VA/PA variants of that one
/// structure, but cannot be subdivided further.
std::vector<SkeletonShard> split_shard(const SkeletonShard& shard);

/// Counts the programs in \p shard, stopping early at \p limit. The count
/// is a pure function of the shard (no scheduling dependence).
std::uint64_t count_skeletons(const SkeletonShard& shard,
                              std::uint64_t limit);

/// As for_each_skeleton(options, visit), restricted to one shard.
bool for_each_skeleton(const SkeletonShard& shard,
                       const std::function<bool(const elt::Program&)>& visit);

/// Where a bounded shard search pass stopped (see search_skeletons).
struct ShardSearchStop {
    /// An unvisited candidate remains beyond the visit limit; resume_*
    /// describe where to pick the search back up.
    bool hit_limit = false;
    /// The visitor returned false (caller-initiated stop, e.g. a deadline).
    bool visitor_stopped = false;
    /// Candidates passed to the visitor (skipped candidates excluded).
    std::uint64_t visited = 0;
    /// Candidates actually enumerated past during the skip replay — less
    /// than the requested skip when \p interrupt aborted the pass early.
    std::uint64_t skipped = 0;
    /// Valid when hit_limit: the decision at depth prefix.size() of the
    /// first candidate not consumed — identifies which split_shard child
    /// the remainder of the stream starts in (children before it are fully
    /// consumed, children after it untouched).
    int resume_decision = kCloseThread;
    /// Valid when hit_limit: consumed candidates (skipped + visited)
    /// belonging to that child — the `skip` to resume it with.
    std::uint64_t resume_skip = 0;
};

/// The lazily-splittable search primitive of the parallel runtime: visits
/// \p shard's program stream like for_each_skeleton, except that the first
/// \p skip candidates are enumerated but not passed to \p visit (they were
/// already consumed by an ancestor shard job), and — when \p limit is
/// non-zero — the pass stops as soon as a (limit+1)-th candidate is
/// reached, reporting a resume point instead of visiting it. Handing the
/// stop's resume_decision/resume_skip to the matching split_shard children,
/// in child order, replays exactly the unconsumed remainder of the stream —
/// the contract lazy in-search re-splitting relies on, and what removed the
/// eager count_skeletons probe's duplicate enumeration per shard.
///
/// \p interrupt, when provided, is polled once per *skipped* candidate;
/// returning true aborts the pass (reported as visitor_stopped). Visited
/// candidates can stop the pass from \p visit directly, but the skip
/// replay never reaches the visitor — without the hook a resumed child
/// could burn through its whole skip prefix after its deadline expired.
ShardSearchStop search_skeletons(
    const SkeletonShard& shard, std::uint64_t skip, std::uint64_t limit,
    const std::function<bool(const elt::Program&)>& visit,
    const std::function<bool()>& interrupt = nullptr);

}  // namespace transform::synth
