/// \file
/// Bounded enumeration of ELT program skeletons.
///
/// The paper's synthesis bound counts *every* event, ghost instructions
/// included (ptwalk2 = 4 events). Enumeration proceeds per thread over
/// weighted instruction slots:
///   - Read  (TLB miss: R + Rptw = 2 events | hit: R = 1 event)
///   - Write (miss: W + Wdb + Rptw = 3 | hit: W + Wdb = 2; with the
///     dirty-bit-as-RMW ablation each Write also carries an Rdb)
///   - MFENCE (1)
///   - WPTE (1; later linked to exactly one INVLPG per core)
///   - INVLPG (1; linked to a WPTE or spurious)
/// followed by remap linking, canonical VA assignment, WPTE target-PA
/// assignment and optional rmw marking. In MCM mode (vm_enabled = false)
/// only plain Reads/Writes/fences exist with weight 1, reproducing the
/// prior-work litmus synthesis setting used as our baseline.
#pragma once

#include <cstdint>
#include <functional>

#include "elt/program.h"

namespace transform::synth {

/// Knobs for skeleton generation.
struct SkeletonOptions {
    int num_events = 4;       ///< exact total event count
    int max_threads = 2;      ///< cores to consider
    int max_vas = 2;          ///< distinct data VAs
    int max_fresh_pas = 1;    ///< extra PAs beyond the initial frames
    bool vm_enabled = true;   ///< MTM (true) or plain MCM (false) vocabulary
    bool allow_rmw = true;    ///< generate rmw-marked adjacent pairs
    bool allow_fences = true; ///< generate MFENCE slots
    bool allow_full_flush = false;  ///< extension: INVLPGALL (full TLB flush)
    bool dirty_bit_as_rmw = false;  ///< ablation: Writes carry Rdb + Wdb

    // Static per-axiom requirements (soundness-preserving pruning): a
    // violation of the target axiom structurally requires these features.
    bool require_wpte = false;   ///< invlpg axiom needs a PTE write
    bool require_rmw = false;    ///< rmw_atomicity needs an rmw pair
    bool require_shared_walk = false;  ///< tlb_causality needs a TLB hit
};

/// Invokes \p visit for every valid program skeleton with exactly
/// `num_events` events. \p visit returns false to stop early; the function
/// returns false in that case.
bool for_each_skeleton(const SkeletonOptions& options,
                       const std::function<bool(const elt::Program&)>& visit);

/// In a shard prefix, ends the first thread instead of appending a slot.
inline constexpr int kCloseThread = -1;

/// A contiguous slice of the skeleton space: every skeleton whose first
/// thread begins with the given sequence of slot choices (ordinals into the
/// enumerator's slot vocabulary, or kCloseThread to end the first thread).
/// Shards are the unit of work of the parallel synthesis runtime: they are
/// disjoint, they can be searched independently, and visiting the shards of
/// partition_skeletons() in list order yields exactly the program sequence
/// of for_each_skeleton(options) — the property the engine's deterministic
/// merge relies on.
struct SkeletonShard {
    SkeletonOptions options;
    std::vector<int> prefix;
};

/// Splits the skeleton space of \p options into at least
/// min(target_shards, available splits) shards by fixing the first one or
/// more decisions of the first thread. Prefixes that cannot fit in the
/// event budget are dropped; shards may still turn out empty for deeper
/// reasons (linking, VA feasibility), which is harmless.
std::vector<SkeletonShard> partition_skeletons(const SkeletonOptions& options,
                                               int target_shards);

/// Splits the skeleton space of \p options to exactly \p depth fixed
/// decisions (shards whose subtree leaves the first thread earlier stay
/// shallower). depth must be >= 1. Shards in list order concatenate to the
/// full enumeration stream, as with partition_skeletons.
std::vector<SkeletonShard> partition_skeletons_at_depth(
    const SkeletonOptions& options, int depth);

/// Splits \p shard one decision deeper: returns its children in the
/// enumerator's child order (close-thread first — absent for an empty
/// prefix, a thread must be non-empty before closing — then each feasible
/// slot). Visiting the children in list order replays the parent's program
/// stream exactly, which is what lets the engine's adaptive re-splitting
/// preserve the deterministic-suite contract. Returns an empty vector when
/// the shard cannot be deepened (its prefix already closed the first
/// thread).
std::vector<SkeletonShard> split_shard(const SkeletonShard& shard);

/// Counts the programs in \p shard, stopping early at \p limit. The count
/// is a pure function of the shard (no scheduling dependence) — the
/// engine's adaptive re-splitting uses `count_skeletons(shard, T + 1) > T`
/// as its deterministic cost probe.
std::uint64_t count_skeletons(const SkeletonShard& shard,
                              std::uint64_t limit);

/// As for_each_skeleton(options, visit), restricted to one shard.
bool for_each_skeleton(const SkeletonShard& shard,
                       const std::function<bool(const elt::Program&)>& visit);

}  // namespace transform::synth
