/// \file
/// Canonical program keys: the deduplication engine of the synthesis
/// pipeline (section IV-C). Two ELT programs are the same test iff they
/// differ only by thread permutation, renaming of virtual addresses, or
/// renaming of physical addresses (respecting the fixed initial VA i -> PA i
/// mapping). The canonical key is the lexicographically smallest
/// serialization over all such symmetries; executions of one program share
/// the key, so deduplicating on it collapses executions into unique ELT
/// programs exactly as the paper's dedup stage does.
///
/// Keys are computed once per candidate program in the synthesis inner
/// loop, so the serializer works out of flat arrays and a reusable string
/// buffer (CanonicalScratch) instead of per-permutation maps and
/// stringstreams; one scratch per worker keeps the loop allocation-free in
/// steady state.
#pragma once

#include <string>
#include <vector>

#include "elt/program.h"

namespace transform::synth {

/// Reusable buffers for canonical_key: address-renaming tables, event
/// labels, and the candidate/best serialization strings. Do not share one
/// scratch between concurrent callers.
struct CanonicalScratch {
    std::vector<int> va_map;        ///< original VA -> canonical number (-1)
    std::vector<int> pa_map;        ///< original PA -> canonical number (-1)
    std::vector<int> label_thread;  ///< per event: renamed thread index
    std::vector<int> label_pos;     ///< per event: position in its thread
    std::string candidate;          ///< serialization being built
    std::string best;               ///< minimum serialization so far
};

/// Returns the canonical key for \p program. Programs are isomorphic
/// (thread/VA/PA symmetry) iff their keys are equal.
std::string canonical_key(const elt::Program& program);

/// As canonical_key, reusing \p scratch across calls (the synthesis hot
/// path). Byte-identical to the scratch-free overload.
std::string canonical_key(const elt::Program& program,
                          CanonicalScratch* scratch);

/// Serializes the program with threads taken in the given order and
/// addresses renamed by first use — one candidate string considered by
/// canonical_key, exposed for tests.
std::string serialize_with_thread_order(const elt::Program& program,
                                        const std::vector<int>& thread_order);

}  // namespace transform::synth
