/// \file
/// Canonical program keys: the deduplication engine of the synthesis
/// pipeline (section IV-C). Two ELT programs are the same test iff they
/// differ only by thread permutation, renaming of virtual addresses, or
/// renaming of physical addresses (respecting the fixed initial VA i -> PA i
/// mapping). The canonical key is the lexicographically smallest
/// serialization over all such symmetries; executions of one program share
/// the key, so deduplicating on it collapses executions into unique ELT
/// programs exactly as the paper's dedup stage does.
#pragma once

#include <string>

#include "elt/program.h"

namespace transform::synth {

/// Returns the canonical key for \p program. Programs are isomorphic
/// (thread/VA/PA symmetry) iff their keys are equal.
std::string canonical_key(const elt::Program& program);

/// Serializes the program with threads taken in the given order and
/// addresses renamed by first use — one candidate string considered by
/// canonical_key, exposed for tests.
std::string serialize_with_thread_order(const elt::Program& program,
                                        const std::vector<int>& thread_order);

}  // namespace transform::synth
