#include "synth/engine.h"

#include <algorithm>
#include <set>
#include <thread>
#include <utility>

#include "elt/derive.h"
#include "mtm/encoding.h"
#include "sched/scheduler.h"
#include "sched/sharded_index.h"
#include "synth/canonical.h"
#include "synth/exec_enum.h"
#include "synth/minimality.h"
#include "synth/skeleton.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace transform::synth {

using elt::Execution;
using elt::Program;

namespace {

/// Shards per event bound. Fixed (rather than derived from the worker
/// count) so the shard list — and with it the candidate tickets — is a pure
/// function of the options: the same suite falls out for every `jobs`.
constexpr int kShardsPerBound = 32;

/// Ticket stride between shards: ticket = shard_index * stride + position,
/// so ticket order across all shards equals the sequential enumeration
/// order (shards concatenate to the full stream; no shard holds 2^40
/// candidates).
constexpr std::uint64_t kTicketStride = std::uint64_t{1} << 40;

/// Static per-axiom pruning flags: structural features a violation of the
/// axiom necessarily requires. Sound (never prunes a violating program) and
/// a large win for the rarer axioms.
void
set_axiom_requirements(const std::string& axiom, SkeletonOptions* skeleton)
{
    if (axiom == "invlpg") {
        // fr_va and remap edges both start/end at a PTE write.
        skeleton->require_wpte = true;
    } else if (axiom == "rmw_atomicity") {
        skeleton->require_rmw = true;
    } else if (axiom == "tlb_causality") {
        // ptw_source needs a walk with a second user: a TLB hit.
        skeleton->require_shared_walk = true;
    }
}

/// Builds the per-size skeleton options (shared by both drivers).
SkeletonOptions
skeleton_options(const mtm::Model& model, const std::string& axiom_name,
                 const SynthesisOptions& options, int size)
{
    SkeletonOptions skeleton;
    skeleton.num_events = size;
    skeleton.max_threads = options.max_threads;
    skeleton.max_vas = options.max_vas;
    skeleton.max_fresh_pas = options.max_fresh_pas;
    skeleton.vm_enabled = model.vm_aware();
    skeleton.allow_rmw = options.allow_rmw;
    skeleton.allow_fences = options.allow_fences;
    skeleton.allow_full_flush = options.allow_full_flush;
    skeleton.dirty_bit_as_rmw = options.dirty_bit_as_rmw;
    set_axiom_requirements(axiom_name, &skeleton);
    return skeleton;
}

/// Searches \p program's execution space for the first violating,
/// interesting, minimal witness of \p axiom_name (any one witness suffices:
/// minimality and dedup are program-level once a forbidden witness exists).
/// Returns true and fills the out-params when one exists.
bool
find_witness(const mtm::Model& model, const std::string& axiom_name,
             const SynthesisOptions& options, const Program& program,
             const util::Deadline& deadline, Execution* witness,
             std::vector<std::string>* witness_violated,
             std::uint64_t* executions_considered, bool* timed_out)
{
    bool accepted = false;
    auto consider = [&](const Execution& execution) {
        ++*executions_considered;
        if (deadline.expired()) {
            *timed_out = true;
            return false;
        }
        const elt::DerivedRelations derived =
            elt::derive(execution, model.derive_options());
        if (!derived.well_formed) {
            return true;
        }
        const std::vector<std::string> violated =
            model.violated_axioms(program, derived);
        if (std::find(violated.begin(), violated.end(), axiom_name) ==
            violated.end()) {
            return true;
        }
        if (!contains_write(program)) {
            return true;
        }
        if (options.require_minimal) {
            const MinimalityVerdict verdict = judge(model, execution);
            if (!verdict.minimal) {
                return true;
            }
        }
        accepted = true;
        *witness = execution;
        *witness_violated = violated;
        return false;  // stop at the first qualifying witness
    };

    if (options.backend == Backend::kEnumerative) {
        for_each_execution(program, model.vm_aware(), consider);
    } else {
        mtm::ProgramEncoding encoding(program, &model);
        for (const Execution& execution : encoding.enumerate(axiom_name)) {
            if (!consider(execution)) {
                break;
            }
        }
    }
    return accepted;
}

/// What one shard job hands back to the merge step.
struct ShardOutput {
    std::vector<SynthesizedTest> tests;
    std::vector<std::uint64_t> tickets;  ///< aligned with tests
    std::uint64_t programs = 0;
    std::uint64_t executions = 0;
    std::uint64_t duplicates = 0;
    bool timed_out = false;
};

}  // namespace

SuiteResult
synthesize_suite(const mtm::Model& model, const std::string& axiom_name,
                 const SynthesisOptions& options)
{
    TF_ASSERT(model.axiom(axiom_name) != nullptr);
    SuiteResult result;
    result.axiom = axiom_name;
    util::Stopwatch watch;
    util::Deadline deadline(options.time_budget_seconds);

    // Partition the search space by (event bound, skeleton prefix).
    std::vector<SkeletonShard> shards;
    for (int size = options.min_bound; size <= options.bound; ++size) {
        const SkeletonOptions skeleton =
            skeleton_options(model, axiom_name, options, size);
        for (SkeletonShard& shard :
             partition_skeletons(skeleton, kShardsPerBound)) {
            shards.push_back(std::move(shard));
        }
    }

    sched::ShardedKeyIndex index;
    std::vector<ShardOutput> outputs(shards.size());
    sched::WorkStealingPool pool(options.jobs);
    std::vector<sched::WorkStealingPool::Job> jobs;
    jobs.reserve(shards.size());
    for (std::size_t si = 0; si < shards.size(); ++si) {
        jobs.push_back([&model, &axiom_name, &options, &deadline, &index,
                        &outputs, &shards, si](int) {
            ShardOutput& out = outputs[si];
            // Per-job Model copy: the axiom closures are stateless, but
            // keeping workers fully independent costs nothing and avoids
            // reasoning about shared access.
            const mtm::Model local(model.name(), model.vm_aware(),
                                   model.axioms());
            std::uint64_t next_ticket = kTicketStride * si;
            for_each_skeleton(shards[si], [&](const Program& program) {
                if (deadline.expired()) {
                    out.timed_out = true;
                    return false;
                }
                const std::uint64_t ticket = next_ticket++;
                ++out.programs;
                std::string key;
                if (options.dedup) {
                    // Claim the key. Only the holder of the minimum ticket
                    // evaluates: any earlier candidate with this key is
                    // isomorphic and receives the same verdict, so its
                    // owner's result (or rejection) stands for ours.
                    key = canonical_key(program);
                    if (!index.record(key, ticket).is_min) {
                        ++out.duplicates;
                        return true;
                    }
                }
                Execution witness = Execution::empty_for(program);
                std::vector<std::string> violated;
                const bool accepted = find_witness(
                    local, axiom_name, options, program, deadline, &witness,
                    &violated, &out.executions, &out.timed_out);
                if (out.timed_out) {
                    return false;
                }
                if (accepted) {
                    SynthesizedTest test;
                    test.witness = witness;
                    test.canonical_key =
                        options.dedup ? key : canonical_key(program);
                    test.size = program.num_events();
                    test.violated = violated;
                    out.tests.push_back(std::move(test));
                    out.tickets.push_back(ticket);
                }
                return true;
            });
        });
    }
    pool.run_batch(std::move(jobs));

    // Merge. All workers have recorded all their candidates, so the per-key
    // minimum ticket is now a pure function of the options; keeping exactly
    // the test whose ticket equals it resolves every cross-shard race
    // toward the sequential-enumeration-order winner.
    bool timed_out = false;
    std::vector<std::pair<SynthesizedTest, std::uint64_t>> merged;
    for (ShardOutput& out : outputs) {
        result.programs_considered += out.programs;
        result.executions_considered += out.executions;
        result.duplicates_rejected += out.duplicates;
        timed_out = timed_out || out.timed_out;
        for (std::size_t i = 0; i < out.tests.size(); ++i) {
            if (!options.dedup ||
                index.min_ticket(out.tests[i].canonical_key) ==
                    out.tickets[i]) {
                merged.emplace_back(std::move(out.tests[i]), out.tickets[i]);
            }
        }
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) {
                  return std::tie(a.first.canonical_key, a.second) <
                         std::tie(b.first.canonical_key, b.second);
              });
    result.tests.reserve(merged.size());
    for (auto& [test, ticket] : merged) {
        result.tests.push_back(std::move(test));
    }

    result.scheduler = pool.stats();
    result.scheduler.dedup_hits = index.hits();
    result.seconds = watch.elapsed_seconds();
    result.complete = !timed_out;
    return result;
}

std::vector<SuiteResult>
synthesize_all(const mtm::Model& model, const SynthesisOptions& options)
{
    std::vector<SuiteResult> out;
    for (const mtm::Axiom& axiom : model.axioms()) {
        out.push_back(synthesize_suite(model, axiom.name, options));
    }
    return out;
}

std::vector<SuiteResult>
synthesize_all_parallel(const mtm::Model& model,
                        const SynthesisOptions& options)
{
    const std::size_t count = model.axioms().size();
    std::vector<SuiteResult> out(count);
    std::vector<std::jthread> workers;
    workers.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        workers.emplace_back([&model, &options, &out, i] {
            // Each worker builds its own Model copy: the axiom closures are
            // stateless, but keeping workers fully independent costs nothing
            // and avoids reasoning about shared access.
            const mtm::Model local(model.name(), model.vm_aware(),
                                   model.axioms());
            out[i] = synthesize_suite(local, local.axioms()[i].name, options);
        });
    }
    workers.clear();  // jthread joins on destruction
    return out;
}

int
unique_test_count(const std::vector<SuiteResult>& suites)
{
    std::set<std::string> keys;
    for (const SuiteResult& suite : suites) {
        for (const SynthesizedTest& test : suite.tests) {
            keys.insert(test.canonical_key);
        }
    }
    return static_cast<int>(keys.size());
}

}  // namespace transform::synth
