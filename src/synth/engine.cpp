#include "synth/engine.h"

#include <algorithm>
#include <set>
#include <thread>

#include "elt/derive.h"
#include "mtm/encoding.h"
#include "synth/canonical.h"
#include "synth/exec_enum.h"
#include "synth/minimality.h"
#include "synth/skeleton.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace transform::synth {

using elt::Execution;
using elt::Program;

namespace {

/// Static per-axiom pruning flags: structural features a violation of the
/// axiom necessarily requires. Sound (never prunes a violating program) and
/// a large win for the rarer axioms.
void
set_axiom_requirements(const std::string& axiom, SkeletonOptions* skeleton)
{
    if (axiom == "invlpg") {
        // fr_va and remap edges both start/end at a PTE write.
        skeleton->require_wpte = true;
    } else if (axiom == "rmw_atomicity") {
        skeleton->require_rmw = true;
    } else if (axiom == "tlb_causality") {
        // ptw_source needs a walk with a second user: a TLB hit.
        skeleton->require_shared_walk = true;
    }
}

}  // namespace

SuiteResult
synthesize_suite(const mtm::Model& model, const std::string& axiom_name,
                 const SynthesisOptions& options)
{
    TF_ASSERT(model.axiom(axiom_name) != nullptr);
    SuiteResult result;
    result.axiom = axiom_name;
    util::Stopwatch watch;
    util::Deadline deadline(options.time_budget_seconds);

    std::set<std::string> seen_keys;
    bool timed_out = false;

    for (int size = options.min_bound;
         size <= options.bound && !timed_out; ++size) {
        SkeletonOptions skeleton;
        skeleton.num_events = size;
        skeleton.max_threads = options.max_threads;
        skeleton.max_vas = options.max_vas;
        skeleton.max_fresh_pas = options.max_fresh_pas;
        skeleton.vm_enabled = model.vm_aware();
        skeleton.allow_rmw = options.allow_rmw;
        skeleton.allow_fences = options.allow_fences;
        skeleton.allow_full_flush = options.allow_full_flush;
        skeleton.dirty_bit_as_rmw = options.dirty_bit_as_rmw;
        set_axiom_requirements(axiom_name, &skeleton);

        for_each_skeleton(skeleton, [&](const Program& program) {
            if (deadline.expired()) {
                timed_out = true;
                return false;
            }
            ++result.programs_considered;
            if (options.dedup) {
                // Skip programs already judged (same canonical form) —
                // isomorphic programs always receive the same verdict.
                const std::string key = canonical_key(program);
                if (!seen_keys.insert(key).second) {
                    ++result.duplicates_rejected;
                    return true;
                }
            }

            // Find a violating, interesting, minimal execution of this
            // program (any one witness suffices: minimality and dedup are
            // program-level once a forbidden witness exists).
            bool accepted = false;
            std::vector<std::string> witness_violated;
            Execution witness = Execution::empty_for(program);

            auto consider = [&](const Execution& execution) {
                ++result.executions_considered;
                if (deadline.expired()) {
                    timed_out = true;
                    return false;
                }
                const elt::DerivedRelations derived =
                    elt::derive(execution, model.derive_options());
                if (!derived.well_formed) {
                    return true;
                }
                const std::vector<std::string> violated =
                    model.violated_axioms(program, derived);
                if (std::find(violated.begin(), violated.end(), axiom_name) ==
                    violated.end()) {
                    return true;
                }
                if (!contains_write(program)) {
                    return true;
                }
                if (options.require_minimal) {
                    const MinimalityVerdict verdict = judge(model, execution);
                    if (!verdict.minimal) {
                        return true;
                    }
                }
                accepted = true;
                witness = execution;
                witness_violated = violated;
                return false;  // stop at the first qualifying witness
            };

            if (options.backend == Backend::kEnumerative) {
                for_each_execution(program, model.vm_aware(), consider);
            } else {
                mtm::ProgramEncoding encoding(program, &model);
                for (const Execution& execution :
                     encoding.enumerate(axiom_name)) {
                    if (!consider(execution)) {
                        break;
                    }
                }
            }
            if (timed_out) {
                return false;
            }
            if (accepted) {
                SynthesizedTest test;
                test.witness = witness;
                test.canonical_key = canonical_key(program);
                test.size = program.num_events();
                test.violated = witness_violated;
                result.tests.push_back(std::move(test));
            }
            return true;
        });
    }

    result.seconds = watch.elapsed_seconds();
    result.complete = !timed_out;
    return result;
}

std::vector<SuiteResult>
synthesize_all(const mtm::Model& model, const SynthesisOptions& options)
{
    std::vector<SuiteResult> out;
    for (const mtm::Axiom& axiom : model.axioms()) {
        out.push_back(synthesize_suite(model, axiom.name, options));
    }
    return out;
}

std::vector<SuiteResult>
synthesize_all_parallel(const mtm::Model& model,
                        const SynthesisOptions& options)
{
    const std::size_t count = model.axioms().size();
    std::vector<SuiteResult> out(count);
    std::vector<std::thread> workers;
    workers.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        workers.emplace_back([&model, &options, &out, i] {
            // Each worker builds its own Model copy: the axiom closures are
            // stateless, but keeping workers fully independent costs nothing
            // and avoids reasoning about shared access.
            const mtm::Model local(model.name(), model.vm_aware(),
                                   model.axioms());
            out[i] = synthesize_suite(local, local.axioms()[i].name, options);
        });
    }
    for (std::thread& worker : workers) {
        worker.join();
    }
    return out;
}

int
unique_test_count(const std::vector<SuiteResult>& suites)
{
    std::set<std::string> keys;
    for (const SuiteResult& suite : suites) {
        for (const SynthesizedTest& test : suite.tests) {
            keys.insert(test.canonical_key);
        }
    }
    return static_cast<int>(keys.size());
}

}  // namespace transform::synth
