#include "synth/engine.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "elt/derive.h"
#include "mtm/encoding.h"
#include "mtm/incremental.h"
#include "obs/alloc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "sched/sharded_index.h"
#include "synth/canonical.h"
#include "synth/checkpoint.h"
#include "synth/exec_enum.h"
#include "synth/minimality.h"
#include "synth/skeleton.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace transform::synth {

using elt::Execution;
using elt::Program;

namespace {

// kTicketStride / kMinLeafStride / child_stride_for live in engine.h so
// replays (bench_parallel_scaling's eager-probe baseline) share them.

/// The re-split cost model's band: whatever picks the threshold (static
/// model or observed-cost feedback), an armed limit stays within
/// [kResplitThresholdFloor, kResplitThresholdCeil] candidates.
constexpr std::uint64_t kResplitThresholdFloor = std::uint64_t{1} << 6;
constexpr std::uint64_t kResplitThresholdCeil = std::uint64_t{1} << 14;

/// Observed-cost feedback targets this much evaluation work per leaf
/// before it re-splits (~270 ms): threshold = target / EWMA(per-candidate
/// nanos), clamped to the band above. Large enough that re-splitting stays
/// rare on cheap workloads, small enough that one expensive shard cannot
/// serialize a whole suite behind one worker.
constexpr std::uint64_t kResplitTargetLeafNanos = std::uint64_t{1} << 28;

/// Observed per-candidate cost is tracked per event bound (cost grows
/// ~exponentially with the bound, so mixing bounds in one average would
/// make the cheap bounds re-split like the expensive ones). Bounds are
/// tiny integers; clamp into a fixed slot array.
constexpr int kCostSlots = 32;

int
cost_slot(int num_events)
{
    return std::clamp(num_events, 0, kCostSlots - 1);
}

/// Resolves the adaptive re-split threshold from the STATIC cost model: an
/// explicit SynthesisOptions::resplit_threshold wins; 0 selects the model.
/// The model targets a roughly constant amount of per-leaf evaluation
/// work: the witness search per candidate grows roughly exponentially with
/// the event count (each extra event multiplies the execution space), VM
/// mode adds ghost events (page-table walks, dirty-bit writes) on top of
/// the architectural ones, and the dirty-bit-as-RMW ablation adds one more
/// Rdb per write — so the candidate threshold shrinks as those knobs grow.
/// A pure function of the skeleton options; execute_shard_task layers the
/// observed-cost EWMA on top (auto mode only), which refines the threshold
/// from measured per-candidate nanos once the suite has observations.
std::uint64_t
resolve_resplit_threshold(const SynthesisOptions& options,
                          const SkeletonOptions& skeleton)
{
    if (options.resplit_threshold > 0) {
        return options.resplit_threshold;
    }
    int exponent = skeleton.num_events;
    if (skeleton.vm_enabled) {
        exponent += skeleton.num_events / 2;
    }
    if (skeleton.dirty_bit_as_rmw) {
        exponent += skeleton.num_events / 4;
    }
    const int shift = std::clamp(24 - exponent, 6, 14);
    return std::uint64_t{1} << shift;
}

/// Static per-axiom pruning flags: structural features a violation of the
/// axiom necessarily requires. Sound (never prunes a violating program) and
/// a large win for the rarer axioms.
void
set_axiom_requirements(const std::string& axiom, SkeletonOptions* skeleton)
{
    if (axiom == "invlpg") {
        // fr_va and remap edges both start/end at a PTE write.
        skeleton->require_wpte = true;
    } else if (axiom == "rmw_atomicity") {
        skeleton->require_rmw = true;
    } else if (axiom == "tlb_causality") {
        // ptw_source needs a walk with a second user: a TLB hit.
        skeleton->require_shared_walk = true;
    }
}

/// Per-worker reusable buffers for the candidate-evaluation hot path:
/// derivation output + scratch, the judge's buffers, and the
/// canonicalizer's tables. One per (suite, worker); a worker runs one job
/// at a time, so jobs index into the suite's vector with their worker id.
struct WorkerScratch {
    elt::DerivedRelations derived;
    elt::DeriveScratch derive;
    JudgeScratch judge;
    CanonicalScratch canonical;
    mtm::EncodingScratch encoding;  ///< SAT backend: factory + solver reuse
    /// SAT backend with sat_incremental: the worker's live solver session
    /// (configured per suite by launch_suite; idle otherwise).
    mtm::IncrementalEncoding incremental;
    /// Fault injection (docs/robustness.md): the suite's plan plus the
    /// probe identity of the candidate under evaluation — set per job and
    /// per candidate by search_shard, so firing is a pure function of
    /// (seed, site, candidate ticket, attempt), never of scheduling. Null
    /// plan (the default) costs one pointer check per probe.
    const util::FaultPlan* fault_plan = nullptr;
    std::uint64_t fault_key = 0;
    int fault_attempt = 0;
};

/// Searches \p program's execution space for the first violating,
/// interesting, minimal witness of the axiom at \p axiom_index (any one
/// witness suffices: minimality and dedup are program-level once a
/// forbidden witness exists). Returns true and fills the out-params when
/// one exists. All per-execution work runs through \p scratch; the only
/// allocations on an accepted witness are the witness copy and its
/// violated-axiom names.
bool
find_witness(const mtm::Model& model, const std::string& axiom_name,
             int axiom_index, const SynthesisOptions& options,
             const Program& program, const util::Deadline& deadline,
             WorkerScratch* scratch, obs::MetricsRegistry* metrics,
             int worker, Execution* witness,
             std::vector<std::string>* witness_violated,
             std::uint64_t* executions_considered, bool* timed_out,
             bool* cancelled)
{
    if (!contains_write(program)) {
        return false;  // never interesting: skip the whole execution space
    }
    const mtm::AxiomMask target = mtm::AxiomMask{1} << axiom_index;
    bool accepted = false;
    std::uint64_t considered = 0;
    auto consider = [&](const Execution& execution) {
        ++considered;
        if (deadline.expired()) {
            *timed_out = true;
            return false;
        }
        if (options.cancel.requested()) {
            *cancelled = true;
            return false;
        }
        if (scratch->fault_plan != nullptr) {
            scratch->fault_plan->maybe_fire(util::FaultSite::kDerive,
                                            scratch->fault_key,
                                            scratch->fault_attempt);
        }
        mtm::AxiomMask violated{};
        {
            const obs::ScopedPhase phase(metrics, worker,
                                         obs::Phase::kDerive);
            elt::derive_into(execution, model.derive_options(),
                             &scratch->derived, &scratch->derive);
            if (!scratch->derived.well_formed) {
                return true;
            }
            violated = model.violated_mask(program, scratch->derived,
                                           &scratch->derive.cycle);
        }
        if ((violated & target) == 0) {
            return true;
        }
        if (options.require_minimal) {
            if (scratch->fault_plan != nullptr) {
                scratch->fault_plan->maybe_fire(util::FaultSite::kJudge,
                                                scratch->fault_key,
                                                scratch->fault_attempt);
            }
            // The judge attributes its own phases (kJudge for verdicts,
            // kRelax for relaxation rebuilds) via scratch->judge.metrics,
            // set per job in search_shard.
            const MinimalityVerdict verdict =
                judge(model, execution, &scratch->judge);
            if (!verdict.minimal) {
                return true;
            }
        }
        accepted = true;
        *witness = execution;
        *witness_violated = model.mask_names(violated);
        return false;  // stop at the first qualifying witness
    };

    // Streaming AllSAT: consider() returning false stops the solver at
    // the first accepted witness instead of materializing the whole
    // violating space. The worker's factory/solver pair is reused across
    // every program of the shard. With sat_incremental, the search first
    // PROBES through the worker's live assumption-based session (no
    // per-candidate encoding; candidate order within a structure reuses
    // one solver and its learned clauses). A probe acceptance only proves
    // existence — the live solver's model order differs from a fresh
    // solver's — so accepted candidates (the rare case) REPLAY through
    // the fresh per-program encoding, reproducing the non-incremental
    // witness and executions_considered byte for byte. Rejected
    // candidates enumerate the same violating set either way, so the
    // probe's execution count stands.
    auto sat_search = [&]() {
        // Allocations of the encode/solve machinery land in kSatEncode
        // (the time split between encode and solve comes from the solver's
        // gated clock; the alloc split is not worth a second seam).
        // consider()'s ScopedPhase sections re-tag their own allocations.
        const obs::ScopedAllocPhase alloc_phase(obs::Phase::kSatEncode);
        if (scratch->fault_plan != nullptr) {
            scratch->fault_plan->maybe_fire(util::FaultSite::kSatSolve,
                                            scratch->fault_key,
                                            scratch->fault_attempt);
        }
        if (options.sat_incremental) {
            scratch->incremental.enumerate(program, consider);
            if (!accepted || *timed_out) {
                return;
            }
            considered = 0;  // the replay recounts from scratch
            accepted = false;
            // Note the replay re-derives and re-judges the executions the
            // probe already visited: derive/judge phase totals honestly
            // include that duplicated work (~4% of candidates accept).
        }
        mtm::ProgramEncoding encoding(program, &model, &scratch->encoding);
        encoding.enumerate(axiom_name, consider);
    };

    if (options.backend == Backend::kEnumerative) {
        for_each_execution(program, model.vm_aware(), consider);
    } else if (metrics == nullptr) {
        sat_search();
    } else {
        // Same search, with phase attribution. kSatSolve comes from the
        // solvers' own gated clocks (set_timing) — the fresh per-program
        // solver plus, under sat_incremental, the live session's backend —
        // and kSatEncode is the remaining wall time of the encode+enumerate
        // pair after subtracting solve time and the derive/judge time
        // consider() already claimed above — so the phases never
        // double-count.
        auto solve_nanos = [&]() {
            std::uint64_t nanos =
                scratch->encoding.solver.lifetime_stats().solve_nanos;
            if (options.sat_incremental) {
                // Session-level: sums the live base's backend and every
                // cached base's.
                nanos += scratch->incremental.lifetime_stats().solve_nanos;
            }
            return nanos;
        };
        const auto inner_nanos = [&]() {
            return metrics->worker_phase_nanos(worker, obs::Phase::kDerive) +
                   metrics->worker_phase_nanos(worker, obs::Phase::kJudge) +
                   metrics->worker_phase_nanos(worker, obs::Phase::kRelax);
        };
        const std::uint64_t start = obs::now_nanos();
        const std::uint64_t inner_before = inner_nanos();
        const std::uint64_t solve_before = solve_nanos();
        sat_search();
        const std::uint64_t wall = obs::now_nanos() - start;
        const std::uint64_t solve = solve_nanos() - solve_before;
        const std::uint64_t inner = inner_nanos() - inner_before;
        metrics->add(worker, obs::Phase::kSatSolve, solve);
        metrics->add(worker, obs::Phase::kSatEncode,
                     wall > solve + inner ? wall - solve - inner : 0);
    }
    *executions_considered += considered;
    return accepted;
}

/// One unit of search: a skeleton shard plus the ticket sub-range its
/// candidates are numbered from. Lazy re-splitting replaces the unsearched
/// remainder of a task with child tasks over sub-ranges of the same ticket
/// space; `skip` counts leading candidates of the shard that an ancestor
/// task already searched (and numbered), which the child enumerates past
/// without revisiting.
struct ShardTask {
    SkeletonShard shard;
    std::uint64_t ticket_base = 0;
    std::uint64_t ticket_stride = 0;
    std::uint64_t skip = 0;
    /// Fault containment: which attempt at this task this is (0 = first).
    /// Retries bump it — it bounds the retry budget and keys the
    /// fault-injection probes, so a plan with attempts=1 faults the first
    /// attempt and lets the retry through.
    int attempt = 0;
    /// When tracing: the flow id the submitting parent opened with
    /// record_flow_start, consumed by this task's record_flow_end at job
    /// start — the arrow that draws re-split lineage in the timeline.
    /// 0 = top-level shard, no arrow.
    std::uint64_t trace_flow = 0;
};

/// All in-flight state of one suite synthesis: the job closures reference
/// it, so it outlives the group (launch_suite ... pool.wait ...
/// finish_suite). One SuiteRun maps to one sched job group; several
/// SuiteRuns can share one pool (synthesize_all_parallel).
struct SuiteRun {
    SuiteRun(const mtm::Model& source, std::string axiom_name,
             const SynthesisOptions& opts)
        : model(source.name(), source.vm_aware(), source.axioms()),
          axiom(std::move(axiom_name)), options(opts),
          deadline(opts.time_budget_seconds)
    {
    }

    /// The per-suite time budget starts ticking when the suite's FIRST
    /// shard job actually runs, not at submission: on a shared pool
    /// (synthesize_all_parallel) a later axiom's jobs queue behind earlier
    /// axioms', and charging that queue wait against the budget would
    /// starve late suites that v1's per-axiom threads served immediately.
    /// (Once running, the budget is still wall time and may overlap other
    /// suites' shards — the budget bounds latency, not dedicated compute.)
    ///
    /// SuiteResult::seconds follows the same clock: the watch restarts
    /// here, so a queued suite reports its search time, not search + queue
    /// wait (which previously made `seconds >> budget` with `complete =
    /// true` look contradictory); the wait is reported separately as
    /// SchedulerStats::queue_wait_seconds. Safe despite running on a
    /// worker thread: call_once orders it against every other job, and
    /// finish_suite reads the watch only after pool.wait() on the group.
    const util::Deadline&
    armed_deadline()
    {
        std::call_once(deadline_armed, [this] {
            queue_wait_seconds.store(watch.elapsed_seconds(),
                                     std::memory_order_relaxed);
            watch.restart();
            deadline = util::Deadline(options.time_budget_seconds);
        });
        return deadline;
    }

    /// One private copy per suite; every shard job of the suite shares it
    /// by const reference — the axiom closures are stateless, so concurrent
    /// evaluation through one Model is safe and the per-job deep copies
    /// (std::function closures included) PR 3 paid are gone.
    const mtm::Model model;
    const std::string axiom;
    int axiom_index = 0;  ///< bit position of axiom in model's masks
    const SynthesisOptions options;
    /// Per-worker evaluation scratch, indexed by the pool worker id a job
    /// runs on (sized workers() at launch; a worker runs one job at a time).
    std::vector<WorkerScratch> worker_scratch;
    /// Phase-attributed counters (options.collect_metrics); null when
    /// metrics are off — the instrumentation's disabled fast path.
    std::unique_ptr<obs::MetricsRegistry> metrics;
    util::Stopwatch watch;
    std::once_flag deadline_armed;
    util::Deadline deadline;  ///< access via armed_deadline() from jobs
    sched::ShardedKeyIndex index;
    sched::WorkStealingPool::GroupHandle group;

    std::atomic<std::uint64_t> programs{0};
    std::atomic<std::uint64_t> executions{0};
    std::atomic<std::uint64_t> duplicates{0};
    std::atomic<std::uint64_t> lazy_resplits{0};
    std::atomic<std::uint64_t> closed_prefix_splits{0};
    std::atomic<std::uint64_t> skip_enumerations{0};
    std::atomic<double> queue_wait_seconds{0.0};
    std::atomic<double> search_seconds{0.0};
    std::atomic<bool> timed_out{false};
    std::atomic<bool> cancelled{false};
    std::atomic<std::uint64_t> shard_retries{0};
    std::atomic<std::uint64_t> shards_quarantined{0};
    std::atomic<std::uint64_t> ckpt_saved{0};
    std::atomic<std::uint64_t> ckpt_replayed{0};
    /// The run's checkpoint journal (options.checkpoint; null = off).
    CheckpointJournal* journal = nullptr;
    /// Phase/site-attributed allocation cells (options.track_allocs);
    /// null when tracking is off — shard jobs then never bind a tracker.
    std::unique_ptr<obs::AllocTracker> allocs;

    /// Observed-cost re-split feedback (options.observed_cost_feedback,
    /// auto-threshold mode only): EWMA of observed per-candidate nanos,
    /// one slot per event bound. 0 = no observation yet (the static model
    /// stands); updated with a lock-free CAS fold by completing jobs.
    std::array<std::atomic<std::uint64_t>, kCostSlots> cost_ewma{};
    std::atomic<std::uint64_t> observed_resplits{0};
    std::atomic<std::uint64_t> threshold_min{0};
    std::atomic<std::uint64_t> threshold_max{0};

    /// Progress-heartbeat counters (options.progress): jobs submitted /
    /// drained across every path (initial shards, re-split children,
    /// retries, replay children) and pre-merge accepted witnesses.
    std::atomic<std::uint64_t> jobs_submitted{0};
    std::atomic<std::uint64_t> jobs_done{0};
    std::atomic<std::uint64_t> tests_found{0};

    /// Records that a shard job armed re-split threshold \p threshold
    /// (widening the min/max range), \p observed = it came from the EWMA
    /// rather than the static model.
    void
    note_threshold(std::uint64_t threshold, bool observed)
    {
        if (observed) {
            observed_resplits.fetch_add(1, std::memory_order_relaxed);
        }
        std::uint64_t prev = threshold_min.load(std::memory_order_relaxed);
        while ((prev == 0 || threshold < prev) &&
               !threshold_min.compare_exchange_weak(
                   prev, threshold, std::memory_order_relaxed)) {
        }
        prev = threshold_max.load(std::memory_order_relaxed);
        while (threshold > prev &&
               !threshold_max.compare_exchange_weak(
                   prev, threshold, std::memory_order_relaxed)) {
        }
    }

    /// Folds one completed job's per-candidate cost sample (nanos) into
    /// the bound's EWMA with alpha = 1/4: next = prev - prev/4 + sample/4
    /// (first observation seeds the average).
    void
    observe_cost(int num_events, std::uint64_t sample)
    {
        std::atomic<std::uint64_t>& slot = cost_ewma[static_cast<std::size_t>(
            cost_slot(num_events))];
        std::uint64_t prev = slot.load(std::memory_order_relaxed);
        std::uint64_t next = 0;
        do {
            next = prev == 0 ? sample : prev - prev / 4 + sample / 4;
        } while (!slot.compare_exchange_weak(prev, next,
                                             std::memory_order_relaxed));
    }

    /// Every shard job calls this on completion, so search_seconds ends up
    /// holding arm-to-last-job wall time — finish_suite cannot read the
    /// watch itself, because on a shared pool (synthesize_all_parallel) it
    /// only runs after EVERY suite's group drained, which would charge an
    /// early suite for the later suites' tail.
    void
    note_job_finished()
    {
        const double elapsed = watch.elapsed_seconds();
        double prev = search_seconds.load(std::memory_order_relaxed);
        while (prev < elapsed &&
               !search_seconds.compare_exchange_weak(
                   prev, elapsed, std::memory_order_relaxed)) {
        }
    }

    std::mutex mu;  ///< guards merged + failures (one lock per event)
    std::vector<std::pair<SynthesizedTest, std::uint64_t>> merged;
    std::vector<ShardFailure> failures;  ///< quarantined shards

    /// Builds the job for a ShardTask; recursive through re-splitting, so
    /// it lives here rather than on the launch_suite stack.
    std::function<sched::WorkStealingPool::Job(ShardTask)> make_job;
};

/// Runs the actual search of one shard and splices its results into the
/// run. Candidates are numbered base + position (skipped candidates were
/// numbered by the ancestor that searched them); the ticket range must
/// stay inside the task's stride so sibling ranges never overlap —
/// kMinLeafStride (4M candidates per deepest leaf) makes exhaustion
/// unreachable in practice, and hitting it fails loudly with a workaround
/// rather than corrupting the deterministic merge. A non-zero \p limit
/// makes the search abandonable: it stops after `limit` candidates and the
/// returned stop tells the caller where the unsearched remainder begins.
ShardSearchStop
search_shard(SuiteRun* run, const ShardTask& task, std::uint64_t limit,
             int worker, CheckpointJournal::ShardRecord* record_out)
{
    const mtm::Model& model = run->model;
    WorkerScratch& scratch = run->worker_scratch[worker];
    obs::MetricsRegistry* metrics = run->metrics.get();
    scratch.judge.metrics = metrics;
    scratch.judge.worker = worker;
    scratch.fault_plan = run->options.fault_plan;
    scratch.fault_attempt = task.attempt;
    const SynthesisOptions& options = run->options;
    const util::Deadline& deadline = run->armed_deadline();
    std::vector<std::pair<SynthesizedTest, std::uint64_t>> tests;
    std::uint64_t programs = 0;
    std::uint64_t executions = 0;
    std::uint64_t duplicates = 0;
    bool timed_out = false;
    bool cancelled = false;
    std::uint64_t next_ticket = task.ticket_base;
    // Skipped candidates never reach the visitor below, so the skip
    // replay polls the deadline (and the cancel token) through the
    // interrupt hook — otherwise a resumed boundary child would replay its
    // whole (compounding) skip prefix after the budget expired.
    const std::function<bool()> deadline_interrupt = [&] {
        if (deadline.expired()) {
            timed_out = true;
            return true;
        }
        if (options.cancel.requested()) {
            cancelled = true;
            return true;
        }
        return false;
    };
    const ShardSearchStop stop = search_skeletons(
        task.shard, task.skip, limit, [&](const Program& program) {
        if (deadline.expired()) {
            timed_out = true;
            return false;
        }
        if (options.cancel.requested()) {
            cancelled = true;
            return false;
        }
        const std::uint64_t ticket = next_ticket++;
        if (ticket - task.ticket_base >= task.ticket_stride) {
            TF_FATAL("shard ticket range exhausted ("
                     << task.ticket_stride << " candidates in one "
                     << "unsplittable shard); rerun with --shard-depth N "
                     << "(fixed sharding) or a larger bound split");
        }
        ++programs;
        std::string key;
        if (options.dedup) {
            // Claim the key. Only the holder of the minimum ticket
            // evaluates: any earlier candidate with this key is isomorphic
            // and receives the same verdict, so its owner's result (or
            // rejection) stands for ours.
            {
                const obs::ScopedPhase phase(metrics, worker,
                                             obs::Phase::kCanonicalize);
                const obs::ScopedAllocSite site(
                    obs::AllocSite::kSiteCanonicalKey);
                key = canonical_key(program, &scratch.canonical);
            }
            bool is_min = false;
            {
                const obs::ScopedPhase phase(metrics, worker,
                                             obs::Phase::kDedup);
                is_min = run->index.record(key, ticket).is_min;
            }
            if (!is_min) {
                ++duplicates;
                return true;
            }
        }
        Execution witness = Execution::empty_for(program);
        std::vector<std::string> violated;
        scratch.fault_key = ticket;
        const bool accepted =
            find_witness(model, run->axiom, run->axiom_index, options,
                         program, deadline, &scratch, metrics, worker,
                         &witness, &violated, &executions, &timed_out,
                         &cancelled);
        if (timed_out || cancelled) {
            return false;
        }
        if (accepted) {
            const obs::ScopedAllocSite site(
                obs::AllocSite::kSiteSuiteGrowth);
            SynthesizedTest test;
            test.witness = witness;
            test.canonical_key =
                options.dedup ? key : canonical_key(program,
                                                    &scratch.canonical);
            test.size = program.num_events();
            test.violated = violated;
            tests.emplace_back(std::move(test), ticket);
        }
        return true;
    }, deadline_interrupt);
    run->programs.fetch_add(programs, std::memory_order_relaxed);
    run->executions.fetch_add(executions, std::memory_order_relaxed);
    run->duplicates.fetch_add(duplicates, std::memory_order_relaxed);
    if (stop.skipped > 0) {
        // The candidates enumerated past on resume are this design's only
        // repeated work; recorded as measured (a deadline abort can stop
        // the replay short of task.skip), so the claim stays honest.
        run->skip_enumerations.fetch_add(stop.skipped,
                                         std::memory_order_relaxed);
    }
    if (timed_out) {
        run->timed_out.store(true, std::memory_order_relaxed);
    }
    if (cancelled) {
        run->cancelled.store(true, std::memory_order_relaxed);
    }
    if (record_out != nullptr && !timed_out && !cancelled) {
        // The task completed its pass (drained or split cleanly): journal
        // its counters and tests. An aborted pass is never journaled — the
        // resumed run re-searches it.
        record_out->programs = programs;
        record_out->executions = executions;
        record_out->duplicates = duplicates;
        record_out->tests = tests;
    }
    if (!tests.empty()) {
        run->tests_found.fetch_add(tests.size(),
                                   std::memory_order_relaxed);
        const obs::ScopedAllocSite site(obs::AllocSite::kSiteSuiteGrowth);
        std::lock_guard<std::mutex> lock(run->mu);
        for (auto& entry : tests) {
            run->merged.push_back(std::move(entry));
        }
    }
    return stop;
}

/// Human-readable identity of a shard task for a quarantine record.
std::string
describe_task(const SuiteRun& run, const ShardTask& task)
{
    std::ostringstream out;
    out << run.axiom << " events=" << task.shard.options.num_events
        << " prefix=[";
    for (std::size_t i = 0; i < task.shard.prefix.size(); ++i) {
        out << (i == 0 ? "" : ",") << task.shard.prefix[i];
    }
    out << "] skip=" << task.skip;
    return out.str();
}

/// Contains a shard fault (docs/robustness.md, "Fault containment"): the
/// job's search escaped with an exception. Rebuilds the worker's possibly
/// poisoned solver state, then retries the identical task with the attempt
/// counter bumped — or quarantines it into SuiteResult::failures once the
/// retry budget is spent. Safe to re-run the task: the throw left no
/// partial results (tests and counters flush only when a search pass
/// completes), and the dedup index records the aborted pass made are
/// idempotent under the retry's equal tickets, so a retried shard's
/// contribution is byte-identical to a fault-free run's.
void
recover_and_reschedule(SuiteRun* raw, sched::WorkStealingPool* pool_ptr,
                       const ShardTask& task, int worker, const char* what)
{
    const SynthesisOptions& options = raw->options;
    WorkerScratch& scratch = raw->worker_scratch[worker];
    // The fresh-path solver may be mid-encoding and the incremental
    // session mid-enumeration; reset both so the worker's next job starts
    // clean. configure() keeps session configuration (timing, conflict
    // budget, interrupt, cache capacity) and rebuilds the solver state.
    scratch.encoding.solver.reset();
    if (options.backend == Backend::kSat && options.sat_incremental) {
        scratch.incremental.configure(&raw->model, raw->axiom,
                                      options.max_vas,
                                      options.max_vas +
                                          options.max_fresh_pas);
    }
    obs::TraceCollector* trace = options.trace;
    if (options.cancel.requested()) {
        raw->cancelled.store(true, std::memory_order_relaxed);
    } else if (raw->armed_deadline().expired()) {
        raw->timed_out.store(true, std::memory_order_relaxed);
    } else if (task.attempt < options.shard_retry_limit) {
        raw->shard_retries.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr) {
            trace->record_instant(worker, "shard retry: " + raw->axiom,
                                  obs::now_nanos());
        }
        ShardTask retry = task;
        retry.attempt = task.attempt + 1;
        retry.trace_flow = 0;  // the parent's flow arrow was consumed
        raw->jobs_submitted.fetch_add(1, std::memory_order_relaxed);
        pool_ptr->submit(raw->group, raw->make_job(std::move(retry)));
    } else {
        raw->shards_quarantined.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr) {
            trace->record_instant(worker,
                                  "shard quarantine: " + raw->axiom,
                                  obs::now_nanos());
        }
        std::lock_guard<std::mutex> lock(raw->mu);
        raw->failures.push_back(
            {describe_task(*raw, task), what, task.attempt + 1});
    }
    raw->note_job_finished();
}

/// Replays a journaled shard task instead of re-searching it: counters and
/// tests come from the record, the tests' tickets are re-recorded in the
/// dedup index, and a split task resubmits exactly the children the
/// original run derived (same strides and skips — the resumed task tree,
/// and with it the journal ids, matches the interrupted run's). Suite
/// byte-identity holds even when only some tasks replay: a kept test's min
/// ticket is in the journal, and a rejected candidate's absence from the
/// index only ever promotes an isomorphic candidate that receives the same
/// rejection. (Counters like dedup_hits can differ in such mixed runs —
/// they are diagnostics; at jobs=1 full replays reproduce them exactly.)
void
replay_shard_record(SuiteRun* raw, sched::WorkStealingPool* pool_ptr,
                    const ShardTask& task,
                    const CheckpointJournal::ShardRecord& rec,
                    std::uint64_t* visited_out, bool* resplit_out)
{
    raw->armed_deadline();
    raw->programs.fetch_add(rec.programs, std::memory_order_relaxed);
    raw->executions.fetch_add(rec.executions, std::memory_order_relaxed);
    raw->duplicates.fetch_add(rec.duplicates, std::memory_order_relaxed);
    for (const auto& [test, ticket] : rec.tests) {
        raw->index.record(test.canonical_key, ticket);
    }
    if (!rec.tests.empty()) {
        raw->tests_found.fetch_add(rec.tests.size(),
                                   std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(raw->mu);
        for (const auto& entry : rec.tests) {
            raw->merged.push_back(entry);
        }
    }
    raw->ckpt_replayed.fetch_add(1, std::memory_order_relaxed);
    if (visited_out != nullptr) {
        *visited_out = rec.visited;
    }
    if (rec.split) {
        if (resplit_out != nullptr) {
            *resplit_out = true;
        }
        raw->lazy_resplits.fetch_add(1, std::memory_order_relaxed);
        if (std::find(task.shard.prefix.begin(), task.shard.prefix.end(),
                      kCloseThread) != task.shard.prefix.end()) {
            raw->closed_prefix_splits.fetch_add(1,
                                                std::memory_order_relaxed);
        }
        const std::vector<SkeletonShard> children = split_shard(task.shard);
        std::size_t boundary = children.size();
        for (std::size_t i = 0; i < children.size(); ++i) {
            if (children[i].prefix.back() == rec.resume_decision) {
                boundary = i;
                break;
            }
        }
        TF_ASSERT(boundary < children.size());
        const std::uint64_t child_stride = child_stride_for(
            task.ticket_stride - rec.visited, children.size() - boundary);
        raw->jobs_submitted.fetch_add(children.size() - boundary,
                                      std::memory_order_relaxed);
        for (std::size_t i = boundary; i < children.size(); ++i) {
            pool_ptr->submit(
                raw->group,
                raw->make_job({children[i],
                               task.ticket_base + rec.visited +
                                   (i - boundary) * child_stride,
                               child_stride,
                               i == boundary ? rec.resume_skip : 0,
                               0, 0}));
        }
    }
    raw->note_job_finished();
}

/// The body of one shard job — lazy-resplit arming, the search itself, and
/// child resubmission. The make_job closures wrap this with the
/// observability shell (span + phase accounting), which reads \p
/// visited_out / \p resplit_out for span args; both may be null.
void
execute_shard_task(SuiteRun* raw, sched::WorkStealingPool* pool_ptr,
                   const ShardTask& task, int worker,
                   std::uint64_t* visited_out, bool* resplit_out)
{
    const SynthesisOptions& options = raw->options;
    if (options.cancel.requested()) {
        // A cancelled run drains its remaining queue without searching —
        // and without arming the deadline or the search clock, so a suite
        // cancelled before its first real job reports ~0 searched seconds
        // rather than its queue wait.
        raw->cancelled.store(true, std::memory_order_relaxed);
        return;
    }
    CheckpointJournal* journal = raw->journal;
    std::uint64_t task_id = 0;
    if (journal != nullptr) {
        task_id = checkpoint_task_id(raw->axiom, task.shard,
                                     task.ticket_base, task.ticket_stride,
                                     task.skip);
        if (const CheckpointJournal::ShardRecord* rec =
                journal->find(task_id)) {
            replay_shard_record(raw, pool_ptr, task, *rec, visited_out,
                                resplit_out);
            return;
        }
    }
    // Lazy adaptive re-splitting: the job starts searching
    // immediately, with a visit limit armed whenever the shard
    // could be split (no separate count_skeletons probe — the old
    // eager probe enumerated every leaf's candidates twice). The
    // limit is the cost-model threshold — refined by the suite's
    // observed-cost EWMA once the bound has observations — and the
    // split is viable only while the remaining ticket range still
    // subdivides cleanly.
    const bool feedback = options.shard_depth == 0 &&
                          options.resplit_threshold == 0 &&
                          options.observed_cost_feedback;
    std::uint64_t limit = 0;
    bool observed_threshold = false;
    std::vector<SkeletonShard> children;
    if (options.shard_depth == 0 &&
        task.ticket_stride >= kMinLeafStride * 2) {
        std::uint64_t threshold =
            resolve_resplit_threshold(options, task.shard.options);
        if (feedback) {
            const std::uint64_t ewma =
                raw->cost_ewma[static_cast<std::size_t>(
                                   cost_slot(task.shard.options.num_events))]
                    .load(std::memory_order_relaxed);
            if (ewma > 0) {
                threshold = std::clamp(kResplitTargetLeafNanos / ewma,
                                       kResplitThresholdFloor,
                                       kResplitThresholdCeil);
                observed_threshold = true;
            }
        }
        if (threshold <= task.ticket_stride - kMinLeafStride) {
            children = split_shard(task.shard);
            if (!children.empty() &&
                child_stride_for(task.ticket_stride - threshold,
                                 children.size()) >= kMinLeafStride) {
                limit = threshold;
            }
        }
        if (limit != 0) {
            raw->note_threshold(limit, observed_threshold);
        }
    }
    // Fault containment boundary: everything a shard search can throw —
    // injected faults included — is caught here and turned into a retry or
    // a quarantine record instead of unwinding into the pool (whose
    // backstop would only log it) or std::terminate.
    CheckpointJournal::ShardRecord record;
    ShardSearchStop stop;
    try {
        if (options.fault_plan != nullptr) {
            options.fault_plan->maybe_fire(util::FaultSite::kShardBoundary,
                                           task.ticket_base ^ task.skip,
                                           task.attempt);
        }
        const std::uint64_t search_start = feedback ? obs::now_nanos() : 0;
        stop = search_shard(raw, task, limit, worker,
                            journal != nullptr ? &record : nullptr);
        if (feedback && stop.visited > 0) {
            raw->observe_cost(task.shard.options.num_events,
                              (obs::now_nanos() - search_start) /
                                  stop.visited);
        }
    } catch (const std::exception& e) {
        recover_and_reschedule(raw, pool_ptr, task, worker, e.what());
        return;
    }
    if (visited_out != nullptr) {
        *visited_out = stop.visited;
    }
    if (!stop.hit_limit) {
        if (journal != nullptr && !stop.visitor_stopped) {
            record.task_id = task_id;
            journal->append(record);
            raw->ckpt_saved.fetch_add(1, std::memory_order_relaxed);
        }
        raw->note_job_finished();
        return;  // the shard drained (or the deadline fired) inline
    }
    // The threshold-th candidate was visited and more remain:
    // abandon the search and trade the remainder for child shards.
    // Visited candidates keep their tickets (base..base+visited-1);
    // the children renumber the remaining sub-range from
    // base+visited, so ticket order still equals enumeration order
    // and the deterministic min-ticket merge is untouched. Children
    // before the resume point are fully searched already and are
    // not resubmitted; the boundary child skips the candidates the
    // parent consumed.
    if (raw->armed_deadline().expired()) {
        raw->timed_out.store(true, std::memory_order_relaxed);
        raw->note_job_finished();
        return;
    }
    if (options.cancel.requested()) {
        raw->cancelled.store(true, std::memory_order_relaxed);
        raw->note_job_finished();
        return;
    }
    std::size_t boundary = children.size();
    for (std::size_t i = 0; i < children.size(); ++i) {
        if (children[i].prefix.back() == stop.resume_decision) {
            boundary = i;
            break;
        }
    }
    TF_ASSERT(boundary < children.size());
    const std::uint64_t child_stride = child_stride_for(
        task.ticket_stride - stop.visited, children.size() - boundary);
    if (journal != nullptr) {
        // Journal the split BEFORE submitting the children: a crash in
        // between resumes by replaying this record, which resubmits the
        // same children (replay_shard_record mirrors the loop below).
        record.task_id = task_id;
        record.split = true;
        record.visited = stop.visited;
        record.resume_decision = stop.resume_decision;
        record.resume_skip = stop.resume_skip;
        journal->append(record);
        raw->ckpt_saved.fetch_add(1, std::memory_order_relaxed);
    }
    raw->lazy_resplits.fetch_add(1, std::memory_order_relaxed);
    if (resplit_out != nullptr) {
        *resplit_out = true;
    }
    const bool closed_prefix =
        std::find(task.shard.prefix.begin(), task.shard.prefix.end(),
                  kCloseThread) != task.shard.prefix.end();
    if (closed_prefix) {
        raw->closed_prefix_splits.fetch_add(1,
                                            std::memory_order_relaxed);
    }
    obs::TraceCollector* trace = raw->options.trace;
    raw->jobs_submitted.fetch_add(children.size() - boundary,
                                  std::memory_order_relaxed);
    for (std::size_t i = boundary; i < children.size(); ++i) {
        std::uint64_t flow = 0;
        if (trace != nullptr) {
            // Flow arrow from the abandoning parent to each child job.
            flow = trace->next_flow_id();
            trace->record_flow_start(worker, flow, obs::now_nanos());
        }
        pool_ptr->submit(
            raw->group,
            raw->make_job(
                {children[i],
                 task.ticket_base + stop.visited +
                     (i - boundary) * child_stride,
                 child_stride,
                 i == boundary ? stop.resume_skip : 0,
                 0,  // children are first attempts, whatever ours was
                 flow}));
    }
    raw->note_job_finished();
}

/// Builds a SuiteRun for \p axiom_name and submits its initial shard tasks
/// to \p pool as one job group. The caller must pool.wait(run->group) and
/// then finish_suite().
std::unique_ptr<SuiteRun>
launch_suite(sched::WorkStealingPool& pool, const mtm::Model& model,
             const std::string& axiom_name, const SynthesisOptions& options)
{
    TF_ASSERT(model.axiom(axiom_name) != nullptr);
    auto run = std::make_unique<SuiteRun>(model, axiom_name, options);
    run->axiom_index = run->model.axiom_index(axiom_name);
    run->worker_scratch.resize(pool.workers());
    if (options.backend == Backend::kSat && options.sat_incremental) {
        // One live incremental session per worker for the whole suite; the
        // model pointer must be the run's own copy, which outlives every
        // job. The domain bounds cover every candidate the skeleton
        // enumerator can produce (VAs < max_vas; PAs < initial frames +
        // fresh Wpte targets).
        for (WorkerScratch& scratch : run->worker_scratch) {
            scratch.incremental.configure(&run->model, axiom_name,
                                          options.max_vas,
                                          options.max_vas +
                                              options.max_fresh_pas);
            scratch.incremental.set_base_cache_capacity(
                options.sat_base_cache_capacity);
        }
    }
    if (options.collect_metrics) {
        run->metrics = std::make_unique<obs::MetricsRegistry>(pool.workers());
        // Solver wall-timing is configuration, not state: enabled once per
        // worker solver, before any job runs, surviving per-program resets.
        // The solve observer rides the same gated clock reads: every
        // individual solve call lands one latency sample in the worker's
        // kSatSolve histogram (the find_witness subtract path keeps
        // attributing the *totals*).
        obs::MetricsRegistry* metrics = run->metrics.get();
        for (int w = 0; w < pool.workers(); ++w) {
            WorkerScratch& scratch = run->worker_scratch[w];
            scratch.encoding.solver.set_timing(true);
            scratch.incremental.set_timing(true);
            const auto observe = [metrics, w](std::uint64_t nanos) {
                metrics->record_latency(w, obs::Phase::kSatSolve, nanos);
            };
            scratch.encoding.solver.set_solve_observer(observe);
            scratch.incremental.set_solve_observer(observe);
        }
    }
    if (options.track_allocs) {
        run->allocs = std::make_unique<obs::AllocTracker>(pool.workers());
    }
    run->journal = options.checkpoint;
    run->group = pool.make_group();
    SuiteRun* raw = run.get();
    sched::WorkStealingPool* pool_ptr = &pool;
    if (options.sat_conflict_budget > 0) {
        // Per-solve conflict cap on every per-worker solver (fresh path
        // and incremental sessions). Exhaustion raises BudgetExhausted out
        // of the search, which the fault-containment boundary treats like
        // any other shard fault.
        for (WorkerScratch& scratch : run->worker_scratch) {
            scratch.encoding.solver.set_conflict_budget(
                options.sat_conflict_budget);
            scratch.incremental.set_conflict_budget(
                options.sat_conflict_budget);
        }
    }
    if (options.cancel.valid() || options.time_budget_seconds > 0) {
        // Solver-level interrupt: a long single solve polls cancellation
        // and the deadline every ~1k conflicts, bounding cancel latency
        // even mid-solve. Reading raw->deadline here is safe — every job
        // arms it (call_once) before its first solve runs.
        const auto poll = [raw] {
            return raw->options.cancel.requested() || raw->deadline.expired();
        };
        for (WorkerScratch& scratch : run->worker_scratch) {
            scratch.encoding.solver.set_interrupt(poll);
            scratch.incremental.set_interrupt(poll);
        }
    }

    run->make_job = [raw, pool_ptr](ShardTask task)
        -> sched::WorkStealingPool::Job {
        return [raw, pool_ptr, task = std::move(task)](int worker) {
            obs::MetricsRegistry* metrics = raw->metrics.get();
            obs::TraceCollector* trace = raw->options.trace;
            obs::AllocTracker* allocs = raw->allocs.get();
            if (allocs != nullptr) {
                // Bound for the whole job: allocations follow the active
                // phase (ScopedPhase keeps it in sync), unclaimed ones
                // land in kSkeletonEnum like unclaimed wall time.
                obs::bind_alloc_tracker(allocs, worker);
            }
            if (metrics == nullptr && trace == nullptr) {
                // Disabled fast path: three null checks, no clock reads.
                execute_shard_task(raw, pool_ptr, task, worker, nullptr,
                                   nullptr);
            } else {
                const std::uint64_t start = obs::now_nanos();
                const std::uint64_t claimed_before =
                    metrics == nullptr ? 0 : metrics->worker_nanos(worker);
                if (trace != nullptr && task.trace_flow != 0) {
                    trace->record_flow_end(worker, task.trace_flow, start);
                }
                std::uint64_t visited = 0;
                bool resplit = false;
                execute_shard_task(raw, pool_ptr, task, worker, &visited,
                                   &resplit);
                const std::uint64_t end = obs::now_nanos();
                if (metrics != nullptr) {
                    // Whatever wall time no inner phase claimed is the
                    // candidate generator itself — skeleton enumeration
                    // plus shard framing. This closes the attribution:
                    // per-phase seconds sum to shard-job wall time. The
                    // whole-job wall also lands one kSkeletonEnum latency
                    // sample: the per-shard-job duration distribution.
                    const std::uint64_t claimed =
                        metrics->worker_nanos(worker) - claimed_before;
                    const std::uint64_t wall = end - start;
                    metrics->add(worker, obs::Phase::kSkeletonEnum,
                                 wall > claimed ? wall - claimed : 0);
                    metrics->record_latency(
                        worker, obs::Phase::kSkeletonEnum, wall);
                }
                if (trace != nullptr) {
                    trace->record_complete(
                        worker, "shard " + raw->axiom, start, end,
                        {{"events",
                          static_cast<std::uint64_t>(
                              task.shard.options.num_events)},
                         {"visited", visited},
                         {"resplit", resplit ? std::uint64_t{1}
                                             : std::uint64_t{0}}});
                }
            }
            if (allocs != nullptr) {
                obs::bind_alloc_tracker(nullptr, 0);
            }
            raw->jobs_done.fetch_add(1, std::memory_order_relaxed);
        };
    };

    // Partition the search space by (event bound, skeleton prefix):
    // adaptive mode starts from the coarse depth-1 split, fixed mode goes
    // straight to the requested depth.
    std::vector<sched::WorkStealingPool::Job> jobs;
    std::uint64_t shard_index = 0;
    for (int size = options.min_bound; size <= options.bound; ++size) {
        const SkeletonOptions skeleton =
            engine_skeleton_options(run->model, axiom_name, options, size);
        const std::vector<SkeletonShard> shards =
            partition_skeletons_at_depth(skeleton,
                                         std::max(options.shard_depth, 1));
        for (const SkeletonShard& shard : shards) {
            jobs.push_back(run->make_job(
                {shard, kTicketStride * shard_index, kTicketStride}));
            ++shard_index;
        }
    }
    run->jobs_submitted.fetch_add(jobs.size(), std::memory_order_relaxed);
    pool.submit(run->group, std::move(jobs));
    return run;
}

/// Merges a completed SuiteRun (its group must have been waited) into the
/// final SuiteResult. All workers have recorded all their candidates, so
/// the per-key minimum ticket is now a pure function of the options;
/// keeping exactly the test whose ticket equals it resolves every
/// cross-shard race toward the sequential-enumeration-order winner.
SuiteResult
finish_suite(sched::WorkStealingPool& pool, SuiteRun& run)
{
    SuiteResult result;
    result.axiom = run.axiom;
    result.programs_considered = run.programs.load();
    result.executions_considered = run.executions.load();
    result.duplicates_rejected = run.duplicates.load();

    std::vector<std::pair<SynthesizedTest, std::uint64_t>> kept;
    kept.reserve(run.merged.size());
    for (auto& [test, ticket] : run.merged) {
        if (!run.options.dedup ||
            run.index.min_ticket(test.canonical_key) == ticket) {
            kept.emplace_back(std::move(test), ticket);
        }
    }
    std::sort(kept.begin(), kept.end(), [](const auto& a, const auto& b) {
        return std::tie(a.first.canonical_key, a.second) <
               std::tie(b.first.canonical_key, b.second);
    });
    result.tests.reserve(kept.size());
    for (auto& [test, ticket] : kept) {
        result.tests.push_back(std::move(test));
    }

    // Per-suite solver totals (satellite of the observability layer): the
    // suite's solvers live in its private worker_scratch, so summing their
    // lifetime counters — reset() folds live counters into a retired
    // accumulator — attributes exactly this suite's solver work. All-zero
    // under the enumerative backend.
    for (const WorkerScratch& scratch : run.worker_scratch) {
        result.solver.merge(scratch.encoding.solver.lifetime_stats());
        // The incremental sessions (all-zero when the suite ran
        // fresh-per-candidate or enumerative); session-level, so cached
        // bases' backends and base build/reuse counts are included.
        result.solver.merge(scratch.incremental.lifetime_stats());
    }
    if (run.metrics != nullptr) {
        // Safe single-threaded write into lane 0: every worker quiesced
        // when the group was waited, before finish_suite ran.
        run.metrics->add(0, obs::Phase::kQueueWait,
                         static_cast<std::uint64_t>(
                             run.queue_wait_seconds.load() * 1e9));
        result.phases = run.metrics->merged();
    }
    if (run.allocs != nullptr) {
        result.allocs = run.allocs->merged();
    }
    obs::TraceCollector* trace = run.options.trace;
    if (trace != nullptr) {
        // Counter-track summary of the suite (one "C" event per series,
        // main lane): per-phase latency percentiles (µs — Perfetto counter
        // values read better in micros) for phases with samples, and the
        // observed-cost threshold range when any job armed one.
        const std::uint64_t ts = obs::now_nanos();
        if (run.metrics != nullptr) {
            for (int p = 0; p < obs::kPhaseCount; ++p) {
                const obs::LatencyHistogram& hist =
                    result.phases.latency[static_cast<std::size_t>(p)];
                if (hist.total() == 0) {
                    continue;
                }
                trace->record_counter(
                    trace->main_lane(),
                    std::string("latency_us ") + run.axiom + " " +
                        obs::phase_name(static_cast<obs::Phase>(p)),
                    ts,
                    {{"p50", hist.percentile_nanos(0.5) / 1000},
                     {"p90", hist.percentile_nanos(0.9) / 1000},
                     {"p99", hist.percentile_nanos(0.99) / 1000}});
            }
        }
        if (run.threshold_max.load() > 0) {
            trace->record_counter(
                trace->main_lane(), "resplit_threshold " + run.axiom, ts,
                {{"min", run.threshold_min.load()},
                 {"max", run.threshold_max.load()},
                 {"observed", run.observed_resplits.load()}});
        }
    }
    result.scheduler = pool.group_stats(run.group);
    result.scheduler.observed_cost_resplits = run.observed_resplits.load();
    result.scheduler.resplit_threshold_min = run.threshold_min.load();
    result.scheduler.resplit_threshold_max = run.threshold_max.load();
    result.scheduler.lazy_resplits = run.lazy_resplits.load();
    result.scheduler.closed_prefix_splits = run.closed_prefix_splits.load();
    result.scheduler.skip_enumerations = run.skip_enumerations.load();
    result.scheduler.dedup_hits = run.index.hits();
    result.scheduler.queue_wait_seconds = run.queue_wait_seconds.load();
    result.scheduler.shard_retries = run.shard_retries.load();
    result.scheduler.shards_quarantined = run.shards_quarantined.load();
    result.scheduler.checkpoint_shards_saved = run.ckpt_saved.load();
    result.scheduler.checkpoint_shards_replayed = run.ckpt_replayed.load();
    // Arm-to-last-job wall time (the watch restarted when the deadline
    // armed, and every job recorded its completion); the queue wait is
    // reported separately above. Zero for a suite that ran no jobs —
    // including one cancelled before its first job searched.
    result.seconds = run.search_seconds.load();
    result.cancelled = run.cancelled.load();
    result.failures = std::move(run.failures);  // group drained: no races
    result.complete = !run.timed_out.load() && !result.cancelled &&
                      result.failures.empty();
    return result;
}

/// The sampling thread behind SynthesisOptions::progress: wakes every
/// progress_interval_seconds, snapshots the run(s)' relaxed counters via
/// the caller-supplied sampler, and invokes the callback. stop() fires one
/// final snapshot after joining, so the last report the caller sees
/// reflects the drained run. Inert (no thread) when options.progress is
/// unset — the default costs nothing.
class ProgressHeartbeat {
  public:
    ProgressHeartbeat(const SynthesisOptions& options,
                      std::function<SynthesisProgress()> sampler)
    {
        if (!options.progress) {
            return;
        }
        callback_ = options.progress;
        sampler_ = std::move(sampler);
        interval_ = std::max(options.progress_interval_seconds, 0.01);
        thread_ = std::thread([this] { loop(); });
    }

    ~ProgressHeartbeat() { stop(); }

    ProgressHeartbeat(const ProgressHeartbeat&) = delete;
    ProgressHeartbeat& operator=(const ProgressHeartbeat&) = delete;

    /// Joins the sampler and fires the final snapshot. Call after the
    /// job groups drained (pool.wait) so the snapshot is settled;
    /// idempotent.
    void
    stop()
    {
        if (!thread_.joinable()) {
            return;
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            done_ = true;
        }
        cv_.notify_all();
        thread_.join();
        callback_(sampler_());
    }

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        while (!done_) {
            if (cv_.wait_for(lock,
                             std::chrono::duration<double>(interval_),
                             [this] { return done_; })) {
                break;  // stop() reports the final snapshot
            }
            lock.unlock();
            callback_(sampler_());
            lock.lock();
        }
    }

    std::function<void(const SynthesisProgress&)> callback_;
    std::function<SynthesisProgress()> sampler_;
    double interval_ = 0.0;
    std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
    std::thread thread_;
};

}  // namespace

SuiteResult
synthesize_suite(const mtm::Model& model, const std::string& axiom_name,
                 const SynthesisOptions& options)
{
    sched::WorkStealingPool pool(options.jobs);
    pool.set_trace(options.trace);
    obs::TraceCollector* trace = options.trace;
    const std::uint64_t suite_id =
        trace == nullptr ? 0 : trace->next_flow_id();
    if (trace != nullptr) {
        trace->record_async_begin(trace->main_lane(), "suite " + axiom_name,
                                  suite_id, obs::now_nanos());
    }
    const std::unique_ptr<SuiteRun> run =
        launch_suite(pool, model, axiom_name, options);
    SuiteRun* raw = run.get();
    const std::uint64_t t0 = obs::now_nanos();
    std::atomic<int> suites_done{0};  // outlives the heartbeat below
    ProgressHeartbeat heartbeat(options, [raw, t0, &suites_done] {
        SynthesisProgress p;
        p.shards_done = raw->jobs_done.load(std::memory_order_relaxed);
        p.shards_submitted =
            raw->jobs_submitted.load(std::memory_order_relaxed);
        p.candidates = raw->programs.load(std::memory_order_relaxed);
        p.tests_found = raw->tests_found.load(std::memory_order_relaxed);
        p.checkpoint_shards_saved =
            raw->ckpt_saved.load(std::memory_order_relaxed);
        p.checkpoint_shards_replayed =
            raw->ckpt_replayed.load(std::memory_order_relaxed);
        p.suites_done = suites_done.load(std::memory_order_relaxed);
        p.suites_total = 1;
        p.seconds = static_cast<double>(obs::now_nanos() - t0) * 1e-9;
        return p;
    });
    pool.wait(run->group);
    suites_done.store(1, std::memory_order_relaxed);
    heartbeat.stop();
    if (trace != nullptr) {
        trace->record_async_end(trace->main_lane(), "suite " + axiom_name,
                                suite_id, obs::now_nanos());
    }
    return finish_suite(pool, *run);
}

std::vector<SuiteResult>
synthesize_all(const mtm::Model& model, const SynthesisOptions& options)
{
    std::vector<SuiteResult> out;
    for (const mtm::Axiom& axiom : model.axioms()) {
        out.push_back(synthesize_suite(model, axiom.name, options));
    }
    return out;
}

std::vector<SuiteResult>
synthesize_all_parallel(const mtm::Model& model,
                        const SynthesisOptions& options)
{
    // One shared pool; one job group per axiom. Shards of every axiom
    // interleave on the same options.jobs workers, so the pool stays busy
    // until the very last suite drains (v1 instead pinned a thread group
    // per axiom, leaving cores idle once the cheap axioms finished).
    sched::WorkStealingPool pool(options.jobs);
    pool.set_trace(options.trace);
    obs::TraceCollector* trace = options.trace;
    std::vector<std::unique_ptr<SuiteRun>> runs;
    std::vector<std::uint64_t> suite_ids;
    runs.reserve(model.axioms().size());
    for (const mtm::Axiom& axiom : model.axioms()) {
        if (trace != nullptr) {
            // Async spans ("b"/"e"): suites overlap on the shared pool, so
            // they cannot be nested complete spans on the main lane.
            suite_ids.push_back(trace->next_flow_id());
            trace->record_async_begin(trace->main_lane(),
                                      "suite " + axiom.name,
                                      suite_ids.back(), obs::now_nanos());
        }
        runs.push_back(launch_suite(pool, model, axiom.name, options));
    }
    const std::uint64_t t0 = obs::now_nanos();
    std::atomic<int> suites_done{0};  // outlives the heartbeat below
    ProgressHeartbeat heartbeat(options, [&runs, t0, &suites_done] {
        // Aggregate snapshot across every axiom's run: the runs vector is
        // settled (all launched) before the heartbeat starts, and each
        // field is a relaxed counter read.
        SynthesisProgress p;
        for (const std::unique_ptr<SuiteRun>& run : runs) {
            p.shards_done +=
                run->jobs_done.load(std::memory_order_relaxed);
            p.shards_submitted +=
                run->jobs_submitted.load(std::memory_order_relaxed);
            p.candidates += run->programs.load(std::memory_order_relaxed);
            p.tests_found +=
                run->tests_found.load(std::memory_order_relaxed);
            p.checkpoint_shards_saved +=
                run->ckpt_saved.load(std::memory_order_relaxed);
            p.checkpoint_shards_replayed +=
                run->ckpt_replayed.load(std::memory_order_relaxed);
        }
        p.suites_done = suites_done.load(std::memory_order_relaxed);
        p.suites_total = static_cast<int>(runs.size());
        p.seconds = static_cast<double>(obs::now_nanos() - t0) * 1e-9;
        return p;
    });
    std::vector<SuiteResult> out;
    out.reserve(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
        pool.wait(runs[i]->group);
        suites_done.fetch_add(1, std::memory_order_relaxed);
        if (trace != nullptr) {
            trace->record_async_end(trace->main_lane(),
                                    "suite " + runs[i]->axiom, suite_ids[i],
                                    obs::now_nanos());
        }
    }
    heartbeat.stop();
    for (const std::unique_ptr<SuiteRun>& run : runs) {
        out.push_back(finish_suite(pool, *run));
    }
    return out;
}

SkeletonOptions
engine_skeleton_options(const mtm::Model& model,
                        const std::string& axiom_name,
                        const SynthesisOptions& options, int size)
{
    SkeletonOptions skeleton;
    skeleton.num_events = size;
    skeleton.max_threads = options.max_threads;
    skeleton.max_vas = options.max_vas;
    skeleton.max_fresh_pas = options.max_fresh_pas;
    skeleton.vm_enabled = model.vm_aware();
    skeleton.allow_rmw = options.allow_rmw;
    skeleton.allow_fences = options.allow_fences;
    skeleton.allow_full_flush = options.allow_full_flush;
    skeleton.dirty_bit_as_rmw = options.dirty_bit_as_rmw;
    set_axiom_requirements(axiom_name, &skeleton);
    return skeleton;
}

int
unique_test_count(const std::vector<SuiteResult>& suites)
{
    std::set<std::string> keys;
    for (const SuiteResult& suite : suites) {
        for (const SynthesizedTest& test : suite.tests) {
            keys.insert(test.canonical_key);
        }
    }
    return static_cast<int>(keys.size());
}

}  // namespace transform::synth
