#include "synth/canonical.h"

#include <charconv>

#include "util/logging.h"
#include "util/permutations.h"

namespace transform::synth {

using elt::Event;
using elt::EventId;
using elt::EventKind;
using elt::kNone;
using elt::Program;

namespace {

/// Appends a small non-negative integer to \p out without allocating a
/// formatter.
void
append_int(std::string* out, int value)
{
    char buffer[16];
    const auto [ptr, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    TF_ASSERT(ec == std::errc());
    out->append(buffer, ptr);
}

/// Address renaming built per thread-order candidate: VAs are numbered by
/// first use; PAs that are initial frames of *used* VAs inherit the VA's
/// number; every other PA (frames of unused VAs behave exactly like fresh
/// frames) is numbered by first use starting after the used VAs. Tables are
/// flat arrays indexed by the original id, reset (capacity kept) per
/// candidate.
class Renamer {
  public:
    Renamer(const Program& p, CanonicalScratch* scratch)
        : original_num_vas_(p.num_vas()), va_map_(scratch->va_map),
          pa_map_(scratch->pa_map)
    {
        va_map_.assign(p.num_vas(), -1);
        pa_map_.assign(p.num_pas(), -1);
    }

    int va(int original)
    {
        if (va_map_[original] < 0) {
            va_map_[original] = va_count_++;
        }
        return va_map_[original];
    }

    /// PA renaming is resolved lazily, after the VA walk: call only once
    /// every event has been visited for VAs (two-pass usage below).
    int pa(int original)
    {
        // Initial frame of a used VA?
        if (original < original_num_vas_ && va_map_[original] >= 0) {
            return va_map_[original];
        }
        if (pa_map_[original] < 0) {
            pa_map_[original] = va_count_ + pa_count_++;
        }
        return pa_map_[original];
    }

  private:
    int original_num_vas_;
    int va_count_ = 0;
    int pa_count_ = 0;
    std::vector<int>& va_map_;
    std::vector<int>& pa_map_;
};

char
kind_code(EventKind k)
{
    switch (k) {
    case EventKind::kRead: return 'R';
    case EventKind::kWrite: return 'W';
    case EventKind::kMfence: return 'F';
    case EventKind::kWpte: return 'P';
    case EventKind::kInvlpg: return 'I';
    case EventKind::kInvlpgAll: return 'A';
    case EventKind::kRptw: return 'w';
    case EventKind::kWdb: return 'd';
    case EventKind::kRdb: return 'r';
    }
    return '?';
}

/// Serializes into scratch->candidate (cleared first, capacity kept).
void
serialize_into(const Program& p, const std::vector<int>& order,
               CanonicalScratch* scratch)
{
    TF_ASSERT(static_cast<int>(order.size()) == p.num_threads());
    Renamer renamer(p, scratch);

    // Stable label for a non-ghost event: (renamed thread index, position).
    scratch->label_thread.assign(p.num_events(), -1);
    scratch->label_pos.assign(p.num_events(), -1);
    for (int new_t = 0; new_t < static_cast<int>(order.size()); ++new_t) {
        const auto& seq = p.thread(order[new_t]);
        for (int pos = 0; pos < static_cast<int>(seq.size()); ++pos) {
            scratch->label_thread[seq[pos]] = new_t;
            scratch->label_pos[seq[pos]] = pos;
        }
    }

    // First pass: assign VA numbers in traversal order (ghosts share their
    // parent's VA, so visiting non-ghosts suffices; ghosts never introduce
    // fresh VAs).
    for (const int t : order) {
        for (const EventId id : p.thread(t)) {
            if (p.event(id).va != kNone) {
                renamer.va(p.event(id).va);
            }
        }
    }

    std::string& out = scratch->candidate;
    out.clear();
    append_int(&out, p.num_threads());
    out.push_back('|');
    for (const int t : order) {
        for (const EventId id : p.thread(t)) {
            const Event& e = p.event(id);
            out.push_back(kind_code(e.kind));
            if (e.va != kNone) {
                append_int(&out, renamer.va(e.va));
            }
            if (e.kind == EventKind::kWpte) {
                out.push_back('>');
                append_int(&out, renamer.pa(e.map_pa));
            }
            if (e.kind == EventKind::kInvlpg) {
                if (e.remap_src == kNone) {
                    out.push_back('s');
                } else {
                    out.push_back('m');
                    append_int(&out, scratch->label_thread[e.remap_src]);
                    out.push_back('.');
                    append_int(&out, scratch->label_pos[e.remap_src]);
                }
            }
            // Ghost markers, in fixed subposition order.
            if (p.rdb_of(id) != kNone) {
                out.append("+rdb");
            }
            if (p.wdb_of(id) != kNone) {
                out.append("+db");
            }
            if (p.rptw_of(id) != kNone) {
                out.append("+ptw");
            }
            // rmw membership (the Read carries the mark).
            for (const auto& [r, w] : p.rmw_pairs()) {
                if (r == id) {
                    out.append("+rmw");
                }
                (void)w;
            }
            out.push_back(';');
        }
        out.push_back('/');
    }
}

}  // namespace

std::string
serialize_with_thread_order(const Program& p, const std::vector<int>& order)
{
    CanonicalScratch scratch;
    serialize_into(p, order, &scratch);
    return std::move(scratch.candidate);
}

std::string
canonical_key(const Program& p, CanonicalScratch* scratch)
{
    scratch->best.clear();
    util::for_each_permutation(
        p.num_threads(), [&](const std::vector<int>& order) {
            serialize_into(p, order, scratch);
            if (scratch->best.empty() || scratch->candidate < scratch->best) {
                std::swap(scratch->best, scratch->candidate);
            }
            return true;
        });
    return scratch->best;
}

std::string
canonical_key(const Program& p)
{
    CanonicalScratch scratch;
    return canonical_key(p, &scratch);
}

}  // namespace transform::synth
