#include "synth/canonical.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

#include "util/logging.h"
#include "util/permutations.h"

namespace transform::synth {

using elt::Event;
using elt::EventId;
using elt::EventKind;
using elt::kNone;
using elt::Program;

namespace {

/// Address renaming built per thread-order candidate: VAs are numbered by
/// first use; PAs that are initial frames of *used* VAs inherit the VA's
/// number; every other PA (frames of unused VAs behave exactly like fresh
/// frames) is numbered by first use starting after the used VAs.
class Renamer {
  public:
    explicit Renamer(int original_num_vas) : original_num_vas_(original_num_vas) {}

    int va(int original)
    {
        const auto it = va_map_.find(original);
        if (it != va_map_.end()) {
            return it->second;
        }
        const int fresh = static_cast<int>(va_map_.size());
        va_map_.emplace(original, fresh);
        return fresh;
    }

    /// PA renaming is resolved lazily, after the VA walk: call only once
    /// every event has been visited for VAs (two-pass usage below).
    int pa(int original)
    {
        // Initial frame of a used VA?
        if (original < original_num_vas_) {
            const auto it = va_map_.find(original);
            if (it != va_map_.end()) {
                return it->second;
            }
        }
        const auto it = pa_map_.find(original);
        if (it != pa_map_.end()) {
            return it->second;
        }
        const int fresh =
            static_cast<int>(va_map_.size() + pa_map_.size());
        pa_map_.emplace(original, fresh);
        return fresh;
    }

  private:
    int original_num_vas_;
    std::map<int, int> va_map_;
    std::map<int, int> pa_map_;
};

char
kind_code(EventKind k)
{
    switch (k) {
    case EventKind::kRead: return 'R';
    case EventKind::kWrite: return 'W';
    case EventKind::kMfence: return 'F';
    case EventKind::kWpte: return 'P';
    case EventKind::kInvlpg: return 'I';
    case EventKind::kInvlpgAll: return 'A';
    case EventKind::kRptw: return 'w';
    case EventKind::kWdb: return 'd';
    case EventKind::kRdb: return 'r';
    }
    return '?';
}

}  // namespace

std::string
serialize_with_thread_order(const Program& p, const std::vector<int>& order)
{
    TF_ASSERT(static_cast<int>(order.size()) == p.num_threads());
    Renamer renamer(p.num_vas());

    // Stable label for a non-ghost event: (renamed thread index, position).
    std::map<EventId, std::pair<int, int>> label;
    for (int new_t = 0; new_t < static_cast<int>(order.size()); ++new_t) {
        const auto& seq = p.thread(order[new_t]);
        for (int pos = 0; pos < static_cast<int>(seq.size()); ++pos) {
            label[seq[pos]] = {new_t, pos};
        }
    }

    // First pass: assign VA numbers in traversal order (ghosts share their
    // parent's VA, so visiting non-ghosts suffices; ghosts never introduce
    // fresh VAs).
    for (const int t : order) {
        for (const EventId id : p.thread(t)) {
            if (p.event(id).va != kNone) {
                renamer.va(p.event(id).va);
            }
        }
    }

    std::ostringstream out;
    out << p.num_threads() << '|';
    for (const int t : order) {
        for (const EventId id : p.thread(t)) {
            const Event& e = p.event(id);
            out << kind_code(e.kind);
            if (e.va != kNone) {
                out << renamer.va(e.va);
            }
            if (e.kind == EventKind::kWpte) {
                out << '>' << renamer.pa(e.map_pa);
            }
            if (e.kind == EventKind::kInvlpg) {
                if (e.remap_src == kNone) {
                    out << "s";
                } else {
                    const auto& [lt, lp] = label.at(e.remap_src);
                    out << "m" << lt << '.' << lp;
                }
            }
            // Ghost markers, in fixed subposition order.
            const EventId rdb = p.rdb_of(id);
            const EventId wdb = p.wdb_of(id);
            const EventId rptw = p.rptw_of(id);
            if (rdb != kNone) {
                out << "+rdb";
            }
            if (wdb != kNone) {
                out << "+db";
            }
            if (rptw != kNone) {
                out << "+ptw";
            }
            // rmw membership (the Read carries the mark).
            for (const auto& [r, w] : p.rmw_pairs()) {
                if (r == id) {
                    out << "+rmw";
                }
                (void)w;
            }
            out << ';';
        }
        out << '/';
    }
    return out.str();
}

std::string
canonical_key(const Program& p)
{
    std::string best;
    util::for_each_permutation(
        p.num_threads(), [&](const std::vector<int>& order) {
            std::string candidate = serialize_with_thread_order(p, order);
            if (best.empty() || candidate < best) {
                best = std::move(candidate);
            }
            return true;
        });
    return best;
}

}  // namespace transform::synth
