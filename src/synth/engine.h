/// \file
/// The synthesis engine (section IV): given an MTM and a target axiom,
/// enumerate candidate executions up to an instruction bound, keep the
/// interesting + minimal ones, and deduplicate them into a suite of unique
/// ELT programs. Two backends produce the same suites: the explicit
/// enumerator (default, fast) and the SAT/relational backend mirroring the
/// paper's Alloy pipeline (used for cross-checking and per-program queries).
///
/// The search runs on the parallel synthesis runtime (src/sched/, v2): the
/// (event-bound, skeleton-prefix) space is partitioned into independent
/// shards, one persistent work-stealing pool searches them concurrently
/// (Chase-Lev deques; `synthesize_all_parallel` submits every axiom's
/// shards to the same pool as separate job groups), and results are merged
/// through a sharded canonical-key index. Shard depth is adaptive by
/// default: the engine starts from a coarse split and any shard job that
/// visits more candidates than a cost-model threshold abandons its search
/// lazily — in place, keeping the results already found — and resubmits
/// the unsearched remainder as child shards (see docs/scheduler.md).
///
/// Determinism contract: for a run that completes within its time budget,
/// the merged suite (tests, their order, and their witnesses) is identical
/// for every `jobs` value and every shard-depth setting — the suite is
/// sorted by canonical key and every cross-shard duplicate is resolved
/// toward the candidate earliest in the sequential enumeration order (see
/// DESIGN.md, "Parallel synthesis runtime").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "elt/execution.h"
#include "mtm/model.h"
#include "obs/alloc.h"
#include "obs/metrics.h"
#include "sat/solver.h"
#include "sched/scheduler.h"
#include "synth/skeleton.h"
#include "util/cancel.h"

namespace transform::obs {
class TraceCollector;
}

namespace transform::util {
class FaultPlan;
}

namespace transform::synth {

class CheckpointJournal;

/// Which execution-space backend drives the per-program search.
enum class Backend {
    kEnumerative,  ///< explicit backtracking (synth/exec_enum.h)
    kSat,          ///< relational SAT encoding (mtm/encoding.h)
};

/// A point-in-time view of an in-flight synthesis run, sampled by the
/// engine's heartbeat thread for SynthesisOptions::progress. Counters are
/// relaxed snapshots — internally consistent enough for a status line, not
/// for asserting invariants (use SuiteResult for settled numbers).
struct SynthesisProgress {
    std::uint64_t shards_done = 0;       ///< shard jobs completed
    std::uint64_t shards_submitted = 0;  ///< grows with lazy re-splits
    std::uint64_t candidates = 0;        ///< programs considered so far
    std::uint64_t tests_found = 0;       ///< pre-merge accepted witnesses
    std::uint64_t checkpoint_shards_saved = 0;
    std::uint64_t checkpoint_shards_replayed = 0;
    int suites_done = 0;   ///< job groups fully drained
    int suites_total = 0;  ///< suites in this synthesis call
    double seconds = 0.0;  ///< wall time since the synthesis call started
};

/// Synthesis knobs.
struct SynthesisOptions {
    int min_bound = 2;         ///< smallest event count to try
    int bound = 5;             ///< largest event count (inclusive)
    int max_threads = 2;
    int max_vas = 2;
    int max_fresh_pas = 1;
    bool allow_rmw = true;
    bool allow_fences = true;
    bool allow_full_flush = false;   ///< extension: INVLPGALL events
    bool dirty_bit_as_rmw = false;   ///< section III-A2 ablation
    bool require_minimal = true;     ///< spanning-set minimality pruning
    bool dedup = true;               ///< canonical-program deduplication
    double time_budget_seconds = 0;  ///< 0 = unlimited (paper used one week)
    Backend backend = Backend::kEnumerative;

    /// SAT backend only: reuse one live solver per worker across candidates
    /// (assumption-based incremental solving — see mtm/incremental.h).
    /// Candidates sharing a skeleton structure share one base encoding and
    /// one learned-clause database; accepted candidates are replayed
    /// through the fresh per-program encoding, so the synthesized suite is
    /// byte-identical with this on or off (tests/sat_incremental_test.cpp).
    /// Off = build a fresh encoding per candidate (the pre-incremental
    /// behavior, kept as an escape hatch: --sat-incremental off).
    bool sat_incremental = true;

    /// Incremental SAT only: how many structure bases each worker session
    /// caches, the live one included (see
    /// mtm::IncrementalEncoding::set_base_cache_capacity; 0 and 1 both
    /// disable caching). Purely a performance knob — the synthesized suite
    /// is byte-identical for every capacity (the differential tests sweep
    /// 0 vs the default).
    int sat_base_cache_capacity = 8;

    int jobs = 1;  ///< scheduler workers; 0 = one per hardware thread

    /// Shard granularity: 0 (default) = adaptive — start from a depth-1
    /// prefix split and lazily re-split any shard whose search visits more
    /// than the re-split threshold's worth of candidates; N >= 1 = fixed
    /// prefix depth N, no re-splitting. The synthesized suite is identical
    /// for every setting.
    int shard_depth = 0;

    /// Adaptive mode only: a shard job that visits this many candidates
    /// with more remaining abandons its search in place — already-visited
    /// candidates keep their results and tickets — and resubmits the
    /// unsearched remainder as split_shard children (closed-prefix shards
    /// split on thread 1+ decisions, so deep re-splits never dead-end).
    /// 0 (default) selects a cost model that shrinks the threshold as the
    /// per-candidate evaluation cost grows with the bound / VM / dirty-bit
    /// mix, refined at run time by observed_cost_feedback below. An
    /// explicit threshold keeps the trigger a deterministic candidate
    /// count, so the re-split tree — and with it jobs_run / lazy_resplits
    /// — is a pure function of the options, not of scheduling.
    std::uint64_t resplit_threshold = 0;

    /// Adaptive mode with resplit_threshold == 0 only: feed an EWMA of
    /// each completed shard job's observed per-candidate nanos (keyed by
    /// event bound) back into the re-split threshold, so expensive bounds
    /// split earlier than the static cost model would and cheap ones
    /// later. The SUITE is byte-identical either way — thresholds only
    /// move work between jobs, never change tickets' order or the merge
    /// (the long-standing every-threshold determinism contract) — but
    /// job-tree counters (jobs_run, lazy_resplits) become timing-dependent,
    /// which is why explicit-threshold runs ignore this knob. Chosen
    /// thresholds surface in SchedulerStats::resplit_threshold_min/max and
    /// the trace's counter track.
    bool observed_cost_feedback = true;

    /// Observability (src/obs/, docs/observability.md). Both knobs are
    /// purely observational: they never influence search order, tickets, or
    /// the merge, so the determinism contract holds with them on or off
    /// (asserted by tests/obs_test.cpp).
    ///
    /// When true the run carries a per-worker obs::MetricsRegistry and
    /// attributes candidate-evaluation time to the fixed phase taxonomy
    /// (SuiteResult::phases); solver wall-timing is enabled on the
    /// per-worker solvers. Off (default) costs one null check per
    /// instrumentation point and zero clock reads.
    bool collect_metrics = false;

    /// When true the run carries a per-suite obs::AllocTracker and every
    /// shard job binds its worker thread to it, so operator-new calls are
    /// attributed to the active phase / call-site bucket
    /// (SuiteResult::allocs). Off (default) costs one thread-local pointer
    /// test per allocation (the process-wide proxy counter is always on).
    bool track_allocs = false;

    /// Progress heartbeat: when set, a sampling thread inside the
    /// synthesis call invokes this roughly every
    /// progress_interval_seconds with a SynthesisProgress snapshot (and
    /// once more when the run drains). The callback runs on that sampling
    /// thread — keep it cheap and thread-safe. Purely observational.
    std::function<void(const SynthesisProgress&)> progress;
    double progress_interval_seconds = 2.0;

    /// When non-null, shard jobs / suites / re-split lineage are recorded
    /// as spans, async spans, and flow arrows. The collector must have at
    /// least resolve_jobs(jobs) worker lanes plus the main lane and must
    /// outlive the synthesis call. nullptr (default) disables recording.
    obs::TraceCollector* trace = nullptr;

    /// Robustness knobs (docs/robustness.md). All default to off / inert,
    /// and when inert cost at most a relaxed load per candidate — the
    /// fault-tolerant runtime is always compiled in but never perturbs a
    /// fault-free run.

    /// Cooperative cancellation: shard jobs, the candidate loop, and the
    /// SAT search poll this token and stop within milliseconds of a
    /// request, still merging the deterministic partial suite
    /// (SuiteResult::cancelled / complete report the early exit). The
    /// default token is inert (never cancels); the CancelSource behind a
    /// real one must outlive the synthesis call.
    util::CancelToken cancel;

    /// Fault containment: how many times a shard job whose search escaped
    /// with an exception is re-enqueued before being quarantined into
    /// SuiteResult::failures. Retries re-search the identical shard with a
    /// rebuilt solver; the min-ticket merge makes a retried shard's
    /// contribution byte-identical, so transient faults never change the
    /// suite.
    int shard_retry_limit = 2;

    /// SAT backend only: per-solve conflict budget (0 = unlimited). A
    /// solve that exhausts the budget without a decisive verdict raises
    /// sat::BudgetExhausted, which the engine treats as a retryable shard
    /// fault — deterministic, so it quarantines once the retry budget runs
    /// out rather than looping.
    std::int64_t sat_conflict_budget = 0;

    /// Deterministic fault injection (tests / CI only): when non-null,
    /// probes at each fault site ask the plan whether to throw. Firing is a
    /// pure function of (seed, site, candidate key, attempt), so injected
    /// faults reproduce across jobs counts and scheduling. Must outlive the
    /// synthesis call.
    const util::FaultPlan* fault_plan = nullptr;

    /// Crash-safe checkpointing: when non-null, every completed shard task
    /// is journaled and tasks found in the journal (from a previous run of
    /// the same configuration) are replayed instead of re-searched. Shared
    /// across suites; must outlive the synthesis call.
    CheckpointJournal* checkpoint = nullptr;
};

/// A shard job that kept faulting past the retry budget: its identity and
/// the error that quarantined it, surfaced in SuiteResult::failures so a
/// partial suite is diagnosable rather than silently short.
struct ShardFailure {
    std::string shard;   ///< human-readable task identity (axiom + prefix)
    std::string error;   ///< what() of the final attempt's exception
    int attempts = 0;    ///< total attempts made (initial + retries)
};

/// One synthesized ELT.
struct SynthesizedTest {
    elt::Execution witness;             ///< a forbidden execution of the test
    std::string canonical_key;
    int size = 0;                       ///< event count (instruction bound)
    std::vector<std::string> violated;  ///< axioms the witness violates
};

/// A per-axiom suite.
struct SuiteResult {
    std::string axiom;
    std::vector<SynthesizedTest> tests;  ///< sorted by canonical key
    std::uint64_t programs_considered = 0;
    std::uint64_t executions_considered = 0;
    std::uint64_t duplicates_rejected = 0;
    /// Search wall time, measured from when the suite's first shard job ran
    /// (the moment its time budget armed) — on a shared pool the wait
    /// behind other suites is excluded and reported as
    /// scheduler.queue_wait_seconds instead.
    double seconds = 0.0;
    /// False when the suite is partial: the time budget expired, the run
    /// was cancelled, or shards were quarantined after repeated faults.
    bool complete = false;
    bool cancelled = false;  ///< the cancel token fired during this suite
    /// Shards quarantined after exhausting the retry budget (empty on a
    /// healthy run). Deterministic faults land here; transient ones are
    /// absorbed by retries and only show up in scheduler.shard_retries.
    std::vector<ShardFailure> failures;
    sched::SchedulerStats scheduler;  ///< runtime counters for the search
    /// SAT-solver counters summed across every per-worker solver the suite
    /// used (lifetime_stats, so per-program reset() cycles are included).
    /// All-zero under the enumerative backend; solve_nanos is populated
    /// only when SynthesisOptions::collect_metrics enabled solver timing.
    sat::SolverStats solver;
    /// Phase-attributed time/count breakdown (per-phase latency
    /// histograms included); all-zero unless
    /// SynthesisOptions::collect_metrics was set.
    obs::PhaseTotals phases;
    /// Phase/site-attributed allocation breakdown; all-zero unless
    /// SynthesisOptions::track_allocs was set.
    obs::AllocTotals allocs;
};

/// Synthesizes the suite of unique, minimal, interesting ELT programs whose
/// executions can violate \p axiom_name, over all sizes in
/// [min_bound, bound]. Builds a private options.jobs-worker pool for the
/// run; the resulting suite is independent of the worker count and the
/// shard depth (see the determinism contract above). Thread-safe for
/// concurrent calls with distinct models.
SuiteResult synthesize_suite(const mtm::Model& model,
                             const std::string& axiom_name,
                             const SynthesisOptions& options);

/// Runs per-axiom synthesis for every axiom of the model and returns the
/// suites in axiom order (the paper's five per-axiom suites for x86t_elt).
std::vector<SuiteResult> synthesize_all(const mtm::Model& model,
                                        const SynthesisOptions& options);

/// As synthesize_all, but submits every axiom's shards to ONE shared
/// work-stealing pool of options.jobs workers (one job group per axiom; no
/// per-axiom thread groups), so late-finishing axioms inherit the workers
/// of early-finishing ones. Results are identical to the serial driver —
/// asserted by the test suite — and arrive in the same axiom order.
std::vector<SuiteResult> synthesize_all_parallel(
    const mtm::Model& model, const SynthesisOptions& options);

/// Counts the unique ELT programs across suites (tests violating several
/// axioms appear in several suites but count once).
int unique_test_count(const std::vector<SuiteResult>& suites);

/// The skeleton options the engine searches for \p axiom_name at event
/// bound \p size — synthesis knobs plus the static per-axiom pruning
/// flags. Exposed so tools and benches replaying parts of the search
/// (e.g. the eager-probe baseline in bench_parallel_scaling) enumerate
/// exactly the candidate space the engine does.
SkeletonOptions engine_skeleton_options(const mtm::Model& model,
                                        const std::string& axiom_name,
                                        const SynthesisOptions& options,
                                        int size);

/// Ticket-space constants of the deterministic merge, exported (like
/// engine_skeleton_options) so replays of the engine's scheduling
/// decisions stay faithful rather than hand-copied.
///
/// Ticket stride between top-level shards: ticket = base + position, so
/// ticket order across all shards equals the sequential enumeration order.
inline constexpr std::uint64_t kTicketStride = std::uint64_t{1} << 40;

/// Re-splitting stops once the child stride would drop below this — a
/// leaf must still be able to number every candidate it holds without
/// bleeding into its sibling's range.
inline constexpr std::uint64_t kMinLeafStride = std::uint64_t{1} << 22;

/// When a shard is re-split, each resubmitted child receives a sub-range
/// of the remaining ticket space: the stride divided by the child count
/// rounded up to a power of two.
constexpr std::uint64_t
child_stride_for(std::uint64_t parent_stride, std::size_t children)
{
    int shift = 0;
    while ((std::size_t{1} << shift) < children) {
        ++shift;
    }
    return parent_stride >> shift;
}

}  // namespace transform::synth
