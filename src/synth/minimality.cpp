#include "synth/minimality.h"

#include "elt/derive.h"
#include "mtm/relax.h"
#include "obs/alloc.h"
#include "util/logging.h"

namespace transform::synth {

bool
contains_write(const elt::Program& program)
{
    for (elt::EventId id = 0; id < program.num_events(); ++id) {
        if (elt::is_write_like(program.event(id).kind)) {
            return true;
        }
    }
    return false;
}

namespace {

/// One implementation behind both judge overloads; \p diagnostics selects
/// whether the string fields (violated names, blocking_relaxation) are
/// filled — the scratch-reusing hot path skips them.
MinimalityVerdict
judge_impl(const mtm::Model& model, const elt::Execution& execution,
           JudgeScratch* scratch, bool diagnostics)
{
    MinimalityVerdict verdict;
    // Verdict-side allocations (violated-name strings, relaxation-list
    // growth) carry their own call-site bucket in the alloc breakdown.
    const obs::ScopedAllocSite alloc_site(
        obs::AllocSite::kSiteJudgeVerdict);
    {
        obs::ScopedPhase judge_phase(scratch->metrics, scratch->worker,
                                     obs::Phase::kJudge);
        elt::derive_into(execution, model.derive_options(), &scratch->derived,
                         &scratch->derive);
        if (!scratch->derived.well_formed) {
            return verdict;  // not even a candidate
        }
        verdict.violated_mask = model.violated_mask(
            execution.program, scratch->derived, &scratch->derive.cycle);
        if (diagnostics) {
            verdict.violated = model.mask_names(verdict.violated_mask);
        }
        verdict.interesting =
            contains_write(execution.program) && verdict.violated_mask != 0;
        if (!verdict.interesting) {
            return verdict;
        }
        mtm::applicable_relaxations_into(execution.program,
                                         &scratch->relax.relaxations);
    }
    // Minimality: every isolated relaxation must be permitted. Each relaxed
    // execution is rebuilt into scratch->relax (kRelax phase), then derived
    // into the same reused buffers as the original (kJudge phase — the
    // original's relations are no longer needed at this point).
    for (const mtm::Relaxation& relaxation : scratch->relax.relaxations) {
        const elt::Execution* relaxed = nullptr;
        {
            obs::ScopedPhase relax_phase(scratch->metrics, scratch->worker,
                                         obs::Phase::kRelax);
            relaxed = &mtm::apply_relaxation_into(
                execution, relaxation, model.vm_aware(), &scratch->relax);
        }
        if (relaxed->program.num_events() == 0) {
            continue;  // the relaxation emptied the test: trivially permitted
        }
        obs::ScopedPhase judge_phase(scratch->metrics, scratch->worker,
                                     obs::Phase::kJudge);
        elt::derive_into(*relaxed, model.derive_options(), &scratch->derived,
                         &scratch->derive);
        // An ill-formed relaxed execution is trivially permitted (the
        // string API reported it as the "well_formed" pseudo-axiom, which
        // the old code did not count as still-forbidden either).
        const bool still_forbidden =
            scratch->derived.well_formed &&
            model.violated_mask(relaxed->program, scratch->derived,
                                &scratch->derive.cycle) != 0;
        if (still_forbidden) {
            if (diagnostics) {
                verdict.blocking_relaxation =
                    relaxation.describe(execution.program);
            }
            return verdict;  // minimal stays false
        }
    }
    verdict.minimal = true;
    return verdict;
}

}  // namespace

MinimalityVerdict
judge(const mtm::Model& model, const elt::Execution& execution)
{
    JudgeScratch scratch;
    return judge_impl(model, execution, &scratch, /*diagnostics=*/true);
}

MinimalityVerdict
judge(const mtm::Model& model, const elt::Execution& execution,
      JudgeScratch* scratch)
{
    return judge_impl(model, execution, scratch, /*diagnostics=*/false);
}

}  // namespace transform::synth
