#include "synth/minimality.h"

#include "elt/derive.h"
#include "mtm/relax.h"
#include "util/logging.h"

namespace transform::synth {

bool
contains_write(const elt::Program& program)
{
    for (elt::EventId id = 0; id < program.num_events(); ++id) {
        if (elt::is_write_like(program.event(id).kind)) {
            return true;
        }
    }
    return false;
}

MinimalityVerdict
judge(const mtm::Model& model, const elt::Execution& execution)
{
    MinimalityVerdict verdict;
    const elt::DerivedRelations derived =
        elt::derive(execution, model.derive_options());
    if (!derived.well_formed) {
        return verdict;  // not even a candidate
    }
    verdict.violated = model.violated_axioms(execution.program, derived);
    verdict.interesting =
        contains_write(execution.program) && !verdict.violated.empty();
    if (!verdict.interesting) {
        return verdict;
    }
    // Minimality: every isolated relaxation must be permitted.
    for (const mtm::Relaxation& relaxation :
         mtm::applicable_relaxations(execution.program)) {
        const elt::Execution relaxed =
            mtm::apply_relaxation(execution, relaxation, model.vm_aware());
        if (relaxed.program.num_events() == 0) {
            continue;  // the relaxation emptied the test: trivially permitted
        }
        const std::vector<std::string> violated =
            model.violated_axioms(relaxed);
        const bool still_forbidden =
            !violated.empty() && violated != std::vector<std::string>{
                                     "well_formed"};
        if (still_forbidden) {
            verdict.blocking_relaxation =
                relaxation.describe(execution.program);
            return verdict;  // minimal stays false
        }
    }
    verdict.minimal = true;
    return verdict;
}

}  // namespace transform::synth
