/// \file
/// The spanning-set criteria of section IV-B: a synthesized candidate
/// execution enters the suite iff it is *interesting* (contains a write and
/// has a forbidden outcome) and *minimal* (every isolated relaxation of the
/// test makes the outcome permitted).
///
/// Judging is the second-hottest call in the synthesis inner loop (one
/// derivation per relaxation of every violating candidate), so it comes in
/// two forms: the diagnostic `judge(model, execution)` that fills the
/// string fields, and the scratch-reusing overload the engine calls, which
/// derives every relaxed execution into reused buffers and never touches a
/// string on the accept path.
#pragma once

#include <string>
#include <vector>

#include "elt/execution.h"
#include "mtm/model.h"
#include "mtm/relax.h"
#include "obs/metrics.h"

namespace transform::synth {

/// Reusable buffers for judge: the derived relations of the execution (and
/// of each relaxed execution, sequentially), the derivation scratch, and
/// the relaxation-rebuild scratch (each relaxed execution is built into
/// relax.relaxed rather than materialized per relaxation). One per worker;
/// not shareable between concurrent judges.
struct JudgeScratch {
    elt::DerivedRelations derived;
    elt::DeriveScratch derive;
    mtm::RelaxScratch relax;
    /// When set, the scratch-reusing judge overload attributes its own time
    /// to Phase::kJudge and the relaxation rebuilds to Phase::kRelax on
    /// \p worker's cell (the engine no longer wraps the call site).
    obs::MetricsRegistry* metrics = nullptr;
    int worker = 0;
};

/// Result of judging one candidate.
struct MinimalityVerdict {
    bool interesting = false;
    bool minimal = false;
    /// Axioms the candidate violates, as a bitset over model.axioms().
    mtm::AxiomMask violated_mask = 0;
    /// Axiom names (filled by the diagnostic judge overload only; the
    /// scratch overload leaves it empty and reports via violated_mask).
    std::vector<std::string> violated;
    /// For non-minimal candidates: description of a relaxation that stays
    /// forbidden (diagnostic overload only).
    std::string blocking_relaxation;
};

/// True when the execution contains at least one write-like event (the
/// paper's first vector-space criterion).
bool contains_write(const elt::Program& program);

/// Judges a candidate execution against \p model: computes the violated
/// axioms, the interesting criterion, and minimality under the restricted
/// relaxations of mtm/relax.h. Fills the diagnostic string fields.
MinimalityVerdict judge(const mtm::Model& model,
                        const elt::Execution& execution);

/// As judge, but reuses \p scratch for every derivation and skips the
/// diagnostic strings (violated stays empty, violated_mask is authoritative;
/// blocking_relaxation stays empty). The interesting/minimal verdict is
/// identical to the diagnostic overload.
MinimalityVerdict judge(const mtm::Model& model,
                        const elt::Execution& execution,
                        JudgeScratch* scratch);

}  // namespace transform::synth
