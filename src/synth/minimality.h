/// \file
/// The spanning-set criteria of section IV-B: a synthesized candidate
/// execution enters the suite iff it is *interesting* (contains a write and
/// has a forbidden outcome) and *minimal* (every isolated relaxation of the
/// test makes the outcome permitted).
///
/// Judging is the second-hottest call in the synthesis inner loop (one
/// derivation per relaxation of every violating candidate), so it comes in
/// two forms: the diagnostic `judge(model, execution)` that fills the
/// string fields, and the scratch-reusing overload the engine calls, which
/// derives every relaxed execution into reused buffers and never touches a
/// string on the accept path.
#pragma once

#include <string>
#include <vector>

#include "elt/execution.h"
#include "mtm/model.h"

namespace transform::synth {

/// Reusable buffers for judge: the derived relations of the execution (and
/// of each relaxed execution, sequentially) plus the derivation scratch.
/// One per worker; not shareable between concurrent judges.
struct JudgeScratch {
    elt::DerivedRelations derived;
    elt::DeriveScratch derive;
};

/// Result of judging one candidate.
struct MinimalityVerdict {
    bool interesting = false;
    bool minimal = false;
    /// Axioms the candidate violates, as a bitset over model.axioms().
    mtm::AxiomMask violated_mask = 0;
    /// Axiom names (filled by the diagnostic judge overload only; the
    /// scratch overload leaves it empty and reports via violated_mask).
    std::vector<std::string> violated;
    /// For non-minimal candidates: description of a relaxation that stays
    /// forbidden (diagnostic overload only).
    std::string blocking_relaxation;
};

/// True when the execution contains at least one write-like event (the
/// paper's first vector-space criterion).
bool contains_write(const elt::Program& program);

/// Judges a candidate execution against \p model: computes the violated
/// axioms, the interesting criterion, and minimality under the restricted
/// relaxations of mtm/relax.h. Fills the diagnostic string fields.
MinimalityVerdict judge(const mtm::Model& model,
                        const elt::Execution& execution);

/// As judge, but reuses \p scratch for every derivation and skips the
/// diagnostic strings (violated stays empty, violated_mask is authoritative;
/// blocking_relaxation stays empty). The interesting/minimal verdict is
/// identical to the diagnostic overload.
MinimalityVerdict judge(const mtm::Model& model,
                        const elt::Execution& execution,
                        JudgeScratch* scratch);

}  // namespace transform::synth
