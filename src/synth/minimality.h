/// \file
/// The spanning-set criteria of section IV-B: a synthesized candidate
/// execution enters the suite iff it is *interesting* (contains a write and
/// has a forbidden outcome) and *minimal* (every isolated relaxation of the
/// test makes the outcome permitted).
#pragma once

#include <string>
#include <vector>

#include "elt/execution.h"
#include "mtm/model.h"

namespace transform::synth {

/// Result of judging one candidate.
struct MinimalityVerdict {
    bool interesting = false;
    bool minimal = false;
    std::vector<std::string> violated;  ///< axioms the candidate violates
    /// For non-minimal candidates: description of a relaxation that stays
    /// forbidden (diagnostic).
    std::string blocking_relaxation;
};

/// True when the execution contains at least one write-like event (the
/// paper's first vector-space criterion).
bool contains_write(const elt::Program& program);

/// Judges a candidate execution against \p model: computes the violated
/// axioms, the interesting criterion, and minimality under the restricted
/// relaxations of mtm/relax.h.
MinimalityVerdict judge(const mtm::Model& model,
                        const elt::Execution& execution);

}  // namespace transform::synth
