#include "synth/exec_enum.h"

#include <algorithm>
#include <map>
#include <vector>

#include "elt/derive.h"
#include "util/logging.h"

namespace transform::synth {

using elt::Event;
using elt::EventId;
using elt::EventKind;
using elt::Execution;
using elt::kNone;
using elt::Program;

namespace {

/// Backtracking order: translation sources, PTE-read sources, PTE-location
/// coherence (dirty-bit values depend on it), address resolution, data-read
/// sources, data coherence, alias-creation order.
class Enumerator {
  public:
    Enumerator(const Program& program, bool vm,
               const std::function<bool(const Execution&)>& visit,
               ExecEnumStats* stats)
        : p_(program), vm_(vm), visit_(visit), stats_(stats),
          exec_(Execution::empty_for(program))
    {
        collect_choices();
    }

    bool run() { return choose_ptw(0); }

  private:
    void
    collect_choices()
    {
        const int n = p_.num_events();
        for (EventId e = 0; e < n; ++e) {
            const Event& ev = p_.event(e);
            if (vm_ && elt::is_data_access(ev.kind)) {
                data_events_.push_back(e);
                std::vector<EventId> walks;
                const EventId own = p_.rptw_of(e);
                if (own != kNone) {
                    walks.push_back(own);  // forced: it walked itself
                } else {
                    for (EventId w = 0; w < n; ++w) {
                        const Event& we = p_.event(w);
                        if (we.kind != EventKind::kRptw ||
                            we.thread != ev.thread || we.va != ev.va) {
                            continue;
                        }
                        if (!p_.precedes(we.parent, e)) {
                            continue;
                        }
                        bool blocked = false;
                        for (EventId i = 0; i < n; ++i) {
                            const Event& inv = p_.event(i);
                            const bool evicts =
                                (inv.kind == EventKind::kInvlpg &&
                                 inv.va == we.va) ||
                                inv.kind == EventKind::kInvlpgAll;
                            if (evicts && inv.thread == we.thread &&
                                p_.precedes(we.parent, i) && p_.precedes(i, e)) {
                                blocked = true;
                                break;
                            }
                        }
                        if (!blocked) {
                            walks.push_back(w);
                        }
                    }
                }
                ptw_options_.push_back(std::move(walks));
            }
            if (elt::is_read_like(ev.kind) && elt::is_pte_access(ev.kind)) {
                pte_reads_.push_back(e);
                std::vector<EventId> sources{kNone};
                for (EventId w = 0; w < n; ++w) {
                    const Event& we = p_.event(w);
                    if (w != e && elt::is_pte_access(we.kind) &&
                        elt::is_write_like(we.kind) && we.va == ev.va) {
                        sources.push_back(w);
                    }
                }
                pte_read_options_.push_back(std::move(sources));
            }
            if (ev.kind == EventKind::kRead) {
                data_reads_.push_back(e);
            }
        }
        // Static PTE-location coherence classes.
        std::map<int, std::vector<EventId>> pte_classes;
        for (EventId w = 0; w < n; ++w) {
            const Event& we = p_.event(w);
            if (elt::is_pte_access(we.kind) && elt::is_write_like(we.kind)) {
                pte_classes[we.va].push_back(w);
            }
        }
        for (auto& [va, members] : pte_classes) {
            pte_co_classes_.push_back(members);
        }
    }

    bool
    choose_ptw(std::size_t index)
    {
        if (index == data_events_.size()) {
            return choose_pte_rf(0);
        }
        const EventId e = data_events_[index];
        if (ptw_options_[index].empty()) {
            if (stats_) {
                ++stats_->rejected;
            }
            return true;  // no translation available: dead branch
        }
        for (const EventId walk : ptw_options_[index]) {
            exec_.ptw_src[e] = walk;
            if (!choose_ptw(index + 1)) {
                return false;
            }
        }
        exec_.ptw_src[e] = kNone;
        return true;
    }

    bool
    choose_pte_rf(std::size_t index)
    {
        if (index == pte_reads_.size()) {
            return choose_pte_co(0);
        }
        const EventId r = pte_reads_[index];
        for (const EventId src : pte_read_options_[index]) {
            exec_.rf_src[r] = src;
            if (!choose_pte_rf(index + 1)) {
                return false;
            }
        }
        exec_.rf_src[r] = kNone;
        return true;
    }

    bool
    choose_pte_co(std::size_t index)
    {
        if (index == pte_co_classes_.size()) {
            return resolve_and_choose_data();
        }
        std::vector<EventId> order = pte_co_classes_[index];
        std::sort(order.begin(), order.end());
        do {
            for (int i = 0; i < static_cast<int>(order.size()); ++i) {
                exec_.co_pos[order[i]] = i;
            }
            if (!choose_pte_co(index + 1)) {
                return false;
            }
        } while (std::next_permutation(order.begin(), order.end()));
        for (const EventId w : order) {
            exec_.co_pos[w] = kNone;
        }
        return true;
    }

    bool
    resolve_and_choose_data()
    {
        const elt::ResolutionResult res = elt::resolve_addresses(exec_, {vm_});
        if (vm_ && !res.ok) {
            if (stats_) {
                ++stats_->rejected;
            }
            return true;
        }
        resolved_ = res.resolved_pa;
        return choose_data_rf(0);
    }

    bool
    choose_data_rf(std::size_t index)
    {
        if (index == data_reads_.size()) {
            return choose_data_co();
        }
        const EventId r = data_reads_[index];
        // Initial state is always an option; writes must share the PA (or
        // the VA in MCM mode).
        exec_.rf_src[r] = kNone;
        if (!choose_data_rf(index + 1)) {
            return false;
        }
        for (EventId w = 0; w < p_.num_events(); ++w) {
            const Event& we = p_.event(w);
            if (w == r || we.kind != EventKind::kWrite) {
                continue;
            }
            const bool same_location = vm_ ? resolved_[w] == resolved_[r]
                                           : we.va == p_.event(r).va;
            if (!same_location) {
                continue;
            }
            exec_.rf_src[r] = w;
            if (!choose_data_rf(index + 1)) {
                return false;
            }
        }
        exec_.rf_src[r] = kNone;
        return true;
    }

    bool
    choose_data_co()
    {
        // Group data writes into coherence classes under the current
        // resolution (per PA with VM, per VA without).
        std::map<int, std::vector<EventId>> classes;
        for (EventId w = 0; w < p_.num_events(); ++w) {
            const Event& we = p_.event(w);
            if (we.kind != EventKind::kWrite) {
                continue;
            }
            classes[vm_ ? resolved_[w] : we.va].push_back(w);
        }
        std::vector<std::vector<EventId>> class_list;
        for (auto& [key, members] : classes) {
            class_list.push_back(members);
        }
        return permute_data_class(class_list, 0);
    }

    bool
    permute_data_class(std::vector<std::vector<EventId>>& class_list,
                       std::size_t index)
    {
        if (index == class_list.size()) {
            return choose_co_pa();
        }
        std::vector<EventId> order = class_list[index];
        std::sort(order.begin(), order.end());
        do {
            for (int i = 0; i < static_cast<int>(order.size()); ++i) {
                exec_.co_pos[order[i]] = i;
            }
            if (!permute_data_class(class_list, index + 1)) {
                return false;
            }
        } while (std::next_permutation(order.begin(), order.end()));
        for (const EventId w : order) {
            exec_.co_pos[w] = kNone;
        }
        return true;
    }

    bool
    choose_co_pa()
    {
        if (!vm_) {
            return emit();
        }
        std::map<int, std::vector<EventId>> classes;
        for (EventId w = 0; w < p_.num_events(); ++w) {
            if (p_.event(w).kind == EventKind::kWpte) {
                classes[p_.event(w).map_pa].push_back(w);
            }
        }
        std::vector<std::vector<EventId>> class_list;
        for (auto& [pa, members] : classes) {
            class_list.push_back(members);
        }
        return permute_co_pa(class_list, 0);
    }

    bool
    permute_co_pa(std::vector<std::vector<EventId>>& class_list,
                  std::size_t index)
    {
        if (index == class_list.size()) {
            return emit();
        }
        std::vector<EventId> order = class_list[index];
        std::sort(order.begin(), order.end());
        do {
            // Consistency with co for same-location Wptes.
            bool consistent = true;
            for (std::size_t i = 0; i < order.size() && consistent; ++i) {
                for (std::size_t j = i + 1; j < order.size(); ++j) {
                    if (p_.event(order[i]).va == p_.event(order[j]).va &&
                        exec_.co_pos[order[i]] > exec_.co_pos[order[j]]) {
                        consistent = false;
                        break;
                    }
                }
            }
            if (consistent) {
                for (int i = 0; i < static_cast<int>(order.size()); ++i) {
                    exec_.co_pa_pos[order[i]] = i;
                }
                if (!permute_co_pa(class_list, index + 1)) {
                    return false;
                }
            }
        } while (std::next_permutation(order.begin(), order.end()));
        for (const EventId w : order) {
            exec_.co_pa_pos[w] = kNone;
        }
        return true;
    }

    bool
    emit()
    {
        if (stats_) {
            ++stats_->executions;
        }
        return visit_(exec_);
    }

    const Program& p_;
    const bool vm_;
    const std::function<bool(const Execution&)>& visit_;
    ExecEnumStats* stats_;
    Execution exec_;

    std::vector<EventId> data_events_;
    std::vector<std::vector<EventId>> ptw_options_;
    std::vector<EventId> pte_reads_;
    std::vector<std::vector<EventId>> pte_read_options_;
    std::vector<EventId> data_reads_;
    std::vector<std::vector<EventId>> pte_co_classes_;
    std::vector<elt::PaId> resolved_;
};

}  // namespace

bool
for_each_execution(const Program& program, bool vm_enabled,
                   const std::function<bool(const Execution&)>& visit,
                   ExecEnumStats* stats)
{
    Enumerator enumerator(program, vm_enabled, visit, stats);
    return enumerator.run();
}

}  // namespace transform::synth
