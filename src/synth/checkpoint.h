/// \file
/// Crash-safe checkpoint journal for synthesis runs (docs/robustness.md,
/// "Checkpoint/resume").
///
/// `elt_synth --checkpoint <path>` journals every *completed* shard-search
/// task: its counters, its synthesized tests (witnesses serialized through
/// the exact-round-trip XML form), and — when the task abandoned its
/// search at the re-split threshold — the resume point its children were
/// derived from. `--resume` replays journaled tasks instead of
/// re-searching them; tasks missing from the journal (in flight when the
/// process died, or quarantined) are searched normally. Because the shard
/// task tree and the min-ticket merge are pure functions of the options,
/// the resumed suite is byte-identical to an uninterrupted run — proven by
/// the kill-mid-run test in tests/fault_test.cpp.
///
/// Durability: the header is written to a temp file, fsync'ed, and
/// atomically renamed into place; each record append is length-and-
/// checksum framed and fsync'ed, so a crash can at worst truncate the
/// final record — resume() drops any malformed tail and the affected
/// shard is simply re-searched.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "synth/engine.h"

namespace transform::synth {

/// One run's append-only journal of completed shard tasks. Thread-safe:
/// append() serializes under a mutex; find() reads the immutable
/// load-time index (appends never touch it). One journal serves every
/// suite of a run — the task id includes the axiom.
class CheckpointJournal {
  public:
    /// A completed shard-search task, exactly as the engine executed it.
    struct ShardRecord {
        std::uint64_t task_id = 0;
        std::uint64_t programs = 0;
        std::uint64_t executions = 0;
        std::uint64_t duplicates = 0;
        /// True when the task abandoned its search at the re-split
        /// threshold; visited/resume_* reproduce the child submission.
        bool split = false;
        std::uint64_t visited = 0;
        int resume_decision = 0;
        std::uint64_t resume_skip = 0;
        /// The task's accepted tests with their merge tickets.
        std::vector<std::pair<SynthesizedTest, std::uint64_t>> tests;
    };

    ~CheckpointJournal();
    CheckpointJournal(const CheckpointJournal&) = delete;
    CheckpointJournal& operator=(const CheckpointJournal&) = delete;

    /// Starts a fresh journal at \p path, overwriting any previous one.
    /// \p fingerprint identifies the run configuration (model, bounds,
    /// backend — anything that changes the task tree or the suites);
    /// resume() refuses a journal whose fingerprint differs. Returns
    /// nullptr and fills \p error on I/O failure.
    static std::unique_ptr<CheckpointJournal> create(
        const std::string& path, const std::string& fingerprint,
        std::string* error);

    /// Opens an existing journal for resume: verifies the fingerprint,
    /// loads every intact record (a truncated or corrupt tail is dropped
    /// and the file truncated back to the last good record), and reopens
    /// for appending. Returns nullptr and fills \p error when the file is
    /// missing, unreadable, or was written by a different configuration.
    static std::unique_ptr<CheckpointJournal> resume(
        const std::string& path, const std::string& fingerprint,
        std::string* error);

    /// The loaded record for \p task_id, or nullptr. Only records loaded
    /// by resume() are visible — same-run appends are never re-queried.
    const ShardRecord* find(std::uint64_t task_id) const;

    /// Durably appends one completed-task record (fsync before return).
    void append(const ShardRecord& record);

    /// Records loaded by resume() (0 for a fresh journal).
    std::size_t loaded() const;

  private:
    CheckpointJournal();
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Stable identity of one shard task within a run: a hash of the axiom,
/// the shard's event bound and prefix, and the task's ticket range and
/// skip. Stable across processes and scheduling (the task tree is a pure
/// function of the options), which is what lets --resume match journaled
/// records to the tasks it re-creates.
std::uint64_t checkpoint_task_id(const std::string& axiom,
                                 const SkeletonShard& shard,
                                 std::uint64_t ticket_base,
                                 std::uint64_t ticket_stride,
                                 std::uint64_t skip);

}  // namespace transform::synth
