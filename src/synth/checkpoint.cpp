#include "synth/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "elt/serialize.h"

namespace transform::synth {
namespace {

constexpr const char* kHeaderMagic = "transform-checkpoint v1";

/// FNV-1a 64-bit over a byte string — the record payload checksum (and the
/// base of checkpoint_task_id). Not cryptographic; it only has to catch
/// torn writes.
std::uint64_t
fnv1a(const char* data, std::size_t size, std::uint64_t h = 1469598103934665603ULL)
{
    for (std::size_t i = 0; i < size; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t
fnv1a_u64(std::uint64_t value, std::uint64_t h)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (value >> (8 * i)) & 0xFF;
        h *= 1099511628211ULL;
    }
    return h;
}

/// Serializes one record's payload: the tests, each as a framed block of
/// (ticket, size, canonical key, violated names, witness XML). The witness
/// goes through the exact-round-trip XML form (elt/serialize.h), so a
/// replayed test is byte-identical to the searched one.
std::string
serialize_tests(
    const std::vector<std::pair<SynthesizedTest, std::uint64_t>>& tests)
{
    std::ostringstream out;
    for (const auto& [test, ticket] : tests) {
        const std::string xml = elt::execution_to_xml(test.witness);
        out << "test " << ticket << ' ' << test.size << ' '
            << test.canonical_key.size() << ' ' << test.violated.size()
            << ' ' << xml.size() << '\n';
        out << test.canonical_key << '\n';
        for (const std::string& name : test.violated) {
            out << name << '\n';
        }
        out << xml;
    }
    return out.str();
}

bool
parse_tests(const std::string& payload,
            std::vector<std::pair<SynthesizedTest, std::uint64_t>>* out)
{
    std::size_t pos = 0;
    while (pos < payload.size()) {
        const std::size_t eol = payload.find('\n', pos);
        if (eol == std::string::npos) {
            return false;
        }
        std::istringstream head(payload.substr(pos, eol - pos));
        std::string tag;
        std::uint64_t ticket = 0;
        int size = 0;
        std::size_t key_len = 0, n_violated = 0, xml_len = 0;
        if (!(head >> tag >> ticket >> size >> key_len >> n_violated >>
              xml_len) ||
            tag != "test") {
            return false;
        }
        pos = eol + 1;
        if (pos + key_len + 1 > payload.size()) {
            return false;
        }
        SynthesizedTest test;
        test.size = size;
        test.canonical_key = payload.substr(pos, key_len);
        pos += key_len;
        if (payload[pos] != '\n') {
            return false;
        }
        ++pos;
        for (std::size_t i = 0; i < n_violated; ++i) {
            const std::size_t name_end = payload.find('\n', pos);
            if (name_end == std::string::npos) {
                return false;
            }
            test.violated.push_back(payload.substr(pos, name_end - pos));
            pos = name_end + 1;
        }
        if (pos + xml_len > payload.size()) {
            return false;
        }
        const std::optional<elt::Execution> witness =
            elt::execution_from_xml(payload.substr(pos, xml_len));
        if (!witness.has_value()) {
            return false;
        }
        test.witness = *witness;
        pos += xml_len;
        out->emplace_back(std::move(test), ticket);
    }
    return true;
}

}  // namespace

struct CheckpointJournal::Impl {
    std::unordered_map<std::uint64_t, ShardRecord> records;
    std::mutex append_mu;
    int fd = -1;

    ~Impl()
    {
        if (fd >= 0) {
            ::close(fd);
        }
    }

    bool
    write_all(const std::string& bytes)
    {
        std::size_t done = 0;
        while (done < bytes.size()) {
            const ssize_t n =
                ::write(fd, bytes.data() + done, bytes.size() - done);
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                return false;
            }
            done += static_cast<std::size_t>(n);
        }
        return true;
    }
};

CheckpointJournal::CheckpointJournal() : impl_(std::make_unique<Impl>()) {}
CheckpointJournal::~CheckpointJournal() = default;

std::unique_ptr<CheckpointJournal>
CheckpointJournal::create(const std::string& path,
                          const std::string& fingerprint, std::string* error)
{
    // Header through a temp file + fsync + atomic rename: a crash during
    // creation leaves either no journal or a complete empty one, never a
    // half-written header a later resume would misread.
    const std::string tmp = path + ".tmp";
    {
        const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd < 0) {
            *error = tmp + ": " + std::strerror(errno);
            return nullptr;
        }
        std::ostringstream header;
        header << kHeaderMagic << '\n'
               << "fingerprint " << fingerprint.size() << '\n'
               << fingerprint << '\n';
        const std::string bytes = header.str();
        std::size_t done = 0;
        bool ok = true;
        while (ok && done < bytes.size()) {
            const ssize_t n =
                ::write(fd, bytes.data() + done, bytes.size() - done);
            if (n < 0 && errno != EINTR) {
                ok = false;
            } else if (n > 0) {
                done += static_cast<std::size_t>(n);
            }
        }
        ok = ok && ::fsync(fd) == 0;
        ::close(fd);
        if (!ok) {
            *error = tmp + ": " + std::strerror(errno);
            return nullptr;
        }
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        *error = path + ": " + std::strerror(errno);
        return nullptr;
    }
    std::unique_ptr<CheckpointJournal> journal(new CheckpointJournal());
    journal->impl_->fd = ::open(path.c_str(), O_WRONLY | O_APPEND, 0644);
    if (journal->impl_->fd < 0) {
        *error = path + ": " + std::strerror(errno);
        return nullptr;
    }
    return journal;
}

std::unique_ptr<CheckpointJournal>
CheckpointJournal::resume(const std::string& path,
                          const std::string& fingerprint, std::string* error)
{
    std::string contents;
    {
        std::FILE* f = std::fopen(path.c_str(), "rb");
        if (f == nullptr) {
            *error = path + ": " + std::strerror(errno);
            return nullptr;
        }
        char buf[1 << 16];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
            contents.append(buf, n);
        }
        std::fclose(f);
    }
    // Header: magic line, fingerprint length line, fingerprint bytes.
    std::size_t pos = contents.find('\n');
    if (pos == std::string::npos ||
        contents.substr(0, pos) != kHeaderMagic) {
        *error = path + ": not a transform checkpoint journal";
        return nullptr;
    }
    ++pos;
    const std::size_t fp_eol = contents.find('\n', pos);
    if (fp_eol == std::string::npos) {
        *error = path + ": truncated journal header";
        return nullptr;
    }
    std::istringstream fp_head(contents.substr(pos, fp_eol - pos));
    std::string tag;
    std::size_t fp_len = 0;
    if (!(fp_head >> tag >> fp_len) || tag != "fingerprint" ||
        fp_eol + 1 + fp_len + 1 > contents.size() + 1) {
        *error = path + ": malformed journal header";
        return nullptr;
    }
    const std::string recorded = contents.substr(fp_eol + 1, fp_len);
    if (recorded != fingerprint) {
        *error = path +
                 ": journal was written by a different run configuration "
                 "(fingerprint mismatch) — rerun with the original flags or "
                 "start a fresh checkpoint";
        return nullptr;
    }
    pos = fp_eol + 1 + fp_len + 1;  // past the fingerprint and its newline

    std::unique_ptr<CheckpointJournal> journal(new CheckpointJournal());
    // Records: stop at the first malformed or torn one; everything after
    // it is dropped (the shards re-search) and the file is truncated back
    // so appends continue from a clean tail.
    std::size_t good_end = pos;
    while (pos < contents.size()) {
        const std::size_t eol = contents.find('\n', pos);
        if (eol == std::string::npos) {
            break;
        }
        std::istringstream head(contents.substr(pos, eol - pos));
        ShardRecord rec;
        std::size_t payload_len = 0;
        std::uint64_t checksum = 0;
        int split = 0;
        if (!(head >> tag >> rec.task_id >> rec.programs >> rec.executions >>
              rec.duplicates >> split >> rec.visited >> rec.resume_decision >>
              rec.resume_skip >> payload_len >> checksum) ||
            tag != "shard") {
            break;
        }
        rec.split = split != 0;
        if (eol + 1 + payload_len > contents.size()) {
            break;  // torn tail (the classic SIGKILL-mid-append case)
        }
        const char* payload = contents.data() + eol + 1;
        if (fnv1a(payload, payload_len) != checksum) {
            break;
        }
        if (!parse_tests(std::string(payload, payload_len), &rec.tests)) {
            break;
        }
        pos = eol + 1 + payload_len;
        good_end = pos;
        journal->impl_->records[rec.task_id] = std::move(rec);
    }

    const int fd = ::open(path.c_str(), O_WRONLY, 0644);
    if (fd < 0) {
        *error = path + ": " + std::strerror(errno);
        return nullptr;
    }
    if (::ftruncate(fd, static_cast<off_t>(good_end)) != 0 ||
        ::lseek(fd, 0, SEEK_END) < 0) {
        *error = path + ": " + std::strerror(errno);
        ::close(fd);
        return nullptr;
    }
    journal->impl_->fd = fd;
    return journal;
}

const CheckpointJournal::ShardRecord*
CheckpointJournal::find(std::uint64_t task_id) const
{
    const auto it = impl_->records.find(task_id);
    return it == impl_->records.end() ? nullptr : &it->second;
}

void
CheckpointJournal::append(const ShardRecord& record)
{
    const std::string payload = serialize_tests(record.tests);
    std::ostringstream framed;
    framed << "shard " << record.task_id << ' ' << record.programs << ' '
           << record.executions << ' ' << record.duplicates << ' '
           << (record.split ? 1 : 0) << ' ' << record.visited << ' '
           << record.resume_decision << ' ' << record.resume_skip << ' '
           << payload.size() << ' ' << fnv1a(payload.data(), payload.size())
           << '\n'
           << payload;
    const std::string bytes = framed.str();
    std::lock_guard<std::mutex> lock(impl_->append_mu);
    if (impl_->fd < 0) {
        return;
    }
    // One write + fsync per completed shard: shard jobs run for
    // milliseconds to minutes, so durability costs noise. A failed write
    // degrades to a journal that simply ends earlier — resume re-searches.
    if (impl_->write_all(bytes)) {
        ::fsync(impl_->fd);
    }
}

std::size_t
CheckpointJournal::loaded() const
{
    return impl_->records.size();
}

std::uint64_t
checkpoint_task_id(const std::string& axiom, const SkeletonShard& shard,
                   std::uint64_t ticket_base, std::uint64_t ticket_stride,
                   std::uint64_t skip)
{
    std::uint64_t h = fnv1a(axiom.data(), axiom.size());
    h = fnv1a_u64(static_cast<std::uint64_t>(shard.options.num_events), h);
    h = fnv1a_u64(shard.prefix.size(), h);
    for (const int decision : shard.prefix) {
        h = fnv1a_u64(static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(decision)),
                      h);
    }
    h = fnv1a_u64(ticket_base, h);
    h = fnv1a_u64(ticket_stride, h);
    h = fnv1a_u64(skip, h);
    return h;
}

}  // namespace transform::synth
