#include "synth/skeleton.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace transform::synth {

using elt::Event;
using elt::EventId;
using elt::EventKind;
using elt::kNone;
using elt::Program;

namespace {

/// Slot kinds at the skeleton level (miss/hit chooses ghost structure).
enum class Slot : int {
    kReadMiss,
    kReadHit,
    kWriteMiss,
    kWriteHit,
    kFence,
    kWpte,
    kInvlpg,
    kInvlpgAll,
};

struct SlotInfo {
    Slot slot;
    int va = kNone;       // assigned in the VA stage
    int map_pa = kNone;   // Wpte target, assigned in the PA stage
    int link = -1;        // Invlpg: global index of linked Wpte (-1 spurious)
    bool rmw = false;     // Read slots: marked as the read of an RMW
};

/// The full skeleton under construction: per-thread slot lists.
struct Draft {
    std::vector<std::vector<SlotInfo>> threads;
};

/// Weight (event count) of a slot.
int
weight(Slot s, const SkeletonOptions& opt)
{
    const int db = opt.dirty_bit_as_rmw ? 2 : 1;  // Wdb (+Rdb in ablation)
    if (!opt.vm_enabled) {
        return 1;  // plain MCM instructions
    }
    switch (s) {
    case Slot::kReadMiss: return 2;
    case Slot::kReadHit: return 1;
    case Slot::kWriteMiss: return 2 + db;
    case Slot::kWriteHit: return 1 + db;
    case Slot::kFence: return 1;
    case Slot::kWpte: return 1;
    case Slot::kInvlpg: return 1;
    case Slot::kInvlpgAll: return 1;
    }
    return 1;
}

bool
is_read_slot(Slot s)
{
    return s == Slot::kReadMiss || s == Slot::kReadHit;
}

bool
is_write_slot(Slot s)
{
    return s == Slot::kWriteMiss || s == Slot::kWriteHit;
}

bool
is_data_slot(Slot s)
{
    return is_read_slot(s) || is_write_slot(s);
}

bool
has_walk(Slot s)
{
    return s == Slot::kReadMiss || s == Slot::kWriteMiss;
}

std::vector<Slot>
available_slots(const SkeletonOptions& opt)
{
    std::vector<Slot> out;
    if (opt.vm_enabled) {
        out = {Slot::kReadMiss, Slot::kReadHit, Slot::kWriteMiss,
               Slot::kWriteHit, Slot::kWpte, Slot::kInvlpg};
    } else {
        out = {Slot::kReadHit, Slot::kWriteHit};
    }
    if (opt.allow_fences) {
        out.push_back(Slot::kFence);
    }
    if (opt.vm_enabled && opt.allow_full_flush) {
        out.push_back(Slot::kInvlpgAll);
    }
    return out;
}

/// Serializes a thread's slot list for the lexicographic thread-symmetry
/// pruning (threads are emitted with non-increasing slot strings).
std::vector<int>
slot_signature(const std::vector<SlotInfo>& slots)
{
    std::vector<int> out;
    out.reserve(slots.size());
    for (const SlotInfo& s : slots) {
        out.push_back(static_cast<int>(s.slot));
    }
    return out;
}

/// One placed non-ghost event while materializing (creation order).
struct Placed {
    EventId id;
    const SlotInfo* info;
    int thread;
};

/// Reusable storage for materialize_into: the candidate Program handed to
/// the visitor plus the placement bookkeeping. One per enumerator — the
/// shard search emits millions of candidates, and rebuilding into pooled
/// vectors keeps the emit path allocation-free in steady state.
struct MaterializePool {
    Program program;
    std::vector<Placed> placed;
    std::vector<EventId> wpte_ids;  // by global Wpte index
    std::vector<int> wpte_vas;      // Assigner: WPTE VAs by global index
};

/// Builds the final Program from a fully-assigned draft, into the pool.
void
materialize_into(const Draft& draft, const SkeletonOptions& opt,
                 MaterializePool* pool)
{
    Program& p = pool->program;
    p.reset(static_cast<int>(draft.threads.size()));
    // First pass: add all non-ghost events in per-thread order, remembering
    // ids so Invlpgs can reference their Wpte and ghosts their parent.
    std::vector<Placed>& placed = pool->placed;
    std::vector<EventId>& wpte_ids = pool->wpte_ids;
    placed.clear();
    wpte_ids.clear();
    for (std::size_t t = 0; t < draft.threads.size(); ++t) {
        for (const SlotInfo& s : draft.threads[t]) {
            Event e;
            e.thread = static_cast<int>(t);
            switch (s.slot) {
            case Slot::kReadMiss:
            case Slot::kReadHit:
                e.kind = EventKind::kRead;
                e.va = s.va;
                break;
            case Slot::kWriteMiss:
            case Slot::kWriteHit:
                e.kind = EventKind::kWrite;
                e.va = s.va;
                break;
            case Slot::kFence:
                e.kind = EventKind::kMfence;
                break;
            case Slot::kWpte:
                e.kind = EventKind::kWpte;
                e.va = s.va;
                e.map_pa = s.map_pa;
                break;
            case Slot::kInvlpg:
                e.kind = EventKind::kInvlpg;
                e.va = s.va;
                e.remap_src = s.link;  // patched to an EventId below
                break;
            case Slot::kInvlpgAll:
                e.kind = EventKind::kInvlpgAll;
                break;
            }
            const EventId id = p.add_event(e);
            placed.push_back({id, &s, static_cast<int>(t)});
            if (s.slot == Slot::kWpte) {
                wpte_ids.push_back(id);
            }
        }
    }
    // Patch Invlpg remap references from global Wpte index to EventId.
    for (const Placed& pl : placed) {
        if (pl.info->slot == Slot::kInvlpg && pl.info->link >= 0) {
            Event e = p.event(pl.id);
            e.remap_src = wpte_ids[pl.info->link];
            p.replace_event(pl.id, e);
        }
    }
    // Ghosts.
    for (const Placed& pl : placed) {
        if (is_write_slot(pl.info->slot) && opt.vm_enabled) {
            if (opt.dirty_bit_as_rmw) {
                p.add_ghost({EventKind::kRdb, 0, kNone, kNone, pl.id, kNone});
            }
            p.add_ghost({EventKind::kWdb, 0, kNone, kNone, pl.id, kNone});
        }
        if (has_walk(pl.info->slot) && opt.vm_enabled) {
            p.add_ghost({EventKind::kRptw, 0, kNone, kNone, pl.id, kNone});
        }
    }
    // rmw pairs: a marked Read pairs with the immediately following Write.
    for (std::size_t t = 0; t < draft.threads.size(); ++t) {
        const auto& seq = p.thread(t);
        const auto& slots = draft.threads[t];
        for (std::size_t i = 0; i + 1 < slots.size(); ++i) {
            if (slots[i].rmw) {
                p.add_rmw(seq[i], seq[i + 1]);
            }
        }
    }
}

/// Stage 4/5: assign VAs (canonical first-use numbering), then Wpte target
/// PAs, then rmw marks, and emit programs.
class Assigner {
  public:
    Assigner(Draft* draft, const SkeletonOptions& opt,
             const std::function<bool(const Program&)>& visit,
             MaterializePool* pool)
        : draft_(draft), opt_(opt), visit_(visit), pool_(pool)
    {
        for (auto& thread : draft_->threads) {
            for (auto& slot : thread) {
                ordered_.push_back(&slot);
            }
        }
    }

    bool run() { return assign_va(0, 0); }

  private:
    /// True when a hit slot can find a live TLB entry: some earlier
    /// same-thread same-VA slot with a walk, with no same-VA INVLPG between.
    bool
    hit_feasible(int thread_index, int position) const
    {
        const auto& slots = draft_->threads[thread_index];
        const int va = slots[position].va;
        for (int i = position - 1; i >= 0; --i) {
            if ((slots[i].slot == Slot::kInvlpg && slots[i].va == va) ||
                slots[i].slot == Slot::kInvlpgAll) {
                return false;  // entry evicted; nothing earlier survives
            }
            if (is_data_slot(slots[i].slot) && slots[i].va == va &&
                has_walk(slots[i].slot)) {
                return true;
            }
        }
        return false;
    }

    /// VA stage: walk slots in order; each VA-bearing slot picks an
    /// existing VA or the next fresh one (canonical first-use numbering).
    /// Linked INVLPGs inherit their WPTE's VA.
    bool
    assign_va(std::size_t index, int used_vas)
    {
        if (index == ordered_.size()) {
            return check_va_constraints() ? assign_pa(0, 0) : true;
        }
        SlotInfo& slot = *ordered_[index];
        if (slot.slot == Slot::kFence || slot.slot == Slot::kInvlpgAll) {
            slot.va = kNone;
            return assign_va(index + 1, used_vas);
        }
        if (slot.slot == Slot::kInvlpg && slot.link >= 0) {
            // Inherits the WPTE's VA; resolved in check_va_constraints once
            // all WPTEs have VAs (the WPTE may come later in order).
            slot.va = -2;  // placeholder: linked
            const bool keep = assign_va(index + 1, used_vas);
            slot.va = kNone;
            return keep;
        }
        const int limit = std::min(opt_.max_vas, used_vas + 1);
        for (int va = 0; va < limit; ++va) {
            slot.va = va;
            const int next_used = std::max(used_vas, va + 1);
            if (!assign_va(index + 1, next_used)) {
                return false;
            }
        }
        slot.va = kNone;
        return true;
    }

    /// Resolves linked-INVLPG VAs and validates hit feasibility.
    bool
    check_va_constraints()
    {
        // Collect WPTE VAs by global index (pooled — this runs once per
        // complete VA assignment).
        std::vector<int>& wpte_vas = pool_->wpte_vas;
        wpte_vas.clear();
        for (const SlotInfo* s : ordered_) {
            if (s->slot == Slot::kWpte) {
                wpte_vas.push_back(s->va);
            }
        }
        for (SlotInfo* s : ordered_) {
            if (s->slot == Slot::kInvlpg && s->link >= 0) {
                s->va = wpte_vas[s->link];
            }
        }
        // Hits need a live same-VA walk earlier on their thread; spurious
        // INVLPGs need a later same-thread same-VA data access.
        for (std::size_t t = 0; t < draft_->threads.size(); ++t) {
            const auto& slots = draft_->threads[t];
            for (std::size_t i = 0; i < slots.size(); ++i) {
                if (opt_.vm_enabled && is_data_slot(slots[i].slot) &&
                    !has_walk(slots[i].slot) &&
                    !hit_feasible(static_cast<int>(t), static_cast<int>(i))) {
                    return false;
                }
                if ((slots[i].slot == Slot::kInvlpg && slots[i].link < 0) ||
                    slots[i].slot == Slot::kInvlpgAll) {
                    bool useful = false;
                    for (std::size_t j = i + 1; j < slots.size(); ++j) {
                        if (is_data_slot(slots[j].slot) &&
                            (slots[i].slot == Slot::kInvlpgAll ||
                             slots[j].va == slots[i].va)) {
                            useful = true;
                            break;
                        }
                    }
                    if (!useful) {
                        return false;
                    }
                }
            }
        }
        return true;
    }

    /// PA stage: each WPTE picks a target among the frames of used VAs and
    /// up to max_fresh_pas fresh frames (canonical first-use numbering).
    bool
    assign_pa(std::size_t index, int used_fresh)
    {
        if (index == ordered_.size()) {
            return assign_rmw(0);
        }
        SlotInfo& slot = *ordered_[index];
        if (slot.slot != Slot::kWpte) {
            return assign_pa(index + 1, used_fresh);
        }
        int num_vas = 0;
        for (const SlotInfo* s : ordered_) {
            if (s->va != kNone && s->va >= num_vas) {
                num_vas = s->va + 1;
            }
        }
        const int fresh_limit = std::min(opt_.max_fresh_pas, used_fresh + 1);
        for (int pa = 0; pa < num_vas + fresh_limit; ++pa) {
            slot.map_pa = pa;
            const int next_fresh =
                std::max(used_fresh, pa - num_vas + 1);
            if (!assign_pa(index + 1, pa >= num_vas ? next_fresh : used_fresh)) {
                return false;
            }
        }
        slot.map_pa = kNone;
        return true;
    }

    /// rmw stage: optionally mark adjacent same-thread same-VA (Read, Write)
    /// pairs; pairs must not overlap (a slot joins at most one pair).
    bool
    assign_rmw(std::size_t thread_index)
    {
        if (!opt_.allow_rmw || !has_any_rmw_candidate()) {
            if (opt_.require_rmw) {
                return true;  // prune: axiom needs an rmw pair
            }
            return emit();
        }
        return assign_rmw_in_thread(thread_index, 0);
    }

    bool
    has_any_rmw_candidate() const
    {
        for (const auto& slots : draft_->threads) {
            for (std::size_t i = 0; i + 1 < slots.size(); ++i) {
                if (is_read_slot(slots[i].slot) &&
                    is_write_slot(slots[i + 1].slot) &&
                    slots[i].va == slots[i + 1].va) {
                    return true;
                }
            }
        }
        return false;
    }

    bool
    assign_rmw_in_thread(std::size_t t, std::size_t i)
    {
        if (t == draft_->threads.size()) {
            if (opt_.require_rmw) {
                bool any = false;
                for (const auto& slots : draft_->threads) {
                    for (const auto& s : slots) {
                        any = any || s.rmw;
                    }
                }
                if (!any) {
                    return true;
                }
            }
            return emit();
        }
        auto& slots = draft_->threads[t];
        if (i + 1 >= slots.size()) {
            return assign_rmw_in_thread(t + 1, 0);
        }
        // Option A: no mark here.
        if (!assign_rmw_in_thread(t, i + 1)) {
            return false;
        }
        // Option B: mark, if this is a valid non-overlapping candidate.
        const bool candidate = is_read_slot(slots[i].slot) &&
                               is_write_slot(slots[i + 1].slot) &&
                               slots[i].va == slots[i + 1].va &&
                               (i == 0 || !slots[i - 1].rmw);
        if (candidate) {
            slots[i].rmw = true;
            const bool keep = assign_rmw_in_thread(t, i + 2);
            slots[i].rmw = false;
            if (!keep) {
                return false;
            }
        }
        return true;
    }

    bool
    emit()
    {
        materialize_into(*draft_, opt_, pool_);
        const Program& program = pool_->program;
        TF_ASSERT(program.validate(opt_.vm_enabled).empty());
        return visit_(program);
    }

    Draft* draft_;
    const SkeletonOptions& opt_;
    const std::function<bool(const Program&)>& visit_;
    MaterializePool* pool_;
    std::vector<SlotInfo*> ordered_;
};

/// Stage 3: remap linking. Each WPTE (global index) must claim exactly one
/// INVLPG on every thread; a same-thread INVLPG must come after its WPTE.
/// Remaining INVLPGs are spurious.
class Linker {
  public:
    Linker(Draft* draft, const SkeletonOptions& opt,
           const std::function<bool(const Program&)>& visit,
           MaterializePool* pool)
        : draft_(draft), opt_(opt), visit_(visit), pool_(pool)
    {
        int wpte_index = 0;
        for (std::size_t t = 0; t < draft->threads.size(); ++t) {
            for (std::size_t i = 0; i < draft->threads[t].size(); ++i) {
                if (draft->threads[t][i].slot == Slot::kWpte) {
                    wptes_.push_back({static_cast<int>(t), static_cast<int>(i),
                                      wpte_index++});
                }
                if (draft->threads[t][i].slot == Slot::kInvlpg) {
                    invlpgs_.push_back({static_cast<int>(t),
                                        static_cast<int>(i), -1});
                }
            }
        }
    }

    bool
    run()
    {
        if (opt_.require_wpte && wptes_.empty()) {
            return true;  // prune
        }
        return link(0, 0);
    }

  private:
    struct Ref {
        int thread;
        int index;
        int global;  // Wpte global index (wptes_) / claimed-by (invlpgs_)
    };

    /// Assigns, for wpte `w`, an invlpg on thread `t`; advances through the
    /// (wpte, thread) grid.
    bool
    link(std::size_t w, std::size_t t)
    {
        if (w == wptes_.size()) {
            return finish();
        }
        if (t == draft_->threads.size()) {
            return link(w + 1, 0);
        }
        const Ref& wpte = wptes_[w];
        for (Ref& inv : invlpgs_) {
            if (inv.thread != static_cast<int>(t) || inv.global != -1) {
                continue;
            }
            // Same-core INVLPG must follow its WPTE in program order.
            if (inv.thread == wpte.thread && inv.index <= wpte.index) {
                continue;
            }
            inv.global = wpte.global;
            draft_->threads[inv.thread][inv.index].link = wpte.global;
            if (!link(w, t + 1)) {
                return false;
            }
            inv.global = -1;
            draft_->threads[inv.thread][inv.index].link = -1;
        }
        return true;  // no valid INVLPG on this core: this linking dies
    }

    bool
    finish()
    {
        Assigner assigner(draft_, opt_, visit_, pool_);
        return assigner.run();
    }

    Draft* draft_;
    const SkeletonOptions& opt_;
    const std::function<bool(const Program&)>& visit_;
    MaterializePool* pool_;
    std::vector<Ref> wptes_;
    std::vector<Ref> invlpgs_;
};

/// Sentinel for "no forced decision" while replaying a shard prefix.
constexpr int kFreeChoice = -2;

/// Stages 1-2: choose per-thread slot sequences whose weights sum to the
/// bound, with non-increasing slot signatures across threads (thread
/// symmetry pruning; full canonicalization happens at dedup time).
///
/// A non-empty \p prefix pins the first decisions of the slot-structure
/// decision stream — slot ordinals and kCloseThread markers, running across
/// threads — restricting the search to one SkeletonShard; the visit order
/// within the shard is unchanged, so shards in partition order concatenate
/// to the full enumeration stream.
///
/// The enumerator is also the engine's lazily-splittable search: the first
/// \p skip candidates are enumerated but not passed to the visitor, and a
/// non-zero \p limit stops the pass at the (limit+1)-th candidate,
/// reporting which split_shard child the unconsumed remainder starts in
/// (the decision taken at depth prefix.size()) and how many consumed
/// candidates that child must skip on resume.
class SlotEnumerator {
  public:
    SlotEnumerator(const SkeletonOptions& opt, std::vector<int> prefix,
                   std::uint64_t skip, std::uint64_t limit,
                   const std::function<bool(const Program&)>& visit,
                   const std::function<bool()>& interrupt)
        : opt_(opt), prefix_(std::move(prefix)), skip_(skip), limit_(limit),
          visit_(visit), interrupt_(interrupt),
          slots_(available_slots(opt)),
          sink_([this](const Program& p) { return consume(p); })
    {
    }

    ShardSearchStop
    run()
    {
        Draft draft;
        enumerate_threads(draft, opt_.num_events);
        ShardSearchStop stop;
        stop.hit_limit = hit_limit_;
        stop.visitor_stopped = visitor_stopped_;
        stop.visited = visited_;
        stop.skipped = consumed_ - visited_;
        stop.resume_decision = boundary_decision_;
        stop.resume_skip = boundary_consumed_;
        return stop;
    }

  private:
    /// Filters every emitted program through the skip/limit machinery.
    /// Candidate order is depth-first over the decision tree, so all
    /// candidates sharing a depth-|prefix| decision are contiguous and the
    /// boundary counters below identify the resume point exactly.
    bool
    consume(const Program& program)
    {
        if (consumed_ < skip_) {
            // The skip replay never reaches the visitor, so the caller's
            // stop conditions (a deadline, typically) are polled here.
            if (interrupt_ && interrupt_()) {
                visitor_stopped_ = true;
                return false;
            }
            ++consumed_;
            ++boundary_consumed_;
            return true;
        }
        if (limit_ > 0 && visited_ >= limit_) {
            hit_limit_ = true;  // this candidate stays unconsumed
            return false;
        }
        ++consumed_;
        ++boundary_consumed_;
        ++visited_;
        if (!visit_(program)) {
            visitor_stopped_ = true;
            return false;
        }
        return true;
    }

    /// Records the decision taken at the current depth. The depth-|prefix|
    /// decision point is a single tree node (every shallower decision is
    /// forced by the prefix), so each of its child subtrees is entered
    /// exactly once and resetting the boundary counter here is sound.
    void
    begin_decision(int decision)
    {
        if (depth_ == prefix_.size()) {
            boundary_decision_ = decision;
            boundary_consumed_ = 0;
        }
        ++depth_;
    }

    void
    end_decision()
    {
        --depth_;
    }

    bool
    enumerate_threads(Draft& draft, int remaining)
    {
        if (remaining == 0 && !draft.threads.empty()) {
            if (opt_.require_shared_walk && !has_possible_hit(draft)) {
                return true;  // prune: tlb_causality needs a shared entry
            }
            Linker linker(&draft, opt_, sink_, &pool_);
            return linker.run();
        }
        if (static_cast<int>(draft.threads.size()) >= opt_.max_threads ||
            remaining <= 0) {
            return true;
        }
        draft.threads.emplace_back();
        const bool keep = enumerate_slots(draft, remaining, /*budget_used=*/0);
        draft.threads.pop_back();
        return keep;
    }

    bool
    enumerate_slots(Draft& draft, int remaining, int used_in_thread)
    {
        // Shard replay: decisions up to the prefix length are forced
        // instead of enumerated. The depth counter runs across threads, so
        // a prefix may reach past a kCloseThread into thread 1+ decisions
        // (closed-prefix shards).
        const int forced =
            depth_ < prefix_.size() ? prefix_[depth_] : kFreeChoice;
        // Option: close this thread (it must be non-empty) and open the next.
        if (!draft.threads.back().empty() &&
            (forced == kFreeChoice || forced == kCloseThread)) {
            // Thread-symmetry pruning: signatures non-increasing.
            const std::size_t k = draft.threads.size();
            if (k < 2 ||
                slot_signature(draft.threads[k - 2]) >=
                    slot_signature(draft.threads[k - 1])) {
                begin_decision(kCloseThread);
                const bool keep = enumerate_threads(draft, remaining);
                end_decision();
                if (!keep) {
                    return false;
                }
            }
        }
        if (forced == kCloseThread) {
            return true;
        }
        for (std::size_t si = 0; si < slots_.size(); ++si) {
            if (forced != kFreeChoice && forced != static_cast<int>(si)) {
                continue;
            }
            const Slot s = slots_[si];
            const int w = weight(s, opt_);
            if (w > remaining) {
                continue;
            }
            begin_decision(static_cast<int>(si));
            draft.threads.back().push_back({s});
            const bool keep =
                enumerate_slots(draft, remaining - w, used_in_thread + w);
            draft.threads.back().pop_back();
            end_decision();
            if (!keep) {
                return false;
            }
        }
        return true;
    }

    /// A hit is possible when some thread has a hit slot (the VA stage
    /// verifies true feasibility; this is the cheap structural check).
    static bool
    has_possible_hit(const Draft& draft)
    {
        for (const auto& slots : draft.threads) {
            for (const SlotInfo& s : slots) {
                if (is_data_slot(s.slot) && !has_walk(s.slot)) {
                    return true;
                }
            }
        }
        return false;
    }

    const SkeletonOptions& opt_;
    std::vector<int> prefix_;
    const std::uint64_t skip_;
    const std::uint64_t limit_;
    const std::function<bool(const Program&)>& visit_;
    const std::function<bool()>& interrupt_;
    std::vector<Slot> slots_;
    std::function<bool(const Program&)> sink_;  ///< skip/limit wrapper
    MaterializePool pool_;  ///< candidate Program + placement, reused

    std::size_t depth_ = 0;         ///< decisions made on the current path
    std::uint64_t consumed_ = 0;    ///< skipped + visited candidates
    std::uint64_t visited_ = 0;
    std::uint64_t boundary_consumed_ = 0;
    int boundary_decision_ = kCloseThread;
    bool hit_limit_ = false;
    bool visitor_stopped_ = false;
};

}  // namespace

namespace {

/// Shared empty interrupt for the unlimited entry points (a per-call
/// temporary would dangle: the enumerator holds a reference through run()).
const std::function<bool()> kNoInterrupt;

}  // namespace

bool
for_each_skeleton(const SkeletonOptions& options,
                  const std::function<bool(const Program&)>& visit)
{
    SlotEnumerator enumerator(options, {}, /*skip=*/0, /*limit=*/0, visit,
                              kNoInterrupt);
    return !enumerator.run().visitor_stopped;
}

bool
for_each_skeleton(const SkeletonShard& shard,
                  const std::function<bool(const Program&)>& visit)
{
    SlotEnumerator enumerator(shard.options, shard.prefix, /*skip=*/0,
                              /*limit=*/0, visit, kNoInterrupt);
    return !enumerator.run().visitor_stopped;
}

ShardSearchStop
search_skeletons(const SkeletonShard& shard, std::uint64_t skip,
                 std::uint64_t limit,
                 const std::function<bool(const Program&)>& visit,
                 const std::function<bool()>& interrupt)
{
    SlotEnumerator enumerator(shard.options, shard.prefix, skip, limit,
                              visit, interrupt);
    return enumerator.run();
}

std::vector<SkeletonShard>
split_shard(const SkeletonShard& shard)
{
    std::vector<SkeletonShard> children;
    const std::vector<Slot> slots = available_slots(shard.options);
    int used = 0;
    int closed_threads = 0;
    for (const int ordinal : shard.prefix) {
        if (ordinal == kCloseThread) {
            ++closed_threads;
        } else {
            used += weight(slots[static_cast<std::size_t>(ordinal)],
                           shard.options);
        }
    }
    const int remaining = shard.options.num_events - used;
    const bool thread_open =
        !shard.prefix.empty() && shard.prefix.back() != kCloseThread;
    if (!thread_open) {
        // The prefix sits at a thread start (empty prefix: thread 0;
        // closed prefix: thread closed_threads). No decision remains when
        // the event budget is spent (the slot structure is complete —
        // linking/VA variants still fan out below, but there is nothing
        // left to pin) or when no further thread may open.
        if (remaining <= 0 || closed_threads >= shard.options.max_threads) {
            return children;
        }
    }
    // Enumerator child order: close-thread first (only once the thread
    // under construction is non-empty), then each slot that still fits the
    // event budget. Children may turn out empty for deeper reasons (thread
    // symmetry, linking, VA feasibility), which is harmless — order, not
    // non-emptiness, is the contract.
    std::vector<int> child = shard.prefix;
    child.push_back(kCloseThread);
    if (thread_open) {
        children.push_back({shard.options, child});
    }
    for (std::size_t si = 0; si < slots.size(); ++si) {
        if (used + weight(slots[si], shard.options) <=
            shard.options.num_events) {
            child.back() = static_cast<int>(si);
            children.push_back({shard.options, child});
        }
    }
    return children;
}

namespace {

/// Replaces every splittable shard with its children, in place.
void
deepen_once(std::vector<SkeletonShard>* shards)
{
    std::vector<SkeletonShard> next;
    next.reserve(shards->size() * 2);
    for (SkeletonShard& shard : *shards) {
        std::vector<SkeletonShard> children = split_shard(shard);
        if (children.empty()) {
            next.push_back(std::move(shard));
        } else {
            for (SkeletonShard& c : children) {
                next.push_back(std::move(c));
            }
        }
    }
    *shards = std::move(next);
}

}  // namespace

std::vector<SkeletonShard>
partition_skeletons_at_depth(const SkeletonOptions& options, int depth)
{
    TF_ASSERT(depth >= 1);
    std::vector<SkeletonShard> shards = split_shard({options, {}});
    for (int d = 1; d < depth; ++d) {
        deepen_once(&shards);
    }
    return shards;
}

std::vector<SkeletonShard>
partition_skeletons(const SkeletonOptions& options, int target_shards)
{
    // Depth 1: one shard per feasible opening slot of the first thread;
    // deepen until the target is met. Replacing each shard with its
    // children in the enumerator's child order preserves the
    // concatenation-equals-full-stream property.
    std::vector<SkeletonShard> shards = split_shard({options, {}});
    for (int depth = 1;
         depth < 4 && static_cast<int>(shards.size()) < target_shards;
         ++depth) {
        deepen_once(&shards);
    }
    return shards;
}

std::uint64_t
count_skeletons(const SkeletonShard& shard, std::uint64_t limit)
{
    std::uint64_t count = 0;
    for_each_skeleton(shard, [&](const Program&) {
        ++count;
        return count < limit;
    });
    return count;
}

}  // namespace transform::synth
