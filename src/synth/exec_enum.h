/// \file
/// Explicit enumeration of all well-formed candidate executions of a fixed
/// ELT program — the fast counterpart of the SAT backend in
/// mtm/encoding.h. Both backends enumerate the same space (asserted by the
/// integration tests); this one backtracks directly over witness choices:
/// translation sources, PTE-read sources, data-read sources, coherence
/// permutations and alias-creation permutations.
#pragma once

#include <cstdint>
#include <functional>

#include "elt/execution.h"

namespace transform::synth {

/// Statistics from one enumeration.
struct ExecEnumStats {
    std::uint64_t executions = 0;   ///< well-formed executions visited
    std::uint64_t rejected = 0;     ///< partial assignments pruned
};

/// Enumerates every well-formed execution of \p program. \p vm_enabled
/// selects the MTM vocabulary (translations required) or the plain-MCM
/// setting. \p visit may return false to stop early; the function returns
/// false in that case.
bool for_each_execution(const elt::Program& program, bool vm_enabled,
                        const std::function<bool(const elt::Execution&)>& visit,
                        ExecEnumStats* stats = nullptr);

}  // namespace transform::synth
