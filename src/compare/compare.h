/// \file
/// The automated comparison tool of section VI-B: classifies hand-written
/// ELTs against what TransForm would synthesize.
///
/// Categories (paper terminology):
///  - unsupported-IPI: the test uses interrupt kinds TransForm does not
///    model; excluded before comparison;
///  - category 1: the test is synthesized verbatim — its program admits an
///    interesting, minimal forbidden execution;
///  - category 2: not minimal as written, but removing some subset of its
///    instructions exposes a minimal ELT that TransForm synthesizes;
///  - not-spanning: neither the test nor any reduction meets the
///    spanning-set criteria.
#pragma once

#include <string>
#include <vector>

#include "compare/coatcheck_suite.h"
#include "mtm/model.h"

namespace transform::compare {

/// Classification of one hand-written test.
enum class Category {
    kUnsupportedIpi,
    kVerbatim,      ///< category 1
    kReducible,     ///< category 2
    kNotSpanning,
};

/// Human-readable label.
const char* category_name(Category category);

/// Per-test outcome.
struct TestComparison {
    std::string name;
    Category category = Category::kNotSpanning;
    /// Canonical key of the matched/reduced synthesizable program (empty
    /// for unsupported-IPI / not-spanning).
    std::string matched_key;
    /// For category 2: the instructions removed by the reduction.
    std::vector<elt::EventId> removed;
};

/// Whole-suite report (the numbers of section VI-B).
struct ComparisonReport {
    std::vector<TestComparison> tests;
    int unsupported_ipi = 0;
    int relevant = 0;        ///< tests entering the comparison
    int verbatim = 0;        ///< category 1 count
    int reducible = 0;       ///< category 2 count
    int not_spanning = 0;
    int matched_programs = 0;  ///< distinct synthesized programs matched by
                               ///< category-1 tests
};

/// Classifies one hand-written test under \p model.
TestComparison classify(const mtm::Model& model, const HandwrittenElt& test);

/// Runs the full comparison over a hand-written suite.
ComparisonReport compare_suite(const mtm::Model& model,
                               const std::vector<HandwrittenElt>& suite);

}  // namespace transform::compare
