#include "compare/compare.h"

#include <set>

#include "elt/derive.h"
#include "mtm/relax.h"
#include "synth/canonical.h"
#include "synth/exec_enum.h"
#include "synth/minimality.h"
#include "util/logging.h"
#include "util/permutations.h"

namespace transform::compare {

using elt::EventId;
using elt::Execution;
using elt::Program;

const char*
category_name(Category category)
{
    switch (category) {
    case Category::kUnsupportedIpi: return "unsupported-ipi";
    case Category::kVerbatim: return "category-1 (verbatim)";
    case Category::kReducible: return "category-2 (reducible)";
    case Category::kNotSpanning: return "not-spanning";
    }
    return "?";
}

namespace {

/// True when the program admits an interesting, minimal forbidden execution
/// under the model — i.e. TransForm would synthesize this exact program.
/// Judges through one reused scratch: the category-2 search below calls
/// this once per instruction-subset reduction, each visiting many
/// executions.
bool
synthesizable_verbatim(const mtm::Model& model, const Program& program,
                       synth::JudgeScratch* scratch)
{
    bool found = false;
    synth::for_each_execution(program, model.vm_aware(),
                              [&](const Execution& execution) {
                                  const synth::MinimalityVerdict verdict =
                                      synth::judge(model, execution, scratch);
                                  if (verdict.interesting && verdict.minimal) {
                                      found = true;
                                      return false;
                                  }
                                  return true;
                              });
    return found;
}

/// The removable instructions of a program: the seeds the category-2 search
/// deletes subsets of (ghosts and remap INVLPGs follow automatically).
std::vector<EventId>
removable_instructions(const Program& program)
{
    std::vector<EventId> out;
    for (EventId id = 0; id < program.num_events(); ++id) {
        const elt::Event& e = program.event(id);
        switch (e.kind) {
        case elt::EventKind::kRead:
        case elt::EventKind::kWrite:
        case elt::EventKind::kWpte:
        case elt::EventKind::kMfence:
            out.push_back(id);
            break;
        case elt::EventKind::kInvlpg:
            if (e.remap_src == elt::kNone) {
                out.push_back(id);
            }
            break;
        case elt::EventKind::kInvlpgAll:
            out.push_back(id);
            break;
        default:
            break;
        }
    }
    return out;
}

}  // namespace

TestComparison
classify(const mtm::Model& model, const HandwrittenElt& test)
{
    TestComparison out;
    out.name = test.name;
    if (test.uses_unsupported_ipi) {
        out.category = Category::kUnsupportedIpi;
        return out;
    }
    const Program& program = test.execution.program;
    TF_ASSERT(program.validate(model.vm_aware()).empty());

    synth::JudgeScratch scratch;
    if (synthesizable_verbatim(model, program, &scratch)) {
        out.category = Category::kVerbatim;
        out.matched_key = synth::canonical_key(program);
        return out;
    }

    // Category-2 search: remove instruction subsets, smallest first, until
    // a reduction is synthesizable verbatim.
    const std::vector<EventId> removable = removable_instructions(program);
    bool found = false;
    util::for_each_subset_by_size(
        static_cast<int>(removable.size()),
        [&](const std::vector<int>& subset) {
            if (static_cast<int>(subset.size()) ==
                static_cast<int>(removable.size())) {
                return true;  // removing everything is not a reduction
            }
            std::vector<EventId> seeds;
            seeds.reserve(subset.size());
            for (const int index : subset) {
                seeds.push_back(removable[index]);
            }
            const Execution reduced =
                mtm::remove_events(test.execution, seeds, model.vm_aware());
            if (reduced.program.num_events() == 0 ||
                !reduced.program.validate(model.vm_aware()).empty()) {
                return true;
            }
            if (synthesizable_verbatim(model, reduced.program, &scratch)) {
                out.category = Category::kReducible;
                out.matched_key = synth::canonical_key(reduced.program);
                out.removed = seeds;
                found = true;
                return false;
            }
            return true;
        });
    if (!found) {
        out.category = Category::kNotSpanning;
    }
    return out;
}

ComparisonReport
compare_suite(const mtm::Model& model, const std::vector<HandwrittenElt>& suite)
{
    ComparisonReport report;
    std::set<std::string> verbatim_keys;
    for (const HandwrittenElt& test : suite) {
        TestComparison comparison = classify(model, test);
        switch (comparison.category) {
        case Category::kUnsupportedIpi:
            ++report.unsupported_ipi;
            break;
        case Category::kVerbatim:
            ++report.relevant;
            ++report.verbatim;
            verbatim_keys.insert(comparison.matched_key);
            break;
        case Category::kReducible:
            ++report.relevant;
            ++report.reducible;
            break;
        case Category::kNotSpanning:
            ++report.not_spanning;
            break;
        }
        report.tests.push_back(std::move(comparison));
    }
    report.matched_programs = static_cast<int>(verbatim_keys.size());
    return report;
}

}  // namespace transform::compare
