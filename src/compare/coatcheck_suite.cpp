#include "compare/coatcheck_suite.h"

#include "elt/derive.h"
#include "elt/fixtures.h"

namespace transform::compare {

using elt::Event;
using elt::EventId;
using elt::EventKind;
using elt::Execution;
using elt::kNone;
using elt::Program;
using elt::ProgramBuilder;

namespace {

constexpr elt::VaId kX = 0;
constexpr elt::VaId kY = 1;
constexpr elt::VaId kU = 2;
constexpr elt::PaId kPaB = 1;

/// Minimal coherence test: a store followed by a same-VA load that ignores
/// it (reads the initial value). Violates sc_per_loc. 4 events.
Execution
coherence_stale_read()
{
    ProgramBuilder b;
    b.thread();
    const EventId w = b.W(kX);
    const EventId wdb = b.wdb(w);
    const EventId rptw = b.rptw(w);
    const EventId r = b.R(kX);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[w] = rptw;
    e.ptw_src[r] = rptw;  // TLB hit on the store's walk
    e.rf_src[rptw] = wdb;
    e.rf_src[r] = kNone;  // stale: ignores the po-earlier store
    e.co_pos[w] = 0;
    e.co_pos[wdb] = 0;
    return e;
}

/// Same program as coherence_stale_read but a different judged outcome:
/// the load reads the store through the shared TLB entry yet the store is
/// coherence-ordered after a phantom position — here we pick the execution
/// where the load reads the store and everything is consistent EXCEPT the
/// walk reads the dirty-bit write while the TLB-causality chain cycles.
/// Violates tlb_causality (and sc_per_loc). 4 events, same canonical
/// program as coherence_stale_read — the paper notes several hand-written
/// ELT executions can map to one synthesized ELT program.
Execution
coherence_stale_read_variant()
{
    ProgramBuilder b;
    b.thread();
    const EventId w = b.W(kX);
    const EventId wdb = b.wdb(w);
    const EventId rptw = b.rptw(w);
    const EventId r = b.R(kX);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[w] = rptw;
    e.ptw_src[r] = rptw;
    e.rf_src[rptw] = kNone;  // walk reads the initial mapping instead
    e.rf_src[r] = kNone;
    e.co_pos[w] = 0;
    e.co_pos[wdb] = 0;
    return e;
}

/// TLB-causality test: a load walks, a later same-VA store hits on the
/// entry, and the load reads the store's value. 4 events.
Execution
tlb_causality_core()
{
    ProgramBuilder b;
    b.thread();
    const EventId r = b.R(kX);
    const EventId rptw = b.rptw(r);
    const EventId w = b.W(kX);
    const EventId wdb = b.wdb(w);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r] = rptw;
    e.ptw_src[w] = rptw;  // hit on the load's entry
    e.rf_src[rptw] = kNone;
    e.rf_src[r] = w;      // reads from the po-later store
    e.co_pos[w] = 0;
    e.co_pos[wdb] = 0;
    return e;
}

/// Store variant of ptwalk2: the store after the remap+INVLPG uses the
/// stale mapping. Violates invlpg. 6 events.
Execution
store_stale_mapping()
{
    ProgramBuilder b;
    b.thread();
    const EventId wpte = b.wpte(kX, kPaB);
    b.invlpg_for(wpte);
    const EventId w = b.W(kX);
    const EventId wdb = b.wdb(w);
    const EventId rptw = b.rptw(w);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[w] = rptw;
    e.rf_src[rptw] = kNone;  // stale initial mapping
    e.co_pos[wpte] = 0;
    e.co_pos[wdb] = 1;
    e.co_pos[w] = 0;
    e.co_pa_pos[wpte] = 0;
    return e;
}

/// Atomicity test: an RMW with an intervening same-location store.
/// Violates rmw_atomicity. 6 events.
Execution
rmw_intervening_store()
{
    ProgramBuilder b;
    b.thread();
    const EventId r = b.R(kX);
    const EventId rptw = b.rptw(r);
    const EventId w = b.W(kX);
    const EventId wdb_w = b.wdb(w);
    b.rmw(r, w);
    b.thread();
    const EventId w2 = b.W(kX);
    const EventId wdb_w2 = b.wdb(w2);
    const EventId rptw2 = b.rptw(w2);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r] = rptw;
    e.ptw_src[w] = rptw;
    e.ptw_src[w2] = rptw2;
    e.rf_src[rptw] = kNone;
    e.rf_src[rptw2] = kNone;
    e.rf_src[r] = kNone;  // reads initial value
    e.co_pos[w2] = 0;     // the remote store slips inside the RMW
    e.co_pos[w] = 1;
    e.co_pos[wdb_w] = 0;  // PTE location z coherence
    e.co_pos[wdb_w2] = 1;
    return e;
}

/// Causality test: cross-core read chain observing a store out of order.
/// Violates causality (and sc_per_loc). 6 events.
Execution
causality_core()
{
    ProgramBuilder b;
    b.thread();
    const EventId w = b.W(kX);
    const EventId wdb = b.wdb(w);
    const EventId rptw_w = b.rptw(w);
    b.thread();
    const EventId r1 = b.R(kX);
    const EventId rptw_r = b.rptw(r1);
    const EventId r2 = b.R(kX);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[w] = rptw_w;
    e.ptw_src[r1] = rptw_r;
    e.ptw_src[r2] = rptw_r;  // hit
    e.rf_src[rptw_w] = wdb;
    e.rf_src[rptw_r] = kNone;
    e.rf_src[r1] = w;     // observes the store...
    e.rf_src[r2] = kNone; // ...then reads the stale initial value
    e.co_pos[w] = 0;
    e.co_pos[wdb] = 0;
    return e;
}

/// Appends a trailing read of an unrelated VA to an execution's program —
/// the standard way the hand-written tests carry extra context that the
/// minimality criterion strips (category 2).
Execution
with_extra_read(Execution base, elt::VaId va, int thread)
{
    Program p = base.program;
    Event r{EventKind::kRead, thread, va, kNone, kNone, kNone};
    const EventId rid = p.add_event(r);
    Event walk{EventKind::kRptw, thread, va, kNone, rid, kNone};
    const EventId wid = p.add_ghost(walk);
    Execution out = Execution::empty_for(std::move(p));
    for (EventId i = 0; i < base.program.num_events(); ++i) {
        out.rf_src[i] = base.rf_src[i];
        out.co_pos[i] = base.co_pos[i];
        out.ptw_src[i] = base.ptw_src[i];
        out.co_pa_pos[i] = base.co_pa_pos[i];
    }
    out.ptw_src[rid] = wid;
    out.rf_src[wid] = kNone;
    out.rf_src[rid] = kNone;
    return out;
}

/// Appends a trailing write of an unrelated VA (with its ghosts).
Execution
with_extra_write(Execution base, elt::VaId va, int thread)
{
    Program p = base.program;
    Event w{EventKind::kWrite, thread, va, kNone, kNone, kNone};
    const EventId wid = p.add_event(w);
    Event db{EventKind::kWdb, thread, va, kNone, wid, kNone};
    const EventId dbid = p.add_ghost(db);
    Event walk{EventKind::kRptw, thread, va, kNone, wid, kNone};
    const EventId walkid = p.add_ghost(walk);
    Execution out = Execution::empty_for(std::move(p));
    for (EventId i = 0; i < base.program.num_events(); ++i) {
        out.rf_src[i] = base.rf_src[i];
        out.co_pos[i] = base.co_pos[i];
        out.ptw_src[i] = base.ptw_src[i];
        out.co_pa_pos[i] = base.co_pa_pos[i];
    }
    out.ptw_src[wid] = walkid;
    out.rf_src[walkid] = kNone;
    // The fresh write is alone in its coherence classes.
    out.co_pos[wid] = 0;
    out.co_pos[dbid] = 0;
    return out;
}

/// Appends a trailing MFENCE.
Execution
with_extra_fence(Execution base, int thread)
{
    Program p = base.program;
    Event f{EventKind::kMfence, thread, kNone, kNone, kNone, kNone};
    p.add_event(f);
    Execution out = Execution::empty_for(std::move(p));
    for (EventId i = 0; i < base.program.num_events(); ++i) {
        out.rf_src[i] = base.rf_src[i];
        out.co_pos[i] = base.co_pos[i];
        out.ptw_src[i] = base.ptw_src[i];
        out.co_pa_pos[i] = base.co_pa_pos[i];
    }
    return out;
}

/// A read-only test (no writes anywhere): fails the spanning criteria.
Execution
read_only_test(int reads)
{
    ProgramBuilder b;
    b.thread();
    EventId first = kNone;
    EventId walk = kNone;
    Execution e = Execution::empty_for(Program{});
    Program p;
    {
        first = b.R(kX);
        walk = b.rptw(first);
        for (int i = 1; i < reads; ++i) {
            b.R(kX);
        }
        p = b.build();
    }
    e = Execution::empty_for(p);
    for (EventId id = 0; id < p.num_events(); ++id) {
        if (p.event(id).kind == EventKind::kRead) {
            e.ptw_src[id] = walk;
            e.rf_src[id] = kNone;
        }
    }
    e.rf_src[walk] = kNone;
    return e;
}

/// A lone store: has a write but admits no forbidden outcome at any
/// reduction — fails the spanning criteria.
Execution
lone_store()
{
    ProgramBuilder b;
    b.thread();
    const EventId w = b.W(kX);
    const EventId wdb = b.wdb(w);
    const EventId rptw = b.rptw(w);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[w] = rptw;
    e.rf_src[rptw] = kNone;
    e.co_pos[w] = 0;
    e.co_pos[wdb] = 0;
    return e;
}

/// A store plus an unrelated-VA load: still no forbidden outcome.
Execution
store_plus_unrelated_load()
{
    Execution e = lone_store();
    return with_extra_read(std::move(e), kY, 0);
}

HandwrittenElt
ipi_test(const std::string& name)
{
    HandwrittenElt t;
    t.name = name;
    t.uses_unsupported_ipi = true;
    return t;
}

HandwrittenElt
make(const std::string& name, Execution execution)
{
    HandwrittenElt t;
    t.name = name;
    t.execution = std::move(execution);
    return t;
}

}  // namespace

std::vector<HandwrittenElt>
coatcheck_suite()
{
    std::vector<HandwrittenElt> suite;

    // --- Category 1: minimal as written (synthesized verbatim). Several
    // are outcome-variants of the same program, as in the paper where 7
    // hand-written ELTs matched 4 synthesized ELT programs.
    suite.push_back(make("ptwalk2", elt::fixtures::fig10a_ptwalk2()));
    suite.push_back(make("ptwalk4", elt::fixtures::fig11_new_elt()));
    suite.push_back(make("coherence1", coherence_stale_read()));
    suite.push_back(make("coherence2", coherence_stale_read_variant()));
    suite.push_back(make("tlbcause1", tlb_causality_core()));
    suite.push_back(make("atomic1", rmw_intervening_store()));
    suite.push_back(make("causal1", causality_core()));

    // --- Category 2: supersets of minimal ELTs (reducible). The extra
    // context events use VA u, whose frame no remap in these tests targets
    // (context at VA y would alias with the "x -> PA b" remaps and create a
    // different — minimal — aliasing test).
    suite.push_back(make("dirtybit3", elt::fixtures::fig10b_dirtybit3()));
    suite.push_back(make("sb-remap", elt::fixtures::fig2c_sb_elt_aliased()));
    suite.push_back(make("ptwalk2-ctx1",
                         with_extra_read(elt::fixtures::fig10a_ptwalk2(), kU, 0)));
    suite.push_back(make("ptwalk2-ctx2",
                         with_extra_write(elt::fixtures::fig10a_ptwalk2(), kU, 0)));
    suite.push_back(make("ptwalk2-ctx3",
                         with_extra_fence(elt::fixtures::fig10a_ptwalk2(), 0)));
    suite.push_back(make("ptwalk4-ctx",
                         with_extra_read(elt::fixtures::fig11_new_elt(), kU, 1)));
    suite.push_back(make("coherence1-ctx1",
                         with_extra_read(coherence_stale_read(), kY, 0)));
    suite.push_back(make("coherence1-ctx2",
                         with_extra_write(coherence_stale_read(), kY, 0)));
    suite.push_back(make("coherence1-ctx3",
                         with_extra_fence(coherence_stale_read(), 0)));
    suite.push_back(make("tlbcause1-ctx1",
                         with_extra_read(tlb_causality_core(), kY, 0)));
    suite.push_back(make("tlbcause1-ctx2",
                         with_extra_write(tlb_causality_core(), kY, 0)));
    suite.push_back(make("atomic1-ctx1",
                         with_extra_read(rmw_intervening_store(), kY, 1)));
    suite.push_back(make("atomic1-ctx2",
                         with_extra_fence(rmw_intervening_store(), 0)));
    suite.push_back(make("causal1-ctx1",
                         with_extra_read(causality_core(), kY, 0)));
    suite.push_back(make("storeptw-ctx",
                         with_extra_read(store_stale_mapping(), kU, 0)));

    // --- 9 tests exercising IPI kinds TransForm does not model (the paper
    // excludes these before comparison).
    for (int i = 1; i <= 9; ++i) {
        suite.push_back(ipi_test("ipi" + std::to_string(i)));
    }

    // --- 9 tests failing the spanning-set criteria.
    suite.push_back(make("sanity-ro1", read_only_test(1)));
    suite.push_back(make("sanity-ro2", read_only_test(2)));
    suite.push_back(make("sanity-ro3", read_only_test(3)));
    suite.push_back(make("sanity-w1", lone_store()));
    suite.push_back(make("sanity-w2", store_plus_unrelated_load()));
    suite.push_back(make("sanity-w3",
                         with_extra_fence(lone_store(), 0)));
    suite.push_back(make("sanity-ro4",
                         with_extra_fence(read_only_test(2), 0)));
    suite.push_back(make("sanity-w4",
                         with_extra_read(store_plus_unrelated_load(), kY, 0)));
    suite.push_back(make("sanity-ro5",
                         with_extra_read(read_only_test(1), kY, 0)));

    return suite;
}

}  // namespace transform::compare
