/// \file
/// A reconstruction of the hand-written COATCheck ELT suite used as the
/// comparison baseline in section VI-B.
///
/// The original 40-test suite is not distributed with the paper; this
/// reconstruction (documented in DESIGN.md) keeps the paper's composition —
/// 40 tests of which 9 use IPI kinds TransForm does not model, 9 fail the
/// spanning-set criteria, and 22 are relevant (split between tests that are
/// minimal as-is and supersets reducible to minimal ELTs) — and includes
/// verbatim the two tests the paper reproduces in its figures: ptwalk2
/// (Fig. 10a) and dirtybit3 (Fig. 10b).
#pragma once

#include <string>
#include <vector>

#include "elt/execution.h"

namespace transform::compare {

/// One hand-written ELT (an execution: program + expected outcome).
struct HandwrittenElt {
    std::string name;
    /// Tests exercising IPI kinds TransForm does not model carry no program
    /// (the comparison tool filters them out first, as the paper does).
    bool uses_unsupported_ipi = false;
    elt::Execution execution;
};

/// The full 40-test reconstructed suite.
std::vector<HandwrittenElt> coatcheck_suite();

}  // namespace transform::compare
