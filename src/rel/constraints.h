/// \file
/// Higher-level constraint builders used by the SAT synthesis backend.
///
/// The closure-based RelExpr::acyclic is quadratic in circuit size; for the
/// axioms that only need "some union of relations is acyclic" as a
/// *requirement* (not as a violated target), an auxiliary rank ordering is
/// cheaper. Both styles are provided; tests check they agree.
#pragma once

#include <vector>

#include "rel/bool_factory.h"
#include "rel/relation.h"

namespace transform::rel {

/// Asserts acyclicity of \p r by introducing a fresh strict total "rank"
/// order O over the universe and requiring r to be a subset of O. (A finite
/// digraph is acyclic iff it embeds in a strict total order.)
void assert_acyclic_with_order(BoolFactory* f, sat::Solver* solver,
                               const RelExpr& r);

/// Returns a formula stating that the union of the given relations is
/// acyclic (closure-based, usable under negation to *violate* an axiom).
ExprId acyclic_union(BoolFactory* f, const std::vector<const RelExpr*>& parts);

/// Returns the union of the given relations (empty list yields the empty
/// relation over \p universe_size).
RelExpr union_all(BoolFactory* f, int universe_size,
                  const std::vector<const RelExpr*>& parts);

}  // namespace transform::rel
