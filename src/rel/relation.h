/// \file
/// Bounded relations as matrices of boolean expressions, plus the relational
/// algebra the MTM axioms are written in (union, intersection, difference,
/// join, transpose, transitive closure, products). Mirrors the Kodkod layer
/// of the paper's Alloy implementation: a relation over a universe of n
/// atoms is an n-vector (arity 1) or n x n matrix (arity 2) of circuit
/// entries; constant relations have constant entries, free relations have
/// fresh solver variables as entries.
#pragma once

#include <string>
#include <vector>

#include "rel/bool_factory.h"

namespace transform::rel {

/// A set of atoms: unary relation over a universe of fixed size.
class SetExpr {
  public:
    SetExpr() = default;

    /// An empty set over \p universe_size atoms.
    static SetExpr empty(BoolFactory* factory, int universe_size);

    /// A constant set holding the listed atoms.
    static SetExpr constant(BoolFactory* factory, int universe_size,
                            const std::vector<int>& atoms);

    /// A free set: one fresh solver variable per atom.
    static SetExpr free(BoolFactory* factory, sat::Solver* solver,
                        int universe_size);

    int size() const { return static_cast<int>(entries_.size()); }
    ExprId at(int atom) const { return entries_[atom]; }
    void set(int atom, ExprId value) { entries_[atom] = value; }

    /// Set algebra.
    SetExpr set_union(BoolFactory* f, const SetExpr& other) const;
    SetExpr set_intersect(BoolFactory* f, const SetExpr& other) const;
    SetExpr set_minus(BoolFactory* f, const SetExpr& other) const;

    /// Formula: this set is empty / non-empty / a subset of another.
    ExprId is_empty(BoolFactory* f) const;
    ExprId is_nonempty(BoolFactory* f) const;
    ExprId subset_of(BoolFactory* f, const SetExpr& other) const;

  private:
    std::vector<ExprId> entries_;
};

/// A binary relation over a universe of fixed size.
class RelExpr {
  public:
    RelExpr() = default;

    /// The empty binary relation.
    static RelExpr empty(BoolFactory* factory, int universe_size);

    /// Re-initializes THIS relation to the empty relation over
    /// \p universe_size atoms, reusing the entry matrix's capacity — the
    /// pooled form of empty() for callers (mtm::EncodingScratch) that
    /// rebuild relations per query without reallocating.
    void reset_empty(BoolFactory* factory, int universe_size);

    /// A constant relation holding the listed (from, to) pairs.
    static RelExpr constant(BoolFactory* factory, int universe_size,
                            const std::vector<std::pair<int, int>>& pairs);

    /// The identity relation (optionally restricted to a set).
    static RelExpr identity(BoolFactory* factory, int universe_size);

    /// A free relation: one fresh solver variable per pair.
    static RelExpr free(BoolFactory* factory, sat::Solver* solver,
                        int universe_size);

    int size() const { return n_; }
    ExprId at(int from, int to) const { return entries_[from * n_ + to]; }
    void set(int from, int to, ExprId value) { entries_[from * n_ + to] = value; }

    /// Relational algebra. All operations allocate a fresh result.
    RelExpr rel_union(BoolFactory* f, const RelExpr& other) const;
    RelExpr rel_intersect(BoolFactory* f, const RelExpr& other) const;
    RelExpr rel_minus(BoolFactory* f, const RelExpr& other) const;
    RelExpr transpose(BoolFactory* f) const;

    /// Relational join: (this.other)(a,c) = OR_b this(a,b) AND other(b,c).
    RelExpr join(BoolFactory* f, const RelExpr& other) const;

    /// Join with a set on the right: (this.s)(a) = OR_b this(a,b) AND s(b).
    SetExpr join_set(BoolFactory* f, const SetExpr& s) const;

    /// Transitive closure via iterative squaring (^R in the paper).
    RelExpr closure(BoolFactory* f) const;

    /// Restriction to a set on both sides: s <: R :> s.
    RelExpr restrict(BoolFactory* f, const SetExpr& domain,
                     const SetExpr& range) const;

    /// Cartesian product of two sets.
    static RelExpr product(BoolFactory* f, const SetExpr& a, const SetExpr& b);

    /// Formulas.
    ExprId is_empty(BoolFactory* f) const;
    ExprId subset_of(BoolFactory* f, const RelExpr& other) const;

    /// Formula: the relation (viewed as a graph over atoms) has no cycle —
    /// i.e. the transitive closure is irreflexive.
    ExprId acyclic(BoolFactory* f) const;

    /// Formula: irreflexivity only.
    ExprId irreflexive(BoolFactory* f) const;

    /// Formula: every atom in \p domain relates to exactly one atom of
    /// \p range (and to nothing outside it).
    ExprId functional_on(BoolFactory* f, const SetExpr& domain,
                         const SetExpr& range) const;

    /// Formula: the relation is a strict total order on \p s (transitive,
    /// irreflexive, and total over distinct members of s) and empty outside.
    ExprId strict_total_order_on(BoolFactory* f, const SetExpr& s) const;

  private:
    int n_ = 0;
    std::vector<ExprId> entries_;
};

}  // namespace transform::rel
