/// \file
/// Hash-consed boolean expression DAG with a Tseitin compiler onto the CDCL
/// solver. This is the circuit layer underneath the relational algebra: the
/// entries of relation matrices are ExprIds, and relational operations build
/// new expressions out of them (exactly the role Kodkod's boolean circuits
/// play in the paper's Alloy pipeline).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sat/solver.h"
#include "sat/types.h"

namespace transform::rel {

/// Handle to a node in the expression arena.
using ExprId = std::int32_t;

/// Reserved ids for the constants.
inline constexpr ExprId kFalseExpr = 0;
inline constexpr ExprId kTrueExpr = 1;

/// Arena of hash-consed boolean expressions.
///
/// Nodes are immutable; construction applies constant folding and
/// idempotence simplifications, and structurally identical nodes are shared.
class BoolFactory {
  public:
    BoolFactory();

    /// Returns the arena to its freshly-constructed state (only the two
    /// constant nodes live) while keeping node storage and hash-table
    /// buckets, so a reused factory builds its next circuit without heap
    /// growth. Invalidates every previously returned ExprId except the
    /// constants.
    void reset();

    /// Wraps a solver variable as an expression.
    ExprId mk_var(sat::Var v);

    /// Constant expression.
    ExprId mk_const(bool value) { return value ? kTrueExpr : kFalseExpr; }

    /// Logical connectives (binary forms fold constants and share nodes).
    ExprId mk_not(ExprId a);
    ExprId mk_and(ExprId a, ExprId b);
    ExprId mk_or(ExprId a, ExprId b);
    ExprId mk_xor(ExprId a, ExprId b);
    ExprId mk_implies(ExprId a, ExprId b) { return mk_or(mk_not(a), b); }
    ExprId mk_iff(ExprId a, ExprId b) { return mk_not(mk_xor(a, b)); }

    /// N-ary folds.
    ExprId mk_and(const std::vector<ExprId>& terms);
    ExprId mk_or(const std::vector<ExprId>& terms);

    /// True iff exactly one of \p terms holds (pairwise encoding; the
    /// universes here are small).
    ExprId mk_exactly_one(const std::vector<ExprId>& terms);

    /// True iff at most one of \p terms holds.
    ExprId mk_at_most_one(const std::vector<ExprId>& terms);

    /// Compiles the expression to a literal in \p solver (Tseitin transform
    /// with memoization; shared subgraphs compile once).
    sat::Lit compile(ExprId id, sat::Solver* solver);

    /// Asserts that \p id holds, exploiting top-level AND/OR structure to
    /// avoid auxiliary variables where possible.
    void assert_true(ExprId id, sat::Solver* solver);

    /// Number of live nodes (for the substrate micro-benchmarks).
    std::size_t num_nodes() const { return nodes_.size(); }

    /// Evaluates the expression under a concrete assignment of solver
    /// variables (used by tests and by model extraction).
    bool evaluate(ExprId id, const std::function<bool(sat::Var)>& value_of) const;

  private:
    enum class Op : std::uint8_t { kConst, kVar, kNot, kAnd, kOr };

    struct Node {
        Op op;
        std::int32_t a = -1;  // child or solver var
        std::int32_t b = -1;  // second child
    };

    struct NodeKey {
        std::uint8_t op;
        std::int32_t a;
        std::int32_t b;
        bool operator==(const NodeKey&) const = default;
    };
    struct NodeKeyHash {
        std::size_t operator()(const NodeKey& k) const
        {
            std::size_t h = k.op;
            h = h * 1000003u + static_cast<std::size_t>(k.a + 7);
            h = h * 1000003u + static_cast<std::size_t>(k.b + 7);
            return h;
        }
    };

    ExprId intern(Op op, std::int32_t a, std::int32_t b);

    std::vector<Node> nodes_;
    std::unordered_map<NodeKey, ExprId, NodeKeyHash> interned_;
    std::unordered_map<ExprId, sat::Lit> compiled_;
    sat::Solver* compiled_for_ = nullptr;
};

}  // namespace transform::rel
