#include "rel/constraints.h"

#include "util/logging.h"

namespace transform::rel {

void
assert_acyclic_with_order(BoolFactory* f, sat::Solver* solver, const RelExpr& r)
{
    const int n = r.size();
    // rank(a, b) == "a precedes b" in some strict total order.
    RelExpr rank = RelExpr::free(f, solver, n);
    for (int a = 0; a < n; ++a) {
        f->assert_true(f->mk_not(rank.at(a, a)), solver);
        f->assert_true(f->mk_not(r.at(a, a)), solver);  // no self-loops
        for (int b = 0; b < n; ++b) {
            if (a == b) {
                continue;
            }
            if (a < b) {
                f->assert_true(f->mk_xor(rank.at(a, b), rank.at(b, a)), solver);
            }
            for (int c = 0; c < n; ++c) {
                if (c == a || c == b) {
                    continue;
                }
                f->assert_true(f->mk_implies(f->mk_and(rank.at(a, b), rank.at(b, c)),
                                             rank.at(a, c)),
                               solver);
            }
            f->assert_true(f->mk_implies(r.at(a, b), rank.at(a, b)), solver);
        }
    }
}

RelExpr
union_all(BoolFactory* f, int universe_size,
          const std::vector<const RelExpr*>& parts)
{
    RelExpr acc = RelExpr::empty(f, universe_size);
    for (const RelExpr* part : parts) {
        TF_ASSERT(part != nullptr);
        acc = acc.rel_union(f, *part);
    }
    return acc;
}

ExprId
acyclic_union(BoolFactory* f, const std::vector<const RelExpr*>& parts)
{
    TF_ASSERT(!parts.empty());
    const int n = parts[0]->size();
    return union_all(f, n, parts).acyclic(f);
}

}  // namespace transform::rel
