#include "rel/bool_factory.h"

#include <algorithm>

#include "util/logging.h"

namespace transform::rel {

BoolFactory::BoolFactory()
{
    nodes_.push_back({Op::kConst, 0, -1});  // kFalseExpr
    nodes_.push_back({Op::kConst, 1, -1});  // kTrueExpr
}

void
BoolFactory::reset()
{
    nodes_.resize(2);    // keep the constants (and the arena's capacity)
    interned_.clear();   // bucket arrays are kept by clear()
    compiled_.clear();
    compiled_for_ = nullptr;
}

ExprId
BoolFactory::intern(Op op, std::int32_t a, std::int32_t b)
{
    const NodeKey key{static_cast<std::uint8_t>(op), a, b};
    const auto it = interned_.find(key);
    if (it != interned_.end()) {
        return it->second;
    }
    const ExprId id = static_cast<ExprId>(nodes_.size());
    nodes_.push_back({op, a, b});
    interned_.emplace(key, id);
    return id;
}

ExprId
BoolFactory::mk_var(sat::Var v)
{
    return intern(Op::kVar, v, -1);
}

ExprId
BoolFactory::mk_not(ExprId a)
{
    if (a == kTrueExpr) {
        return kFalseExpr;
    }
    if (a == kFalseExpr) {
        return kTrueExpr;
    }
    if (nodes_[a].op == Op::kNot) {
        return nodes_[a].a;  // double negation
    }
    return intern(Op::kNot, a, -1);
}

ExprId
BoolFactory::mk_and(ExprId a, ExprId b)
{
    if (a == kFalseExpr || b == kFalseExpr) {
        return kFalseExpr;
    }
    if (a == kTrueExpr) {
        return b;
    }
    if (b == kTrueExpr) {
        return a;
    }
    if (a == b) {
        return a;
    }
    // x AND NOT x == false.
    if (nodes_[a].op == Op::kNot && nodes_[a].a == b) {
        return kFalseExpr;
    }
    if (nodes_[b].op == Op::kNot && nodes_[b].a == a) {
        return kFalseExpr;
    }
    if (a > b) {
        std::swap(a, b);  // canonical operand order improves sharing
    }
    return intern(Op::kAnd, a, b);
}

ExprId
BoolFactory::mk_or(ExprId a, ExprId b)
{
    if (a == kTrueExpr || b == kTrueExpr) {
        return kTrueExpr;
    }
    if (a == kFalseExpr) {
        return b;
    }
    if (b == kFalseExpr) {
        return a;
    }
    if (a == b) {
        return a;
    }
    if (nodes_[a].op == Op::kNot && nodes_[a].a == b) {
        return kTrueExpr;
    }
    if (nodes_[b].op == Op::kNot && nodes_[b].a == a) {
        return kTrueExpr;
    }
    if (a > b) {
        std::swap(a, b);
    }
    return intern(Op::kOr, a, b);
}

ExprId
BoolFactory::mk_xor(ExprId a, ExprId b)
{
    return mk_or(mk_and(a, mk_not(b)), mk_and(mk_not(a), b));
}

ExprId
BoolFactory::mk_and(const std::vector<ExprId>& terms)
{
    ExprId acc = kTrueExpr;
    for (const ExprId t : terms) {
        acc = mk_and(acc, t);
    }
    return acc;
}

ExprId
BoolFactory::mk_or(const std::vector<ExprId>& terms)
{
    ExprId acc = kFalseExpr;
    for (const ExprId t : terms) {
        acc = mk_or(acc, t);
    }
    return acc;
}

ExprId
BoolFactory::mk_at_most_one(const std::vector<ExprId>& terms)
{
    ExprId acc = kTrueExpr;
    for (std::size_t i = 0; i < terms.size(); ++i) {
        for (std::size_t j = i + 1; j < terms.size(); ++j) {
            acc = mk_and(acc, mk_not(mk_and(terms[i], terms[j])));
        }
    }
    return acc;
}

ExprId
BoolFactory::mk_exactly_one(const std::vector<ExprId>& terms)
{
    return mk_and(mk_or(terms), mk_at_most_one(terms));
}

sat::Lit
BoolFactory::compile(ExprId id, sat::Solver* solver)
{
    if (compiled_for_ != solver) {
        compiled_.clear();
        compiled_for_ = solver;
    }
    const auto memo = compiled_.find(id);
    if (memo != compiled_.end()) {
        return memo->second;
    }
    const Node& node = nodes_[id];
    sat::Lit result;
    switch (node.op) {
    case Op::kConst: {
        // A dedicated always-true variable backs the constants.
        const sat::Var v = solver->new_var();
        solver->add_unit(sat::Lit(v, false));
        result = sat::Lit(v, node.a == 0);
        break;
    }
    case Op::kVar:
        result = sat::Lit(node.a, false);
        break;
    case Op::kNot:
        result = ~compile(node.a, solver);
        break;
    case Op::kAnd: {
        const sat::Lit a = compile(node.a, solver);
        const sat::Lit b = compile(node.b, solver);
        const sat::Var t = solver->new_var();
        const sat::Lit tl(t, false);
        solver->add_binary(~tl, a);
        solver->add_binary(~tl, b);
        solver->add_ternary(tl, ~a, ~b);
        result = tl;
        break;
    }
    case Op::kOr: {
        const sat::Lit a = compile(node.a, solver);
        const sat::Lit b = compile(node.b, solver);
        const sat::Var t = solver->new_var();
        const sat::Lit tl(t, false);
        solver->add_binary(tl, ~a);
        solver->add_binary(tl, ~b);
        solver->add_ternary(~tl, a, b);
        result = tl;
        break;
    }
    }
    compiled_.emplace(id, result);
    return result;
}

bool
BoolFactory::evaluate(ExprId id, const std::function<bool(sat::Var)>& value_of) const
{
    const Node& node = nodes_[id];
    switch (node.op) {
    case Op::kConst: return node.a == 1;
    case Op::kVar: return value_of(node.a);
    case Op::kNot: return !evaluate(node.a, value_of);
    case Op::kAnd: return evaluate(node.a, value_of) && evaluate(node.b, value_of);
    case Op::kOr: return evaluate(node.a, value_of) || evaluate(node.b, value_of);
    }
    return false;
}

void
BoolFactory::assert_true(ExprId id, sat::Solver* solver)
{
    if (id == kTrueExpr) {
        return;
    }
    if (id == kFalseExpr) {
        solver->add_clause({});  // marks the formula unsatisfiable
        return;
    }
    const Node& node = nodes_[id];
    if (node.op == Op::kAnd) {
        assert_true(node.a, solver);
        assert_true(node.b, solver);
        return;
    }
    if (node.op == Op::kOr) {
        // Flatten the OR spine into one clause.
        std::vector<ExprId> disjuncts;
        std::vector<ExprId> stack{id};
        while (!stack.empty()) {
            const ExprId e = stack.back();
            stack.pop_back();
            if (nodes_[e].op == Op::kOr) {
                stack.push_back(nodes_[e].a);
                stack.push_back(nodes_[e].b);
            } else {
                disjuncts.push_back(e);
            }
        }
        sat::Clause clause;
        clause.reserve(disjuncts.size());
        for (const ExprId d : disjuncts) {
            clause.push_back(compile(d, solver));
        }
        solver->add_clause(std::move(clause));
        return;
    }
    solver->add_unit(compile(id, solver));
}

}  // namespace transform::rel
