#include "rel/relation.h"

#include "util/logging.h"

namespace transform::rel {

// ---------------------------------------------------------------------------
// SetExpr
// ---------------------------------------------------------------------------

SetExpr
SetExpr::empty(BoolFactory* factory, int universe_size)
{
    SetExpr s;
    s.entries_.assign(universe_size, factory->mk_const(false));
    return s;
}

SetExpr
SetExpr::constant(BoolFactory* factory, int universe_size,
                  const std::vector<int>& atoms)
{
    SetExpr s = empty(factory, universe_size);
    for (const int atom : atoms) {
        TF_ASSERT(atom >= 0 && atom < universe_size);
        s.entries_[atom] = factory->mk_const(true);
    }
    return s;
}

SetExpr
SetExpr::free(BoolFactory* factory, sat::Solver* solver, int universe_size)
{
    SetExpr s;
    s.entries_.reserve(universe_size);
    for (int i = 0; i < universe_size; ++i) {
        s.entries_.push_back(factory->mk_var(solver->new_var()));
    }
    return s;
}

SetExpr
SetExpr::set_union(BoolFactory* f, const SetExpr& other) const
{
    TF_ASSERT(size() == other.size());
    SetExpr out = *this;
    for (int i = 0; i < size(); ++i) {
        out.entries_[i] = f->mk_or(entries_[i], other.entries_[i]);
    }
    return out;
}

SetExpr
SetExpr::set_intersect(BoolFactory* f, const SetExpr& other) const
{
    TF_ASSERT(size() == other.size());
    SetExpr out = *this;
    for (int i = 0; i < size(); ++i) {
        out.entries_[i] = f->mk_and(entries_[i], other.entries_[i]);
    }
    return out;
}

SetExpr
SetExpr::set_minus(BoolFactory* f, const SetExpr& other) const
{
    TF_ASSERT(size() == other.size());
    SetExpr out = *this;
    for (int i = 0; i < size(); ++i) {
        out.entries_[i] = f->mk_and(entries_[i], f->mk_not(other.entries_[i]));
    }
    return out;
}

ExprId
SetExpr::is_empty(BoolFactory* f) const
{
    ExprId acc = f->mk_const(true);
    for (const ExprId e : entries_) {
        acc = f->mk_and(acc, f->mk_not(e));
    }
    return acc;
}

ExprId
SetExpr::is_nonempty(BoolFactory* f) const
{
    return f->mk_not(is_empty(f));
}

ExprId
SetExpr::subset_of(BoolFactory* f, const SetExpr& other) const
{
    TF_ASSERT(size() == other.size());
    ExprId acc = f->mk_const(true);
    for (int i = 0; i < size(); ++i) {
        acc = f->mk_and(acc, f->mk_implies(entries_[i], other.entries_[i]));
    }
    return acc;
}

// ---------------------------------------------------------------------------
// RelExpr
// ---------------------------------------------------------------------------

RelExpr
RelExpr::empty(BoolFactory* factory, int universe_size)
{
    RelExpr r;
    r.n_ = universe_size;
    r.entries_.assign(static_cast<std::size_t>(universe_size) * universe_size,
                      factory->mk_const(false));
    return r;
}

void
RelExpr::reset_empty(BoolFactory* factory, int universe_size)
{
    n_ = universe_size;
    entries_.assign(static_cast<std::size_t>(universe_size) * universe_size,
                    factory->mk_const(false));
}

RelExpr
RelExpr::constant(BoolFactory* factory, int universe_size,
                  const std::vector<std::pair<int, int>>& pairs)
{
    RelExpr r = empty(factory, universe_size);
    for (const auto& [from, to] : pairs) {
        TF_ASSERT(from >= 0 && from < universe_size);
        TF_ASSERT(to >= 0 && to < universe_size);
        r.set(from, to, factory->mk_const(true));
    }
    return r;
}

RelExpr
RelExpr::identity(BoolFactory* factory, int universe_size)
{
    RelExpr r = empty(factory, universe_size);
    for (int i = 0; i < universe_size; ++i) {
        r.set(i, i, factory->mk_const(true));
    }
    return r;
}

RelExpr
RelExpr::free(BoolFactory* factory, sat::Solver* solver, int universe_size)
{
    RelExpr r;
    r.n_ = universe_size;
    r.entries_.reserve(static_cast<std::size_t>(universe_size) * universe_size);
    for (int i = 0; i < universe_size * universe_size; ++i) {
        r.entries_.push_back(factory->mk_var(solver->new_var()));
    }
    return r;
}

RelExpr
RelExpr::rel_union(BoolFactory* f, const RelExpr& other) const
{
    TF_ASSERT(n_ == other.n_);
    RelExpr out = *this;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        out.entries_[i] = f->mk_or(entries_[i], other.entries_[i]);
    }
    return out;
}

RelExpr
RelExpr::rel_intersect(BoolFactory* f, const RelExpr& other) const
{
    TF_ASSERT(n_ == other.n_);
    RelExpr out = *this;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        out.entries_[i] = f->mk_and(entries_[i], other.entries_[i]);
    }
    return out;
}

RelExpr
RelExpr::rel_minus(BoolFactory* f, const RelExpr& other) const
{
    TF_ASSERT(n_ == other.n_);
    RelExpr out = *this;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        out.entries_[i] = f->mk_and(entries_[i], f->mk_not(other.entries_[i]));
    }
    return out;
}

RelExpr
RelExpr::transpose(BoolFactory* f) const
{
    RelExpr out = empty(f, n_);
    for (int a = 0; a < n_; ++a) {
        for (int b = 0; b < n_; ++b) {
            out.set(b, a, at(a, b));
        }
    }
    return out;
}

RelExpr
RelExpr::join(BoolFactory* f, const RelExpr& other) const
{
    TF_ASSERT(n_ == other.n_);
    RelExpr out = empty(f, n_);
    for (int a = 0; a < n_; ++a) {
        for (int c = 0; c < n_; ++c) {
            ExprId acc = f->mk_const(false);
            for (int b = 0; b < n_; ++b) {
                acc = f->mk_or(acc, f->mk_and(at(a, b), other.at(b, c)));
            }
            out.set(a, c, acc);
        }
    }
    return out;
}

SetExpr
RelExpr::join_set(BoolFactory* f, const SetExpr& s) const
{
    TF_ASSERT(n_ == s.size());
    SetExpr out = SetExpr::empty(f, n_);
    for (int a = 0; a < n_; ++a) {
        ExprId acc = f->mk_const(false);
        for (int b = 0; b < n_; ++b) {
            acc = f->mk_or(acc, f->mk_and(at(a, b), s.at(b)));
        }
        out.set(a, acc);
    }
    return out;
}

RelExpr
RelExpr::closure(BoolFactory* f) const
{
    // Iterative squaring: R, R + R.R, ... log2(n) rounds.
    RelExpr acc = *this;
    for (int span = 1; span < n_; span *= 2) {
        acc = acc.rel_union(f, acc.join(f, acc));
    }
    return acc;
}

RelExpr
RelExpr::restrict(BoolFactory* f, const SetExpr& domain,
                  const SetExpr& range) const
{
    TF_ASSERT(n_ == domain.size() && n_ == range.size());
    RelExpr out = empty(f, n_);
    for (int a = 0; a < n_; ++a) {
        for (int b = 0; b < n_; ++b) {
            out.set(a, b, f->mk_and(at(a, b), f->mk_and(domain.at(a), range.at(b))));
        }
    }
    return out;
}

RelExpr
RelExpr::product(BoolFactory* f, const SetExpr& a, const SetExpr& b)
{
    TF_ASSERT(a.size() == b.size());
    RelExpr out = empty(f, a.size());
    for (int i = 0; i < a.size(); ++i) {
        for (int j = 0; j < b.size(); ++j) {
            out.set(i, j, f->mk_and(a.at(i), b.at(j)));
        }
    }
    return out;
}

ExprId
RelExpr::is_empty(BoolFactory* f) const
{
    ExprId acc = f->mk_const(true);
    for (const ExprId e : entries_) {
        acc = f->mk_and(acc, f->mk_not(e));
    }
    return acc;
}

ExprId
RelExpr::subset_of(BoolFactory* f, const RelExpr& other) const
{
    TF_ASSERT(n_ == other.n_);
    ExprId acc = f->mk_const(true);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        acc = f->mk_and(acc, f->mk_implies(entries_[i], other.entries_[i]));
    }
    return acc;
}

ExprId
RelExpr::acyclic(BoolFactory* f) const
{
    return closure(f).irreflexive(f);
}

ExprId
RelExpr::irreflexive(BoolFactory* f) const
{
    ExprId acc = f->mk_const(true);
    for (int i = 0; i < n_; ++i) {
        acc = f->mk_and(acc, f->mk_not(at(i, i)));
    }
    return acc;
}

ExprId
RelExpr::functional_on(BoolFactory* f, const SetExpr& domain,
                       const SetExpr& range) const
{
    ExprId acc = f->mk_const(true);
    for (int a = 0; a < n_; ++a) {
        std::vector<ExprId> row;
        row.reserve(n_);
        for (int b = 0; b < n_; ++b) {
            // Entries must stay inside domain x range.
            acc = f->mk_and(acc, f->mk_implies(at(a, b),
                                               f->mk_and(domain.at(a), range.at(b))));
            row.push_back(at(a, b));
        }
        // Atoms in the domain map to exactly one target.
        acc = f->mk_and(acc, f->mk_implies(domain.at(a), f->mk_exactly_one(row)));
        // Atoms outside the domain map to nothing (covered above).
    }
    return acc;
}

ExprId
RelExpr::strict_total_order_on(BoolFactory* f, const SetExpr& s) const
{
    ExprId acc = f->mk_const(true);
    for (int a = 0; a < n_; ++a) {
        for (int b = 0; b < n_; ++b) {
            const ExprId in_pair = f->mk_and(s.at(a), s.at(b));
            // Entries only between members of s.
            acc = f->mk_and(acc, f->mk_implies(at(a, b), in_pair));
            if (a == b) {
                acc = f->mk_and(acc, f->mk_not(at(a, a)));
                continue;
            }
            // Totality and antisymmetry over distinct members: exactly one
            // direction holds.
            acc = f->mk_and(
                acc, f->mk_implies(in_pair, f->mk_xor(at(a, b), at(b, a))));
            // Transitivity.
            for (int c = 0; c < n_; ++c) {
                if (c == a || c == b) {
                    continue;
                }
                acc = f->mk_and(acc,
                                f->mk_implies(f->mk_and(at(a, b), at(b, c)),
                                              at(a, c)));
            }
        }
    }
    return acc;
}

}  // namespace transform::rel
