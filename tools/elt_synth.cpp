/// \file
/// elt_synth — the TransForm synthesis pipeline as a command-line tool.
///
/// Synthesizes the per-axiom suite(s) of minimal, interesting, unique ELTs
/// for a model up to an instruction bound and prints them (or writes one
/// litmus/XML file per test into an output directory).
///
///   elt_synth --axiom invlpg --bound 5
///   elt_synth --model sc_t_elt --all --bound 6 --out suites/
///   elt_synth --model examples/models/pso_t_elt.mtm --bound 4
///   elt_synth --list-models
///   elt_synth --list-axioms
///
/// Flags:
///   --model NAME|PATH x86t_elt (default) | any builtin or registry model
///                     name | a path to a .mtm specification file (see
///                     docs/models.md; malformed files exit 2 with a
///                     file:line:col diagnostic)
///   --axiom NAME      target axiom (default: every axiom, as --all)
///   --all             synthesize every per-axiom suite
///   --bound N         instruction bound, ghosts included (default 5)
///   --threads N       max cores (default 2)
///   --vas N           max data VAs (default 2)
///   --budget SECONDS  time budget per suite (default unlimited)
///   --backend NAME    enum (default) | sat
///   --sat-incremental on|off
///                     under --backend sat: keep one live solver per
///                     worker across candidates (assumption-based
///                     placement, learned clauses retained; default on)
///                     or re-encode every candidate from scratch (off).
///                     The suite is byte-identical either way.
///   --jobs N          scheduler workers (0 = one per hardware thread)
///   --shard-depth D   auto (default: lazy adaptive re-splitting) | fixed
///                     prefix depth 1..32; the suite is identical either way
///   --resplit-threshold auto|N
///                     adaptive mode: abandon-and-split a shard after N
///                     visited candidates (auto = cost model from the
///                     bound/VM/dirty-bit mix)
///   --progress        stderr heartbeat every ~2s while a suite runs:
///                     shards done/submitted, candidates visited (with an
///                     instantaneous candidates/sec rate), pre-merge tests
///                     found, checkpoint save/replay counters, and a rough
///                     ETA from the shard completion ratio. stdout (the
///                     suite itself) is untouched; off by default
///   --alloc-stats     attribute every operator-new call to the active
///                     phase and call-site bucket (obs::AllocTracker) and
///                     print the per-suite breakdown to stderr; also
///                     carried in --metrics-json reports
///   --stats           print scheduler counters per suite plus an
///                     all-axiom aggregate (jobs, steals, lazy re-splits,
///                     closed-prefix splits, skip re-enumerations, dedup
///                     hits, queue wait); under --backend sat also the
///                     per-suite SAT solver counters (solves, decisions,
///                     propagations, conflicts, ..., plus the incremental
///                     session's assumed literals, retired activation
///                     guards, and retained learned clauses)
///   --trace FILE      record shard jobs, suites, and re-split lineage as
///                     spans and write a Chrome trace-event JSON file
///                     (open in Perfetto or chrome://tracing); see
///                     docs/observability.md
///   --metrics-json FILE
///                     collect the phase-attributed metrics breakdown and
///                     write the versioned metrics-JSON run report
///   --out DIR         write <suite>/<n>.litmus and .xml files
///   --quiet           summary only (no test listings)
///   --spec            print the model as an Alloy-style module and exit
///   --spec-mtm        print the model as .mtm DSL source and exit
///   --list-models     list every resolvable --model name and exit
///
/// Robustness (docs/robustness.md):
///   --checkpoint FILE journal every completed shard task (atomic header,
///                     fsync'ed checksummed records) so an interrupted run
///                     can resume
///   --resume          with --checkpoint: replay the journal's shards
///                     instead of re-searching them (refused when the
///                     journal's run configuration differs); the resumed
///                     suite is byte-identical to an uninterrupted run
///   --shard-retries N re-enqueue a faulted shard up to N times before
///                     quarantining it into the suite's failure list
///                     (default 2)
///   --sat-conflict-budget N
///                     under --backend sat: cap each solve at N conflicts;
///                     an exhausted budget is a retryable shard fault
///                     (0 = unlimited, default)
///   --fault-plan SPEC deterministic fault injection for testing the
///                     containment machinery, e.g.
///                     "seed=7,site=derive,rate=1000,mode=transient"
///                     (also read from $TRANSFORM_FAULT_PLAN)
///
/// SIGINT/SIGTERM request cooperative cancellation: in-flight shards stop
/// within milliseconds, the deterministic partial suite is still merged
/// and printed, and the summary notes the cancellation.
///
/// Numeric flags are validated strictly (std::from_chars, tool_args.h):
/// trailing junk, hex/garbage, or out-of-range values are usage errors,
/// never silently 0.
///
/// Suite content (test listings, --out files) goes to stdout/disk; summary
/// and stats diagnostics go to stderr. Within a time budget the suite is
/// deterministic, so stdout is byte-identical for every --jobs value.
///
/// Exit codes: 0 = every suite complete; 1 = I/O error; 2 = usage error;
/// 3 = at least one suite incomplete (budget hit, cancelled, or shards
/// quarantined) — the partial output is still valid.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "elt/derive.h"
#include "elt/litmus.h"
#include "elt/printer.h"
#include "elt/serialize.h"
#include "mtm/model.h"
#include "mtm/spec_printer.h"
#include "obs/alloc.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "spec/registry.h"
#include "synth/checkpoint.h"
#include "synth/engine.h"
#include "tool_args.h"
#include "util/cancel.h"
#include "util/fault.h"

namespace {

using namespace transform;

struct Args {
    std::string model = "x86t_elt";
    std::string axiom;
    bool all = false;
    int bound = 5;
    int threads = 2;
    int vas = 2;
    double budget = 0;
    std::string backend = "enum";
    bool sat_incremental = true;
    int jobs = 1;
    int shard_depth = 0;                  // 0 = adaptive
    std::uint64_t resplit_threshold = 0;  // 0 = cost model
    bool stats = false;
    bool progress = false;
    bool alloc_stats = false;
    std::string trace_path;
    std::string metrics_json;
    std::string out_dir;
    std::string checkpoint_path;
    bool resume = false;
    int shard_retries = 2;
    long long sat_conflict_budget = 0;
    std::string fault_spec;
    bool quiet = false;
    bool list_axioms = false;
    bool list_models = false;
    bool emit_spec = false;
    bool emit_spec_mtm = false;
};

using tools::parse_int;
using tools::parse_seconds;
using tools::usage_error;

void
print_stats(const std::string& scope, const sched::SchedulerStats& s)
{
    std::fprintf(
        stderr,
        "[%s] scheduler: %d workers, %llu jobs, %llu steals, "
        "%llu lazy re-splits (%llu closed-prefix), "
        "%llu skip re-enumerations, %llu dedup hits, %.3fs queue wait\n",
        scope.c_str(), s.workers,
        static_cast<unsigned long long>(s.jobs_run),
        static_cast<unsigned long long>(s.steals),
        static_cast<unsigned long long>(s.lazy_resplits),
        static_cast<unsigned long long>(s.closed_prefix_splits),
        static_cast<unsigned long long>(s.skip_enumerations),
        static_cast<unsigned long long>(s.dedup_hits),
        s.queue_wait_seconds);
    if (s.shard_retries + s.shards_quarantined + s.checkpoint_shards_saved +
            s.checkpoint_shards_replayed + s.job_faults >
        0) {
        std::fprintf(
            stderr,
            "[%s] robustness: %llu shard retries, %llu quarantined, "
            "%llu ckpt saved, %llu ckpt replayed, %llu pool faults\n",
            scope.c_str(),
            static_cast<unsigned long long>(s.shard_retries),
            static_cast<unsigned long long>(s.shards_quarantined),
            static_cast<unsigned long long>(s.checkpoint_shards_saved),
            static_cast<unsigned long long>(s.checkpoint_shards_replayed),
            static_cast<unsigned long long>(s.job_faults));
    }
}

void
print_solver_stats(const std::string& scope, const sat::SolverStats& s)
{
    std::fprintf(
        stderr,
        "[%s] solver: %llu solves (%.3fs), %llu decisions, "
        "%llu propagations, %llu conflicts, %llu restarts, "
        "%llu learned (%llu deleted), %llu assumed, "
        "%llu retired guards (%llu clauses retained)\n",
        scope.c_str(),
        static_cast<unsigned long long>(s.solve_calls),
        static_cast<double>(s.solve_nanos) * 1e-9,
        static_cast<unsigned long long>(s.decisions),
        static_cast<unsigned long long>(s.propagations),
        static_cast<unsigned long long>(s.conflicts),
        static_cast<unsigned long long>(s.restarts),
        static_cast<unsigned long long>(s.learned_clauses),
        static_cast<unsigned long long>(s.deleted_clauses),
        static_cast<unsigned long long>(s.assumed_literals),
        static_cast<unsigned long long>(s.retired_activations),
        static_cast<unsigned long long>(s.retained_clauses));
}

void
print_alloc_stats(const std::string& scope, const obs::AllocTotals& a)
{
    std::fprintf(stderr, "[%s] allocs: %llu calls, %llu bytes\n",
                 scope.c_str(),
                 static_cast<unsigned long long>(a.total_count()),
                 static_cast<unsigned long long>(a.total_bytes()));
    for (int p = 0; p < obs::kPhaseCount; ++p) {
        const obs::AllocSlot& slot =
            a.phases[static_cast<std::size_t>(p)];
        if (slot.count == 0) {
            continue;
        }
        std::fprintf(stderr, "[%s]   phase %-14s %10llu allocs %12llu B\n",
                     scope.c_str(),
                     obs::phase_name(static_cast<obs::Phase>(p)),
                     static_cast<unsigned long long>(slot.count),
                     static_cast<unsigned long long>(slot.bytes));
    }
    for (int s = 0; s < obs::kAllocSiteCount; ++s) {
        const obs::AllocSlot& slot = a.sites[static_cast<std::size_t>(s)];
        if (slot.count == 0) {
            continue;
        }
        std::fprintf(stderr, "[%s]   site  %-14s %10llu allocs %12llu B\n",
                     scope.c_str(),
                     obs::alloc_site_name(static_cast<obs::AllocSite>(s)),
                     static_cast<unsigned long long>(slot.count),
                     static_cast<unsigned long long>(slot.bytes));
    }
}

int
run_suite(const mtm::Model& model, const std::string& axiom,
          const Args& args, util::CancelToken cancel,
          const util::FaultPlan* fault_plan,
          synth::CheckpointJournal* journal, obs::TraceCollector* trace,
          sched::SchedulerStats* total, sat::SolverStats* solver_total,
          obs::RunReport* report, obs::AllocTotals* alloc_total,
          bool* any_incomplete)
{
    synth::SynthesisOptions options;
    options.min_bound = model.vm_aware() ? 4 : 2;
    options.bound = args.bound;
    options.max_threads = args.threads;
    options.max_vas = args.vas;
    options.time_budget_seconds = args.budget;
    options.backend = args.backend == "sat" ? synth::Backend::kSat
                                            : synth::Backend::kEnumerative;
    options.sat_incremental = args.sat_incremental;
    options.jobs = args.jobs;
    options.shard_depth = args.shard_depth;
    options.resplit_threshold = args.resplit_threshold;
    options.collect_metrics = report != nullptr;
    // Allocation attribution rides with --alloc-stats and (so the report
    // carries real alloc data) with --metrics-json.
    options.track_allocs = args.alloc_stats || report != nullptr;
    options.trace = trace;
    // Progress heartbeat (stderr only; the suite on stdout is untouched).
    // The callback runs on the engine's sampling thread, which lives
    // inside the synthesize_suite call below, so capturing locals by
    // reference is safe.
    struct {
        std::uint64_t candidates = 0;
        double seconds = 0.0;
    } last;
    const std::string scope = model.name() + " / " + axiom;
    if (args.progress) {
        options.progress = [&last,
                            &scope](const synth::SynthesisProgress& p) {
            const double dt = p.seconds - last.seconds;
            const double rate =
                dt > 0 ? static_cast<double>(p.candidates - last.candidates)
                             / dt
                       : 0.0;
            last.candidates = p.candidates;
            last.seconds = p.seconds;
            // ETA from the shard completion ratio — rough by design:
            // shards_submitted grows as lazy re-splits fire.
            char eta[32] = "?";
            if (p.shards_done > 0 && p.shards_submitted > p.shards_done) {
                std::snprintf(eta, sizeof eta, "~%.1fs",
                              p.seconds *
                                  static_cast<double>(p.shards_submitted -
                                                      p.shards_done) /
                                  static_cast<double>(p.shards_done));
            } else if (p.shards_done == p.shards_submitted &&
                       p.shards_done > 0) {
                std::snprintf(eta, sizeof eta, "draining");
            }
            std::string ckpt;
            if (p.checkpoint_shards_saved + p.checkpoint_shards_replayed >
                0) {
                ckpt = ", ckpt " +
                       std::to_string(p.checkpoint_shards_saved) +
                       " saved/" +
                       std::to_string(p.checkpoint_shards_replayed) +
                       " replayed";
            }
            std::fprintf(
                stderr,
                "[progress] %s: shards %llu/%llu, %llu candidates "
                "(%.0f/s), %llu found%s, %.1fs elapsed, ETA %s\n",
                scope.c_str(),
                static_cast<unsigned long long>(p.shards_done),
                static_cast<unsigned long long>(p.shards_submitted),
                static_cast<unsigned long long>(p.candidates), rate,
                static_cast<unsigned long long>(p.tests_found),
                ckpt.c_str(), p.seconds, eta);
        };
    }
    options.cancel = cancel;
    options.shard_retry_limit = args.shard_retries;
    options.sat_conflict_budget = args.sat_conflict_budget;
    options.fault_plan = fault_plan;
    options.checkpoint = journal;
    const synth::SuiteResult suite =
        synth::synthesize_suite(model, axiom, options);

    std::string status;
    if (suite.cancelled) {
        status += ", cancelled";
    }
    if (!suite.failures.empty()) {
        status += ", " + std::to_string(suite.failures.size()) +
                  " shards quarantined";
    }
    if (!suite.complete && status.empty()) {
        status = ", budget hit";
    }
    if (!suite.complete) {
        *any_incomplete = true;
    }
    std::fprintf(stderr,
                 "[%s / %s] %zu unique minimal ELTs "
                 "(%llu programs, %llu executions, %.2fs%s)\n",
                 model.name().c_str(), axiom.c_str(), suite.tests.size(),
                 static_cast<unsigned long long>(suite.programs_considered),
                 static_cast<unsigned long long>(suite.executions_considered),
                 suite.seconds, status.c_str());
    for (const synth::ShardFailure& failure : suite.failures) {
        std::fprintf(stderr,
                     "[%s / %s] quarantined after %d attempts: %s (%s)\n",
                     model.name().c_str(), axiom.c_str(), failure.attempts,
                     failure.shard.c_str(), failure.error.c_str());
    }
    total->merge(suite.scheduler);
    solver_total->merge(suite.solver);
    alloc_total->merge(suite.allocs);
    if (report != nullptr) {
        report->suites.push_back(obs::suite_report(suite));
    }
    if (args.stats) {
        print_stats(scope, suite.scheduler);
        if (suite.solver.solve_calls > 0) {
            print_solver_stats(scope, suite.solver);
        }
    }
    if (args.alloc_stats) {
        print_alloc_stats(scope, suite.allocs);
    }

    for (std::size_t i = 0; i < suite.tests.size(); ++i) {
        const auto& test = suite.tests[i];
        const std::string name =
            axiom + "_" + std::to_string(i + 1);
        if (!args.quiet) {
            std::printf("\n--- %s (%d instructions; violates:", name.c_str(),
                        test.size);
            for (const auto& v : test.violated) {
                std::printf(" %s", v.c_str());
            }
            std::printf(") ---\n%s",
                        elt::program_to_litmus(test.witness.program, name)
                            .c_str());
        }
        if (!args.out_dir.empty()) {
            namespace fs = std::filesystem;
            const fs::path dir = fs::path(args.out_dir) / axiom;
            std::error_code ec;
            fs::create_directories(dir, ec);
            if (ec) {
                std::fprintf(stderr, "cannot create %s: %s\n",
                             dir.string().c_str(), ec.message().c_str());
                return 1;
            }
            std::ofstream litmus(dir / (name + ".litmus"));
            litmus << elt::program_to_litmus(test.witness.program, name);
            std::ofstream xml(dir / (name + ".xml"));
            xml << elt::execution_to_xml(test.witness, name);
        }
    }
    if (!args.quiet) {
        std::printf("\n");
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : "";
        };
        long long parsed = 0;
        if (flag == "--model") {
            args.model = value();
        } else if (flag == "--axiom") {
            args.axiom = value();
        } else if (flag == "--all") {
            args.all = true;
        } else if (flag == "--bound") {
            const std::string text = value();
            if (!parse_int(text, 1, 64, &parsed)) {
                return usage_error(flag, "a bound in 1..64", text);
            }
            args.bound = static_cast<int>(parsed);
        } else if (flag == "--threads") {
            const std::string text = value();
            if (!parse_int(text, 1, 8, &parsed)) {
                return usage_error(flag, "a core count in 1..8", text);
            }
            args.threads = static_cast<int>(parsed);
        } else if (flag == "--vas") {
            const std::string text = value();
            if (!parse_int(text, 1, 8, &parsed)) {
                return usage_error(flag, "a VA count in 1..8", text);
            }
            args.vas = static_cast<int>(parsed);
        } else if (flag == "--budget") {
            const std::string text = value();
            if (!parse_seconds(text, &args.budget)) {
                return usage_error(flag, "a non-negative seconds value",
                                   text);
            }
        } else if (flag == "--backend") {
            args.backend = value();
        } else if (flag == "--sat-incremental") {
            const std::string text = value();
            if (text == "on") {
                args.sat_incremental = true;
            } else if (text == "off") {
                args.sat_incremental = false;
            } else {
                return usage_error(flag, "'on' or 'off'", text);
            }
        } else if (flag == "--jobs") {
            const std::string text = value();
            if (!tools::parse_jobs(text, &args.jobs)) {
                return usage_error(flag, tools::kJobsExpectation, text);
            }
        } else if (flag == "--shard-depth") {
            const std::string depth = value();
            if (depth == "auto") {
                args.shard_depth = 0;
            } else if (parse_int(depth, 1, 32, &parsed)) {
                args.shard_depth = static_cast<int>(parsed);
            } else {
                return usage_error(flag, "'auto' or a fixed depth in 1..32",
                                   depth);
            }
        } else if (flag == "--resplit-threshold") {
            const std::string threshold = value();
            if (threshold == "auto") {
                args.resplit_threshold = 0;
            } else if (parse_int(threshold, 1,
                                 std::int64_t{1} << 32, &parsed)) {
                args.resplit_threshold =
                    static_cast<std::uint64_t>(parsed);
            } else {
                return usage_error(
                    flag, "'auto' or a candidate count in 1..2^32",
                    threshold);
            }
        } else if (flag == "--checkpoint") {
            args.checkpoint_path = value();
            if (args.checkpoint_path.empty()) {
                return usage_error(flag, "a journal file path", "");
            }
        } else if (flag == "--resume") {
            args.resume = true;
        } else if (flag == "--shard-retries") {
            const std::string text = value();
            if (!parse_int(text, 0, 16, &parsed)) {
                return usage_error(flag, "a retry count in 0..16", text);
            }
            args.shard_retries = static_cast<int>(parsed);
        } else if (flag == "--sat-conflict-budget") {
            const std::string text = value();
            if (!parse_int(text, 0, std::int64_t{1} << 40, &parsed)) {
                return usage_error(
                    flag, "a conflict count in 0..2^40 (0 = unlimited)",
                    text);
            }
            args.sat_conflict_budget = parsed;
        } else if (flag == "--fault-plan") {
            args.fault_spec = value();
            if (args.fault_spec.empty()) {
                return usage_error(flag, "a fault-plan spec", "");
            }
        } else if (flag == "--stats") {
            args.stats = true;
        } else if (flag == "--progress") {
            args.progress = true;
        } else if (flag == "--alloc-stats") {
            args.alloc_stats = true;
        } else if (flag == "--trace") {
            args.trace_path = value();
            if (args.trace_path.empty()) {
                return usage_error(flag, "an output file path", "");
            }
        } else if (flag == "--metrics-json") {
            args.metrics_json = value();
            if (args.metrics_json.empty()) {
                return usage_error(flag, "an output file path", "");
            }
        } else if (flag == "--out") {
            args.out_dir = value();
        } else if (flag == "--quiet") {
            args.quiet = true;
        } else if (flag == "--list-axioms") {
            args.list_axioms = true;
        } else if (flag == "--list-models") {
            args.list_models = true;
        } else if (flag == "--spec") {
            args.emit_spec = true;
        } else if (flag == "--spec-mtm") {
            args.emit_spec_mtm = true;
        } else {
            std::fprintf(stderr, "unknown flag '%s' (see the file header "
                         "for usage)\n", flag.c_str());
            return 2;
        }
    }

    if (args.list_models) {
        std::printf("%s", spec::list_models_text().c_str());
        return 0;
    }
    std::string model_error;
    const std::optional<spec::ResolvedModel> resolved =
        spec::resolve_model(args.model, &model_error);
    if (!resolved.has_value()) {
        std::fprintf(stderr, "%s\n", model_error.c_str());
        return 2;
    }
    const mtm::Model& model = resolved->model;
    if (args.emit_spec) {
        std::printf("%s", mtm::model_to_alloy(model).c_str());
        return 0;
    }
    if (args.emit_spec_mtm) {
        std::printf("%s", mtm::model_to_mtm(model).c_str());
        return 0;
    }
    if (args.list_axioms) {
        std::printf("%s axioms:\n", model.name().c_str());
        for (const auto& axiom : model.axioms()) {
            std::printf("  %-16s %s\n", axiom.name.c_str(),
                        axiom.description.c_str());
        }
        return 0;
    }

    std::vector<std::string> axioms;
    if (!args.axiom.empty()) {
        if (model.axiom(args.axiom) == nullptr) {
            std::fprintf(stderr, "model %s has no axiom '%s'\n",
                         model.name().c_str(), args.axiom.c_str());
            return 2;
        }
        axioms.push_back(args.axiom);
    } else {
        for (const auto& axiom : model.axioms()) {
            axioms.push_back(axiom.name);
        }
    }
    if (args.resume && args.checkpoint_path.empty()) {
        return usage_error("--resume", "--checkpoint PATH to resume from",
                           "");
    }
    // Fault injection (tests/CI): flag wins, environment is the fallback
    // so harnesses can inject without plumbing argv.
    std::optional<util::FaultPlan> fault_plan;
    std::string fault_source = args.fault_spec;
    if (fault_source.empty()) {
        const char* env = std::getenv("TRANSFORM_FAULT_PLAN");
        fault_source = env == nullptr ? "" : env;
    }
    if (!fault_source.empty()) {
        fault_plan.emplace();
        std::string fault_error;
        if (!util::FaultPlan::parse(fault_source, &*fault_plan,
                                    &fault_error)) {
            return usage_error("--fault-plan", fault_error.c_str(),
                               fault_source);
        }
    }
    // Cooperative cancellation on SIGINT/SIGTERM: the partial suite is
    // still merged, printed, and (if journaling) resumable.
    const util::CancelToken cancel = util::install_signal_cancel();
    // Checkpoint journal: the fingerprint covers everything that shapes
    // the shard task tree or the suites. --jobs and --sat-incremental are
    // deliberately absent — the suite and the task tree are byte-identical
    // across them (the determinism contract), so a resume may change them.
    std::unique_ptr<synth::CheckpointJournal> journal;
    if (!args.checkpoint_path.empty()) {
        const std::string fingerprint =
            "model=" + model.name() + " bound=" + std::to_string(args.bound) +
            " threads=" + std::to_string(args.threads) +
            " vas=" + std::to_string(args.vas) +
            " backend=" + args.backend +
            " shard-depth=" + std::to_string(args.shard_depth) +
            " resplit-threshold=" + std::to_string(args.resplit_threshold);
        std::string journal_error;
        journal = args.resume
                      ? synth::CheckpointJournal::resume(
                            args.checkpoint_path, fingerprint,
                            &journal_error)
                      : synth::CheckpointJournal::create(
                            args.checkpoint_path, fingerprint,
                            &journal_error);
        if (journal == nullptr) {
            std::fprintf(stderr, "--checkpoint: %s\n",
                         journal_error.c_str());
            return 1;
        }
        if (args.resume) {
            std::fprintf(stderr, "[checkpoint] resuming %zu journaled "
                         "shards from %s\n", journal->loaded(),
                         args.checkpoint_path.c_str());
        }
    }
    // Observability (docs/observability.md): one collector/report spans
    // every suite of the invocation. Each suite builds its own pool, so the
    // collector is sized for the resolved worker count, which every pool
    // shares.
    std::optional<obs::TraceCollector> trace;
    if (!args.trace_path.empty()) {
        trace.emplace(sched::resolve_jobs(args.jobs));
    }
    std::optional<obs::RunReport> report;
    if (!args.metrics_json.empty()) {
        report.emplace();
        report->tool = "elt_synth";
        report->model = model.name();
        report->backend = args.backend;
        report->bound = args.bound;
        report->jobs = sched::resolve_jobs(args.jobs);
    }

    sched::SchedulerStats total;
    sat::SolverStats solver_total;
    obs::AllocTotals alloc_total;
    bool any_incomplete = false;
    for (const auto& axiom : axioms) {
        const int rc = run_suite(model, axiom, args, cancel,
                                 fault_plan ? &*fault_plan : nullptr,
                                 journal.get(), trace ? &*trace : nullptr,
                                 &total, &solver_total,
                                 report ? &*report : nullptr, &alloc_total,
                                 &any_incomplete);
        if (rc != 0) {
            return rc;
        }
    }
    if (args.stats && axioms.size() > 1) {
        // Counters sum across suites; `workers` and the queue wait (which
        // overlap rather than add) take the maximum — see
        // SchedulerStats::merge.
        print_stats(model.name() + " / all axioms", total);
        if (solver_total.solve_calls > 0) {
            print_solver_stats(model.name() + " / all axioms", solver_total);
        }
    }
    if (args.alloc_stats && axioms.size() > 1) {
        print_alloc_stats(model.name() + " / all axioms", alloc_total);
    }
    if (trace) {
        std::string error;
        if (!trace->write(args.trace_path, &error)) {
            std::fprintf(stderr, "--trace: %s\n", error.c_str());
            return 1;
        }
        std::fprintf(stderr, "[trace] %zu events -> %s\n",
                     trace->events_resident(), args.trace_path.c_str());
    }
    if (report) {
        std::string error;
        if (!obs::write_report(args.metrics_json, *report, &error)) {
            std::fprintf(stderr, "--metrics-json: %s\n", error.c_str());
            return 1;
        }
        std::fprintf(stderr, "[metrics] %zu suites -> %s\n",
                     report->suites.size(), args.metrics_json.c_str());
    }
    // Exit 3: the output is valid but at least one suite is partial
    // (budget hit, cancelled, or quarantined shards) — scripts must not
    // mistake it for a complete run.
    return any_incomplete ? 3 : 0;
}
