/// \file
/// alloc_report — the allocation-hunt entry point (docs/observability.md,
/// "Hunting an allocation regression").
///
/// Runs a synthesis workload with phase/site-attributed allocation
/// tracking bound (obs::AllocTracker) and prints the breakdown: which
/// phase of the candidate pipeline allocates, through which named
/// call-site bucket, and at what per-program rate. The same numbers ride
/// in `elt_synth --metrics-json` reports; this tool exists so the hunt
/// does not start with writing a JSON query.
///
///   alloc_report                         # x86t_elt, all axioms, bound 4
///   alloc_report --axiom invlpg --bound 5
///   alloc_report --model sc_t_elt --backend sat --jobs 4
///
/// Flags:
///   --model NAME|PATH same resolution as elt_synth (default x86t_elt)
///   --axiom NAME      one axiom (default: every axiom, merged)
///   --bound N         instruction bound (default 4 — small on purpose:
///                     steady-state ratios stabilize quickly and the tool
///                     should answer in seconds)
///   --backend NAME    enum (default) | sat
///   --jobs N          scheduler workers (0 = one per hardware thread)
///
/// Two cross-checks print as PASS/FAIL lines: the per-phase and per-site
/// tables must sum to the same grand total (each allocation lands in
/// exactly one bucket of each table), and the tracked total must not
/// exceed the process-wide operator-new proxy delta over the run
/// (obs::alloc_count()).
///
/// Exit codes: 0 = report printed (cross-checks included); 1 = a
/// cross-check failed; 2 = usage error.
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "mtm/model.h"
#include "obs/alloc.h"
#include "spec/registry.h"
#include "synth/engine.h"
#include "tool_args.h"

namespace {

using namespace transform;

void
print_table(const obs::AllocTotals& totals, std::uint64_t programs)
{
    const double per_program =
        programs > 0 ? 1.0 / static_cast<double>(programs) : 0.0;
    std::printf("  %-24s %12s %14s %16s\n", "phase", "allocs", "bytes",
                "allocs/program");
    for (int p = 0; p < obs::kPhaseCount; ++p) {
        const obs::AllocSlot& slot =
            totals.phases[static_cast<std::size_t>(p)];
        if (slot.count == 0) {
            continue;
        }
        std::printf("  %-24s %12llu %14llu %16.3f\n",
                    obs::phase_name(static_cast<obs::Phase>(p)),
                    static_cast<unsigned long long>(slot.count),
                    static_cast<unsigned long long>(slot.bytes),
                    static_cast<double>(slot.count) * per_program);
    }
    std::printf("  %-24s %12s %14s %16s\n", "site", "allocs", "bytes",
                "allocs/program");
    for (int s = 0; s < obs::kAllocSiteCount; ++s) {
        const obs::AllocSlot& slot =
            totals.sites[static_cast<std::size_t>(s)];
        if (slot.count == 0) {
            continue;
        }
        std::printf("  %-24s %12llu %14llu %16.3f\n",
                    obs::alloc_site_name(static_cast<obs::AllocSite>(s)),
                    static_cast<unsigned long long>(slot.count),
                    static_cast<unsigned long long>(slot.bytes),
                    static_cast<double>(slot.count) * per_program);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string model_name = "x86t_elt";
    std::string axiom;
    int bound = 4;
    std::string backend = "enum";
    int jobs = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const std::string text = i + 1 < argc ? argv[i + 1] : "";
        long long parsed = 0;
        if (flag == "--model") {
            model_name = text;
            ++i;
        } else if (flag == "--axiom") {
            axiom = text;
            ++i;
        } else if (flag == "--bound") {
            ++i;
            if (!tools::parse_int(text, 1, 64, &parsed)) {
                return tools::usage_error(flag, "a bound in 1..64", text);
            }
            bound = static_cast<int>(parsed);
        } else if (flag == "--backend") {
            ++i;
            if (text != "enum" && text != "sat") {
                return tools::usage_error(flag, "'enum' or 'sat'", text);
            }
            backend = text;
        } else if (flag == "--jobs") {
            ++i;
            if (!tools::parse_jobs(text, &jobs)) {
                return tools::usage_error(flag, tools::kJobsExpectation,
                                          text);
            }
        } else {
            std::fprintf(stderr, "unknown flag '%s' (see the file header "
                         "for usage)\n", flag.c_str());
            return 2;
        }
    }

    std::string model_error;
    const std::optional<spec::ResolvedModel> resolved =
        spec::resolve_model(model_name, &model_error);
    if (!resolved.has_value()) {
        std::fprintf(stderr, "%s\n", model_error.c_str());
        return 2;
    }
    const mtm::Model& model = resolved->model;
    if (!axiom.empty() && model.axiom(axiom) == nullptr) {
        std::fprintf(stderr, "model %s has no axiom '%s'\n",
                     model.name().c_str(), axiom.c_str());
        return 2;
    }

    synth::SynthesisOptions options;
    options.min_bound = model.vm_aware() ? 4 : 2;
    options.bound = bound;
    options.backend = backend == "sat" ? synth::Backend::kSat
                                       : synth::Backend::kEnumerative;
    options.jobs = jobs;
    options.collect_metrics = true;  // phase sections drive attribution
    options.track_allocs = true;

    const std::uint64_t proxy_before = obs::alloc_count();
    obs::AllocTotals totals;
    std::uint64_t programs = 0;
    std::vector<synth::SuiteResult> suites;
    if (!axiom.empty()) {
        suites.push_back(synth::synthesize_suite(model, axiom, options));
    } else {
        suites = synth::synthesize_all_parallel(model, options);
    }
    for (const synth::SuiteResult& suite : suites) {
        totals.merge(suite.allocs);
        programs += suite.programs_considered;
    }
    const std::uint64_t proxy_delta = obs::alloc_count() - proxy_before;

    std::printf("alloc_report: model %s, backend %s, bound %d, jobs %d\n",
                model.name().c_str(), backend.c_str(), bound, jobs);
    std::printf("%llu programs, %llu tracked allocs (%llu bytes), "
                "%llu process-wide\n",
                static_cast<unsigned long long>(programs),
                static_cast<unsigned long long>(totals.total_count()),
                static_cast<unsigned long long>(totals.total_bytes()),
                static_cast<unsigned long long>(proxy_delta));
    print_table(totals, programs);

    // Cross-checks (the same invariants tests/obs_test.cpp pins).
    std::uint64_t site_count = 0;
    for (const obs::AllocSlot& slot : totals.sites) {
        site_count += slot.count;
    }
    bool ok = true;
    if (site_count != totals.total_count()) {
        std::printf("  [FAIL] phase and site tables disagree "
                    "(%llu vs %llu)\n",
                    static_cast<unsigned long long>(totals.total_count()),
                    static_cast<unsigned long long>(site_count));
        ok = false;
    } else {
        std::printf("  [PASS] phase and site tables sum to the same "
                    "total\n");
    }
    // Worker threads bind only while running shard jobs, so the tracked
    // total is a subset of (never exceeds) the process-wide proxy delta.
    if (totals.total_count() > proxy_delta) {
        std::printf("  [FAIL] tracked allocs exceed the process-wide "
                    "proxy delta\n");
        ok = false;
    } else {
        std::printf("  [PASS] tracked allocs within the process-wide "
                    "proxy delta\n");
    }
    return ok ? 0 : 1;
}
